"""Arithmetic / shape / reduction ops of the autodiff Tensor."""

from __future__ import annotations

import numpy as np
import pytest

from conftest import make_tensor
from repro.autodiff import Tensor, check_gradients, concatenate, maximum, stack, where
from repro.errors import GraphError, ShapeError


class TestArithmetic:
    def test_add_broadcast_gradients(self, rng):
        a = make_tensor((3, 4), rng)
        b = make_tensor((4,), rng)
        check_gradients(lambda a, b: a + b, [a, b])

    def test_sub_and_rsub(self, rng):
        a = make_tensor((2, 3), rng)
        check_gradients(lambda a: 1.5 - a, [a])
        check_gradients(lambda a: a - 0.5, [a])

    def test_mul_broadcast_gradients(self, rng):
        a = make_tensor((2, 3, 4), rng)
        b = make_tensor((3, 1), rng)
        check_gradients(lambda a, b: a * b, [a, b])

    def test_div_gradients(self, rng):
        a = make_tensor((3, 3), rng)
        b = make_tensor((3, 3), rng, scale=1.0)
        b.data += 3.0  # keep away from zero
        check_gradients(lambda a, b: a / b, [a, b])

    def test_neg_pow(self, rng):
        a = make_tensor((4,), rng)
        a.data = np.abs(a.data) + 0.5
        check_gradients(lambda a: (-a) ** 3, [a])

    def test_pow_rejects_tensor_exponent(self, rng):
        a = make_tensor((2,), rng)
        with pytest.raises(TypeError):
            a ** a  # noqa: B018

    def test_values_match_numpy(self, rng):
        a = make_tensor((3, 4), rng)
        b = make_tensor((3, 4), rng)
        np.testing.assert_allclose((a + b * 2 - 1).data, a.data + b.data * 2 - 1, rtol=1e-6)


class TestMatmul:
    def test_2d(self, rng):
        a = make_tensor((3, 4), rng)
        b = make_tensor((4, 5), rng)
        check_gradients(lambda a, b: a @ b, [a, b])

    def test_batched(self, rng):
        a = make_tensor((2, 3, 4), rng)
        b = make_tensor((2, 4, 5), rng)
        check_gradients(lambda a, b: a @ b, [a, b])

    def test_matrix_vector(self, rng):
        a = make_tensor((3, 4), rng)
        v = make_tensor((4,), rng)
        check_gradients(lambda a, v: a @ v, [a, v])

    def test_vector_matrix(self, rng):
        v = make_tensor((3,), rng)
        b = make_tensor((3, 4), rng)
        check_gradients(lambda v, b: v @ b, [v, b])

    def test_inner_product(self, rng):
        a = make_tensor((5,), rng)
        b = make_tensor((5,), rng)
        check_gradients(lambda a, b: a @ b, [a, b])

    def test_broadcast_batch(self, rng):
        a = make_tensor((2, 2, 3, 4), rng)
        b = make_tensor((4, 5), rng)
        check_gradients(lambda a, b: a @ b, [a, b])


class TestShapeOps:
    def test_reshape_roundtrip(self, rng):
        a = make_tensor((2, 6), rng)
        check_gradients(lambda a: a.reshape(3, 4), [a])
        assert a.reshape((4, 3)).shape == (4, 3)

    def test_flatten(self, rng):
        a = make_tensor((2, 3, 4), rng)
        assert a.flatten(1).shape == (2, 12)
        check_gradients(lambda a: a.flatten(1), [a])

    def test_transpose(self, rng):
        a = make_tensor((2, 3, 4), rng)
        assert a.transpose(2, 0, 1).shape == (4, 2, 3)
        check_gradients(lambda a: a.transpose(2, 0, 1), [a])
        assert a.T.shape == (4, 3, 2)

    def test_getitem_slice_and_fancy(self, rng):
        a = make_tensor((5, 4), rng)
        check_gradients(lambda a: a[1:4, ::2], [a])
        idx = np.array([0, 2, 2])
        check_gradients(lambda a: a[idx], [a])  # repeated index accumulates

    def test_concatenate_and_stack(self, rng):
        a = make_tensor((2, 3), rng)
        b = make_tensor((4, 3), rng)
        check_gradients(lambda a, b: concatenate([a, b], axis=0), [a, b])
        c = make_tensor((2, 3), rng)
        check_gradients(lambda a, c: stack([a, c], axis=1), [a, c])


class TestReductions:
    def test_sum_axes(self, rng):
        a = make_tensor((2, 3, 4), rng)
        check_gradients(lambda a: a.sum(), [a])
        check_gradients(lambda a: a.sum(axis=1), [a])
        check_gradients(lambda a: a.sum(axis=(0, 2), keepdims=True), [a])

    def test_mean_matches_sum(self, rng):
        a = make_tensor((3, 4), rng)
        np.testing.assert_allclose(a.mean(axis=0).data, a.data.mean(axis=0), rtol=1e-6)
        check_gradients(lambda a: a.mean(axis=1), [a])

    def test_max_gradient_to_argmax(self, rng):
        a = make_tensor((3, 5), rng)
        a.data = np.arange(15, dtype=np.float32).reshape(3, 5)  # unique maxima
        out = a.max(axis=1)
        out.sum().backward()
        expected = np.zeros((3, 5), dtype=np.float32)
        expected[:, -1] = 1.0
        np.testing.assert_array_equal(a.grad, expected)

    def test_var_biased(self, rng):
        a = make_tensor((4, 6), rng)
        np.testing.assert_allclose(a.var(axis=0).data, a.data.var(axis=0), rtol=1e-4, atol=1e-5)


class TestNonlinearities:
    @pytest.mark.parametrize("op", ["relu", "tanh", "sigmoid", "exp", "abs", "sqrt"])
    def test_elementwise_gradients(self, rng, op):
        a = make_tensor((3, 4), rng)
        if op == "sqrt":
            a.data = np.abs(a.data) + 0.5
        if op in ("relu", "abs"):
            a.data += 0.05 * np.sign(a.data)  # keep away from the kink
        check_gradients(lambda a: getattr(a, op)(), [a])

    def test_log_gradients(self, rng):
        a = make_tensor((3, 3), rng)
        a.data = np.abs(a.data) + 0.5
        check_gradients(lambda a: a.log(), [a])

    def test_clip_gradient_mask(self, rng):
        a = Tensor(np.array([-2.0, -0.5, 0.5, 2.0], dtype=np.float32), requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_array_equal(a.grad, [0.0, 1.0, 1.0, 0.0])

    def test_softmax_normalises(self, rng):
        a = make_tensor((4, 7), rng, scale=5.0)
        probs = a.softmax(axis=-1).data
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, rtol=1e-5)
        assert (probs >= 0).all()

    def test_log_softmax_stability(self):
        a = Tensor(np.array([[1000.0, 1000.0, 999.0]], dtype=np.float32), requires_grad=True)
        out = a.log_softmax()
        assert np.isfinite(out.data).all()
        check_gradients(lambda a: a.log_softmax(), [a])

    def test_sigmoid_extremes_stable(self):
        a = Tensor(np.array([-500.0, 0.0, 500.0], dtype=np.float32))
        out = a.sigmoid().data
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-6)


class TestSelectOps:
    def test_where_routes_gradients(self, rng):
        a = make_tensor((3, 4), rng)
        b = make_tensor((3, 4), rng)
        cond = rng.random((3, 4)) > 0.5
        check_gradients(lambda a, b: where(cond, a, b), [a, b])

    def test_maximum_gradients(self, rng):
        a = make_tensor((3, 4), rng)
        b = make_tensor((3, 4), rng)
        # keep away from exact ties for the numeric check
        b.data += 0.1 * np.sign(b.data - a.data + 1e-3)
        check_gradients(lambda a, b: maximum(a, b), [a, b])


class TestErrors:
    def test_backward_needs_scalar(self, rng):
        a = make_tensor((3,), rng)
        with pytest.raises(GraphError):
            (a * 2).backward()

    def test_item_requires_single_element(self, rng):
        a = make_tensor((3,), rng)
        with pytest.raises(ShapeError):
            a.item()

    def test_gradient_shape_mismatch(self, rng):
        a = make_tensor((3,), rng)
        out = a * 2
        with pytest.raises(ShapeError):
            out.backward(np.ones(4, dtype=np.float32))
