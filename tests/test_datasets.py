"""Synthetic corpus: synthesiser, task assembly, splits, loader."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    ALL_KEYWORDS,
    LABELS,
    TARGET_WORDS,
    SpeechCommandsConfig,
    iterate_minibatches,
    keyword_spec,
    label_index,
    synthesize,
)
from repro.datasets.noise import pink_noise, white_noise
from repro.datasets.speech_commands import _split_of
from repro.datasets.synthesizer import distinctness_score, phoneme_inventory
from repro.errors import DatasetError


class TestSynthesizer:
    def test_spec_determinism(self):
        a, b = keyword_spec("yes"), keyword_spec("yes")
        assert a == b
        assert keyword_spec("no") != a

    def test_inventory_is_shared(self):
        inventory = phoneme_inventory()
        assert len(inventory) == 10
        # at least one keyword reuses an inventory phoneme's formant ratios
        spec = keyword_spec("yes")
        assert 3 <= len(spec.phonemes) <= 4

    def test_waveform_properties(self):
        wave = synthesize(keyword_spec("go"), rng=0)
        assert wave.shape == (16000,)
        assert np.isfinite(wave).all()
        np.testing.assert_allclose(np.sqrt(np.mean(wave**2)), 0.08, rtol=1e-6)

    def test_utterances_vary(self):
        spec = keyword_spec("stop")
        w1 = synthesize(spec, rng=1)
        w2 = synthesize(spec, rng=2)
        assert np.abs(w1 - w2).max() > 1e-3

    def test_classes_are_separable(self):
        score = distinctness_score(["yes", "no", "up", "down"], utterances_per_word=4)
        assert score > 1.2, f"synthetic classes not separable (score={score:.2f})"


class TestNoise:
    def test_white_noise_statistics(self):
        noise = white_noise(10000, rng=0)
        assert abs(noise.mean()) < 0.05
        assert abs(noise.std() - 1.0) < 0.05

    def test_pink_noise_low_frequency_heavy(self):
        noise = pink_noise(16384, rng=0)
        spectrum = np.abs(np.fft.rfft(noise)) ** 2
        low = spectrum[1:100].mean()
        high = spectrum[-100:].mean()
        assert low > 5 * high  # 1/f-ish tilt


class TestTaskAssembly:
    def test_label_mapping(self):
        assert label_index("silence") == 0
        assert label_index("bed") == 1  # non-target keyword -> unknown
        for word in TARGET_WORDS:
            assert LABELS[label_index(word)] == word
        with pytest.raises(DatasetError):
            label_index("not-a-word")

    def test_thirty_keywords_twelve_labels(self):
        assert len(ALL_KEYWORDS) == 30
        assert len(LABELS) == 12

    def test_split_hash_stable_and_distributed(self):
        ids = [f"yes/{i}" for i in range(600)]
        splits = [_split_of(identity) for identity in ids]
        assert splits == [_split_of(identity) for identity in ids]  # stable
        fractions = {name: splits.count(name) / len(splits) for name in ("train", "val", "test")}
        assert 0.7 < fractions["train"] < 0.9
        assert 0.05 < fractions["val"] < 0.16
        assert 0.05 < fractions["test"] < 0.16

    def test_dataset_arrays(self, tiny_dataset):
        x, y = tiny_dataset.arrays("train")
        assert x.ndim == 3 and x.shape[1:] == (49, 10)
        assert x.dtype == np.float32
        assert y.dtype == np.int64
        assert set(np.unique(y)).issubset(set(range(12)))
        assert tiny_dataset.num_labels == 12

    def test_rebalanced_label_distribution(self, tiny_dataset):
        y = tiny_dataset.labels("train")
        counts = np.bincount(y, minlength=12)
        # unknown (label 1) must not dominate: the rebalancing is the point
        assert counts[1] < 0.3 * counts.sum()

    def test_normalisation_is_per_coefficient(self, tiny_dataset):
        x = tiny_dataset.features("train")
        stds = x.std(axis=(0, 1))
        np.testing.assert_allclose(stds, 1.0, atol=0.1)

    def test_config_derived_counts(self):
        cfg = SpeechCommandsConfig(utterances_per_word=100)
        assert cfg.silence_clips == 150
        assert cfg.unknown_per_word == 8  # 1000*0.15/20 rounded

    def test_summary_mentions_sizes(self, tiny_dataset):
        text = tiny_dataset.summary()
        assert "train=" in text and "labels=12" in text


class TestLoader:
    def test_batches_cover_everything(self, rng):
        x = np.arange(25).reshape(25, 1)
        y = np.arange(25)
        seen = []
        for bx, by in iterate_minibatches(x, y, 8, rng=0, shuffle=True):
            np.testing.assert_array_equal(bx.reshape(-1), by)
            seen.extend(by.tolist())
        assert sorted(seen) == list(range(25))

    def test_drop_last(self):
        x, y = np.zeros((25, 1)), np.zeros(25)
        batches = list(iterate_minibatches(x, y, 8, shuffle=False, drop_last=True))
        assert len(batches) == 3
        assert all(len(b[1]) == 8 for b in batches)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            next(iterate_minibatches(np.zeros((3, 1)), np.zeros(4), 2))

    def test_shuffle_determinism(self):
        x, y = np.arange(10).reshape(10, 1), np.arange(10)
        a = [b[1].tolist() for b in iterate_minibatches(x, y, 4, rng=5)]
        b = [b[1].tolist() for b in iterate_minibatches(x, y, 4, rng=5)]
        assert a == b
