"""Documentation snippets must stay executable.

Every fenced ```python block in the user-facing markdown docs is executed
top-to-bottom, sharing one namespace per file (so later snippets may build on
earlier ones, as the prose reads).  This is the CI gate that keeps README and
docs/ code from rotting silently; non-runnable examples belong in ```text or
```bash fences.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [
    REPO_ROOT / "README.md",
    REPO_ROOT / "docs" / "serving.md",
]
PYTHON_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def extract_blocks(path: Path) -> list:
    """All fenced python blocks of a markdown file, in document order."""
    return PYTHON_BLOCK.findall(path.read_text(encoding="utf-8"))


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_snippets_execute(path):
    """Each doc file's python blocks run cleanly in one shared namespace."""
    assert path.exists(), f"{path} is missing"
    blocks = extract_blocks(path)
    assert blocks, f"{path} has no ```python snippets to check"
    namespace: dict = {"__name__": f"docsnippet_{path.stem}"}
    for i, block in enumerate(blocks):
        code = compile(block, f"{path.name}[snippet {i}]", "exec")
        exec(code, namespace)  # noqa: S102 — executing our own documentation
