"""Chaos harness: seeded fault plans, replayable injections, clean teardown.

The plan/harness mechanics (validation, determinism, expiry, quiesce) run
against fake routers so two runs are byte-comparable without process
spawns; one live-cluster scenario then proves the injections really land
and that a faulted run still satisfies the transport no-leak invariant.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.hybrid import HybridConfig, STHybridNet
from repro.core.strassen import freeze_all
from repro.deploy import build_image
from repro.errors import ChaosError, ConfigError, RoutingError
from repro.serving import (
    ChaosHarness,
    ClusterRouter,
    CrashFault,
    FaultPlan,
    LagFault,
    RetryPolicy,
    ScriptStep,
    SlabSqueeze,
    WorkerScript,
)
from repro.serving.loadgen import build_arrivals, replay
from repro.serving.streams import ManagerStats


def frozen_image(width: int = 8, rng: int = 0):
    """A small frozen ST-Hybrid image."""
    model = STHybridNet(HybridConfig(width=width), rng=rng)
    freeze_all(model)
    model.eval()
    return build_image(model)


# --------------------------------------------------------------------------- #
# fakes: a router the harness can inject into without spawning processes
# --------------------------------------------------------------------------- #


class _FakeSlabPool:
    """A bounded ring of slab ids with the acquire/release the harness uses."""

    def __init__(self, slabs: int = 4) -> None:
        self.free = list(range(slabs))
        self.released = []

    def try_acquire(self):
        return self.free.pop(0) if self.free else None

    def release(self, slab_id: int) -> None:
        self.free.append(slab_id)
        self.released.append(slab_id)


class _FakePool:
    def __init__(self, workers: int = 4, slab_pool=None) -> None:
        self._workers = list(range(workers))
        self._slab_pool = slab_pool
        self.crashed = []
        self.slept = []
        self.dead = set()

    def worker_ids(self):
        return list(self._workers)

    def inject_crash(self, worker_id: int, code: int = 13) -> None:
        if worker_id in self.dead:
            raise RoutingError(f"worker {worker_id} is down")
        self.crashed.append(worker_id)

    def inject_sleep(self, worker_id: int, seconds: float) -> None:
        self.slept.append((worker_id, seconds))


class _FakeRouter:
    def __init__(self, workers: int = 4, slab_pool=None) -> None:
        self.pool = _FakePool(workers, slab_pool)
        self.lags = []

    def inject_version_lag(self, model, version, seconds) -> None:
        self.lags.append((model, version, seconds))


# --------------------------------------------------------------------------- #
# plan validation + determinism
# --------------------------------------------------------------------------- #


class TestFaultValidation:
    def test_crash_fault(self):
        with pytest.raises(ConfigError):
            CrashFault(every_n=0)
        with pytest.raises(ConfigError):
            CrashFault(every_n=1, limit=-1)
        with pytest.raises(ConfigError):
            CrashFault(every_n=1, start=-1)
        with pytest.raises(ConfigError):
            CrashFault(every_n=1, workers=())

    def test_lag_fault(self):
        with pytest.raises(ConfigError):
            LagFault(at=0, seconds=0.1, duration=1)
        with pytest.raises(ConfigError):
            LagFault(at=1, seconds=0.0, duration=1)
        with pytest.raises(ConfigError):
            LagFault(at=1, seconds=0.1, duration=0)

    def test_slab_squeeze(self):
        with pytest.raises(ConfigError):
            SlabSqueeze(at=0, slabs=1, duration=1)
        with pytest.raises(ConfigError):
            SlabSqueeze(at=1, slabs=0, duration=1)
        with pytest.raises(ConfigError):
            SlabSqueeze(at=1, slabs=1, duration=0)

    def test_script_step(self):
        with pytest.raises(ConfigError):
            ScriptStep(at=0, action="crash")
        with pytest.raises(ConfigError):
            ScriptStep(at=1, action="reboot")
        with pytest.raises(ConfigError):
            ScriptStep(at=1, action="sleep", seconds=0.0)
        with pytest.raises(ConfigError):
            ScriptStep(at=1, action="lag", seconds=-1.0)
        with pytest.raises(ConfigError):
            WorkerScript(worker_id=-1)

    def test_plan_coerces_sequences_to_tuples(self):
        plan = FaultPlan(crashes=[CrashFault(every_n=3)], lags=[])
        assert isinstance(plan.crashes, tuple) and isinstance(plan.lags, tuple)


def _demo_plan(seed: int = 11) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        crashes=(CrashFault(every_n=2, limit=3),),
        lags=(LagFault(at=3, seconds=0.05, duration=2, model="m"),),
        scripts=(
            WorkerScript(
                worker_id=1,
                steps=(ScriptStep(at=5, action="sleep", seconds=0.01),),
            ),
        ),
    )


class TestHarnessMechanics:
    def test_same_plan_same_seed_same_ticks_replays_identically(self):
        runs = []
        for _ in range(2):
            router = _FakeRouter(workers=4)
            harness = ChaosHarness(router, _demo_plan())
            harness.tick(10)
            runs.append((harness.events, harness.counters, router.pool.crashed))
        assert runs[0] == runs[1]
        events, counters, crashed = runs[0]
        assert counters["crashes"] == 3  # limit honoured
        assert counters["lags_set"] == 1 and counters["lags_cleared"] == 1
        assert counters["sleeps"] == 1
        assert len(crashed) == 3

    def test_different_seed_may_pick_different_victims_but_same_shape(self):
        def run(seed):
            router = _FakeRouter(workers=4)
            harness = ChaosHarness(router, _demo_plan(seed))
            harness.tick(10)
            return harness

        a, b = run(1), run(2)
        assert a.counters == b.counters  # the *schedule* is seed-independent
        assert [kind for _, kind, _ in a.events] == [k for _, k, _ in b.events]

    def test_restricted_victim_set(self):
        router = _FakeRouter(workers=4)
        plan = FaultPlan(crashes=(CrashFault(every_n=1, workers=(2,), limit=5),))
        ChaosHarness(router, plan).tick(5)
        assert router.pool.crashed == [2] * 5

    def test_lag_window_expires_on_schedule(self):
        router = _FakeRouter()
        harness = ChaosHarness(
            router, FaultPlan(lags=(LagFault(at=2, seconds=0.5, duration=3, model="m"),))
        )
        harness.tick(4)
        assert router.lags == [("m", None, 0.5)]  # set at tick 2, still live
        harness.tick(1)  # tick 5 = at + duration: cleared
        assert router.lags[-1] == ("m", None, 0.0)
        assert any(kind == "lag_expired" for _, kind, _ in harness.events)

    def test_squeeze_holds_then_releases_and_quiesce_returns_everything(self):
        slab_pool = _FakeSlabPool(slabs=4)
        router = _FakeRouter(slab_pool=slab_pool)
        harness = ChaosHarness(
            router,
            FaultPlan(
                squeezes=(
                    SlabSqueeze(at=1, slabs=2, duration=5),
                    SlabSqueeze(at=2, slabs=10, duration=1),  # drains the rest
                )
            ),
        )
        harness.tick(1)
        assert len(slab_pool.free) == 2
        harness.tick(1)  # second squeeze takes whatever is left (2 of 10)
        assert len(slab_pool.free) == 0
        harness.tick(1)  # tick 3: the second squeeze's window expired
        assert len(slab_pool.free) == 2
        harness.quiesce()
        assert len(slab_pool.free) == 4  # nothing leaked
        assert harness.counters["slabs_held"] == harness.counters["slabs_released"]

    def test_squeeze_without_shm_is_skipped_not_raised(self):
        router = _FakeRouter(slab_pool=None)
        harness = ChaosHarness(router, FaultPlan(squeezes=(SlabSqueeze(at=1, slabs=1, duration=1),)))
        harness.tick(1)
        assert harness.counters["skipped"] == 1

    def test_crash_on_dead_worker_is_skipped_not_raised(self):
        router = _FakeRouter(workers=2)
        router.pool.dead.add(0)
        plan = FaultPlan(crashes=(CrashFault(every_n=1, workers=(0,), limit=1),))
        harness = ChaosHarness(router, plan)
        harness.tick(1)
        assert harness.counters["skipped"] == 1 and harness.counters["crashes"] == 0
        assert any(kind == "crash_skipped" for _, kind, _ in harness.events)

    def test_tick_and_quiesce_contracts(self):
        harness = ChaosHarness(_FakeRouter(), FaultPlan())
        with pytest.raises(ConfigError):
            harness.tick(-1)
        harness.tick(3)
        assert harness.tick_count == 3
        assert harness.snapshot()["tick"] == 3
        harness.quiesce()
        harness.quiesce()  # idempotent
        with pytest.raises(ChaosError):
            harness.tick()

    def test_context_manager_quiesces(self):
        router = _FakeRouter()
        with ChaosHarness(router, FaultPlan()) as harness:
            harness.tick(2)
        with pytest.raises(ChaosError):
            harness.tick()


# --------------------------------------------------------------------------- #
# loadgen.replay drives the harness once per opened session
# --------------------------------------------------------------------------- #


class _FakeManager:
    """The slice of StreamSessionManager that loadgen.replay touches."""

    def __init__(self) -> None:
        self.calls = []
        self.sessions = []

    def open(self, waveform, session_id=None):
        self.calls.append(("open", session_id))

    def pump(self):
        self.calls.append(("pump",))

    def collect(self, wait=False, timeout_s=300.0):
        self.calls.append(("collect",))

    def drain(self, timeout_s=300.0):
        self.calls.append(("drain",))
        return ManagerStats(sessions=len([c for c in self.calls if c[0] == "open"]))

    def latencies_s(self):
        return []

    def queue_s(self):
        return []


class TestReplayIntegration:
    def test_replay_ticks_per_session_and_quiesces_before_drain(self):
        arrivals = build_arrivals(5, arrivals_per_s=1000.0, pool_size=2, seed=3)
        manager = _FakeManager()
        harness = ChaosHarness(_FakeRouter(), _demo_plan())
        replay(manager, arrivals, chaos=harness)
        assert harness.tick_count == 5
        with pytest.raises(ChaosError):  # quiesced by replay, before the drain
            harness.tick()
        assert manager.calls[-1] == ("drain",)


# --------------------------------------------------------------------------- #
# one live scenario: faults land, retries mask them, nothing leaks
# --------------------------------------------------------------------------- #


class TestLiveChaos:
    def test_faulted_run_is_bitwise_clean_and_leak_free(self):
        image = frozen_image()
        router = ClusterRouter(
            2,
            retry=RetryPolicy(max_attempts=4, base_backoff_s=0.1, jitter=0.0),
        )
        with router:
            router.register("m", image)
            rng = np.random.default_rng(5)
            x = rng.standard_normal((49, 10)).astype(np.float32)
            ref = router.predict(x, model="m")
            plan = FaultPlan(
                seed=2,
                crashes=(CrashFault(every_n=5, limit=1),),
                lags=(LagFault(at=2, seconds=0.05, duration=3),),
            )
            with ChaosHarness(router, plan) as harness:
                results = []
                for _ in range(10):
                    futures = router.submit_many([x, x], model="m")
                    harness.tick()
                    results.extend(f.result(timeout=30) for f in futures)
            assert all(np.array_equal(ref, out) for out in results)
            assert harness.counters["crashes"] == 1
            assert harness.counters["lags_set"] == 1
            # crash recovery happened under traffic
            assert any(kind == "crash" for _, kind, _ in harness.events)
            transport = router.pool.transport_snapshot()
        # after stop, the no-leak invariant: every slab lease returned
        assert transport.get("leased", 0) == 0
