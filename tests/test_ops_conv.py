"""Convolution / pooling / padding ops: shapes and gradients."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_tensor
from repro.autodiff import Tensor, avg_pool2d, check_gradients, conv2d, depthwise_conv2d, pad2d
from repro.autodiff.ops_conv import conv_output_size
from repro.errors import ShapeError


class TestConv2d:
    def test_output_shape_matches_formula(self, rng):
        x = make_tensor((2, 3, 9, 7), rng, requires_grad=False)
        w = make_tensor((5, 3, 3, 3), rng, requires_grad=False)
        out = conv2d(x, w, stride=(2, 1), padding=(1, 0))
        assert out.shape == (2, 5, conv_output_size(9, 3, 2, 1), conv_output_size(7, 3, 1, 0))

    def test_gradients_strided_padded(self, rng):
        x = make_tensor((2, 2, 6, 5), rng, scale=0.5)
        w = make_tensor((3, 2, 3, 2), rng, scale=0.3)
        b = make_tensor((3,), rng)
        check_gradients(lambda x, w, b: conv2d(x, w, b, stride=(2, 2), padding=(1, 1)), [x, w, b])

    def test_matches_naive_loop(self, rng):
        x = make_tensor((1, 2, 5, 5), rng, requires_grad=False)
        w = make_tensor((3, 2, 3, 3), rng, requires_grad=False)
        out = conv2d(x, w).data
        naive = np.zeros_like(out)
        for f in range(3):
            for i in range(3):
                for j in range(3):
                    patch = x.data[0, :, i : i + 3, j : j + 3]
                    naive[0, f, i, j] = (patch * w.data[f]).sum()
        np.testing.assert_allclose(out, naive, rtol=1e-4, atol=1e-5)

    def test_channel_mismatch_raises(self, rng):
        x = make_tensor((1, 2, 5, 5), rng, requires_grad=False)
        w = make_tensor((3, 4, 3, 3), rng, requires_grad=False)
        with pytest.raises(ShapeError):
            conv2d(x, w)

    def test_empty_output_raises(self):
        with pytest.raises(ShapeError):
            conv_output_size(2, 5, 1, 0)

    @given(
        st.integers(min_value=1, max_value=3),   # channels
        st.integers(min_value=1, max_value=3),   # filters
        st.integers(min_value=1, max_value=3),   # kernel
        st.integers(min_value=1, max_value=2),   # stride
        st.integers(min_value=0, max_value=1),   # padding
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_naive_on_random_shapes(self, c, f, k, s, p, seed):
        """Vectorised conv == explicit loop, for random small configs."""
        rng = np.random.default_rng(seed)
        h = w = k + 2  # always big enough for one output
        x = rng.standard_normal((1, c, h, w)).astype(np.float32)
        weight = rng.standard_normal((f, c, k, k)).astype(np.float32)
        out = conv2d(Tensor(x), Tensor(weight), stride=s, padding=p).data
        xp = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p)))
        oh = (h + 2 * p - k) // s + 1
        ow = (w + 2 * p - k) // s + 1
        naive = np.zeros((1, f, oh, ow), dtype=np.float64)
        for ff in range(f):
            for i in range(oh):
                for j in range(ow):
                    patch = xp[0, :, i * s : i * s + k, j * s : j * s + k]
                    naive[0, ff, i, j] = float((patch * weight[ff]).sum())
        np.testing.assert_allclose(out, naive, rtol=1e-4, atol=1e-4)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_conv_linearity(self, seed):
        """conv(x, w1 + w2) == conv(x, w1) + conv(x, w2)."""
        rng = np.random.default_rng(seed)
        x = Tensor(rng.standard_normal((1, 2, 5, 5)).astype(np.float32))
        w1 = rng.standard_normal((3, 2, 3, 3)).astype(np.float32)
        w2 = rng.standard_normal((3, 2, 3, 3)).astype(np.float32)
        combined = conv2d(x, Tensor(w1 + w2)).data
        separate = conv2d(x, Tensor(w1)).data + conv2d(x, Tensor(w2)).data
        np.testing.assert_allclose(combined, separate, rtol=1e-3, atol=1e-4)


class TestDepthwise:
    def test_shape_and_gradients(self, rng):
        x = make_tensor((2, 4, 6, 5), rng, scale=0.5)
        w = make_tensor((4, 3, 3), rng, scale=0.3)
        b = make_tensor((4,), rng)
        check_gradients(
            lambda x, w, b: depthwise_conv2d(x, w, b, stride=(1, 2), padding=1), [x, w, b]
        )

    def test_channels_stay_separate(self, rng):
        x = make_tensor((1, 2, 4, 4), rng, requires_grad=False)
        w = Tensor(np.stack([np.zeros((3, 3)), np.ones((3, 3))]).astype(np.float32))
        out = depthwise_conv2d(x, w, padding=1)
        assert np.abs(out.data[:, 0]).max() == 0.0  # zero filter kills channel 0 only
        assert np.abs(out.data[:, 1]).max() > 0.0

    def test_channel_mismatch_raises(self, rng):
        x = make_tensor((1, 2, 5, 5), rng, requires_grad=False)
        w = make_tensor((3, 3, 3), rng, requires_grad=False)
        with pytest.raises(ShapeError):
            depthwise_conv2d(x, w)


class TestPooling:
    def test_global_average(self, rng):
        x = make_tensor((2, 3, 4, 5), rng)
        out = avg_pool2d(x, None)
        assert out.shape == (2, 3, 1, 1)
        np.testing.assert_allclose(
            out.data.reshape(2, 3), x.data.mean(axis=(2, 3)), rtol=1e-5
        )
        check_gradients(lambda x: avg_pool2d(x, None), [x])

    def test_windowed(self, rng):
        x = make_tensor((1, 2, 4, 6), rng)
        out = avg_pool2d(x, (2, 3))
        assert out.shape == (1, 2, 2, 2)
        check_gradients(lambda x: avg_pool2d(x, (2, 3)), [x])

    def test_non_dividing_kernel_raises(self, rng):
        x = make_tensor((1, 2, 5, 5), rng, requires_grad=False)
        with pytest.raises(ShapeError):
            avg_pool2d(x, (2, 2))


class TestPad:
    def test_pad_and_gradient(self, rng):
        x = make_tensor((2, 3, 4, 4), rng)
        out = pad2d(x, (1, 2))
        assert out.shape == (2, 3, 6, 8)
        assert np.abs(out.data[:, :, 0, :]).max() == 0.0
        check_gradients(lambda x: pad2d(x, (1, 2)), [x])

    def test_zero_pad_is_identity(self, rng):
        x = make_tensor((1, 1, 3, 3), rng, requires_grad=False)
        assert pad2d(x, 0) is x
