"""Straight-through estimators and the TWN ternariser."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.autodiff import Tensor
from repro.autodiff.ste import (
    clipped_ste,
    sign_ste,
    ternarize_array,
    ternarize_array_topk,
    ternary_ste,
    ternary_threshold,
)

WEIGHTS = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=64),
    elements=st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
)


class TestTernarize:
    @given(WEIGHTS)
    @settings(max_examples=60, deadline=None)
    def test_values_are_ternary_and_alpha_nonnegative(self, w):
        ternary, alpha = ternarize_array(w)
        assert set(np.unique(ternary)).issubset({-1.0, 0.0, 1.0})
        assert alpha >= 0.0

    @given(WEIGHTS)
    @settings(max_examples=60, deadline=None)
    def test_signs_preserved_above_threshold(self, w):
        ternary, _ = ternarize_array(w)
        delta = ternary_threshold(w)
        above = np.abs(w) > delta
        np.testing.assert_array_equal(ternary[above], np.sign(w[above]))
        assert (ternary[~above] == 0).all()

    @given(WEIGHTS, st.floats(min_value=0.5, max_value=4.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_scale_invariance(self, w, factor):
        t1, a1 = ternarize_array(w)
        t2, a2 = ternarize_array(w * factor)
        np.testing.assert_array_equal(t1, t2)
        np.testing.assert_allclose(a2, a1 * factor, rtol=1e-6, atol=1e-9)

    def test_alpha_is_mean_of_survivors(self):
        w = np.array([0.1, -2.0, 3.0, 0.05])
        ternary, alpha = ternarize_array(w)
        survivors = np.abs(w)[ternary != 0]
        np.testing.assert_allclose(alpha, survivors.mean())

    def test_all_zero_input(self):
        ternary, alpha = ternarize_array(np.zeros(5))
        assert (ternary == 0).all()
        assert alpha == 0.0


class TestTopKTernarize:
    @given(
        arrays(dtype=np.float64, shape=(6, 10),
               elements=st.floats(min_value=-5.0, max_value=5.0, allow_nan=False)),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_row_budget_respected(self, w, budget):
        ternary, alpha = ternarize_array_topk(w, budget)
        assert set(np.unique(ternary)).issubset({-1.0, 0.0, 1.0})
        assert (np.count_nonzero(ternary, axis=1) <= budget).all()
        assert alpha >= 0.0

    def test_budget_is_subset_of_dense_ternary(self, rng):
        w = rng.standard_normal((4, 8))
        dense, _ = ternarize_array(w)
        budgeted, _ = ternarize_array_topk(w, 3)
        # budgeted support is contained in the dense ternary support
        assert ((budgeted != 0) <= (dense != 0)).all()

    def test_large_budget_equals_dense(self, rng):
        w = rng.standard_normal((4, 8))
        dense, alpha_d = ternarize_array(w)
        budgeted, alpha_b = ternarize_array_topk(w, 8)
        np.testing.assert_array_equal(dense, budgeted)
        np.testing.assert_allclose(alpha_d, alpha_b)

    def test_conv_weight_rows_flattened(self, rng):
        w = rng.standard_normal((5, 3, 3, 3))  # conv-shaped W_b
        ternary, _ = ternarize_array_topk(w, 4)
        per_filter = np.count_nonzero(ternary.reshape(5, -1), axis=1)
        assert (per_filter <= 4).all()

    def test_invalid_budget(self, rng):
        with pytest.raises(ValueError):
            ternarize_array_topk(rng.standard_normal((2, 4)), 0)

    def test_layer_addition_budget(self, rng):
        from repro.core.strassen import StrassenLinear

        layer = StrassenLinear(16, 4, r=6, rng=0)
        layer.addition_budget = 4
        layer.freeze()
        assert (np.count_nonzero(layer.wb.data, axis=1) <= 4).all()
        assert layer.wb_nonzeros() <= 6 * 4


class TestSTE:
    def test_ternary_ste_forward_and_identity_grad(self, rng):
        w = Tensor(rng.standard_normal(20).astype(np.float32), requires_grad=True)
        out = ternary_ste(w)
        values = np.unique(np.abs(out.data[out.data != 0]))
        assert len(values) == 1  # single alpha magnitude
        out.sum().backward()
        np.testing.assert_array_equal(w.grad, np.ones(20, dtype=np.float32))

    def test_sign_ste_clips_gradient(self):
        w = Tensor(np.array([-2.0, -0.5, 0.5, 2.0], dtype=np.float32), requires_grad=True)
        out = sign_ste(w, clip=1.0)
        assert set(np.unique(out.data)) <= {-1.0, 1.0}
        out.sum().backward()
        np.testing.assert_array_equal(w.grad, [0.0, 1.0, 1.0, 0.0])

    def test_clipped_ste_passes_external_values(self, rng):
        w = Tensor(rng.standard_normal(6).astype(np.float32), requires_grad=True)
        q = np.round(w.data * 4) / 4
        out = clipped_ste(w, q)
        np.testing.assert_array_equal(out.data, q.astype(np.float32))
        out.sum().backward()
        np.testing.assert_array_equal(w.grad, np.ones(6, dtype=np.float32))

    def test_clipped_ste_shape_mismatch(self, rng):
        w = Tensor(rng.standard_normal(6).astype(np.float32), requires_grad=True)
        with pytest.raises(ValueError):
            clipped_ste(w, np.zeros(5))
