"""Shared-memory data plane: slab ring, fallbacks, crash reclaim, no leaks.

Worker processes cost ~1 s each to spawn, so cluster-backed tests share
small (1-worker) clusters per class where possible.
"""

from __future__ import annotations

import asyncio
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core.hybrid import HybridConfig, STHybridNet
from repro.core.strassen import freeze_all
from repro.deploy import build_image
from repro.errors import AdmissionError, ConfigError, TransportError, WorkerCrashed
from repro.serving import (
    AsyncServingFrontend,
    ClusterRouter,
    PackedModel,
    Priority,
    PriorityPolicy,
    SlabClient,
    SlabConfig,
    SlabPool,
)


@pytest.fixture(scope="module")
def image():
    """One small frozen ST-Hybrid image."""
    model = STHybridNet(HybridConfig(width=8), rng=0)
    freeze_all(model)
    model.eval()
    return build_image(model)


@pytest.fixture(scope="module")
def requests_batch():
    """A deterministic batch of MFCC-shaped inputs ((49, 10) ≈ 2 KB each)."""
    rng = np.random.default_rng(7)
    return [rng.standard_normal((49, 10)).astype(np.float32) for _ in range(6)]


def wait_until(predicate, timeout_s: float = 15.0, interval_s: float = 0.05) -> bool:
    """Poll ``predicate`` until true or ``timeout_s`` elapses."""
    limit = time.monotonic() + timeout_s
    while time.monotonic() < limit:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


class TestSlabPool:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            SlabConfig(slab_bytes=8)
        with pytest.raises(ConfigError):
            SlabConfig(slabs=0)
        assert SlabConfig(slab_bytes=64, slabs=3).total_bytes == 192

    def test_acquire_release_ring(self):
        pool = SlabPool(SlabConfig(slab_bytes=64, slabs=2))
        try:
            a, b = pool.try_acquire(), pool.try_acquire()
            assert {a, b} == {0, 1}
            assert pool.try_acquire() is None  # exhausted -> pipe fallback
            assert pool.leased == 2 and pool.available == 0
            pool.release(a)
            assert pool.try_acquire() == a  # slabs are recycled
            snap = pool.snapshot()
            assert snap["acquired"] == 3 and snap["released"] == 1
            assert snap["exhausted"] == 1
        finally:
            pool.destroy()

    def test_write_read_roundtrip(self):
        pool = SlabPool(SlabConfig(slab_bytes=1024, slabs=1))
        try:
            slab = pool.try_acquire()
            x = np.arange(24, dtype=np.float32).reshape(4, 6) * 0.5
            shape, dtype = pool.write(slab, x)
            assert shape == (4, 6) and np.dtype(dtype) == np.float32
            view = pool.view(slab, shape, dtype)
            assert not view.flags.writeable  # models cannot scribble on slabs
            np.testing.assert_array_equal(view, x)
            copy = pool.read(slab, shape, dtype)
            pool.release(slab)
            np.testing.assert_array_equal(copy, x)  # owned: survives release
        finally:
            pool.destroy()

    def test_oversized_write_and_double_release_raise(self):
        pool = SlabPool(SlabConfig(slab_bytes=64, slabs=1))
        try:
            assert not pool.fits(65)
            slab = pool.try_acquire()
            with pytest.raises(TransportError, match="exceeds"):
                pool.write(slab, np.zeros(65, dtype=np.uint8))
            pool.release(slab)
            with pytest.raises(TransportError, match="not leased"):
                pool.release(slab)
        finally:
            pool.destroy()

    def test_oversized_view_cannot_alias_the_next_slab(self):
        # symmetric with the write check: corrupt frame metadata must raise,
        # never return a view spilling into the neighbouring slab
        pool = SlabPool(SlabConfig(slab_bytes=64, slabs=2))
        try:
            slab = pool.try_acquire()
            with pytest.raises(TransportError, match="exceeds"):
                pool.view(slab, (65,), "|u1")
            with pytest.raises(TransportError, match="out of range"):
                pool.view(99, (4,), "|u1")
            pool.release(slab)
        finally:
            pool.destroy()

    def test_destroy_unlinks_and_is_idempotent(self):
        pool = SlabPool(SlabConfig(slab_bytes=64, slabs=1))
        name = pool.name
        pool.destroy()
        pool.destroy()  # idempotent
        assert pool.try_acquire() is None  # destroyed pools lease nothing
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)  # segment really unlinked
        assert pool.snapshot()["leased"] == 0  # accounting readable post-mortem

    def test_client_shares_the_segment(self):
        pool = SlabPool(SlabConfig(slab_bytes=256, slabs=2))
        try:
            client = SlabClient(pool.name, pool.config)
            slab = pool.try_acquire()
            x = np.linspace(0, 1, 17, dtype=np.float32)
            shape, dtype = pool.write(slab, x)
            np.testing.assert_array_equal(client.view(slab, shape, dtype), x)
            # the worker writes the result back into the same slab
            y = x[::-1].copy()
            client.write(slab, y)
            np.testing.assert_array_equal(pool.read(slab, shape, dtype), y)
            pool.release(slab)
            client.close()
        finally:
            pool.destroy()


class TestClusterFallbacks:
    @pytest.fixture(scope="class")
    def tiny_ring(self, image):
        """One worker on a 2-slab ring: bursts larger than 2 must fall back."""
        router = ClusterRouter(
            workers=1, transport=SlabConfig(slab_bytes=4096, slabs=2)
        )
        router.register("kws", image)
        with router:
            yield router

    def test_exhaustion_falls_back_to_pipe(self, tiny_ring, image, requests_batch):
        futures = tiny_ring.submit_many(requests_batch * 4, model="kws")
        got = np.stack([f.result(timeout=30.0) for f in futures])
        want = PackedModel(image)(np.stack(requests_batch * 4))
        np.testing.assert_array_equal(got, want)  # both planes bitwise agree
        transport = tiny_ring.snapshot().transport
        assert transport["shm_requests"] >= 2
        assert transport["fallbacks_exhausted"] > 0
        assert transport["pipe_requests"] == transport["fallbacks_exhausted"]
        assert transport["leased"] == 0  # every lease returned

    def test_oversized_payload_falls_back(self, image):
        # (49, 10) float32 is ~2 KB; a 64-byte slab cannot carry it
        router = ClusterRouter(workers=1, transport=SlabConfig(slab_bytes=64, slabs=4))
        router.register("kws", image)
        x = np.random.default_rng(0).standard_normal((49, 10)).astype(np.float32)
        with router:
            got = router.predict(x, model="kws")
            np.testing.assert_array_equal(got, PackedModel(image)(x[None])[0])
            transport = router.snapshot().transport
            assert transport["fallbacks_oversize"] == 1
            assert transport["shm_requests"] == 0
        assert router.pool.transport_snapshot()["leased"] == 0

    def test_transport_disabled_serves_identically(self, image, requests_batch):
        router = ClusterRouter(workers=1, transport=False)
        router.register("kws", image)
        with router:
            futures = router.submit_many(requests_batch, model="kws")
            got = np.stack([f.result(timeout=30.0) for f in futures])
            np.testing.assert_array_equal(got, PackedModel(image)(np.stack(requests_batch)))
            transport = router.snapshot().transport
            assert not transport["shm_enabled"]
            assert transport["pipe_requests"] == len(requests_batch)

    def test_empty_burst_is_a_noop(self, tiny_ring):
        assert tiny_ring.submit_many([], model="kws") == []

    def test_failed_encode_rolls_back_slots_and_leases(self, tiny_ring, requests_batch):
        # item 0 leases a slab, then the ragged item 1 fails np.asarray:
        # the partial lease and the claimed admission slots must all return
        ragged = [[1.0, 2.0], [3.0]]
        with pytest.raises(ValueError):
            tiny_ring.submit_many([requests_batch[0], ragged], model="kws")
        stats = tiny_ring.snapshot()
        assert stats.pending == 0
        assert all(v == 0 for v in stats.queue_depth_by_priority.values())
        assert stats.transport["leased"] == 0


class TestCrashReclaim:
    def test_crash_midrequest_reclaims_leases_and_stop_leaves_no_leak(
        self, image, requests_batch
    ):
        router = ClusterRouter(workers=1, transport=SlabConfig(slab_bytes=4096, slabs=8))
        router.register("kws", image)
        with router:
            router.predict(requests_batch[0], model="kws")  # place + decode
            # stall the worker so the crash lands before the predicts are read
            router.pool.inject_sleep(0, 0.3)
            router.pool.inject_crash(0)
            doomed = router.submit_many(requests_batch[:4], model="kws")
            assert router.pool.transport_snapshot()["leased"] == 4
            for future in doomed:
                with pytest.raises(WorkerCrashed):
                    future.result(timeout=15.0)
            # EOF reclaimed the dead worker's leases, no reply ever came
            assert wait_until(
                lambda: router.pool.transport_snapshot()["leased"] == 0
            ), "crashed worker's slab leases were never reclaimed"
            assert router.snapshot().crashes == 1
            # the restarted worker serves from the same ring, bitwise intact
            got = router.predict(requests_batch[1], model="kws")
            np.testing.assert_array_equal(
                got, PackedModel(image)(requests_batch[1][None])[0]
            )
            segment = router.pool._slab_pool.name
        snapshot = router.pool.transport_snapshot()
        assert snapshot["leased"] == 0
        assert snapshot["acquired"] == snapshot["released"]
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=segment)  # stop() unlinked it


class TestPriorityMetrics:
    @pytest.fixture(scope="class")
    def cluster(self, image):
        router = ClusterRouter(
            workers=1,
            policy=PriorityPolicy(max_pending=16, normal_watermark=0.5, low_watermark=0.25),
        )
        router.register("kws", image)
        with router:
            router.predict(np.zeros((49, 10), dtype=np.float32), model="kws")
            yield router

    def test_queue_depth_by_priority_tracks_pending(self, cluster, requests_batch):
        cluster.pool.inject_sleep(0, 0.4)  # keep admitted requests pending
        high = cluster.submit_many(
            requests_batch[:3], model="kws", priority=Priority.HIGH
        )
        low = cluster.submit(requests_batch[3], priority=Priority.LOW)
        stats = cluster.snapshot()
        assert stats.queue_depth_by_priority[Priority.HIGH] == 3
        assert stats.queue_depth_by_priority[Priority.LOW] == 1
        assert stats.pending == sum(stats.queue_depth_by_priority.values())
        for future in [*high, low]:
            assert future.result(timeout=15.0).shape == (12,)
        stats = cluster.snapshot()
        assert all(v == 0 for v in stats.queue_depth_by_priority.values())

    def test_latency_percentiles_per_class(self, cluster, requests_batch):
        for x in requests_batch:
            cluster.predict(x, model="kws", priority=Priority.HIGH)
        stats = cluster.snapshot()
        high = stats.latency_by_priority[Priority.HIGH]
        assert high.count >= len(requests_batch)
        assert 0.0 < high.p50_ms <= high.p99_ms
        untouched = stats.latency_by_priority[Priority.NORMAL]
        if untouched.count == 0:
            assert np.isnan(untouched.p50_ms)

    def test_burst_shed_is_all_or_nothing(self, cluster, requests_batch):
        # LOW limit is 4 of 16: a 6-burst cannot fit, and nothing of it lands
        before = cluster.snapshot()
        with pytest.raises(AdmissionError, match="LOW"):
            cluster.submit_many(requests_batch, model="kws", priority=Priority.LOW)
        stats = cluster.snapshot()
        assert stats.pending == 0
        assert (
            stats.shed_by_priority[Priority.LOW]
            - before.shed_by_priority[Priority.LOW]
            == len(requests_batch)
        )

    def test_frontend_surfaces_priority_metrics(self, cluster, requests_batch):
        frontend = AsyncServingFrontend(cluster)

        async def run():
            return await frontend.predict_many(
                requests_batch, model="kws", priority=Priority.HIGH
            )

        results = asyncio.run(run())
        assert len(results) == len(requests_batch)
        stats = frontend.stats
        assert stats.latency_by_priority[Priority.HIGH].count >= len(requests_batch)
        assert stats.transport["shm_requests"] > 0
        assert stats.queue_depth_by_priority[Priority.HIGH] == 0
