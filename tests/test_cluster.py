"""Multi-process serving cluster: routing, budgets, priorities, crash recovery.

Worker processes cost ~1 s each to spawn (spawn context re-imports the
package), so clusters are shared per test class where possible and kept to
1–2 workers.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.core.hybrid import HybridConfig, STHybridNet
from repro.core.strassen import freeze_all
from repro.deploy import build_image
from repro.errors import (
    AdmissionError,
    ConfigError,
    RoutingError,
    WorkerCrashed,
)
from repro.evaluation import StreamingDetector, make_stream
from repro.serving import (
    AsyncServingFrontend,
    ClusterRouter,
    MicroBatchConfig,
    PackedModel,
    Priority,
    PriorityPolicy,
)


def frozen_image(width: int = 8, rng: int = 0):
    """A small frozen ST-Hybrid image (weights random, arithmetic real)."""
    model = STHybridNet(HybridConfig(width=width), rng=rng)
    freeze_all(model)
    model.eval()
    return build_image(model)


@pytest.fixture(scope="module")
def images():
    """Three distinct model images keyed by name."""
    return {name: frozen_image(8, rng=i) for i, name in enumerate(["a", "b", "c"])}


@pytest.fixture(scope="module")
def cluster(images):
    """A running two-worker cluster serving models ``a`` and ``b``."""
    router = ClusterRouter(workers=2, config=MicroBatchConfig(max_batch_size=8))
    router.register("a", images["a"])
    router.register("b", images["b"])
    with router:
        yield router


@pytest.fixture(scope="module")
def requests_batch():
    """A deterministic batch of MFCC-shaped inputs."""
    rng = np.random.default_rng(42)
    return [rng.standard_normal((49, 10)).astype(np.float32) for _ in range(6)]


def wait_until(predicate, timeout_s: float = 15.0, interval_s: float = 0.05) -> bool:
    """Poll ``predicate`` until true or ``timeout_s`` elapses."""
    limit = time.monotonic() + timeout_s
    while time.monotonic() < limit:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


class TestPriorityPolicy:
    def test_limits_are_ordered(self):
        policy = PriorityPolicy(max_pending=100, normal_watermark=0.8, low_watermark=0.5)
        assert policy.admit_limit(Priority.HIGH) == 100
        assert policy.admit_limit(Priority.NORMAL) == 80
        assert policy.admit_limit(Priority.LOW) == 50
        assert policy.admits(Priority.LOW, 49)
        assert not policy.admits(Priority.LOW, 50)
        assert policy.admits(Priority.HIGH, 99)

    def test_burst_admission_is_all_or_nothing(self):
        policy = PriorityPolicy(max_pending=100, normal_watermark=0.8, low_watermark=0.5)
        assert policy.admits(Priority.LOW, 0, n=50)
        assert not policy.admits(Priority.LOW, 0, n=51)
        assert policy.admits(Priority.HIGH, 90, n=10)
        assert not policy.admits(Priority.HIGH, 90, n=11)
        # n=1 reproduces the single-request rule exactly
        assert policy.admits(Priority.LOW, 49) and not policy.admits(Priority.LOW, 50)

    def test_every_class_admitted_when_idle(self):
        policy = PriorityPolicy(max_pending=1, low_watermark=0.01, normal_watermark=0.01)
        for priority in Priority:
            assert policy.admits(priority, 0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            PriorityPolicy(max_pending=0)
        with pytest.raises(ConfigError):
            PriorityPolicy(low_watermark=0.9, normal_watermark=0.5)
        with pytest.raises(ConfigError):
            PriorityPolicy(low_watermark=0.0)
        with pytest.raises(ConfigError):
            PriorityPolicy(normal_watermark=1.5)

    def test_priority_sorts_high_first(self):
        assert sorted([Priority.LOW, Priority.HIGH, Priority.NORMAL]) == [
            Priority.HIGH,
            Priority.NORMAL,
            Priority.LOW,
        ]


class TestRouting:
    def test_predictions_bitwise_identical_to_packed_model(
        self, cluster, images, requests_batch
    ):
        for name in ("a", "b"):
            got = np.stack([cluster.predict(x, model=name) for x in requests_batch])
            want = PackedModel(images[name])(np.stack(requests_batch))
            np.testing.assert_array_equal(got, want)

    def test_sticky_placement_spreads_models(self, cluster, requests_batch):
        for x in requests_batch:
            cluster.predict(x, model="a")
            cluster.predict(x, model="b")
        placements = cluster.placements()
        # one decoded plan per model version, spread over both workers,
        # stable over traffic; sticky placement keeps one replica per key
        assert sorted(placements) == ["a@v1", "b@v1"]
        assert {wid for workers in placements.values() for wid in workers} == {0, 1}
        assert all(len(workers) == 1 for workers in placements.values())
        assert cluster.placements() == placements

    def test_unknown_model_raises(self, cluster, requests_batch):
        with pytest.raises(RoutingError, match="unknown model"):
            cluster.predict(requests_batch[0], model="nope")

    def test_ambiguous_default_model_raises(self, cluster, requests_batch):
        with pytest.raises(RoutingError, match="model name required"):
            cluster.predict(requests_batch[0])

    def test_submit_before_start_raises(self, images, requests_batch):
        router = ClusterRouter(workers=1)
        router.register("a", images["a"])
        with pytest.raises(RoutingError, match="not started"):
            router.submit(requests_batch[0], model="a")

    def test_stats_rollup(self, cluster):
        stats = cluster.snapshot()
        assert stats.served >= 1
        assert stats.pending == 0
        assert stats.resident_bytes == sum(w.resident_bytes for w in stats.workers)
        assert {m for w in stats.workers for m in w.models} == {"a@v1", "b@v1"}
        assert stats.current_versions == {"a": "v1", "b": "v1"}
        # per-replica and per-version rollups cover the placed keys
        assert set(stats.replicas) == {"a@v1", "b@v1"}
        for key, replica_stats in stats.replicas.items():
            assert sum(r.dispatched for r in replica_stats) >= 1
        assert stats.latency_by_version["a@v1"].count >= 1

    def test_worker_health_report(self, cluster):
        health = cluster.pool.health()
        assert set(health) == {0, 1}
        for wid, report in health.items():
            assert report["alive"], f"worker {wid} failed its health probe"
            assert report["restarts"] == 0
        # the workers' own resident accounting matches the router's
        reported = sum(h["resident_bytes"] for h in health.values())
        assert reported == cluster.snapshot().resident_bytes


class TestByteBudget:
    @pytest.fixture(scope="class")
    def budget_cluster(self, images):
        """One worker, budget sized so two plans fit and three never do."""
        sizes = {n: PackedModel(img).decoded_bytes() for n, img in images.items()}
        ranked = sorted(sizes.values())
        router = ClusterRouter(workers=1, capacity_bytes=ranked[-1] + ranked[-2])
        for name, image in images.items():
            router.register(name, image)
        with router:
            yield router

    def test_lru_eviction_keeps_budget(self, budget_cluster, requests_batch):
        x = requests_batch[0]
        budget_cluster.predict(x, model="a")
        budget_cluster.predict(x, model="b")
        assert sorted(budget_cluster.placements()) == ["a@v1", "b@v1"]
        budget_cluster.predict(x, model="c")  # evicts "a", the LRU placement
        placements = budget_cluster.placements()
        assert sorted(placements) == ["b@v1", "c@v1"]
        stats = budget_cluster.snapshot()
        assert stats.evictions >= 1
        assert stats.resident_bytes <= budget_cluster.capacity_bytes

    def test_evicted_model_still_serves_bitwise(
        self, budget_cluster, images, requests_batch
    ):
        x = requests_batch[1]
        got = budget_cluster.predict(x, model="a")  # re-places and re-decodes
        np.testing.assert_array_equal(got, PackedModel(images["a"])(x[None])[0])
        assert budget_cluster.snapshot().resident_bytes <= budget_cluster.capacity_bytes

    def test_oversized_model_rejected_at_register(self, images):
        router = ClusterRouter(workers=1, capacity_bytes=1)
        with pytest.raises(ConfigError, match="budget"):
            router.register("big", images["a"])

    def test_capacity_validation(self):
        with pytest.raises(ConfigError):
            ClusterRouter(workers=1, capacity_bytes=0)
        with pytest.raises(ConfigError):
            ClusterRouter(workers=0)


class TestPriorityAdmission:
    @pytest.fixture(scope="class")
    def tiny_cluster(self, images):
        """One worker, a 4-slot admission budget: LOW limit 1, NORMAL 2, HIGH 4."""
        router = ClusterRouter(
            workers=1,
            policy=PriorityPolicy(max_pending=4, normal_watermark=0.5, low_watermark=0.25),
        )
        router.register("a", images["a"])
        with router:
            # make sure the worker is up and the model placed before stalling it
            router.predict(np.zeros((49, 10), dtype=np.float32), model="a")
            yield router

    def test_low_sheds_first_high_never_starves(self, tiny_cluster, requests_batch):
        """Deterministic watermark walk with the worker stalled: occupancy
        rises 1→4 while LOW, then NORMAL, then HIGH hit their limits."""
        cluster = tiny_cluster
        cluster.pool.inject_sleep(0, 0.5)  # stall so admitted requests stay pending
        before = cluster.snapshot()
        admitted = [cluster.submit(requests_batch[0], priority=Priority.LOW)]
        with pytest.raises(AdmissionError, match="LOW"):
            cluster.submit(requests_batch[0], priority=Priority.LOW)
        admitted.append(cluster.submit(requests_batch[1], priority=Priority.NORMAL))
        with pytest.raises(AdmissionError, match="NORMAL"):
            cluster.submit(requests_batch[1], priority=Priority.NORMAL)
        admitted.append(cluster.submit(requests_batch[2], priority=Priority.HIGH))
        admitted.append(cluster.submit(requests_batch[3], priority=Priority.HIGH))
        with pytest.raises(AdmissionError, match="HIGH"):
            cluster.submit(requests_batch[4], priority=Priority.HIGH)
        # every admitted request is served once the stall ends: no deadline
        # was attached, so shedding is the *only* way load was controlled
        for future in admitted:
            assert future.result(timeout=15.0).shape == (12,)
        stats = cluster.snapshot()
        shed = {
            p: stats.shed_by_priority[p] - before.shed_by_priority[p] for p in Priority
        }
        assert shed == {Priority.LOW: 1, Priority.NORMAL: 1, Priority.HIGH: 1}
        assert stats.deadline_misses == before.deadline_misses
        assert stats.pending == 0

    def test_single_model_needs_no_name(self, tiny_cluster, requests_batch):
        result = tiny_cluster.predict(requests_batch[0])
        assert result.shape == (12,)


class TestCrashRecovery:
    @pytest.fixture(scope="class")
    def crash_cluster(self, images):
        """A one-worker cluster we are allowed to hurt."""
        router = ClusterRouter(workers=1)
        router.register("a", images["a"])
        with router:
            yield router

    def test_inflight_fails_then_restart_serves(
        self, crash_cluster, images, requests_batch
    ):
        cluster = crash_cluster
        cluster.predict(requests_batch[0], model="a")  # place + decode
        # stall the worker so the crash command and the predicts queue behind
        # it in pipe order: the worker dies *before* reading the predicts
        cluster.pool.inject_sleep(0, 0.3)
        cluster.pool.inject_crash(0)
        doomed = [cluster.submit(x, model="a") for x in requests_batch[:3]]
        for future in doomed:
            with pytest.raises(WorkerCrashed):
                future.result(timeout=15.0)
        assert wait_until(lambda: cluster.snapshot().crashes == 1)
        # transparent restart-and-redecode: the same model serves again,
        # bitwise identical, without any re-registration
        got = cluster.predict(requests_batch[0], model="a")
        np.testing.assert_array_equal(
            got, PackedModel(images["a"])(requests_batch[0][None])[0]
        )
        stats = cluster.snapshot()
        assert stats.crashes == 1
        assert stats.workers[0].restarts == 1
        assert stats.workers[0].alive
        assert cluster.pool.health()[0]["alive"]

    def test_immediate_resubmit_after_crash_is_served(
        self, crash_cluster, images, requests_batch
    ):
        """The errors.WorkerCrashed contract: resubmitting is enough.  The
        replacement worker's load replay enters the pipe before its handle is
        published, so a resubmit may race the restart (seeing WorkerCrashed
        again) but can never be bounced with RoutingError."""
        cluster = crash_cluster
        cluster.predict(requests_batch[0], model="a")
        cluster.pool.inject_sleep(0, 0.2)
        cluster.pool.inject_crash(0)
        with pytest.raises(WorkerCrashed):
            cluster.submit(requests_batch[0], model="a").result(timeout=15.0)
        deadline = time.monotonic() + 15.0
        while True:  # retry loop a real client would run
            try:
                got = cluster.predict(requests_batch[0], model="a")
                break
            except WorkerCrashed:
                assert time.monotonic() < deadline, "restart never came up"
                time.sleep(0.01)
        np.testing.assert_array_equal(
            got, PackedModel(images["a"])(requests_batch[0][None])[0]
        )

    def test_stop_is_idempotent_and_restartable(self, crash_cluster, requests_batch):
        cluster = crash_cluster
        cluster.stop()
        cluster.stop()  # double stop is a no-op
        assert not cluster.pool.running
        with pytest.raises(RoutingError):
            cluster.submit(requests_batch[0], model="a")
        cluster.start()
        cluster.start()  # double start is a no-op
        result = cluster.predict(requests_batch[0], model="a")  # re-places lazily
        assert result.shape == (12,)


class TestClusterFrontend:
    def test_async_predict_routes_by_model(self, cluster, images, requests_batch):
        frontend = AsyncServingFrontend(cluster, default_deadline_s=30.0)

        async def run():
            high = [
                frontend.predict(x, model="a", priority=Priority.HIGH)
                for x in requests_batch
            ]
            low = [
                frontend.predict(x, model="b", priority=Priority.LOW)
                for x in requests_batch
            ]
            return await asyncio.gather(*high, *low)

        results = asyncio.run(run())
        stacked = np.stack(requests_batch)
        np.testing.assert_array_equal(
            np.stack(results[: len(requests_batch)]), PackedModel(images["a"])(stacked)
        )
        np.testing.assert_array_equal(
            np.stack(results[len(requests_batch) :]), PackedModel(images["b"])(stacked)
        )

    def test_unknown_model_raises_through_await(self, cluster, requests_batch):
        frontend = AsyncServingFrontend(cluster)

        async def run():
            await frontend.predict(requests_batch[0], model="nope")

        with pytest.raises(RoutingError):
            asyncio.run(run())

    def test_cluster_frontend_config_validation(self, cluster):
        with pytest.raises(ConfigError):
            AsyncServingFrontend(cluster, max_pending=8)
        with pytest.raises(ConfigError):
            AsyncServingFrontend(cluster, config=MicroBatchConfig())

    def test_engine_frontend_rejects_cluster_kwargs(self, requests_batch):
        frontend = AsyncServingFrontend(lambda b: b.reshape(len(b), -1)[:, :1])

        async def run(**kwargs):
            await frontend.predict(requests_batch[0], **kwargs)

        with pytest.raises(ConfigError):
            asyncio.run(run(model="a"))
        with pytest.raises(ConfigError):
            asyncio.run(run(priority=Priority.HIGH))

    def test_frontend_stats_and_snapshot_are_cluster_stats(self, cluster):
        frontend = AsyncServingFrontend(cluster)
        assert frontend.stats.served >= 1
        assert frontend.snapshot().served >= 1
        assert frontend.pending == cluster.pending


class TestStreamingThroughCluster:
    def test_cluster_path_matches_direct_path(self, cluster, images):
        wave, _ = make_stream(["yes"], rng=4)
        frontend = AsyncServingFrontend(cluster)
        routed = StreamingDetector(
            frontend=frontend, model_name="a", priority=Priority.LOW
        )
        direct = StreamingDetector(PackedModel(images["a"]))
        t_direct, p_direct = direct.posteriors(wave)
        t_routed, p_routed = routed.posteriors(wave)
        np.testing.assert_array_equal(t_direct, t_routed)
        np.testing.assert_array_equal(p_direct, p_routed)

    def test_model_name_requires_cluster_frontend(self, images):
        engine_frontend = AsyncServingFrontend(PackedModel(images["a"]))
        with pytest.raises(ConfigError, match="cluster"):
            StreamingDetector(frontend=engine_frontend, model_name="a")
        with pytest.raises(ConfigError, match="cluster"):
            StreamingDetector(
                frontend=engine_frontend, priority=Priority.LOW
            )
