"""Bonsai tree: structure, path semantics, annealing, sparsity."""

from __future__ import annotations

import numpy as np
import pytest

from conftest import make_tensor
from repro.core.bonsai import (
    BonsaiAnnealingSchedule,
    BonsaiIHTCallback,
    BonsaiTree,
    hard_threshold,
    tree_num_internal,
    tree_num_nodes,
)
from repro.core.strassen import StrassenLinear
from repro.errors import ConfigError


class TestStructure:
    @pytest.mark.parametrize("depth,nodes,internal", [(1, 3, 1), (2, 7, 3), (4, 31, 15)])
    def test_node_counts(self, depth, nodes, internal):
        assert tree_num_nodes(depth) == nodes
        assert tree_num_internal(depth) == internal
        tree = BonsaiTree(input_dim=8, num_labels=3, depth=depth, rng=0)
        assert tree.num_nodes == nodes
        assert tree.num_internal == internal

    def test_invalid_depth(self):
        with pytest.raises(ConfigError):
            BonsaiTree(input_dim=4, num_labels=2, depth=0)

    def test_projection_optional(self, rng):
        with_proj = BonsaiTree(input_dim=20, num_labels=3, depth=2, projection_dim=5, rng=0)
        assert with_proj.projection.shape == (5, 20)
        without = BonsaiTree(input_dim=20, num_labels=3, depth=2, rng=0)
        assert without.projection is None

    def test_parameter_count_matches_formula(self):
        d_hat, d, l, depth = 6, 20, 4, 2
        tree = BonsaiTree(input_dim=d, num_labels=l, depth=depth, projection_dim=d_hat, rng=0)
        nodes, internal = tree_num_nodes(depth), tree_num_internal(depth)
        expected = d_hat * d + nodes * 2 * d_hat * l + internal * d_hat
        assert tree.num_parameters() == expected


class TestPathSemantics:
    def test_soft_weights_sum_to_one_per_level(self, rng):
        tree = BonsaiTree(input_dim=8, num_labels=3, depth=2, rng=0)
        tree.train()
        z = make_tensor((5, 8), rng, requires_grad=False)
        weights = tree.path_weights(z)
        leaf_sum = sum(w.data for w in weights[tree.num_internal :])
        np.testing.assert_allclose(leaf_sum, 1.0, rtol=1e-5)  # leaves partition mass
        level1 = weights[1].data + weights[2].data
        np.testing.assert_allclose(level1, 1.0, rtol=1e-5)

    def test_hard_weights_select_single_path(self, rng):
        tree = BonsaiTree(input_dim=8, num_labels=3, depth=2, rng=0)
        tree.eval()
        z = make_tensor((6, 8), rng, requires_grad=False)
        weights = tree.path_weights(z)
        stacked = np.concatenate([w.data for w in weights], axis=1)
        assert set(np.unique(stacked)).issubset({0.0, 1.0})
        # exactly depth+1 nodes active per sample (root + one per level)
        np.testing.assert_array_equal(stacked.sum(axis=1), 3.0)

    def test_traversed_paths_valid_leaves(self, rng):
        tree = BonsaiTree(input_dim=8, num_labels=3, depth=2, rng=0)
        z = make_tensor((10, 8), rng, requires_grad=False)
        leaves = tree.traversed_paths(z)
        assert leaves.shape == (10,)
        assert ((leaves >= 0) & (leaves < 4)).all()

    def test_sharpness_approaches_hard_routing(self, rng):
        tree = BonsaiTree(input_dim=8, num_labels=3, depth=2, rng=0)
        z = make_tensor((4, 8), rng, requires_grad=False)
        tree.train()
        tree.branch_sharpness = 1000.0
        soft = tree(z).data
        tree.eval()
        hard = tree(z).data
        np.testing.assert_allclose(soft, hard, rtol=1e-3, atol=1e-4)

    def test_forward_shape_and_gradients(self, rng):
        tree = BonsaiTree(input_dim=12, num_labels=5, depth=2, projection_dim=6, rng=0)
        x = make_tensor((4, 12), rng)
        out = tree(x)
        assert out.shape == (4, 5)
        out.sum().backward()
        assert tree.projection.grad is not None
        assert tree.w0.weight.grad is not None
        assert tree.theta0.weight.grad is not None

    def test_flattens_3d_input(self, rng):
        tree = BonsaiTree(input_dim=20, num_labels=3, depth=1, projection_dim=4, rng=0)
        x = make_tensor((2, 4, 5), rng, requires_grad=False)
        assert tree(x).shape == (2, 3)


class TestFactories:
    def test_strassen_node_factory(self, rng):
        tree = BonsaiTree(
            input_dim=8,
            num_labels=3,
            depth=1,
            linear_factory=lambda din, dout: StrassenLinear(din, dout, r=3, bias=False, rng=0),
            rng=0,
        )
        x = make_tensor((2, 8), rng, requires_grad=False)
        assert tree(x).shape == (2, 3)
        assert isinstance(tree.w0, StrassenLinear)
        assert isinstance(tree.theta0, StrassenLinear)


class TestAnnealing:
    def test_schedule_geometric_ramp(self):
        sched = BonsaiAnnealingSchedule(start=1.0, end=16.0, total_epochs=5)
        assert sched._sharpness(0) == pytest.approx(1.0)
        assert sched._sharpness(4) == pytest.approx(16.0)
        mid = sched._sharpness(2)
        assert 1.0 < mid < 16.0
        assert sched._sharpness(9) == pytest.approx(16.0)  # clamped

    def test_schedule_applies_to_trees(self, rng):
        from repro.training import TrainConfig, Trainer

        tree = BonsaiTree(input_dim=4, num_labels=2, depth=1, rng=0)
        trainer = Trainer(tree, TrainConfig(epochs=3, batch_size=8, lr_drop_every=None),
                          callbacks=[BonsaiAnnealingSchedule(1.0, 9.0, 3)])
        x = rng.standard_normal((16, 4)).astype(np.float32)
        y = (x[:, 0] > 0).astype(np.int64)
        trainer.fit(x, y)
        assert tree.branch_sharpness == pytest.approx(9.0)


class TestSparsity:
    def test_hard_threshold_keeps_top_fraction(self, rng):
        values = rng.standard_normal(100)
        out = hard_threshold(values, 0.25)
        assert np.count_nonzero(out) <= 26
        kept = np.abs(out[out != 0])
        dropped = np.abs(values[out == 0])
        assert kept.min() >= dropped.max() - 1e-12

    def test_hard_threshold_validation(self):
        with pytest.raises(ValueError):
            hard_threshold(np.ones(4), 0.0)

    def test_iht_callback_sparsifies(self, rng):
        from repro.training import TrainConfig, Trainer

        tree = BonsaiTree(input_dim=10, num_labels=2, depth=1, projection_dim=4, rng=0)
        callback = BonsaiIHTCallback(keep_fractions={"projection": 0.3, "w": 0.5}, warmup_steps=0)
        trainer = Trainer(tree, TrainConfig(epochs=2, batch_size=8, lr_drop_every=None),
                          callbacks=[callback])
        x = rng.standard_normal((32, 10)).astype(np.float32)
        y = (x[:, 0] > 0).astype(np.int64)
        trainer.fit(x, y)
        z_sparsity = float(np.mean(tree.projection.data == 0))
        assert z_sparsity >= 0.6  # kept 30 %
