"""Utilities: rng, registry, serialization, logging, errors."""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.errors import ConfigError, ReproError, ShapeError
from repro.utils import Registry, get_logger, load_state_dict, new_rng, save_state_dict, spawn_rng
from repro.utils.logging import enable_console_logging
from repro.utils.rng import temp_seed


class TestRng:
    def test_new_rng_from_int_is_deterministic(self):
        assert new_rng(42).random() == new_rng(42).random()

    def test_new_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert new_rng(gen) is gen

    def test_spawn_independent_streams(self):
        children = spawn_rng(new_rng(0), 3)
        values = [c.random() for c in children]
        assert len(set(values)) == 3

    def test_temp_seed_restores_state(self):
        np.random.seed(1)
        before = np.random.get_state()[1][:5].copy()
        with temp_seed(99):
            np.random.random()
        np.testing.assert_array_equal(np.random.get_state()[1][:5], before)


class TestRegistry:
    def test_register_get_and_names(self):
        reg = Registry("thing")

        @reg.register("a")
        def make_a():
            return "A"

        assert reg.get("a")() == "A"
        assert "a" in reg and reg.names() == ["a"]
        assert len(reg) == 1

    def test_duplicate_rejected(self):
        reg = Registry("thing")
        reg.register("x")(lambda: 1)
        with pytest.raises(ConfigError):
            reg.register("x")(lambda: 2)

    def test_unknown_mentions_known(self):
        reg = Registry("thing")
        reg.register("alpha")(lambda: 1)
        with pytest.raises(ConfigError, match="alpha"):
            reg.get("beta")


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        state = {"a.b": np.arange(6).reshape(2, 3).astype(np.float32), "c": np.ones(4)}
        path = tmp_path / "model.npz"
        save_state_dict(path, state)
        loaded = load_state_dict(path)
        assert set(loaded) == set(state)
        for key in state:
            np.testing.assert_array_equal(loaded[key], state[key])

    def test_model_roundtrip(self, tmp_path):
        from repro import nn

        model = nn.Linear(4, 3, rng=0)
        path = tmp_path / "lin.npz"
        save_state_dict(path, model.state_dict())
        model2 = nn.Linear(4, 3, rng=1)
        model2.load_state_dict(load_state_dict(path))
        np.testing.assert_array_equal(model.weight.data, model2.weight.data)


class TestLogging:
    def test_namespacing(self):
        assert get_logger("training").name == "repro.training"
        assert get_logger("repro.x").name == "repro.x"
        assert get_logger().name == "repro"

    def test_console_logging_idempotent(self):
        enable_console_logging(logging.INFO)
        handlers_before = len(logging.getLogger("repro").handlers)
        enable_console_logging(logging.INFO)
        assert len(logging.getLogger("repro").handlers) == handlers_before


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(ShapeError, ReproError)
        assert issubclass(ShapeError, ValueError)
        assert issubclass(ConfigError, ReproError)
