"""The perf-trajectory merger turns BENCH_*.json artifacts into markdown."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOL = REPO_ROOT / "benchmarks" / "plot_trajectory.py"


def run_tool(*args: str, cwd: Path) -> subprocess.CompletedProcess:
    """Invoke plot_trajectory.py exactly as the CI step does."""
    return subprocess.run(
        [sys.executable, str(TOOL), *args],
        cwd=cwd,
        capture_output=True,
        text=True,
        timeout=60,
    )


def write_artifact(path: Path, bench: str, **metrics) -> None:
    """One fake bench artifact in the shared BENCH_<name>.json envelope."""
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = {"bench": bench, "schema": 1, "unix_time": 1700000000.0, **metrics}
    path.write_text(json.dumps(doc), encoding="utf-8")


class TestPlotTrajectory:
    def test_merges_artifacts_across_directories(self, tmp_path):
        # layout mirrors a multi-artifact CI download: one subdir per matrix entry
        write_artifact(
            tmp_path / "py310" / "BENCH_replication.json",
            "replication",
            speedup=2.4,
            floor=2.0,
            config={"workers": 4},
        )
        write_artifact(
            tmp_path / "py311" / "BENCH_shm.json", "shm", speedup=3.1, floor=2.0
        )
        result = run_tool("--dir", str(tmp_path), cwd=tmp_path)
        assert result.returncode == 0, result.stderr
        report = (tmp_path / "BENCH_TRAJECTORY.md").read_text(encoding="utf-8")
        assert "# Bench trajectory" in report
        assert "replication" in report and "shm" in report
        assert "py310" in report and "py311" in report  # sources survive the merge
        assert "speedup=2.4" in report and "speedup=3.1" in report
        assert "config.workers" in report  # nested config flattens into details

    def test_defaults_scan_cwd(self, tmp_path):
        write_artifact(tmp_path / "BENCH_kernels.json", "kernels", gflops=1.5)
        result = run_tool(cwd=tmp_path)
        assert result.returncode == 0, result.stderr
        report = (tmp_path / "BENCH_TRAJECTORY.md").read_text(encoding="utf-8")
        assert "kernels" in report and "gflops" in report

    def test_empty_scan_still_writes_report(self, tmp_path):
        result = run_tool("--out", "merged.md", cwd=tmp_path)
        assert result.returncode == 0, result.stderr
        report = (tmp_path / "merged.md").read_text(encoding="utf-8")
        assert "No artifacts found" in report

    def test_unreadable_artifact_is_reported_not_fatal(self, tmp_path):
        (tmp_path / "BENCH_broken.json").write_text("{not json", encoding="utf-8")
        write_artifact(tmp_path / "BENCH_ok.json", "ok", speedup=1.0)
        result = run_tool(cwd=tmp_path)
        assert result.returncode == 0, result.stderr
        report = (tmp_path / "BENCH_TRAJECTORY.md").read_text(encoding="utf-8")
        assert "unreadable" in report and "speedup=1.0" in report
        # every summary row must have as many cells as the 4-column header
        rows = [line for line in report.splitlines() if line.startswith("|")]
        header_cells = rows[0].count("|")
        unreadable_row = next(line for line in rows if "unreadable" in line)
        assert unreadable_row.count("|") == header_cells

    def test_missing_directory_errors(self, tmp_path):
        result = run_tool("--dir", "nope", cwd=tmp_path)
        assert result.returncode != 0

    def test_snapshot_archives_and_reports_prior_runs(self, tmp_path):
        hist = tmp_path / "history"
        write_artifact(tmp_path / "BENCH_cluster.json", "cluster", speedup=2.0)
        result = run_tool("--history", str(hist), "--snapshot", "run1", cwd=tmp_path)
        assert result.returncode == 0, result.stderr
        assert (hist / "run1" / "BENCH_cluster.json").is_file()
        # a later, faster run renders next to the archived number
        write_artifact(tmp_path / "BENCH_cluster.json", "cluster", speedup=2.5)
        result = run_tool("--history", str(hist), cwd=tmp_path)
        assert result.returncode == 0, result.stderr
        report = (tmp_path / "BENCH_TRAJECTORY.md").read_text(encoding="utf-8")
        assert "## Prior runs" in report
        assert "run1" in report and "speedup=2.0" in report  # the archive
        assert "speedup=2.5" in report  # the current scan

    def test_archive_is_excluded_from_the_current_scan(self, tmp_path):
        # history lives under CWD: its artifacts must not double-count
        hist = tmp_path / "history"
        write_artifact(hist / "old" / "BENCH_kernels.json", "kernels", speedup=1.0)
        write_artifact(tmp_path / "BENCH_kernels.json", "kernels", speedup=2.0)
        result = run_tool("--history", str(hist), cwd=tmp_path)
        assert result.returncode == 0, result.stderr
        report = (tmp_path / "BENCH_TRAJECTORY.md").read_text(encoding="utf-8")
        assert report.count("speedup=1.0") == 1  # prior-runs section only
        assert "merged 1 artifact" in result.stdout

    def test_snapshot_without_artifacts_errors(self, tmp_path):
        result = run_tool(
            "--history", str(tmp_path / "h"), "--snapshot", "x", cwd=tmp_path
        )
        assert result.returncode != 0
