"""Resilience layer: retries, breakers, restart backoff, hedging, brownout.

Policy objects are tested exhaustively in-process (fake clocks, fake
routers, hypothesis over the seeded backoff schedule); a small set of
live-cluster tests then proves the wiring — a retried request is served
exactly once and bitwise-identical to a fault-free run, a crash-looping
worker is held by the restart backoff, and ``stop()`` is never delayed by
a pending backoff timer.  Worker processes cost ~1 s to spawn, so live
clusters are shared per class where the scenario allows.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hybrid import HybridConfig, STHybridNet
from repro.core.strassen import freeze_all
from repro.deploy import build_image
from repro.errors import AdmissionError, ConfigError, TransportError, WorkerCrashed
from repro.serving import (
    BreakerBoard,
    BreakerPolicy,
    BrownoutController,
    BrownoutPolicy,
    CircuitBreaker,
    ClusterRouter,
    ControlLoop,
    HedgePolicy,
    Priority,
    RestartBackoffPolicy,
    RetryBudget,
    RetryPolicy,
)
from repro.serving.telemetry import to_prometheus


def frozen_image(width: int = 8, rng: int = 0):
    """A small frozen ST-Hybrid image (weights random, arithmetic real)."""
    model = STHybridNet(HybridConfig(width=width), rng=rng)
    freeze_all(model)
    model.eval()
    return build_image(model)


def wait_until(predicate, timeout_s: float = 20.0, interval_s: float = 0.05) -> bool:
    """Poll ``predicate`` until true or ``timeout_s`` elapses."""
    limit = time.monotonic() + timeout_s
    while time.monotonic() < limit:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


class FakeClock:
    """A manually advanced monotonic clock for breaker state walks."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


# --------------------------------------------------------------------------- #
# retry policy + budget
# --------------------------------------------------------------------------- #


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(base_backoff_s=-0.1)
        with pytest.raises(ConfigError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(base_backoff_s=0.5, max_backoff_s=0.1)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ConfigError):
            RetryPolicy(seed=-1)
        with pytest.raises(ConfigError):
            RetryPolicy(budget_fraction=-0.1)
        with pytest.raises(ConfigError):
            RetryPolicy(budget_burst=-1)

    def test_retryable_classification(self):
        assert RetryPolicy.retryable(WorkerCrashed("boom"))
        assert RetryPolicy.retryable(TransportError("pipe"))
        assert not RetryPolicy.retryable(AdmissionError("shed"))
        assert not RetryPolicy.retryable(ValueError("nope"))

    def test_backoff_without_jitter_is_exact_capped_exponential(self):
        policy = RetryPolicy(
            max_attempts=6, base_backoff_s=0.01, multiplier=2.0,
            max_backoff_s=0.05, jitter=0.0,
        )
        assert policy.schedule(token=7) == (0.01, 0.02, 0.04, 0.05, 0.05)

    def test_attempt_is_one_based(self):
        with pytest.raises(ConfigError):
            RetryPolicy().backoff_s(0, 0)

    @given(seed=st.integers(0, 2**31 - 1), token=st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_seeded_schedule_is_reproducible_and_bounded(self, seed, token):
        """Same (seed, token) ⇒ identical schedule across policy instances;
        every delay stays inside the jittered envelope of its raw backoff."""
        make = lambda: RetryPolicy(
            max_attempts=5, base_backoff_s=0.01, multiplier=2.0,
            max_backoff_s=0.5, jitter=0.3, seed=seed,
        )
        first, second = make().schedule(token), make().schedule(token)
        assert first == second
        for attempt, delay in enumerate(first, start=1):
            raw = min(0.01 * 2.0 ** (attempt - 1), 0.5)
            assert raw * 0.7 <= delay <= raw * 1.3

    def test_distinct_tokens_desynchronise(self):
        policy = RetryPolicy(max_attempts=4, jitter=0.3, seed=0)
        assert policy.schedule(0) != policy.schedule(1)

    def test_make_budget_inherits_parameters(self):
        budget = RetryPolicy(budget_fraction=0.5, budget_burst=3).make_budget()
        snap = budget.snapshot()
        assert snap["fraction"] == 0.5 and snap["burst"] == 3


class TestRetryBudget:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryBudget(fraction=-0.1)
        with pytest.raises(ConfigError):
            RetryBudget(burst=-1)

    def test_burst_then_denial(self):
        budget = RetryBudget(fraction=0.0, burst=2)
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()
        snap = budget.snapshot()
        assert snap["retries"] == 2 and snap["denied"] == 1

    def test_traffic_grows_the_budget(self):
        budget = RetryBudget(fraction=0.5, burst=0)
        assert not budget.try_spend()
        budget.note(4)  # 0.5 * 4 = 2 retries now allowed
        assert budget.try_spend(2)
        assert not budget.try_spend()
        snap = budget.snapshot()
        assert snap["requests"] == 4 and snap["retries"] == 2 and snap["denied"] == 2


# --------------------------------------------------------------------------- #
# circuit breakers
# --------------------------------------------------------------------------- #


class TestCircuitBreaker:
    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ConfigError):
            BreakerPolicy(reset_timeout_s=0.0)

    def test_full_state_walk_with_fake_clock(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=3, reset_timeout_s=1.0), clock=clock
        )
        # closed: failures accumulate, traffic admitted
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.admits()
        # threshold crossed: open, no traffic
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.admits()
        assert breaker.snapshot()["opens"] == 1
        # timeout elapses: half-open, exactly one probe
        clock.advance(1.0)
        assert breaker.state == "half_open" and breaker.admits()
        breaker.note_dispatch()
        assert not breaker.admits()  # probe slot consumed
        # failed probe re-arms the timeout
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.admits()
        # second probe succeeds: closed again, counters reset
        clock.advance(1.0)
        breaker.note_dispatch()
        breaker.record_success()
        snap = breaker.snapshot()
        assert snap["state"] == "closed" and snap["open"] == 0
        assert snap["consecutive_failures"] == 0
        assert breaker.admits()

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=2), clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"


class TestBreakerBoard:
    def test_unknown_worker_admits(self):
        board = BreakerBoard(BreakerPolicy(), clock=FakeClock())
        assert board.admits(42)

    def test_record_opens_and_snapshot_is_keyed_by_worker(self):
        board = BreakerBoard(
            BreakerPolicy(failure_threshold=2, reset_timeout_s=5.0), clock=FakeClock()
        )
        board.record(0, False)
        board.record(0, False)
        board.record(1, True)
        assert not board.admits(0) and board.admits(1)
        snap = board.snapshot()
        assert snap["0"]["state"] == "open" and snap["1"]["state"] == "closed"
        assert board.for_worker(0) is board.for_worker(0)


# --------------------------------------------------------------------------- #
# restart backoff / hedge policy shapes
# --------------------------------------------------------------------------- #


class TestRestartBackoffPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RestartBackoffPolicy(base_s=-1.0)
        with pytest.raises(ConfigError):
            RestartBackoffPolicy(multiplier=0.9)
        with pytest.raises(ConfigError):
            RestartBackoffPolicy(base_s=1.0, max_s=0.5)
        with pytest.raises(ConfigError):
            RestartBackoffPolicy(stable_after_s=-1.0)
        with pytest.raises(ConfigError):
            RestartBackoffPolicy(free_restarts=-1)

    def test_free_restarts_then_capped_exponential(self):
        policy = RestartBackoffPolicy(
            base_s=0.1, multiplier=2.0, max_s=0.5, free_restarts=2
        )
        assert policy.delay_s(1) == 0.0
        assert policy.delay_s(2) == 0.0
        assert policy.delay_s(3) == pytest.approx(0.1)
        assert policy.delay_s(4) == pytest.approx(0.2)
        assert policy.delay_s(5) == pytest.approx(0.4)
        assert policy.delay_s(6) == pytest.approx(0.5)  # capped
        assert policy.delay_s(60) == pytest.approx(0.5)


class TestHedgePolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            HedgePolicy(delay_s=0.0)
        with pytest.raises(ConfigError):
            HedgePolicy(p99_factor=0.0)
        with pytest.raises(ConfigError):
            HedgePolicy(min_delay_s=0.5, max_delay_s=0.1)

    def test_effective_delay_tracks_p99_with_clamps(self):
        policy = HedgePolicy(
            delay_s=0.05, p99_factor=2.0, min_delay_s=0.01, max_delay_s=0.1
        )
        assert policy.effective_delay_s(float("nan")) == 0.05  # no data yet
        assert policy.effective_delay_s(0.02) == pytest.approx(0.04)
        assert policy.effective_delay_s(0.001) == 0.01  # clamped low
        assert policy.effective_delay_s(10.0) == 0.1  # clamped high


# --------------------------------------------------------------------------- #
# brownout controller (fake router: decisions replay from snapshots)
# --------------------------------------------------------------------------- #


class _FakeTelemetry:
    def __init__(self, router) -> None:
        self._router = router

    def snapshot(self):
        return {"cluster": self._router.tree}


class _FakeRouter:
    """Just enough router for a BrownoutController: a telemetry tree,
    the brownout flag, and ``set_brownout``."""

    def __init__(self) -> None:
        self.tree = {}
        self.brownout_active = False
        self.telemetry = _FakeTelemetry(self)

    def set_brownout(self, active: bool) -> None:
        self.brownout_active = bool(active)


def _tree(p99_ms: float, served: int, errors: int) -> dict:
    return {
        "latency_by_priority": {"HIGH": {"p99_ms": p99_ms}},
        "served": served,
        "errors_by_type": {"WorkerCrashed": errors},
    }


class TestBrownout:
    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            BrownoutPolicy(max_p99_ms=0.0)
        with pytest.raises(ConfigError):
            BrownoutPolicy(max_error_rate=0.0)
        with pytest.raises(ConfigError):
            BrownoutPolicy(max_p99_ms=None, max_error_rate=None)
        with pytest.raises(ConfigError):
            BrownoutPolicy(breach_steps=0)
        with pytest.raises(ConfigError):
            BrownoutPolicy(recover_steps=0)

    def test_p99_breach_engages_after_streak_and_recovers(self):
        router = _FakeRouter()
        controller = BrownoutController(
            router,
            BrownoutPolicy(
                max_p99_ms=50.0, max_error_rate=None, breach_steps=2, recover_steps=2
            ),
        )
        router.tree = _tree(p99_ms=120.0, served=10, errors=0)
        status = controller.step()
        assert not status.active and status.breach_streak == 1
        assert not router.brownout_active
        status = controller.step()  # second consecutive breach: engage
        assert status.active and router.brownout_active
        assert status.engaged_total == 1
        assert "p99" in status.reason
        router.tree = _tree(p99_ms=5.0, served=20, errors=0)
        status = controller.step()
        assert status.active and status.recover_streak == 1  # still engaged
        status = controller.step()  # second healthy step: lift
        assert not status.active and not router.brownout_active
        assert controller.snapshot() == status

    def test_error_rate_breach(self):
        router = _FakeRouter()
        controller = BrownoutController(
            router, BrownoutPolicy(max_error_rate=0.5, breach_steps=1)
        )
        router.tree = _tree(p99_ms=1.0, served=10, errors=0)
        assert not controller.step().active  # baseline step, healthy
        router.tree = _tree(p99_ms=1.0, served=10, errors=5)  # 5 new errors, 0 served
        status = controller.step()
        assert status.active and "error rate" in status.reason
        assert status.last_error_rate == pytest.approx(1.0)


# --------------------------------------------------------------------------- #
# live cluster: retries, breakers, hedging, brownout admission, telemetry
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def images():
    return {name: frozen_image(8, rng=i) for i, name in enumerate(["m", "h"])}


@pytest.fixture(scope="module")
def resilient_cluster(images):
    """Two workers, sticky placement, the full resilience stack enabled."""
    router = ClusterRouter(
        2,
        retry=RetryPolicy(max_attempts=4, base_backoff_s=0.2, jitter=0.0),
        breakers=BreakerPolicy(failure_threshold=3, reset_timeout_s=0.5),
        hedge=HedgePolicy(delay_s=0.05),
        restart_backoff=RestartBackoffPolicy(base_s=0.05, stable_after_s=0.5),
    )
    router.register("m", images["m"])
    router.register("h", images["h"], placement="replicated")
    with router:
        yield router


@pytest.fixture(scope="module")
def request_x():
    rng = np.random.default_rng(7)
    return rng.standard_normal((49, 10)).astype(np.float32)


class TestClusterRetries:
    def test_retry_kwargs_rejected_with_prebuilt_pool(self, images):
        from repro.serving import WorkerPool

        pool = WorkerPool(1)
        with pytest.raises(ConfigError):
            ClusterRouter(pool, restart_backoff=RestartBackoffPolicy())

    def test_crashed_requests_retry_once_each_and_stay_bitwise(
        self, resilient_cluster, request_x
    ):
        """Requests dying with their worker are transparently re-dispatched:
        exactly one completion per request, bitwise-identical to fault-free."""
        router = resilient_cluster
        ref = router.predict(request_x, model="m")  # fault-free reference
        (wid,) = router.placements()["m@v1"]  # sticky: one replica
        before = router.snapshot()
        # queue the deaths first: the sleep stalls the worker, the crash
        # control frame queues behind it, and the submits queue behind the
        # crash — so every request dies in-flight and must be retried
        router.pool.inject_sleep(wid, 0.6)
        router.pool.inject_crash(wid)
        time.sleep(0.05)
        futures = [router.submit(request_x, model="m") for _ in range(8)]
        results = [future.result(timeout=30) for future in futures]
        assert all(np.array_equal(ref, out) for out in results)
        after = router.snapshot()
        # exactly-once: each request completes once (the failed attempt is
        # an error, never a completion), so served grows by the 8 requests
        assert after.served - before.served == 8
        assert after.errors_by_type.get("WorkerCrashed", 0) >= 8
        tree = after.resilience.as_tree()
        assert tree["retries_attempted"] >= 8
        assert tree["retries_succeeded"] >= 8
        assert tree["retries_exhausted"] == 0
        assert tree["retry_budget"]["requests"] >= 9

    def test_resilience_tree_flows_through_telemetry_and_prometheus(
        self, resilient_cluster
    ):
        router = resilient_cluster
        tree = router.telemetry.snapshot()
        cluster = tree["cluster"]
        assert "WorkerCrashed" in cluster["errors_by_type"]
        resilience = cluster["resilience"]
        assert resilience["retries_attempted"] >= 8
        assert "retry_budget" in resilience and "breakers" in resilience
        text = to_prometheus(tree)
        assert "cluster_resilience_retries_attempted" in text
        assert "errors_by_type" in text

    def test_frontend_exposes_resilience_stats(self, resilient_cluster):
        from repro.serving import AsyncServingFrontend

        frontend = AsyncServingFrontend(resilient_cluster)
        stats = frontend.resilience()
        assert stats.retries_attempted >= 8

    def test_hedged_high_request_wins_on_the_fast_replica(
        self, resilient_cluster, request_x
    ):
        """With the primary replica lagged past the hedge delay, the hedge
        leg lands on the other replica and wins; one result, no errors."""
        router = resilient_cluster
        ref = router.predict(request_x, model="h")
        try:
            # "h" is replicated on both workers; lag both copies so the
            # hedge timer always beats the primary, whichever replica it is
            for wid in router.placements()["h@v1"]:
                router.pool.inject_lag(wid, "h@v1", 0.3)
            before = router.snapshot().resilience
            future = router.submit(request_x, model="h", priority=Priority.HIGH)
            assert np.array_equal(future.result(timeout=30), ref)
            after = router.snapshot().resilience
            assert after.hedges == before.hedges + 1
        finally:
            for wid in router.placements()["h@v1"]:
                router.pool.inject_lag(wid, "h@v1", 0.0)

    def test_brownout_sheds_low_only(self, resilient_cluster, request_x):
        router = resilient_cluster
        router.set_brownout(True)
        try:
            with pytest.raises(AdmissionError, match="brownout"):
                router.submit(request_x, model="m", priority=Priority.LOW)
            future = router.submit(request_x, model="m", priority=Priority.NORMAL)
            future.result(timeout=30)
            snap = router.snapshot()
            assert snap.resilience.brownout_active
            assert snap.resilience.brownout_sheds >= 1
            assert snap.errors_by_type.get("AdmissionError", 0) >= 1
        finally:
            router.set_brownout(False)
        router.submit(
            request_x, model="m", priority=Priority.LOW
        ).result(timeout=30)
        assert not router.snapshot().resilience.brownout_active

    def test_control_loop_steps_the_brownout_controller(self, resilient_cluster):
        loop = ControlLoop(
            resilient_cluster,
            brownout=BrownoutPolicy(max_error_rate=0.99, breach_steps=10),
        )
        assert isinstance(loop.brownout, BrownoutController)
        loop.step()
        status = loop.snapshot().brownout
        assert status is not None and not status.active


# --------------------------------------------------------------------------- #
# live cluster: restart backoff holds crash loops, never shutdown
# --------------------------------------------------------------------------- #


class TestRestartBackoffLive:
    def test_crash_loop_is_held_by_backoff_then_recovers(self):
        """A model whose re-decode keeps killing replacements settles into
        delayed respawns (bounded re-decode rate) instead of a hot loop,
        and recovers once the poison clears."""
        image = frozen_image()
        router = ClusterRouter(
            1,
            restart_backoff=RestartBackoffPolicy(
                base_s=0.4, multiplier=2.0, max_s=0.8,
                stable_after_s=60.0, free_restarts=1,
            ),
        )
        with router:
            router.register("m", image)
            rng = np.random.default_rng(3)
            x = rng.standard_normal((49, 10)).astype(np.float32)
            ref = router.predict(x, model="m")
            # next three replacements die inside the replayed "m@v1" decode
            router.pool.inject_crash_on_load(0, "m@v1", times=3)
            started = time.monotonic()
            router.pool.inject_crash(0)
            # the loop must pass through a visible backing-off hold
            assert wait_until(
                lambda: router.pool.restart_snapshot()["workers"]
                .get("0", {})
                .get("backing_off", False),
                timeout_s=20.0,
            )
            # crash + 3 poisoned re-decodes = 4 respawns, then stable
            assert wait_until(
                lambda: router.snapshot().workers[0].restarts >= 4
                and router.snapshot().workers[0].alive,
                timeout_s=40.0,
            )
            elapsed = time.monotonic() - started
            # streaks 2..4 owed 0.4 + 0.8 + 0.8 s of enforced delay: the
            # loop cannot have re-decoded faster than the backoff allows
            assert elapsed >= 1.9
            snap = router.pool.restart_snapshot()
            assert snap["enabled"] == 1 and snap["delayed_restarts"] >= 3
            worker = router.snapshot().workers[0]
            assert worker.crash_streak >= 4 and not worker.backing_off
            # recovered: the replacement serves bitwise-identical results
            assert np.array_equal(router.predict(x, model="m"), ref)

    def test_validation_of_crash_on_load_target(self):
        router = ClusterRouter(1)
        with router:
            from repro.errors import RoutingError

            with pytest.raises(RoutingError):
                router.pool.inject_crash_on_load(9, "m@v1")

    def test_stop_is_not_delayed_by_a_pending_backoff(self):
        """A worker parked on a long restart delay must not hold up
        shutdown: stop() cancels the pending timer."""
        image = frozen_image()
        router = ClusterRouter(
            1,
            restart_backoff=RestartBackoffPolicy(
                base_s=8.0, multiplier=1.0, max_s=8.0,
                stable_after_s=60.0, free_restarts=0,
            ),
        )
        router.start()
        try:
            router.register("m", image)
            rng = np.random.default_rng(3)
            x = rng.standard_normal((49, 10)).astype(np.float32)
            router.predict(x, model="m")
            router.pool.inject_crash(0)
            assert wait_until(
                lambda: router.pool.restart_snapshot()["workers"]
                .get("0", {})
                .get("backing_off", False),
                timeout_s=20.0,
            )
        except BaseException:
            router.stop()
            raise
        started = time.monotonic()
        router.stop()
        assert time.monotonic() - started < 4.0
        # the streak survives as history, but no timer is left pending
        worker = router.pool.restart_snapshot()["workers"].get("0", {})
        assert not worker.get("backing_off", False)
