"""Gradual pruning: schedule maths, masks, training integration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.models import DSCNN
from repro.pruning import GradualPruningCallback, PruningMasks, sparsity_report, zhu_gupta_sparsity
from repro.training import TrainConfig, Trainer


class TestSchedule:
    def test_endpoints(self):
        assert zhu_gupta_sparsity(0, 0.9, 10, 110) == 0.0
        assert zhu_gupta_sparsity(10, 0.9, 10, 110) == 0.0
        assert zhu_gupta_sparsity(110, 0.9, 10, 110) == 0.9
        assert zhu_gupta_sparsity(500, 0.9, 10, 110) == 0.9

    @given(
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=1, max_value=199),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounded_and_monotone(self, step, extra):
        begin, end = 10, 10 + extra + 1
        value = zhu_gupta_sparsity(step, 0.75, begin, end)
        assert 0.0 <= value <= 0.75
        later = zhu_gupta_sparsity(step + 1, 0.75, begin, end)
        assert later >= value - 1e-12

    def test_cubic_shape_front_loaded(self):
        # most pruning happens early in the ramp (cubic property)
        halfway = zhu_gupta_sparsity(60, 0.8, 10, 110)
        assert halfway > 0.8 * 0.8  # more than 80% of target at midpoint


class TestMasks:
    def test_targets_exclude_bias_and_bn(self):
        masks = PruningMasks(DSCNN(width=8, rng=0))
        assert all(not n.endswith(("bias", "gamma", "beta")) for n in masks.targets)

    def test_update_and_apply(self):
        model = DSCNN(width=8, rng=0)
        masks = PruningMasks(model)
        masks.update_to_sparsity(0.5)
        masks.apply()
        assert masks.sparsity == pytest.approx(0.5, abs=0.05)
        report = sparsity_report(model)
        pruned_layers = [v for k, v in report.items() if k in masks.targets]
        assert all(0.3 < v < 0.7 for v in pruned_layers)  # per-layer pruning

    def test_zero_sparsity_keeps_everything(self):
        model = DSCNN(width=8, rng=0)
        masks = PruningMasks(model)
        masks.update_to_sparsity(0.0)
        masks.apply()
        assert masks.nonzero_parameters() == masks.total_parameters()

    def test_invalid_sparsity(self):
        masks = PruningMasks(DSCNN(width=8, rng=0))
        with pytest.raises(ValueError):
            masks.update_to_sparsity(1.0)


class TestCallbackIntegration:
    def test_training_reaches_target_sparsity(self, rng):
        x = rng.standard_normal((64, 10)).astype(np.float32)
        y = (x[:, 0] > 0).astype(np.int64)
        model = nn.Sequential(nn.Linear(10, 32, rng=0), nn.ReLU(), nn.Linear(32, 2, rng=1))
        callback = GradualPruningCallback(final_sparsity=0.75, begin_step=0, end_step=12, frequency=2)
        trainer = Trainer(
            model, TrainConfig(epochs=5, batch_size=16, lr_drop_every=None), callbacks=[callback]
        )
        trainer.fit(x, y)
        assert callback.masks is not None
        assert callback.masks.sparsity == pytest.approx(0.75, abs=0.05)
        # pruned weights are actually zero in the model
        report = sparsity_report(model)
        assert max(report.values()) > 0.5

    def test_pruned_weights_stay_dead(self, rng):
        x = rng.standard_normal((32, 16)).astype(np.float32)
        y = (x[:, 0] > 0).astype(np.int64)
        model = nn.Linear(16, 4, rng=0)  # 64 weights: above the prune floor
        callback = GradualPruningCallback(final_sparsity=0.5, begin_step=0, end_step=4, frequency=1)
        trainer = Trainer(
            model, TrainConfig(epochs=4, batch_size=16, lr_drop_every=None), callbacks=[callback]
        )
        trainer.fit(x, y)
        mask = callback.masks.masks["weight"]
        assert (model.weight.data[~mask] == 0).all()
