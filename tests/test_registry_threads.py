"""ModelRegistry under concurrent get()/eviction from many threads.

The registry serves the parent-side catalog of the cluster and the
multi-model path of a single process; both hammer it from several threads.
These tests pin down the two invariants that matter: the decoded-plan byte
budget is *never* exceeded (not even transiently, observed from another
thread), and a cold model decodes exactly once no matter how many threads
miss it simultaneously (single-flight, no double-decode storms).
"""

from __future__ import annotations

import threading
import warnings

import numpy as np
import pytest

from repro.core.hybrid import HybridConfig, STHybridNet
from repro.core.strassen import freeze_all
from repro.deploy import build_image
from repro.serving import ModelRegistry, PackedModel


@pytest.fixture(scope="module")
def images():
    """Four distinct frozen images (plan sizes vary with random sparsity)."""
    out = []
    for i in range(4):
        model = STHybridNet(HybridConfig(width=8), rng=i)
        freeze_all(model)
        model.eval()
        out.append(build_image(model))
    return out


class TestSingleFlightDecode:
    def test_thundering_herd_decodes_once(self, images):
        registry = ModelRegistry(capacity_bytes=10 * PackedModel(images[0]).decoded_bytes())
        registry.register("m", images[0])
        barrier = threading.Barrier(8)
        got = []
        errors = []

        def hammer():
            try:
                barrier.wait()
                got.append(registry.get("m"))
            except Exception as exc:  # surfaced in the main thread below
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # one decode (the miss), everyone else waited and took the hit path
        assert registry.stats.misses == 1
        assert registry.stats.hits == 7
        assert all(model is got[0] for model in got)

    def test_failed_decode_releases_the_single_flight_latch(self, images, monkeypatch):
        """A leader whose decode raises must wake waiters and leave no stale
        in-flight entry — the next get() retries instead of deadlocking."""
        import repro.serving.registry as registry_mod

        registry = ModelRegistry()
        registry.register("m", images[0])
        real = registry_mod.PackedModel
        armed = {"fail": True}

        def flaky(image, cache=True):
            if armed["fail"]:
                armed["fail"] = False
                raise RuntimeError("decode blew up")
            return real(image, cache=cache)

        monkeypatch.setattr(registry_mod, "PackedModel", flaky)
        with pytest.raises(RuntimeError, match="decode blew up"):
            registry.get("m")
        assert not registry._inflight  # the latch was released in finally
        model = registry.get("m")  # a later caller becomes leader and succeeds
        assert isinstance(model, real)
        assert registry.decoded_names() == ["m@v1"]


class TestConcurrentBudget:
    def test_budget_never_exceeded_under_contention(self, images):
        sizes = sorted(PackedModel(img).decoded_bytes() for img in images)
        budget = sizes[-1] + sizes[-2]  # two plans fit, three never do
        registry = ModelRegistry(capacity_bytes=budget)
        for i, image in enumerate(images):
            registry.register(f"m{i}", image)

        x = np.random.default_rng(0).standard_normal((1, 49, 10)).astype(np.float32)
        direct = [PackedModel(img)(x) for img in images]
        barrier = threading.Barrier(8 + 1)
        stop = threading.Event()
        violations = []
        errors = []

        def traffic(seed):
            try:
                barrier.wait()
                order = np.random.default_rng(seed).permutation(4)
                for _ in range(3):
                    for i in order:
                        result = registry.predict(f"m{i}", x)
                        np.testing.assert_array_equal(result, direct[i])
            except Exception as exc:
                errors.append(exc)

        def watcher():
            barrier.wait()
            while not stop.is_set():
                snap = registry.snapshot()
                if snap.resident_bytes > budget or snap.peak_resident_bytes > budget:
                    violations.append(snap)

        threads = [threading.Thread(target=traffic, args=(s,)) for s in range(8)]
        observer = threading.Thread(target=watcher)
        observer.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        observer.join()
        assert not errors
        assert not violations, f"budget exceeded: {violations[0]}"
        snap = registry.snapshot()
        assert snap.resident_bytes == registry.decoded_bytes() <= budget
        assert snap.evictions > 0  # rotation over 4 models really evicted
        # single-flight bounds decodes: every miss is one real decode, and
        # cross-thread storms on the same cold model collapse to one miss
        assert snap.misses + snap.hits == 8 * 3 * 4

    def test_stats_snapshot_is_decoupled(self, images):
        registry = ModelRegistry()
        registry.register("m", images[0])
        snap = registry.snapshot()
        registry.get("m")
        assert snap.misses == 0 and registry.stats.misses == 1


class TestDeprecatedCountCapacity:
    def test_count_capacity_emits_deprecation_warning(self, images):
        with pytest.warns(DeprecationWarning, match="capacity_bytes"):
            registry = ModelRegistry(capacity=1)
        registry.register("a", images[0])
        registry.register("b", images[1])
        registry.get("a")
        registry.get("b")  # count bound: at most one decoded plan stays
        assert registry.decoded_names() == ["b@v1"]

    def test_byte_budget_mode_warns_nothing(self, images):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ModelRegistry(capacity_bytes=1_000_000)
            ModelRegistry()
