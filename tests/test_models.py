"""Model zoo: forward/backward shapes, registry, cost-report sanity."""

from __future__ import annotations

import numpy as np
import pytest

from conftest import make_tensor
from repro.autodiff import Tensor
from repro.core.hybrid import HybridConfig, HybridNet, STHybridNet
from repro.errors import ConfigError
from repro.models import (
    CNN,
    DNN,
    MODELS,
    BonsaiKWS,
    CRNN,
    DSCNN,
    GRUModel,
    STDSCNN,
    basic_lstm,
    build_model,
    projected_lstm,
)

SMALL_KWARGS = {
    "ds-cnn": {"width": 8},
    "st-ds-cnn": {"width": 8},
    "cnn": {"conv1_filters": 4, "conv2_filters": 4, "linear_dim": 4, "dnn_dim": 8},
    "dnn": {"hidden": (16,)},
    "basic-lstm": {"hidden_size": 8},
    "lstm": {"hidden_size": 8, "proj_size": 4},
    "gru": {"hidden_size": 8},
    "crnn": {"conv_filters": 4, "gru_hidden": 8},
    "bonsai": {"projection_dim": 8},
    "hybrid": {"config": HybridConfig(width=8)},
    "st-hybrid": {"config": HybridConfig(width=8)},
}


@pytest.mark.parametrize("name", sorted(SMALL_KWARGS))
def test_every_model_forward_backward(name, rng):
    model = build_model(name, rng=0, **SMALL_KWARGS[name])
    x = make_tensor((2, 49, 10), rng, requires_grad=False)
    out = model(x)
    assert out.shape == (2, 12)
    assert np.isfinite(out.data).all()
    out.sum().backward()
    grads = [p.grad for p in model.parameters() if p.requires_grad]
    assert any(g is not None for g in grads)


def test_registry_lists_all_models():
    assert set(MODELS.names()) == set(SMALL_KWARGS)


def test_registry_unknown_name():
    with pytest.raises(ConfigError):
        build_model("resnet-152")


def test_ds_cnn_feature_hw():
    assert DSCNN().feature_hw == (25, 5)


def test_cost_reports_have_positive_costs():
    for model in (DSCNN(), CNN(), DNN(), basic_lstm(), projected_lstm(), GRUModel(), CRNN(), BonsaiKWS(), HybridNet(), STDSCNN(), STHybridNet()):
        report = model.cost_report()
        assert report.ops.ops > 0
        assert report.model_kb > 0
        assert len(report.activation_bytes) >= 2


def test_rnn_frame_stride_subsamples(rng):
    model = GRUModel(hidden_size=8, frame_stride=2, rng=0)
    assert model.num_steps == 25
    x = make_tensor((1, 49, 10), rng, requires_grad=False)
    assert model(x).shape == (1, 12)


def test_hybrid_config_validation():
    with pytest.raises(ConfigError):
        HybridConfig(num_conv_layers=0)
    with pytest.raises(ConfigError):
        HybridConfig(tree_depth=0)


def test_hybrid_config_derived():
    cfg = HybridConfig(width=64, r_fraction=0.75, num_labels=12)
    assert cfg.conv_r == 48
    assert cfg.tree_r == 12
    assert cfg.num_ds_blocks == 2
    assert cfg.scaled(24).width == 24


def test_hybrid_feature_extractor_shape(rng):
    net = HybridNet(HybridConfig(width=8), rng=0)
    x = make_tensor((3, 49, 10), rng, requires_grad=False)
    feats = net.features(x)
    assert feats.shape == (3, 8)


def test_st_hybrid_uses_strassen_everywhere():
    from repro.core.strassen import strassen_modules

    net = STHybridNet(HybridConfig(width=8), rng=0)
    layers = list(strassen_modules(net))
    # conv1 + 2x(dw+pw) + 7 nodes x 2 matmuls + 3 thetas = 1+4+17 = 22
    assert len(layers) == 22


def test_models_deterministic_given_seed(rng):
    x = Tensor(rng.standard_normal((2, 49, 10)).astype(np.float32))
    a = DSCNN(width=8, rng=7)(x).data
    b = DSCNN(width=8, rng=7)(x).data
    np.testing.assert_array_equal(a, b)
