"""Pluggable kernel backends: bitwise identity, gating, cluster homogeneity.

The contract under test is the one the serving stack leans on everywhere:
every registered backend in :mod:`repro.serving.kernels_fast` produces
**bit-for-bit** the reference kernel's output on the dtypes it supports —
across shapes, sparsities, layouts and gather-chunk boundaries — and a
cluster's ``kernel=`` choice survives worker spawn *and* crash restart.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deploy.packing import pack_ternary
from repro.errors import ConfigError
from repro.serving import kernels
from repro.serving.kernels import (
    TernaryPlanes,
    decode_planes,
    gather_chunk_rows,
    ternary_matmul,
)
from repro.serving.kernels_fast import (
    DEFAULT_BACKEND_NAME,
    FusedBackend,
    FusedPlanes,
    KernelBackend,
    NarrowBackend,
    PopcountBackend,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    resolve_backend,
)


def ternary(rng: np.random.Generator, rows: int, cols: int, density: float) -> np.ndarray:
    """Random {-1, 0, +1} matrix with roughly the requested density."""
    mask = rng.random((rows, cols)) < density
    signs = rng.choice(np.array([-1, 1], dtype=np.int8), size=(rows, cols))
    return (mask * signs).astype(np.int8)


def planes_for(values: np.ndarray) -> TernaryPlanes:
    """Pack + decode a ternary matrix into reference CSR planes."""
    blob, shape = pack_ternary(values)
    return decode_planes(blob, shape)


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"reference", "fused", "narrow", "popcount"} <= set(available_backends())

    def test_unknown_backend_is_config_error(self):
        with pytest.raises(ConfigError, match="unknown kernel backend"):
            get_backend("warp-drive")

    def test_duplicate_registration_needs_replace(self):
        class Dup(FusedBackend):
            name = "fused"

        with pytest.raises(ConfigError, match="already registered"):
            register_backend(Dup())
        register_backend(Dup(), replace=True)  # explicit shadowing allowed
        register_backend(FusedBackend(), replace=True)  # restore

    def test_resolve_precedence(self, monkeypatch):
        assert resolve_backend("narrow").name == "narrow"
        instance = FusedBackend(layout="batch")
        assert resolve_backend(instance) is instance
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        assert default_backend_name() == DEFAULT_BACKEND_NAME
        assert resolve_backend(None).name == DEFAULT_BACKEND_NAME
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "reference")
        assert resolve_backend(None).name == "reference"
        with pytest.raises(ConfigError, match="kernel must be"):
            resolve_backend(3.14)

    def test_bad_fused_layout_is_config_error(self):
        with pytest.raises(ConfigError, match="unknown fused layout"):
            FusedBackend(layout="diagonal")


class TestDecodeValidation:
    def test_scalar_shape_is_config_error(self):
        """Satellite: shape=() must fail loud, not die on prod(())."""
        with pytest.raises(ConfigError, match=r"shape=\(\) has no rows"):
            decode_planes(b"", ())

    def test_negative_dim_is_config_error(self):
        with pytest.raises(ConfigError, match="negative dimension"):
            decode_planes(b"", (4, -1))


class TestEdgeShapes:
    """0-row / 0-col transforms must work identically on every backend."""

    @pytest.mark.parametrize("name", ["reference", "fused", "narrow", "popcount"])
    @pytest.mark.parametrize("rows,cols", [(0, 5), (5, 0), (0, 0)])
    def test_degenerate_planes(self, name, rows, cols):
        planes = planes_for(np.zeros((rows, cols), dtype=np.int8))
        x = np.ones((3, cols), dtype=np.float32)
        want = ternary_matmul(x, planes)
        backend = get_backend(name)
        got = backend.matmul(x, backend.prepare(planes))
        assert got.shape == (3, rows)
        np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("name", ["reference", "fused", "narrow", "popcount"])
    def test_empty_batch(self, name):
        planes = planes_for(ternary(np.random.default_rng(0), 4, 6, 0.5))
        x = np.empty((0, 6), dtype=np.float32)
        backend = get_backend(name)
        got = backend.matmul(x, backend.prepare(planes))
        assert got.shape == (0, 4)
        np.testing.assert_array_equal(got, ternary_matmul(x, planes))

    @pytest.mark.parametrize("name", ["fused", "narrow", "popcount"])
    def test_feature_mismatch_matches_reference_error(self, name):
        planes = planes_for(ternary(np.random.default_rng(0), 4, 6, 0.5))
        backend = get_backend(name)
        prepared = backend.prepare(planes)
        with pytest.raises(ValueError, match="planes expect 6"):
            backend.matmul(np.ones((2, 7), dtype=np.float32), prepared)


class TestScratchBound:
    """Satellite: the chunk bound counts gather slab + reduceat output."""

    def test_gather_chunk_rows_counts_coexisting_scratch(self):
        itemsize = 4
        scratch_cols = 1000
        chunk = gather_chunk_rows(scratch_cols, itemsize)
        assert chunk * scratch_cols * itemsize <= kernels.GATHER_SCRATCH_BYTES
        # regression: a bound that only counted the gathered slab would
        # admit more rows than the budget once the reduce output coexists
        assert gather_chunk_rows(scratch_cols, itemsize) <= (
            kernels.GATHER_SCRATCH_BYTES // (scratch_cols * itemsize)
        )
        assert gather_chunk_rows(10**9, 8) == 1  # never zero rows

    def test_reference_peak_scratch_respects_budget(self, monkeypatch):
        """Peak scratch of `_plane_sums` = gathered + reduceat out <= budget."""
        rng = np.random.default_rng(3)
        planes = planes_for(ternary(rng, 16, 64, 0.8))
        x = rng.standard_normal((64, 64)).astype(np.float32)
        want = ternary_matmul(x, planes)
        budget = 4096
        monkeypatch.setattr(kernels, "GATHER_SCRATCH_BYTES", budget)
        nnz_plus = planes.plus_indices.size
        chunk = gather_chunk_rows(nnz_plus + 16, x.dtype.itemsize)
        peak = chunk * (nnz_plus + 16) * x.dtype.itemsize
        assert 1 <= chunk and peak <= budget
        np.testing.assert_array_equal(ternary_matmul(x, planes), want)

    @pytest.mark.parametrize("name", ["fused", "narrow", "popcount"])
    def test_backends_identical_under_tiny_budget(self, name, monkeypatch):
        """Chunk boundaries at every few rows never change a bit."""
        rng = np.random.default_rng(4)
        planes = planes_for(ternary(rng, 12, 40, 0.6))
        x = rng.standard_normal((37, 40)).astype(np.float32)
        want = ternary_matmul(x, planes)
        backend = get_backend(name)
        prepared = backend.prepare(planes)
        monkeypatch.setattr(kernels, "GATHER_SCRATCH_BYTES", 512)
        np.testing.assert_array_equal(backend.matmul(x, prepared), want)


DTYPES = {
    "float32": np.float32,
    "float64": np.float64,
    "int64": np.int64,
    "int32": np.int32,
}


class TestBitwiseIdentity:
    """Tentpole: every backend == reference, bit for bit, on supported dtypes."""

    @settings(max_examples=60, deadline=None)
    @given(
        rows=st.integers(min_value=1, max_value=24),
        cols=st.integers(min_value=1, max_value=48),
        batch=st.integers(min_value=1, max_value=17),
        density=st.sampled_from([0.0, 0.05, 0.3, 0.7, 1.0]),
        dtype=st.sampled_from(sorted(DTYPES)),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        scratch=st.sampled_from([None, 256, 4096]),
    )
    def test_property_identity(self, rows, cols, batch, density, dtype, seed, scratch):
        rng = np.random.default_rng(seed)
        planes = planes_for(ternary(rng, rows, cols, density))
        np_dtype = DTYPES[dtype]
        if np.issubdtype(np_dtype, np.floating):
            x = (rng.standard_normal((batch, cols)) * 10).astype(np_dtype)
        else:
            x = rng.integers(-1000, 1000, size=(batch, cols)).astype(np_dtype)
        with pytest.MonkeyPatch.context() as mp:
            if scratch is not None:
                mp.setattr(kernels, "GATHER_SCRATCH_BYTES", scratch)
            want = ternary_matmul(x, planes)
            for name in available_backends():
                backend = get_backend(name)
                got = backend.matmul(x, backend.prepare(planes))
                assert got.dtype == want.dtype, (name, dtype)
                np.testing.assert_array_equal(got, want, err_msg=f"{name}/{dtype}")

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        layout=st.sampled_from(["batch", "feature"]),
    )
    def test_forced_layouts_identical(self, seed, layout):
        """Both fused orientations keep the exact summation order."""
        rng = np.random.default_rng(seed)
        planes = planes_for(ternary(rng, 10, 30, 0.5))
        x = rng.standard_normal((13, 30)).astype(np.float32)
        backend = FusedBackend(layout=layout)
        np.testing.assert_array_equal(
            backend.matmul(x, backend.prepare(planes)), ternary_matmul(x, planes)
        )

    def test_binary_activations_popcount_identity(self):
        """The popcount fast path itself (not the fallback) is bitwise."""
        rng = np.random.default_rng(11)
        planes = planes_for(ternary(rng, 9, 70, 0.4))
        backend = PopcountBackend()
        prepared = backend.prepare(planes)
        for np_dtype in (np.float32, np.float64, np.int64, np.int32):
            x = (rng.random((21, 70)) < 0.5).astype(np_dtype)
            assert backend._binary(x, prepared)  # the fast path engages
            np.testing.assert_array_equal(
                backend.matmul(x, prepared), ternary_matmul(x, planes)
            )


class TestNarrowAccumulation:
    def test_int64_narrows_when_provably_safe(self):
        rng = np.random.default_rng(5)
        planes = planes_for(ternary(rng, 8, 32, 0.7))
        backend = NarrowBackend()
        prepared = backend.prepare(planes)
        bound = backend.int32_amax_bound(prepared)
        # the bound must leave room for the signed combine (plus - minus
        # spans twice a single plane half), not just one plane's sum
        assert 2 * bound * prepared.max_segment <= np.iinfo(np.int32).max
        x = rng.integers(-bound, bound + 1, size=(9, 32)).astype(np.int64)
        got = backend.matmul(x, prepared)
        assert got.dtype == np.int64
        np.testing.assert_array_equal(got, ternary_matmul(x, planes))

    def test_int64_overflow_risk_stays_wide(self):
        """Values past the decode-time bound must not narrow (and stay exact)."""
        planes = planes_for(np.ones((1, 4), dtype=np.int8))
        backend = NarrowBackend()
        prepared = backend.prepare(planes)
        big = np.full((2, 4), np.iinfo(np.int32).max, dtype=np.int64)
        got = backend.matmul(big, prepared)
        assert got.dtype == np.int64
        np.testing.assert_array_equal(got, ternary_matmul(big, planes))
        assert got[0, 0] == 4 * int(np.iinfo(np.int32).max)  # would wrap in int32

    def test_signed_combine_cannot_wrap_int32(self):
        """Regression: plus − minus can reach 2 × int32max; the gate must
        account for it, not just bound one plane's sum."""
        planes = planes_for(np.array([[1, -1]], dtype=np.int8))
        backend = NarrowBackend()
        prepared = backend.prepare(planes)
        i32max = int(np.iinfo(np.int32).max)
        x = np.array([[i32max, -i32max]], dtype=np.int64)
        got = backend.matmul(x, prepared)
        assert got.dtype == np.int64
        np.testing.assert_array_equal(got, ternary_matmul(x, planes))
        assert got[0, 0] == 2 * i32max  # would wrap to -2 in int32

    def test_int64_min_stays_wide(self):
        """Regression: np.abs(INT64_MIN) wraps to itself, which must not
        read as a tiny magnitude and falsely pass the narrow gate."""
        planes = planes_for(np.array([[1, 0]], dtype=np.int8))
        backend = NarrowBackend()
        prepared = backend.prepare(planes)
        i64min = int(np.iinfo(np.int64).min)
        x = np.array([[i64min, 0]], dtype=np.int64)
        got = backend.matmul(x, prepared)
        assert got.dtype == np.int64
        np.testing.assert_array_equal(got, ternary_matmul(x, planes))
        assert got[0, 0] == i64min  # narrowing would have produced 0

    def test_narrow_floats_is_opt_in_and_not_default(self):
        assert NarrowBackend().narrow_floats is False
        assert get_backend("narrow").narrow_floats is False
        rng = np.random.default_rng(6)
        planes = planes_for(ternary(rng, 6, 24, 0.8))
        x = rng.standard_normal((5, 24)).astype(np.float64)
        opted = NarrowBackend(narrow_floats=True)
        got = opted.matmul(x, opted.prepare(planes))
        assert got.dtype == np.float64
        # f32 accumulation is close but deliberately NOT bitwise
        want = ternary_matmul(x, planes)
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-5)
        assert not np.array_equal(got, want)


class TestPopcountGating:
    def test_non_binary_delegates_to_fused(self):
        rng = np.random.default_rng(8)
        planes = planes_for(ternary(rng, 7, 20, 0.5))
        backend = PopcountBackend()
        prepared = backend.prepare(planes)
        x = rng.standard_normal((6, 20)).astype(np.float32)
        assert not backend._binary(x, prepared)
        np.testing.assert_array_equal(
            backend.matmul(x, prepared), ternary_matmul(x, planes)
        )

    def test_binary_with_minus_one_is_not_binary(self):
        planes = planes_for(np.ones((2, 8), dtype=np.int8))
        backend = PopcountBackend()
        prepared = backend.prepare(planes)
        x = np.array([[1, -1, 0, 1, 0, 1, 1, 0]], dtype=np.float32)
        assert not backend._binary(x, prepared)
        np.testing.assert_array_equal(
            backend.matmul(x, prepared), ternary_matmul(x, planes)
        )

    def test_wide_cols_pack_past_word_boundary(self):
        """cols > 64 spans multiple uint64 words; identity must hold."""
        rng = np.random.default_rng(9)
        planes = planes_for(ternary(rng, 5, 130, 0.5))
        backend = PopcountBackend()
        prepared = backend.prepare(planes)
        assert prepared.words == 3
        x = (rng.random((8, 130)) < 0.4).astype(np.float32)
        np.testing.assert_array_equal(
            backend.matmul(x, prepared), ternary_matmul(x, planes)
        )


class TestPlanAccounting:
    def test_fused_planes_nbytes_and_nnz(self):
        planes = planes_for(ternary(np.random.default_rng(10), 6, 12, 0.5))
        prepared = FusedBackend().prepare(planes)
        assert isinstance(prepared, FusedPlanes)
        assert prepared.nnz == planes.nnz
        assert prepared.nbytes > 0
        pop = PopcountBackend().prepare(planes)
        assert pop.nbytes > prepared.nbytes  # masks ride on top
        assert (pop.rows, pop.cols, pop.nnz) == (6, 12, planes.nnz)

    def test_nonempty_segments_precomputed_at_fuse_time(self):
        """The hot path reads prepare-time arrays, never re-derives them."""
        values = np.zeros((5, 9), dtype=np.int8)
        values[0, :3] = 1
        values[2, 4:6] = -1  # rows 1, 3, 4 (and their sign twins) are empty
        prepared = FusedBackend().prepare(planes_for(values))
        segments = 2 * prepared.rows
        want = np.setdiff1d(np.arange(segments), prepared.empty, assume_unique=True)
        np.testing.assert_array_equal(prepared.nonempty, want)
        np.testing.assert_array_equal(
            prepared.nonempty_bounds, prepared.bounds[prepared.nonempty]
        )
        assert prepared.nonempty.size + prepared.empty.size == segments

    def test_packed_model_kernel_selection(self):
        from repro.core.hybrid import HybridConfig, STHybridNet
        from repro.core.strassen import freeze_all
        from repro.deploy import build_image
        from repro.serving import PackedModel

        model = STHybridNet(HybridConfig(width=8), rng=0)
        freeze_all(model)
        model.eval()
        image = build_image(model)
        rng = np.random.default_rng(12)
        x = rng.standard_normal((3, 49, 10)).astype(np.float32)
        want = PackedModel(image, kernel="reference")(x)
        for name in available_backends():
            packed = PackedModel(image, kernel=name)
            assert packed.kernel_backend.name == name
            np.testing.assert_array_equal(packed(x), want, err_msg=name)
            assert packed.decoded_bytes() > 0
        custom = PackedModel(image, kernel=FusedBackend(layout="feature"))
        np.testing.assert_array_equal(custom(x), want)
        with pytest.raises(ConfigError, match="unknown kernel backend"):
            PackedModel(image, kernel="warp-drive")


class TestClusterKernelRoundTrip:
    """Satellite: ``kernel=`` rides worker init and survives crash restart."""

    def test_kernel_survives_spawn_and_restart(self):
        import time

        from repro.core.hybrid import HybridConfig, STHybridNet
        from repro.core.strassen import freeze_all
        from repro.deploy import build_image
        from repro.errors import WorkerCrashed
        from repro.serving import ClusterRouter, PackedModel

        model = STHybridNet(HybridConfig(width=8), rng=0)
        freeze_all(model)
        model.eval()
        image = build_image(model)
        rng = np.random.default_rng(13)
        x = rng.standard_normal((49, 10)).astype(np.float32)
        want = PackedModel(image, kernel="reference")(x[None])[0]

        def observed_backends(router):
            """Backend names the workers' kernel profiles attribute to."""
            profile = router.kernel_profile()
            return {b for row in profile.values() for b in row.get("backends", {})}

        # "reference" is distinct from the process default ("fused"), so the
        # profile proves the name rode the spawn args, not the environment
        assert default_backend_name() != "reference"
        router = ClusterRouter(workers=1, kernel="reference")
        assert router.kernel == "reference"
        router.register("m", image)
        with router:
            router.profile_kernels(True)
            np.testing.assert_array_equal(router.predict(x, model="m"), want)
            assert observed_backends(router) == {"reference"}

            router.pool.inject_crash(0)
            deadline = time.monotonic() + 15.0
            while True:  # the retry loop a real client would run
                try:
                    got = router.predict(x, model="m")
                    break
                except WorkerCrashed:
                    assert time.monotonic() < deadline, "restart never came up"
                    time.sleep(0.01)
            np.testing.assert_array_equal(got, want)
            # profiling is per-process state, so re-arm on the replacement;
            # the replacement must have inherited the same backend name
            router.profile_kernels(True)
            np.testing.assert_array_equal(router.predict(x, model="m"), want)
            assert observed_backends(router) == {"reference"}

    def test_prebuilt_pool_rejects_router_kernel(self):
        from repro.serving import ClusterRouter, WorkerPool

        pool = WorkerPool(1, kernel="narrow")
        assert pool.kernel == "narrow"
        with pytest.raises(ConfigError, match="pass kernel only when"):
            ClusterRouter(pool, kernel="narrow")
        router = ClusterRouter(pool)
        assert router.kernel == "narrow"  # adopted from the prebuilt pool

    def test_pool_rejects_unregistered_backend_instances(self):
        """Pools ship names: a configured instance would silently run as
        the registered default in every worker, so reject it up front."""
        from repro.serving import ClusterRouter, WorkerPool

        with pytest.raises(ConfigError, match="by registered name"):
            WorkerPool(1, kernel=FusedBackend(layout="feature"))
        with pytest.raises(ConfigError, match="by registered name"):
            ClusterRouter(workers=1, kernel=NarrowBackend(narrow_floats=True))

        class Custom(KernelBackend):
            name = "custom-unregistered"

        with pytest.raises(ConfigError, match="by registered name"):
            WorkerPool(1, kernel=Custom())
        # the registered instance itself still round-trips by identity
        pool = WorkerPool(1, kernel=get_backend("narrow"))
        assert pool.kernel == "narrow"
