"""Deployment artifacts: 2-bit packing, model image, reference interpreter."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.autodiff.tensor import Tensor, no_grad
from repro.core.hybrid import HybridConfig, STHybridNet
from repro.core.strassen import freeze_all
from repro.deploy import ImageInterpreter, ModelImage, build_image, pack_ternary, unpack_ternary
from repro.errors import ConfigError, QuantizationError

TERNARY_ARRAYS = arrays(
    dtype=np.float32,
    shape=array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=9),
    elements=st.sampled_from([-1.0, 0.0, 1.0]),
)


class TestPacking:
    @given(TERNARY_ARRAYS)
    @settings(max_examples=80, deadline=None)
    def test_roundtrip(self, values):
        blob, shape = pack_ternary(values)
        restored = unpack_ternary(blob, shape)
        np.testing.assert_array_equal(restored, values)

    @given(TERNARY_ARRAYS)
    @settings(max_examples=80, deadline=None)
    def test_four_weights_per_byte(self, values):
        blob, _ = pack_ternary(values)
        assert len(blob) == (values.size + 3) // 4

    def test_rejects_non_ternary(self):
        with pytest.raises(QuantizationError):
            pack_ternary(np.array([0.5, 1.0]))

    def test_unpack_validates_length(self):
        blob, _ = pack_ternary(np.ones(8, dtype=np.float32))
        with pytest.raises(QuantizationError):
            unpack_ternary(blob, (16,))

    def test_empty_tensor_roundtrip(self):
        blob, shape = pack_ternary(np.zeros((0,), dtype=np.float32))
        assert blob == b"" and shape == (0,)
        assert unpack_ternary(blob, shape).shape == (0,)

    @pytest.mark.parametrize("size", [1, 2, 3, 5, 7, 9])
    def test_size_not_divisible_by_four(self, size):
        values = np.resize(np.array([1.0, -1.0, 0.0], dtype=np.float32), size)
        blob, shape = pack_ternary(values)
        assert len(blob) == (size + 3) // 4  # trailing codes are zero padding
        np.testing.assert_array_equal(unpack_ternary(blob, shape), values)

    def test_reserved_code_rejected(self):
        with pytest.raises(QuantizationError, match="reserved"):
            unpack_ternary(bytes([0b11]), (4,))

    def test_reserved_code_in_padding_ignored(self):
        # weight count 1: only the low 2 bits are live, garbage padding is fine
        assert unpack_ternary(bytes([0b1101]), (1,))[0] == 1.0


@pytest.fixture(scope="module")
def frozen_model():
    model = STHybridNet(HybridConfig(width=8), rng=0)
    freeze_all(model)
    model.eval()
    return model


@pytest.fixture(scope="module")
def image(frozen_model):
    return build_image(frozen_model)


class TestImage:
    def test_layer_inventory(self, image):
        names = [record.name for record in image.layers]
        assert "conv1" in names
        assert "ds0.dw" in names and "ds1.pw" in names
        assert "tree.w0" in names and "tree.theta2" in names
        # conv1 + 2x(dw+pw) + 14 node matmuls + 3 thetas
        assert len(names) == 1 + 4 + 14 + 3

    def test_requires_frozen(self):
        model = STHybridNet(HybridConfig(width=8), rng=0)  # still full-precision
        with pytest.raises(ConfigError):
            build_image(model)

    def test_serialisation_roundtrip(self, image):
        blob = image.to_bytes()
        restored = ModelImage.from_bytes(blob)
        assert restored.header == image.header
        assert len(restored.layers) == len(image.layers)
        original = image.layer("conv1")
        parsed = restored.layer("conv1")
        np.testing.assert_array_equal(parsed.wb(), original.wb())
        np.testing.assert_array_equal(parsed.a_hat, original.a_hat)

    def test_bad_magic_rejected(self):
        with pytest.raises(ConfigError):
            ModelImage.from_bytes(b"XXXX" + b"\x00" * 16)

    def test_size_accounting(self, image):
        with_scales = image.total_bytes(count_scales=True)
        without = image.total_bytes(count_scales=False)
        assert with_scales > without > 0
        # ternary payload dominates neither view at width 8, but both are
        # well under the fp32 parameter size
        fp32_bytes = 4 * sum(
            int(np.prod(r.wb_shape)) + int(np.prod(r.wc_shape)) for r in image.layers
        )
        assert with_scales < fp32_bytes


class TestInterpreter:
    def test_matches_live_model(self, frozen_model, image, rng):
        x = rng.standard_normal((5, 49, 10)).astype(np.float32)
        with no_grad():
            reference = frozen_model(Tensor(x)).data
        interp = ImageInterpreter(image)
        got = interp(x)
        np.testing.assert_allclose(got, reference, rtol=1e-3, atol=1e-4)

    def test_matches_after_serialisation(self, frozen_model, image, rng):
        x = rng.standard_normal((3, 49, 10)).astype(np.float32)
        interp = ImageInterpreter(ModelImage.from_bytes(image.to_bytes()))
        with no_grad():
            reference = frozen_model(Tensor(x)).data
        np.testing.assert_allclose(interp(x), reference, rtol=1e-3, atol=1e-4)

    def test_predict_labels(self, image, rng):
        interp = ImageInterpreter(image)
        labels = interp.predict(rng.standard_normal((4, 49, 10)).astype(np.float32))
        assert labels.shape == (4,)
        assert ((labels >= 0) & (labels < 12)).all()

    def test_features_shape(self, image, rng):
        interp = ImageInterpreter(image)
        feats = interp.features(rng.standard_normal((2, 49, 10)).astype(np.float32))
        assert feats.shape == (2, 8)

    def test_rejects_unknown_arch(self, image):
        bad = ModelImage(header={"arch": "mystery"}, layers=image.layers)
        with pytest.raises(ConfigError):
            ImageInterpreter(bad)
