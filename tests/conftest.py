"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.speech_commands import SpeechCommandsConfig, SpeechCommandsDataset


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_dataset() -> SpeechCommandsDataset:
    """A minimal synthetic corpus shared by integration tests (~200 clips)."""
    return SpeechCommandsDataset.cached(
        SpeechCommandsConfig(utterances_per_word=16, seed=77)
    )


def make_tensor(shape, rng, scale=1.0, requires_grad=True):
    """Small float32 tensor helper used across gradcheck tests."""
    from repro.autodiff.tensor import Tensor

    data = (rng.standard_normal(shape) * scale).astype(np.float32)
    return Tensor(data, requires_grad=requires_grad)
