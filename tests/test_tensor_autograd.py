"""Autograd machinery: tape construction, accumulation, no_grad, reuse."""

from __future__ import annotations

import numpy as np

from conftest import make_tensor
from repro.autodiff import Tensor, is_grad_enabled, no_grad


def test_gradient_accumulates_across_backwards(rng):
    a = make_tensor((3,), rng)
    (a * 2).sum().backward()
    first = a.grad.copy()
    (a * 2).sum().backward()
    np.testing.assert_allclose(a.grad, 2 * first)


def test_diamond_graph_accumulates_once_per_path(rng):
    a = make_tensor((4,), rng)
    b = a * 2
    out = (b + b * 3).sum()  # a contributes through two paths: 2 + 6
    out.backward()
    np.testing.assert_allclose(a.grad, np.full(4, 8.0), rtol=1e-6)


def test_reused_tensor_in_one_expression(rng):
    a = make_tensor((3,), rng)
    (a * a).sum().backward()
    np.testing.assert_allclose(a.grad, 2 * a.data, rtol=1e-5)


def test_no_grad_disables_tape(rng):
    a = make_tensor((3,), rng)
    with no_grad():
        assert not is_grad_enabled()
        out = a * 2 + 1
    assert is_grad_enabled()
    assert out._parents == ()
    assert out._backward is None


def test_detach_cuts_graph(rng):
    a = make_tensor((3,), rng)
    out = (a.detach() * 3).sum()
    out.backward()
    assert a.grad is None


def test_deep_chain_does_not_overflow(rng):
    # iterative topological sort must survive RNN-depth graphs
    a = make_tensor((2,), rng)
    x = a
    for _ in range(3000):
        x = x + 0.001
    x.sum().backward()
    np.testing.assert_allclose(a.grad, np.ones(2), rtol=1e-6)


def test_intermediate_nodes_do_not_store_grad(rng):
    a = make_tensor((3,), rng)
    mid = a * 2
    mid.sum().backward()
    assert mid.grad is None  # only requires_grad leaves accumulate
    assert a.grad is not None


def test_int_input_promoted_to_float():
    t = Tensor([1, 2, 3])
    assert np.issubdtype(t.dtype, np.floating)


def test_zero_grad(rng):
    a = make_tensor((3,), rng)
    (a * 2).sum().backward()
    a.zero_grad()
    assert a.grad is None


def test_backward_with_explicit_gradient(rng):
    a = make_tensor((2, 2), rng)
    out = a * 3
    seed = np.array([[1.0, 0.0], [0.0, 2.0]], dtype=np.float32)
    out.backward(seed)
    np.testing.assert_allclose(a.grad, 3 * seed)


def test_copy_is_independent(rng):
    a = make_tensor((3,), rng)
    b = a.copy()
    b.data[0] = 99.0
    assert a.data[0] != 99.0
    assert b.requires_grad == a.requires_grad
