"""Fixed-point quantisation, post-training quantization, TWN."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.hybrid import HybridConfig, STHybridNet
from repro.core.strassen import freeze_all, strassen_modules
from repro.errors import QuantizationError
from repro.models import DSCNN
from repro.quantization import (
    FixedPointQuantizer,
    attach_activation_quantizers,
    quantize_array,
    quantize_model_weights,
    quantize_st_model,
    ternarize_module_weights,
    twn_report,
)
from repro.quantization.fixedpoint import best_frac_bits
from repro.quantization.post_training import detach_activation_quantizers

VALUES = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=64),
    elements=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
)


class TestFixedPoint:
    @given(VALUES, st.integers(min_value=4, max_value=16))
    @settings(max_examples=60, deadline=None)
    def test_quantize_error_bounded_by_step_or_clip(self, values, bits):
        frac = best_frac_bits(values, bits)
        out = quantize_array(values, bits, frac)
        step = 2.0**-frac
        hi = (2 ** (bits - 1) - 1) * step
        inside = np.abs(values) <= hi
        assert np.all(np.abs(out[inside] - values[inside]) <= step / 2 + 1e-12)

    @given(VALUES)
    @settings(max_examples=60, deadline=None)
    def test_idempotent(self, values):
        out1 = quantize_array(values, 8, 4)
        out2 = quantize_array(out1, 8, 4)
        np.testing.assert_array_equal(out1, out2)

    def test_more_bits_less_error(self, rng):
        values = rng.standard_normal(1000)
        err8 = np.abs(quantize_array(values, 8, best_frac_bits(values, 8)) - values).mean()
        err16 = np.abs(quantize_array(values, 16, best_frac_bits(values, 16)) - values).mean()
        assert err16 < err8

    def test_quantizer_requires_calibration(self):
        q = FixedPointQuantizer(8)
        with pytest.raises(QuantizationError):
            q(np.ones(3))

    def test_quantizer_calibrate_and_step(self, rng):
        q = FixedPointQuantizer(8).calibrate(rng.standard_normal(100))
        assert q.step == 2.0**-q.frac_bits
        out = q(np.array([0.123]))
        assert np.abs(out - 0.123) < q.step

    def test_invalid_bits(self):
        with pytest.raises(QuantizationError):
            quantize_array(np.ones(3), 1, 0)


class TestWeightPTQ:
    def test_quantize_model_weights_plan(self):
        model = DSCNN(width=8, rng=0)
        applied = quantize_model_weights(
            model, lambda name, values: 8 if name.endswith("weight") else None
        )
        assert applied and all(bits == 8 for bits in applied.values())
        # quantised weights take few distinct values
        weights = model.conv1.weight.data
        assert len(np.unique(weights)) <= 256


class TestActivationPTQ:
    def _trained_free_st(self):
        model = STHybridNet(HybridConfig(width=8), rng=0)
        freeze_all(model)
        return model

    def test_attach_and_detach(self, rng):
        model = self._trained_free_st()
        calibration = rng.standard_normal((8, 49, 10)).astype(np.float32)
        installed = attach_activation_quantizers(model, calibration, act_bits=8)
        n_layers = len(list(strassen_modules(model)))
        assert len(installed) == 2 * n_layers
        detach_activation_quantizers(model)
        assert all(m.quant_hidden is None for m in strassen_modules(model))

    def test_dw_hidden_bits_override(self, rng):
        model = self._trained_free_st()
        calibration = rng.standard_normal((4, 49, 10)).astype(np.float32)
        installed = attach_activation_quantizers(
            model, calibration, act_bits=8, dw_hidden_bits=16
        )
        dw_hidden = [q for name, q in installed.items() if "depthwise" in name and name.endswith("hidden")]
        assert dw_hidden and all(q.bits == 16 for q in dw_hidden)
        others = [q for name, q in installed.items() if "depthwise" not in name]
        assert all(q.bits == 8 for q in others)

    def test_quantized_model_output_close(self, rng):
        model = self._trained_free_st()
        model.eval()
        x = rng.standard_normal((4, 49, 10)).astype(np.float32)
        from repro.autodiff import Tensor, no_grad

        with no_grad():
            before = model(Tensor(x)).data.copy()
        quantize_st_model(model, x, act_bits=8, a_hat_bits=16, bias_bits=8)
        with no_grad():
            after = model(Tensor(x)).data
        assert np.isfinite(after).all()
        # outputs change slightly but agree broadly
        assert np.abs(after - before).mean() < max(0.5, 0.5 * np.abs(before).mean())


class TestTWN:
    def test_ternarize_skips_small_and_norm_params(self):
        model = DSCNN(width=8, rng=0)
        alphas = ternarize_module_weights(model)
        assert any("conv1.weight" in name for name in alphas)
        assert not any("gamma" in name or "bias" in name for name in alphas)
        for name, param in model.named_parameters():
            if name in alphas:
                values = np.unique(np.round(np.abs(param.data[param.data != 0]), 5))
                assert len(values) == 1  # single alpha per tensor

    def test_twn_report_size_below_8bit(self):
        model = DSCNN(rng=0)
        alphas = ternarize_module_weights(model)
        report = twn_report(model, alphas)
        assert report["model_kb"] < DSCNN().cost_report(weight_bits=8).model_kb
        assert all(0.0 <= s <= 1.0 for s in report["zero_fractions"].values())
