"""Serving subsystem: bit-plane kernels, packed runtime, batching, registry."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor, no_grad
from repro.core.hybrid import HybridConfig, STHybridNet
from repro.core.strassen import freeze_all
from repro.deploy import ImageInterpreter, build_image, pack_ternary
from repro.errors import ConfigError, DeadlineExceeded, QuantizationError
from repro.evaluation import StreamingDetector, make_stream
from repro.serving import (
    BatchingEngine,
    MicroBatchConfig,
    ModelRegistry,
    PackedModel,
    decode_planes,
    ternary_matmul,
)
from repro.serving.kernels import as_block_diagonal


@pytest.fixture(scope="module")
def frozen_model():
    model = STHybridNet(HybridConfig(width=8), rng=0)
    freeze_all(model)
    model.eval()
    return model


@pytest.fixture(scope="module")
def image(frozen_model):
    return build_image(frozen_model)


class TestKernels:
    @pytest.mark.parametrize("rows,cols", [(1, 1), (3, 7), (12, 64), (5, 4)])
    def test_matmul_matches_dense(self, rows, cols, rng):
        w = rng.choice([-1.0, 0.0, 1.0], size=(rows, cols)).astype(np.float32)
        blob, shape = pack_ternary(w)
        planes = decode_planes(blob, shape)
        x = rng.standard_normal((6, cols)).astype(np.float32)
        np.testing.assert_allclose(ternary_matmul(x, planes), x @ w.T, rtol=1e-5, atol=1e-6)

    def test_all_zero_matrix(self, rng):
        blob, shape = pack_ternary(np.zeros((4, 5), dtype=np.float32))
        planes = decode_planes(blob, shape)
        out = ternary_matmul(rng.standard_normal((3, 5)).astype(np.float32), planes)
        np.testing.assert_array_equal(out, np.zeros((3, 4), dtype=np.float32))

    def test_empty_rows_stay_zero(self, rng):
        w = np.zeros((4, 6), dtype=np.float32)
        w[1, [0, 3]] = 1.0  # rows 0, 2, 3 empty (2 of them trailing)
        blob, shape = pack_ternary(w)
        x = rng.standard_normal((2, 6)).astype(np.float32)
        np.testing.assert_allclose(
            ternary_matmul(x, decode_planes(blob, shape)), x @ w.T, rtol=1e-6
        )

    def test_higher_rank_flattens_trailing_dims(self, rng):
        w = rng.choice([-1.0, 0.0, 1.0], size=(5, 2, 3, 3)).astype(np.float32)
        blob, shape = pack_ternary(w)
        planes = decode_planes(blob, shape)
        assert (planes.rows, planes.cols) == (5, 18)
        x = rng.standard_normal((4, 18)).astype(np.float32)
        np.testing.assert_allclose(
            ternary_matmul(x, planes), x @ w.reshape(5, -1).T, rtol=1e-5, atol=1e-6
        )

    def test_block_diagonal_matches_per_channel(self, rng):
        w = rng.choice([-1.0, 0.0, 1.0], size=(3, 4)).astype(np.float32)
        blob, shape = pack_ternary(w)
        block = as_block_diagonal(decode_planes(blob, shape), 4)
        assert (block.rows, block.cols) == (3, 12)
        x = rng.standard_normal((5, 12)).astype(np.float32)
        expected = np.stack(
            [x[:, c * 4 : (c + 1) * 4] @ w[c] for c in range(3)], axis=1
        )
        np.testing.assert_allclose(ternary_matmul(x, block), expected, rtol=1e-5, atol=1e-6)

    def test_chunked_gather_bitwise_identical(self, rng, monkeypatch):
        """Bounding the gather scratch chunks the batch axis only — results
        stay bitwise identical to the single-pass gather on a large-nnz
        layer, including the chunk-size-1 extreme."""
        from repro.serving import kernels

        # dense-ish ternary: ~90% non-zero over 512 cols = large nnz per row
        w = rng.choice(
            [-1.0, 0.0, 1.0], size=(16, 512), p=[0.45, 0.1, 0.45]
        ).astype(np.float32)
        blob, shape = pack_ternary(w)
        planes = decode_planes(blob, shape)
        x = rng.standard_normal((64, 512)).astype(np.float32)
        single_pass = ternary_matmul(x, planes)  # default budget: one chunk
        for budget in (64 * 1024, 64):  # several chunks; one row per chunk
            monkeypatch.setattr(kernels, "GATHER_SCRATCH_BYTES", budget)
            np.testing.assert_array_equal(ternary_matmul(x, planes), single_pass)
        monkeypatch.undo()
        np.testing.assert_allclose(single_pass, x @ w.T, rtol=1e-4, atol=1e-4)

    def test_decode_rejects_reserved_code(self):
        with pytest.raises(QuantizationError):
            decode_planes(bytes([0b11]), (4,))

    def test_shape_mismatch_rejected(self, rng):
        blob, shape = pack_ternary(np.ones((2, 4), dtype=np.float32))
        planes = decode_planes(blob, shape)
        with pytest.raises(ValueError):
            ternary_matmul(rng.standard_normal((1, 5)).astype(np.float32), planes)


class TestPackedModel:
    def test_matches_live_model(self, frozen_model, image, rng):
        x = rng.standard_normal((5, 49, 10)).astype(np.float32)
        with no_grad():
            reference = frozen_model(Tensor(x)).data
        np.testing.assert_allclose(PackedModel(image)(x), reference, rtol=1e-3, atol=1e-4)

    def test_cached_bitwise_equals_uncached(self, image, rng):
        x = rng.standard_normal((7, 49, 10)).astype(np.float32)
        cached = PackedModel(image, cache=True)
        uncached = PackedModel(image, cache=False)
        np.testing.assert_array_equal(cached(x), uncached(x))
        np.testing.assert_array_equal(cached.features(x), uncached.features(x))

    def test_interpreter_modes_bitwise_identical(self, image, rng):
        x = rng.standard_normal((4, 49, 10)).astype(np.float32)
        np.testing.assert_array_equal(
            ImageInterpreter(image, cache=True)(x), ImageInterpreter(image, cache=False)(x)
        )

    def test_batch_composition_invariant(self, image, rng):
        # row i of a batched forward == the same example served alone
        x = rng.standard_normal((6, 49, 10)).astype(np.float32)
        model = PackedModel(image)
        batched = model(x)
        singles = np.concatenate([model(x[i : i + 1]) for i in range(len(x))])
        np.testing.assert_array_equal(batched, singles)

    def test_depthwise_kind_bitwise_matches_conv_reference(self, image, rng):
        # integer-valued activations make every ±1 gather sum an exact
        # integer, so the packed dw kernel and the autodiff depthwise conv
        # must agree bitwise regardless of their summation order
        from repro.autodiff.ops_conv import depthwise_conv2d

        packed = PackedModel(image)
        plan = packed._plans["ds0.dw"]
        record = image.layer("ds0.dw")
        channels = record.wb_shape[0]
        x = rng.integers(-4, 5, size=(3, channels, 25, 5)).astype(np.float32)
        got = packed._depthwise(plan, x)
        with no_grad():
            hidden = depthwise_conv2d(
                Tensor(x),
                Tensor(record.wb().astype(np.float32)),
                stride=tuple(plan.meta["stride"]),
                padding=tuple(plan.meta["padding"]),
            ).data
        scale = (plan.a_hat * plan.wc_vector * plan.out_scale).reshape(1, channels, 1, 1)
        reference = hidden * scale + plan.out_shift.reshape(1, channels, 1, 1)
        reference = np.maximum(reference, 0.0)
        np.testing.assert_array_equal(got, reference)

    @pytest.mark.parametrize("layer", ["conv1", "ds0.pw"])
    def test_conv_and_pw_kinds_bitwise_match_conv_reference(self, image, rng, layer):
        # same discipline as the dw test: integer-valued activations make
        # every ±1 gather sum an exact integer, so the packed W_b stage and
        # the dense autodiff conv2d must agree bitwise regardless of their
        # summation order.  The W_c stage then runs on bitwise-equal hidden
        # activations, making the whole layer bitwise-comparable end to end.
        from repro.autodiff.ops_conv import conv2d
        from repro.serving.packed import _conv_patches

        # pin the reference backend: this test runs ternary_matmul directly
        # against the plan's CSR planes (backend identity is property-tested
        # in test_kernels_fast.py)
        packed = PackedModel(image, kernel="reference")
        plan = packed._plans[layer]
        record = image.layer(layer)
        r, channels, kh, kw = record.wb_shape
        assert plan.kind == ("conv" if layer == "conv1" else "pw")
        x = rng.integers(-4, 5, size=(3, channels, 49, 10)).astype(np.float32)
        stride = tuple(plan.meta["stride"])
        padding = tuple(plan.meta["padding"])
        patches = _conv_patches(x, kh, kw, stride, padding)
        n, oh, ow, d = patches.shape
        hidden = ternary_matmul(patches.reshape(-1, d), plan.wb)
        with no_grad():
            reference = conv2d(
                Tensor(x),
                Tensor(record.wb().astype(np.float32)),
                stride=stride,
                padding=padding,
            ).data
        np.testing.assert_array_equal(
            hidden.reshape(n, oh, ow, r).transpose(0, 3, 1, 2), reference
        )
        # full layer: W_b reference pipeline → ⊙â → ternary W_c → scale/shift
        got = packed._conv(plan, x)
        ref_hidden = reference.transpose(0, 2, 3, 1).reshape(-1, r) * plan.a_hat
        out = ternary_matmul(ref_hidden, plan.wc) * plan.out_scale + plan.out_shift
        out = out.reshape(n, oh, ow, -1).transpose(0, 3, 1, 2)
        if plan.meta.get("relu"):
            out = np.maximum(out, 0.0)
        np.testing.assert_array_equal(got, out)

    def test_decoded_bytes(self, image):
        assert PackedModel(image, cache=True).decoded_bytes() > 0
        assert PackedModel(image, cache=False).decoded_bytes() == 0

    def test_rejects_unknown_arch(self, image):
        from repro.deploy import ModelImage

        bad = ModelImage(header={"arch": "mystery"}, layers=image.layers)
        with pytest.raises(ConfigError):
            PackedModel(bad)


def echo_model(batch: np.ndarray) -> np.ndarray:
    """Fake model: returns each request's first feature (traces routing)."""
    return batch.reshape(batch.shape[0], -1)[:, :1]


class TestBatchingEngine:
    def test_coalescing_preserves_submission_order(self):
        engine = BatchingEngine(echo_model, MicroBatchConfig(max_batch_size=2))
        inputs = [np.full((3,), float(i)) for i in range(5)]
        futures = engine.submit_many(inputs)
        assert engine.flush() == 3  # 2 + 2 + 1
        assert list(engine.stats.batch_sizes) == [2, 2, 1]
        for i, future in enumerate(futures):
            assert future.result()[0] == float(i)

    def test_results_match_direct_forward(self, image, rng):
        model = PackedModel(image)
        xs = [rng.standard_normal((49, 10)).astype(np.float32) for _ in range(6)]
        engine = BatchingEngine(model, MicroBatchConfig(max_batch_size=6))
        futures = engine.submit_many(xs)
        engine.flush()
        got = np.stack([f.result() for f in futures])
        np.testing.assert_array_equal(got, model(np.stack(xs)))

    def test_predict_without_worker(self, image, rng):
        engine = BatchingEngine(PackedModel(image))
        scores = engine.predict(rng.standard_normal((49, 10)).astype(np.float32))
        assert scores.shape == (12,)
        assert engine.stats.batches == 1 and engine.stats.requests == 1

    def test_worker_mode_serves_all_requests(self, image, rng):
        model = PackedModel(image)
        xs = [rng.standard_normal((49, 10)).astype(np.float32) for _ in range(9)]
        with BatchingEngine(model, MicroBatchConfig(max_batch_size=4, max_delay_ms=20.0)) as eng:
            futures = eng.submit_many(xs)
            got = np.stack([f.result() for f in futures])
        np.testing.assert_array_equal(got, model(np.stack(xs)))
        assert eng.stats.requests == 9
        assert sum(eng.stats.batch_sizes) == 9
        assert max(eng.stats.batch_sizes) <= 4

    def test_deadline_expiry_ordering_in_flush_mode(self):
        """Expired requests are rejected deterministically at dispatch while
        fresh requests in the same micro-batch are still served."""
        engine = BatchingEngine(echo_model, MicroBatchConfig(max_batch_size=8))
        fresh_a = engine.submit(np.full(3, 1.0), deadline_s=60.0)
        expired = engine.submit(np.full(3, 2.0), deadline_s=0.0)
        fresh_b = engine.submit(np.full(3, 3.0))  # no deadline
        assert engine.flush() == 1
        assert fresh_a.result()[0] == 1.0 and fresh_b.result()[0] == 3.0
        with pytest.raises(DeadlineExceeded):
            expired.result()
        assert engine.stats.deadline_misses == 1
        assert engine.stats.requests == 3
        assert list(engine.stats.batch_sizes) == [2]  # only live requests ran

    def test_short_deadline_caps_coalescing_wait(self):
        """A lone request whose budget is shorter than max_delay_ms must be
        dispatched before the budget expires — the engine's own coalescing
        wait may not cause the miss."""
        engine = BatchingEngine(
            echo_model, MicroBatchConfig(max_batch_size=8, max_delay_ms=30_000.0)
        )
        with engine:
            start = time.monotonic()
            out = engine.predict(np.full(3, 4.0), deadline_s=1.0)
            elapsed = time.monotonic() - start
        assert out[0] == 4.0
        assert engine.stats.deadline_misses == 0
        assert elapsed < 10.0  # dispatched at the deadline cap, not max_delay

    def test_all_expired_batch_runs_nothing(self):
        calls = []

        def counting(batch):
            calls.append(len(batch))
            return echo_model(batch)

        engine = BatchingEngine(counting)
        futures = engine.submit_many([np.zeros(3)] * 3, deadline_s=0.0)
        engine.flush()
        assert calls == []  # the model never ran
        assert engine.stats.deadline_misses == 3
        assert engine.stats.batches == 0
        for future in futures:
            with pytest.raises(DeadlineExceeded):
                future.result()

    def test_cancelled_request_is_skipped(self):
        engine = BatchingEngine(echo_model, MicroBatchConfig(max_batch_size=4))
        cancelled = engine.submit(np.full(3, 1.0))
        kept = engine.submit(np.full(3, 2.0))
        assert cancelled.cancel()
        engine.flush()  # must not raise InvalidStateError on the cancelled future
        assert kept.result()[0] == 2.0
        assert list(engine.stats.batch_sizes) == [1]

    def test_record_shed(self):
        engine = BatchingEngine(echo_model)
        engine.record_shed()
        assert engine.stats.shed == 1 and engine.stats.requests == 0

    def test_model_failure_propagates_to_futures(self):
        def broken(batch):
            raise RuntimeError("kernel exploded")

        engine = BatchingEngine(broken)
        future = engine.submit(np.zeros(3))
        engine.flush()
        with pytest.raises(RuntimeError, match="kernel exploded"):
            future.result()

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            MicroBatchConfig(max_batch_size=0)
        with pytest.raises(ConfigError):
            MicroBatchConfig(max_delay_ms=-1.0)

    def test_mean_batch_size(self):
        engine = BatchingEngine(echo_model, MicroBatchConfig(max_batch_size=4))
        engine.submit_many([np.zeros(2)] * 8)
        engine.flush()
        assert engine.stats.mean_batch_size == pytest.approx(4.0)


class TestEngineLifecycle:
    """start()/stop() must be idempotent and safe under double entry/exit."""

    def test_stop_without_start_drains_queue(self):
        engine = BatchingEngine(echo_model)
        future = engine.submit(np.full(2, 4.0))
        engine.stop()  # never started: just drains synchronously
        assert future.result()[0] == 4.0

    def test_double_stop_and_double_exit(self):
        engine = BatchingEngine(echo_model)
        with engine:
            assert engine.running
        engine.__exit__(None, None, None)  # second __exit__ must be a no-op
        engine.stop()
        assert not engine.running

    def test_start_is_idempotent(self):
        engine = BatchingEngine(echo_model)
        try:
            first = engine.start()._worker
            assert engine.start()._worker is first  # no second worker spawned
            workers = [t for t in threading.enumerate() if t.name == "batching-engine"]
            assert len(workers) == 1
        finally:
            engine.stop()

    def test_stop_start_cycle_serves_again(self):
        engine = BatchingEngine(echo_model)
        engine.start()
        engine.stop()
        engine.start()  # start-after-stop brings up a fresh worker
        try:
            assert engine.running
            assert engine.predict(np.full(2, 7.0))[0] == 7.0
        finally:
            engine.stop()
        engine.stop()  # stop-after-stop stays a no-op

    def test_start_after_worker_thread_death(self):
        engine = BatchingEngine(echo_model)
        engine.start()
        # simulate a crashed worker thread: kill it without clearing _worker
        engine._stop.set()
        engine._worker.join()
        assert not engine.running
        engine.start()  # must recover with a fresh worker, not early-return
        try:
            assert engine.running
            assert engine.predict(np.full(2, 9.0))[0] == 9.0
        finally:
            engine.stop()

    def test_concurrent_starts_spawn_one_worker(self):
        engine = BatchingEngine(echo_model)
        try:
            barrier = threading.Barrier(8)

            def racer():
                barrier.wait()
                engine.start()

            threads = [threading.Thread(target=racer) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            workers = [t for t in threading.enumerate() if t.name == "batching-engine"]
            assert len(workers) == 1
        finally:
            engine.stop()


class TestEngineSnapshot:
    """snapshot() must be an atomic, decoupled copy of the counters."""

    def test_snapshot_matches_and_decouples(self):
        engine = BatchingEngine(echo_model, MicroBatchConfig(max_batch_size=4))
        engine.submit_many([np.zeros(2)] * 6)
        engine.flush()
        snap = engine.snapshot()
        assert snap.requests == 6 and snap.served == 6 and snap.batches == 2
        assert list(snap.batch_sizes) == [4, 2]
        engine.submit(np.zeros(2))
        engine.flush()
        assert snap.requests == 6  # the snapshot does not track the live object
        assert engine.stats.requests == 7
        assert snap.mean_batch_size == pytest.approx(3.0)

    def test_snapshot_consistent_under_worker_traffic(self):
        """Reading while the worker dispatches never observes served > requests
        or batch-size history longer than the batch count."""
        engine = BatchingEngine(echo_model, MicroBatchConfig(max_batch_size=2, max_delay_ms=0.0))
        stop = threading.Event()
        torn = []

        def reader():
            while not stop.is_set():
                snap = engine.snapshot()
                if snap.served > snap.requests or len(snap.batch_sizes) > snap.batches:
                    torn.append(snap)

        thread = threading.Thread(target=reader)
        thread.start()
        with engine:
            futures = engine.submit_many([np.zeros(2)] * 300)
            for future in futures:
                future.result(timeout=10.0)
        stop.set()
        thread.join()
        assert not torn
        assert engine.snapshot().served == 300


class TestModelRegistry:
    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError, match="unknown model"):
            ModelRegistry().get("nope")
        with pytest.raises(ConfigError):
            ModelRegistry().remove("nope")

    def test_lru_eviction(self, image):
        with pytest.warns(DeprecationWarning):  # count-based alias still works
            registry = ModelRegistry(capacity=2)
        for name in ("a", "b", "c"):
            registry.register(name, image)
        registry.get("a"), registry.get("b"), registry.get("c")
        assert registry.decoded_names() == ["b@v1", "c@v1"]  # "a" evicted
        assert registry.stats.evictions == 1 and registry.stats.misses == 3
        registry.get("b")  # hit refreshes recency -> "c" is now LRU
        registry.get("a")
        assert registry.decoded_names() == ["b@v1", "a@v1"]
        assert registry.stats.hits == 1 and registry.stats.evictions == 2
        assert len(registry) == 3  # images themselves are never evicted

    def test_get_returns_same_instance_on_hit(self, image):
        registry = ModelRegistry()
        registry.register("m", image)
        assert registry.get("m") is registry.get("m")

    def test_reregister_invalidates_decoded_plan(self, image):
        registry = ModelRegistry()
        registry.register("m", image)
        first = registry.get("m")
        registry.register("m", image.to_bytes())  # also exercises bytes input
        assert registry.decoded_names() == []
        assert registry.get("m") is not first

    def test_predict_roundtrip(self, image, rng):
        registry = ModelRegistry()
        registry.register("kws", image)
        x = rng.standard_normal((3, 49, 10)).astype(np.float32)
        np.testing.assert_array_equal(registry.predict("kws", x), PackedModel(image)(x))

    def test_capacity_validation(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigError):
                ModelRegistry(capacity=0)


class TestStreamingThroughEngine:
    def test_engine_path_matches_direct_path(self, image):
        wave, _ = make_stream(["yes"], rng=4)
        model = PackedModel(image)
        direct = StreamingDetector(model)
        engine = BatchingEngine(model, MicroBatchConfig(max_batch_size=4))
        batched = StreamingDetector(engine=engine)
        t_direct, p_direct = direct.posteriors(wave)
        t_engine, p_engine = batched.posteriors(wave)
        np.testing.assert_array_equal(t_direct, t_engine)
        np.testing.assert_array_equal(p_direct, p_engine)
        # the windows really went through micro-batches, not one big forward
        assert engine.stats.batches == -(-len(t_engine) // 4)
        assert max(engine.stats.batch_sizes) <= 4

    def test_requires_model_or_engine(self):
        with pytest.raises(ConfigError):
            StreamingDetector()
