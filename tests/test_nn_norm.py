"""Batch normalisation: statistics, modes, folding."""

from __future__ import annotations

import numpy as np

from conftest import make_tensor
from repro import nn
from repro.autodiff import Tensor, no_grad
from repro.autodiff.ops_conv import conv2d, depthwise_conv2d
from repro.nn.norm import bn_scale_shift, fold_bn_into_conv


def test_bn2d_normalises_batch(rng):
    bn = nn.BatchNorm2d(3)
    x = make_tensor((8, 3, 5, 5), rng, scale=3.0)
    x.data += 7.0
    out = bn(x)
    mean = out.data.mean(axis=(0, 2, 3))
    std = out.data.std(axis=(0, 2, 3))
    np.testing.assert_allclose(mean, 0.0, atol=1e-4)
    np.testing.assert_allclose(std, 1.0, atol=1e-2)


def test_bn_running_stats_update_and_eval(rng):
    bn = nn.BatchNorm2d(2, momentum=0.5)
    x = make_tensor((16, 2, 4, 4), rng, requires_grad=False)
    x.data += 5.0
    bn(x)
    assert bn.running_mean.data.mean() > 1.0  # moved toward the batch mean
    bn.eval()
    out1 = bn(x).data
    out2 = bn(x).data
    np.testing.assert_array_equal(out1, out2)  # eval is deterministic


def test_bn1d(rng):
    bn = nn.BatchNorm1d(4)
    x = make_tensor((32, 4), rng, scale=2.0)
    out = bn(x)
    np.testing.assert_allclose(out.data.mean(axis=0), 0.0, atol=1e-4)


def test_bn_gradients_flow(rng):
    bn = nn.BatchNorm2d(2)
    x = make_tensor((4, 2, 3, 3), rng)
    bn(x).sum().backward()
    assert bn.gamma.grad is not None
    assert bn.beta.grad is not None
    assert x.grad is not None


def test_scale_shift_equivalence(rng):
    bn = nn.BatchNorm2d(3)
    bn.running_mean.data = rng.standard_normal(3).astype(np.float32)
    bn.running_var.data = (rng.random(3).astype(np.float32) + 0.5)
    bn.gamma.data = rng.standard_normal(3).astype(np.float32)
    bn.beta.data = rng.standard_normal(3).astype(np.float32)
    bn.eval()
    x = make_tensor((2, 3, 4, 4), rng, requires_grad=False)
    scale, shift = bn_scale_shift(bn)
    expected = x.data * scale[None, :, None, None] + shift[None, :, None, None]
    np.testing.assert_allclose(bn(x).data, expected, rtol=1e-4, atol=1e-5)


def test_fold_bn_into_conv_preserves_output(rng):
    conv = nn.Conv2d(2, 3, (3, 3), padding=1, bias=True, rng=0)
    bn = nn.BatchNorm2d(3)
    bn.running_mean.data = rng.standard_normal(3).astype(np.float32)
    bn.running_var.data = (rng.random(3).astype(np.float32) + 0.5)
    bn.gamma.data = rng.standard_normal(3).astype(np.float32)
    bn.eval()
    x = make_tensor((2, 2, 5, 5), rng, requires_grad=False)
    with no_grad():
        reference = bn(conv(x)).data
        w, b = fold_bn_into_conv(conv.weight.data, conv.bias.data, bn)
        folded = conv2d(x, Tensor(w), Tensor(b), stride=1, padding=1).data
    np.testing.assert_allclose(folded, reference, rtol=1e-3, atol=1e-4)


def test_fold_bn_into_depthwise(rng):
    dw = nn.DepthwiseConv2d(3, 3, padding=1, bias=False, rng=0)
    bn = nn.BatchNorm2d(3)
    bn.running_var.data = (rng.random(3).astype(np.float32) + 0.5)
    bn.eval()
    x = make_tensor((1, 3, 4, 4), rng, requires_grad=False)
    with no_grad():
        reference = bn(dw(x)).data
        w, b = fold_bn_into_conv(dw.weight.data, None, bn, depthwise=True)
        folded = depthwise_conv2d(x, Tensor(w), Tensor(b), stride=1, padding=1).data
    np.testing.assert_allclose(folded, reference, rtol=1e-3, atol=1e-4)
