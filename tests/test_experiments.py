"""Experiment harness: scales, caching, result rendering, figure-1 runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import ALL_EXPERIMENTS, CI_SCALE, PAPER_SCALE, get_scale
from repro.experiments.common import (
    ExperimentResult,
    clear_train_cache,
    get_dataset,
    pct,
    trained,
)
from repro.models import DNN


def test_scales():
    assert get_scale("ci") is CI_SCALE
    assert get_scale("paper") is PAPER_SCALE
    assert get_scale(CI_SCALE) is CI_SCALE
    assert CI_SCALE.st_epochs == sum(CI_SCALE.st_phases)
    with pytest.raises(KeyError):
        get_scale("huge")


def test_all_experiments_registered():
    assert set(ALL_EXPERIMENTS) == {
        "table1", "table2", "table3", "table4", "table5", "table6", "table7",
        "figure1", "addition_budget",
    }
    for module in ALL_EXPERIMENTS.values():
        assert hasattr(module, "run")


def test_result_table_renders():
    result = ExperimentResult("t", "Title", rows=[{"a": 1, "b": "x"}], notes=["n1"])
    text = result.table()
    assert "Title" in text and "note: n1" in text and "x" in text


def test_pct_formatting():
    assert pct(0.9451) == "94.51"


def test_trained_cache_hits(tiny_dataset, monkeypatch):
    """Same key returns the same object without retraining."""
    import dataclasses

    clear_train_cache()
    scale = dataclasses.replace(CI_SCALE, utterances_per_word=16, seed=77, epochs=2)
    calls = []

    def build():
        calls.append(1)
        return DNN(hidden=(8,), rng=0)

    first = trained("cache-test", build, scale=scale)
    second = trained("cache-test", build, scale=scale)
    assert first is second
    assert len(calls) == 1
    assert 0.0 <= first.test_accuracy <= 1.0
    clear_train_cache()


def test_figure1_runs_tiny(monkeypatch):
    """The figure-1 runner works end to end at a tiny scale."""
    import dataclasses

    from repro.experiments import figure1

    tiny = dataclasses.replace(CI_SCALE, utterances_per_word=16, seed=77, width=8)
    result = figure1.run(tiny)
    assert len(result.rows) == 6
    assert any("node scores" in n for n in result.notes)


def test_get_dataset_is_cached():
    import dataclasses

    scale = dataclasses.replace(CI_SCALE, utterances_per_word=16, seed=77)
    assert get_dataset(scale) is get_dataset(scale)


def test_runner_cli_rejects_unknown_experiment(capsys):
    from repro.experiments import runner

    with pytest.raises(SystemExit):
        runner.main(["table99"])


def test_runner_cli_runs_figure1(capsys, monkeypatch):
    """The CLI renders figure1 end to end (cheapest experiment)."""
    import dataclasses

    from repro.experiments import figure1, runner

    tiny = dataclasses.replace(CI_SCALE, utterances_per_word=16, seed=77, width=8)
    original_run = figure1.run
    monkeypatch.setattr(
        runner.ALL_EXPERIMENTS["figure1"],
        "run",
        lambda scale, seed=0: original_run(tiny, seed=seed),
    )
    assert runner.main(["figure1"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out and "regenerated" in out
