"""Sessionful streaming: session manager, load harness, chaos, transport fit.

Worker processes cost ~1 s each to spawn, so cluster-backed tests share
small (1-worker) clusters where possible; everything else rides the
deterministic flush-mode :class:`BatchingEngine`.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hybrid import HybridConfig, STHybridNet
from repro.core.strassen import freeze_all
from repro.deploy import build_image
from repro.errors import ConfigError, WorkerCrashed
from repro.evaluation import (
    PosteriorSmoother,
    StreamingConfig,
    StreamingDetector,
    make_stream,
    num_windows,
)
from repro.serving import (
    BatchingEngine,
    ClusterRouter,
    MicroBatchConfig,
    PackedModel,
    Priority,
    PriorityPolicy,
    SlabConfig,
    StreamSessionManager,
)
from repro.serving.loadgen import (
    DEFAULT_SCENARIOS,
    NoiseScenario,
    build_arrivals,
    replay,
)

#: analysis window used by the property tests: 0.5 s keeps featurization
#: cheap while still spanning many MFCC frames
WINDOW_SECONDS = 0.5


def wait_until(predicate, timeout_s: float = 15.0, interval_s: float = 0.05) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


@pytest.fixture(scope="module")
def image():
    model = STHybridNet(HybridConfig(width=8), rng=0)
    freeze_all(model)
    model.eval()
    return build_image(model)


@pytest.fixture(scope="module")
def packed(image):
    return PackedModel(image)


def _small_packed() -> PackedModel:
    """Module-cached tiny model taking 0.5-s MFCC windows (24x10)."""
    global _SMALL_PACKED
    if _SMALL_PACKED is None:
        model = STHybridNet(
            HybridConfig(width=4, input_shape=(24, 10), num_conv_layers=2), rng=1
        )
        freeze_all(model)
        model.eval()
        _SMALL_PACKED = PackedModel(build_image(model))
    return _SMALL_PACKED


_SMALL_PACKED = None


def _engine_manager(packed_model: PackedModel, config: StreamingConfig) -> StreamSessionManager:
    engine = BatchingEngine(packed_model, MicroBatchConfig(max_batch_size=16, max_delay_ms=1.0))
    return StreamSessionManager(engine=engine, config=config)


class TestWindowingAndSmoothingInvariants:
    """Satellite: hypothesis property tests over lengths/hops/smoothing."""

    @settings(max_examples=20, deadline=None)
    @given(
        num_samples=st.integers(min_value=1_000, max_value=30_000),
        hop_ms=st.sampled_from([125.0, 250.0, 375.0, 500.0]),
        smoothing=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_session_matches_solo_detector_bitwise(
        self, num_samples, hop_ms, smoothing, seed
    ):
        config = StreamingConfig(
            hop_ms=hop_ms, smoothing_windows=smoothing, window_seconds=WINDOW_SECONDS
        )
        waveform = np.random.default_rng(seed).standard_normal(num_samples) * 0.1
        expected = num_windows(config, num_samples)
        assert expected == (
            0
            if num_samples < config.window_samples
            else 1 + (num_samples - config.window_samples) // config.hop_samples
        )
        packed_model = _small_packed()
        manager = _engine_manager(packed_model, config)
        session = manager.open(waveform)
        manager.drain()
        times, probs = session.posteriors()
        # no dropped or duplicated tail windows, ever
        assert session.stats.windows_featurized == expected
        assert session.stats.windows_served == expected
        if expected == 0:
            with pytest.raises(ConfigError):
                StreamingDetector(packed_model, config).posteriors(waveform)
            return
        ref_times, ref_probs = StreamingDetector(packed_model, config).posteriors(waveform)
        np.testing.assert_array_equal(times, ref_times)
        np.testing.assert_array_equal(probs, ref_probs)

    @settings(max_examples=15, deadline=None)
    @given(
        chunk=st.integers(min_value=137, max_value=9_001),
        smoothing=st.integers(min_value=1, max_value=4),
    )
    def test_chunked_feed_is_chunk_size_invariant(self, chunk, smoothing):
        config = StreamingConfig(smoothing_windows=smoothing, window_seconds=WINDOW_SECONDS)
        waveform = np.random.default_rng(7).standard_normal(21_000) * 0.1
        packed_model = _small_packed()
        # feeding chunk-by-chunk must cut the exact same windows
        manager = _engine_manager(packed_model, config)
        session = manager.open()
        for start in range(0, len(waveform), chunk):
            session.feed(waveform[start : start + chunk])
        session.close()
        manager.drain()
        reference = _engine_manager(packed_model, config)
        ref = reference.open(waveform)
        reference.drain()
        assert session.stats.windows_featurized == num_windows(config, len(waveform))
        np.testing.assert_array_equal(session.posteriors()[1], ref.posteriors()[1])

    def test_smoother_matches_legacy_convolve_formulation(self):
        rng = np.random.default_rng(3)
        probs = rng.random((17, 12))
        probs /= probs.sum(axis=1, keepdims=True)
        for k in (1, 2, 3, 5, 8):
            span = min(k, len(probs))
            kernel = np.ones(span) / span
            legacy = np.apply_along_axis(
                lambda col: np.convolve(col, kernel)[: len(col)], 0, probs
            )
            smoother = PosteriorSmoother(k, total_windows=len(probs))
            got = np.stack([smoother.push(row) for row in probs])
            np.testing.assert_allclose(got, legacy, rtol=1e-12, atol=1e-15)

    def test_smoother_rejects_bad_span(self):
        with pytest.raises(ConfigError):
            PosteriorSmoother(0)


class TestManagerWiring:
    def test_exactly_one_backend_required(self, packed):
        engine = BatchingEngine(packed)
        with pytest.raises(ConfigError):
            StreamSessionManager()
        with pytest.raises(ConfigError):
            StreamSessionManager(engine=engine, frontend=object())

    def test_model_pinning_needs_cluster(self, packed):
        with pytest.raises(ConfigError):
            StreamSessionManager(engine=BatchingEngine(packed), model="kws")
        with pytest.raises(ConfigError):
            StreamSessionManager(engine=BatchingEngine(packed), priority=Priority.LOW)

    def test_duplicate_session_id_rejected(self, packed):
        manager = _engine_manager(packed, StreamingConfig())
        manager.open(session_id="dup")
        with pytest.raises(ConfigError):
            manager.open(session_id="dup")

    def test_feed_after_close_rejected(self, packed):
        manager = _engine_manager(packed, StreamingConfig())
        session = manager.open()
        session.close()
        with pytest.raises(ConfigError):
            session.feed(np.zeros(100))

    def test_cross_session_bursts_coalesce(self, packed):
        """Many sessions' windows ride shared submit_many bursts."""
        config = StreamingConfig()
        manager = _engine_manager(packed, config)
        waveform, _ = make_stream(["yes"], gap_seconds=(0.4, 0.6), rng=11)
        for _ in range(6):
            manager.open(waveform)
        manager.drain()
        stats = manager.snapshot()
        assert stats.sessions == stats.sessions_done == 6
        assert stats.windows_served == stats.windows_featurized > 0
        # 6 sessions produced far fewer bursts than windows: coalescing worked
        assert stats.bursts < stats.windows_served / 2


class TestLoadHarness:
    def test_arrivals_are_deterministic(self):
        a = build_arrivals(5, pool_size=3, seed=42)
        b = build_arrivals(5, pool_size=3, seed=42)
        for x, y in zip(a, b):
            assert x.at_s == y.at_s and x.scenario == y.scenario
            np.testing.assert_array_equal(x.waveform, y.waveform)
        c = build_arrivals(5, pool_size=3, seed=43)
        assert any(
            not np.array_equal(x.waveform, y.waveform) for x, y in zip(a, c)
        )

    def test_scenarios_degrade_the_stream(self):
        quiet = build_arrivals(1, scenarios=[NoiseScenario("clean")], seed=1)
        loud = build_arrivals(
            1, scenarios=[NoiseScenario("street", background_volume=0.5)], seed=1
        )
        assert np.std(loud[0].waveform) > np.std(quiet[0].waveform)

    def test_replay_serves_every_window(self, packed):
        manager = _engine_manager(packed, StreamingConfig())
        arrivals = build_arrivals(
            8, pool_size=4, gap_seconds=(0.4, 0.8), seed=5, scenarios=DEFAULT_SCENARIOS
        )
        report = replay(manager, arrivals, pump_every=3)
        assert report.sessions == 8
        assert report.windows_failed == 0 and report.gaps == 0
        assert report.windows_served == report.stats.windows_featurized > 0
        assert report.p99_ms >= report.p50_ms > 0


class TestChaos:
    """Satellite: kill a worker mid-session; the session survives with a gap."""

    def test_crash_mid_session_gap_counted_and_no_slab_leak(self, image, packed):
        config = StreamingConfig()
        waveform, _ = make_stream(["yes", "no"], gap_seconds=(0.5, 1.0), rng=9)
        router = ClusterRouter(
            workers=1,
            transport=SlabConfig(slab_bytes=4096, slabs=32),
            policy=PriorityPolicy(max_pending=256, normal_watermark=1.0, low_watermark=1.0),
        )
        router.register("kws", image)
        with router:
            router.predict(
                np.zeros((config.mfcc.num_frames(config.window_samples), 10), np.float32),
                model="kws",
            )  # place + decode before the chaos starts
            manager = StreamSessionManager(router, config=config, model="kws")
            session = manager.open()
            half = len(waveform) // 2
            fed = session.feed(waveform[:half])
            assert fed > 0
            # stall the worker so the crash lands before the windows are read
            router.pool.inject_sleep(0, 0.3)
            router.pool.inject_crash(0)
            manager.pump()
            manager.collect(wait=True)
            doomed = session.stats.windows_failed
            assert doomed == fed, "in-flight windows must fail WorkerCrashed"
            assert session.stats.gap_windows == list(range(fed))
            assert wait_until(lambda: router.snapshot().crashes == 1)
            # EOF reclaimed the dead worker's leases, no reply ever came
            assert wait_until(
                lambda: router.pool.transport_snapshot()["leased"] == 0
            ), "crashed worker's slab leases were never reclaimed"
            # wait out the transparent restart, then stream the second half
            deadline = time.monotonic() + 15.0
            while True:
                try:
                    router.predict(
                        np.zeros(
                            (config.mfcc.num_frames(config.window_samples), 10), np.float32
                        ),
                        model="kws",
                    )
                    break
                except WorkerCrashed:
                    assert time.monotonic() < deadline, "restart never came up"
                    time.sleep(0.01)
            session.feed(waveform[half:])
            session.close()
            manager.drain()
            # subsequent windows succeeded; the gap stayed exactly the crash
            total = num_windows(config, len(waveform))
            assert session.stats.windows_featurized == total
            assert session.stats.windows_served == total - doomed
            assert session.stats.windows_failed == doomed
            assert session.stats.gaps == doomed
            times, probs = session.posteriors()
            assert len(times) == total - doomed
            # the gap shows up in the timeline: served times skip the doomed
            expected_times = [
                (i * config.hop_samples + config.window_samples / 2) / config.sample_rate
                for i in range(doomed, total)
            ]
            np.testing.assert_allclose(times, expected_times)
        snapshot = router.pool.transport_snapshot()
        assert snapshot["leased"] == 0
        assert snapshot["acquired"] == snapshot["released"]


class TestTransportFit:
    """Satellite: SlabConfig.from_observed on a mixed streams histogram."""

    #: one MFCC analysis window: 49 frames x 10 coefficients x 4 bytes
    WINDOW_BYTES = 49 * 10 * 4

    def test_from_observed_covers_mixed_streams_histogram(self):
        # mostly per-window payloads, some large burst-replies, rare huge blobs
        histogram = {
            self.WINDOW_BYTES: 900,
            8 * 1024: 80,
            512 * 1024: 4,
        }
        config = SlabConfig.from_observed(histogram, coverage=0.95, slabs=64)
        total = sum(histogram.values())
        covered = sum(n for size, n in histogram.items() if size <= config.slab_bytes)
        assert covered / total >= 0.95
        # window payloads are squarely in coverage; huge blobs are not
        assert config.slab_bytes >= 8 * 1024
        assert config.slab_bytes < 512 * 1024

    def test_streams_path_stays_on_slab_plane(self, image):
        """In-coverage window payloads must never fall back to the pipe."""
        config = StreamingConfig()
        observed = SlabConfig.from_observed(
            {self.WINDOW_BYTES: 500, 4096: 20}, coverage=0.99, slabs=64
        )
        router = ClusterRouter(
            workers=1,
            transport=observed,
            policy=PriorityPolicy(max_pending=512, normal_watermark=1.0, low_watermark=1.0),
        )
        router.register("kws", image)
        with router:
            manager = StreamSessionManager(router, config=config, model="kws")
            arrivals = build_arrivals(4, pool_size=2, gap_seconds=(0.4, 0.8), seed=13)
            report = replay(manager, arrivals, pump_every=2)
            assert report.windows_failed == 0
            transport = router.pool.transport_snapshot()
            assert transport["shm_requests"] >= report.windows_served
            assert transport["fallbacks_oversize"] == 0
            assert transport["fallbacks_exhausted"] == 0
            assert transport["pipe_requests"] == 0
        snapshot = router.pool.transport_snapshot()
        assert snapshot["leased"] == 0
        assert snapshot["acquired"] == snapshot["released"]
