"""StrassenNets core: exact SPN algebra, layers, phases, schedule."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from conftest import make_tensor
from repro.autodiff import Tensor, no_grad
from repro.core.strassen import (
    StrassenConv2d,
    StrassenDepthwiseConv2d,
    StrassenLinear,
    StrassenSchedule,
    exact_strassen_2x2,
    freeze_all,
    set_phase,
    spn_matmul,
    strassen_modules,
)
from repro.errors import ConfigError

MATS = arrays(
    dtype=np.float64,
    shape=(2, 2),
    elements=st.floats(min_value=-10, max_value=10, allow_nan=False),
)


class TestExactStrassen:
    @given(MATS, MATS)
    @settings(max_examples=60, deadline=None)
    def test_spn_reproduces_matmul(self, a, b):
        """The paper's equation (1) with the classical ternary matrices."""
        wa, wb, wc = exact_strassen_2x2()
        got = spn_matmul(wa, wb, wc, a, b, (2, 2))
        np.testing.assert_allclose(got, a @ b, rtol=1e-9, atol=1e-8)

    def test_matrices_are_ternary_with_seven_products(self):
        wa, wb, wc = exact_strassen_2x2()
        for m in (wa, wb, wc):
            assert set(np.unique(m)).issubset({-1.0, 0.0, 1.0})
        assert wa.shape == (7, 4) and wb.shape == (7, 4) and wc.shape == (4, 7)


class TestStrassenLinear:
    def test_forward_matches_manual(self, rng):
        layer = StrassenLinear(6, 4, r=5, rng=0)
        x = make_tensor((3, 6), rng, requires_grad=False)
        manual = (
            (x.data @ layer.wb.data.T) * layer.a_hat.data
        ) @ layer.wc.data.T + layer.bias.data
        np.testing.assert_allclose(layer(x).data, manual, rtol=1e-5)

    def test_gradients_flow_in_full_phase(self, rng):
        layer = StrassenLinear(5, 3, r=4, rng=0)
        x = make_tensor((2, 5), rng)
        layer(x).sum().backward()
        for p in (layer.wb, layer.wc, layer.a_hat, layer.bias):
            assert p.grad is not None

    def test_quantize_phase_uses_ternary_forward(self, rng):
        layer = StrassenLinear(5, 3, r=4, rng=0)
        layer.set_phase("quantize")
        x = make_tensor((2, 5), rng, requires_grad=False)
        out_q = layer(x).data
        layer.phase = "full"
        out_f = layer(x).data
        assert np.abs(out_q - out_f).max() > 1e-6  # quantisation changes output

    def test_quantize_phase_ste_gradients(self, rng):
        layer = StrassenLinear(5, 3, r=4, rng=0)
        layer.set_phase("quantize")
        x = make_tensor((2, 5), rng, requires_grad=False)
        layer(x).sum().backward()
        assert layer.wb.grad is not None  # STE passes gradients to shadows

    def test_freeze_absorbs_scales(self, rng):
        layer = StrassenLinear(5, 3, r=4, bias=False, rng=0)
        x = make_tensor((2, 5), rng, requires_grad=False)
        layer.set_phase("quantize")
        with no_grad():
            out_quantized = layer(x).data.copy()
        layer.freeze()
        assert layer.phase == "frozen"
        assert set(np.unique(layer.wb.data)).issubset({-1.0, 0.0, 1.0})
        assert set(np.unique(layer.wc.data)).issubset({-1.0, 0.0, 1.0})
        assert not layer.wb.requires_grad and not layer.wc.requires_grad
        with no_grad():
            out_frozen = layer(x).data
        # freezing + scale absorption preserves the quantised-phase function
        np.testing.assert_allclose(out_frozen, out_quantized, rtol=1e-4, atol=1e-5)

    def test_frozen_only_a_hat_trains(self, rng):
        layer = StrassenLinear(5, 3, r=4, rng=0)
        layer.freeze()
        x = make_tensor((2, 5), rng, requires_grad=False)
        layer(x).sum().backward()
        assert layer.wb.grad is None and layer.wc.grad is None
        assert layer.a_hat.grad is not None

    def test_cannot_leave_frozen(self):
        layer = StrassenLinear(4, 2, r=3, rng=0)
        layer.freeze()
        with pytest.raises(ConfigError):
            layer.set_phase("full")

    def test_invalid_phase_and_r(self):
        layer = StrassenLinear(4, 2, r=3, rng=0)
        with pytest.raises(ConfigError):
            layer.set_phase("bogus")
        with pytest.raises(ConfigError):
            StrassenLinear(4, 2, r=0)

    def test_size_breakdown_bits(self):
        layer = StrassenLinear(8, 4, r=6, rng=0)
        size = layer.size_breakdown(a_hat_bits=16, bias_bits=8)
        by_name = {e.name: e for e in size.entries}
        assert by_name["wb"].bits == 2 and by_name["wb"].elements == 48
        assert by_name["a_hat"].bits == 16
        assert by_name["bias"].bits == 8


class TestStrassenConv:
    def test_shapes(self, rng):
        layer = StrassenConv2d(3, 8, (3, 3), r=6, stride=2, padding=1, rng=0)
        x = make_tensor((2, 3, 9, 9), rng, requires_grad=False)
        assert layer(x).shape == (2, 8, 5, 5)

    def test_freeze_preserves_quantized_function(self, rng):
        layer = StrassenConv2d(2, 4, (3, 3), r=3, padding=1, bias=False, rng=0)
        x = make_tensor((1, 2, 5, 5), rng, requires_grad=False)
        layer.set_phase("quantize")
        with no_grad():
            before = layer(x).data.copy()
        layer.freeze()
        with no_grad():
            after = layer(x).data
        np.testing.assert_allclose(after, before, rtol=1e-4, atol=1e-5)

    def test_depthwise_shapes_and_freeze(self, rng):
        layer = StrassenDepthwiseConv2d(4, 3, padding=1, rng=0)
        x = make_tensor((2, 4, 6, 6), rng, requires_grad=False)
        assert layer(x).shape == (2, 4, 6, 6)
        layer.freeze()
        assert set(np.unique(layer.wb.data)).issubset({-1.0, 0.0, 1.0})


class TestTreeHelpers:
    def _model(self):
        from repro import nn

        class M(nn.Module):
            def __init__(self):
                super().__init__()
                self.a = StrassenLinear(4, 4, r=3, rng=0)
                self.b = StrassenLinear(4, 2, r=3, rng=1)

            def forward(self, x):
                return self.b(self.a(x))

        return M()

    def test_strassen_modules_finds_all(self):
        model = self._model()
        assert len(list(strassen_modules(model))) == 2

    def test_set_phase_counts_changes(self):
        model = self._model()
        assert set_phase(model, "quantize") == 2
        assert set_phase(model, "quantize") == 0  # idempotent

    def test_freeze_all(self):
        model = self._model()
        assert freeze_all(model) == 2
        assert freeze_all(model) == 0
        assert all(m.phase == "frozen" for m in strassen_modules(model))


class TestSchedule:
    def test_phase_transitions(self, rng):
        from repro.training import TrainConfig, Trainer

        model = self._make_model()
        schedule = StrassenSchedule(full_epochs=2, quantize_epochs=2)
        trainer = Trainer(model, TrainConfig(epochs=6, batch_size=8, lr_drop_every=None), callbacks=[schedule])
        x = rng.standard_normal((16, 4)).astype(np.float32)
        y = (x[:, 0] > 0).astype(np.int64)

        phases_seen = []

        class Recorder(StrassenSchedule.__mro__[1]):  # Callback
            def on_epoch_begin(self, trainer, epoch):
                phases_seen.append(next(strassen_modules(trainer.model)).phase)

        trainer.callbacks.append(Recorder())
        trainer.fit(x, y)
        assert phases_seen == ["full", "full", "quantize", "quantize", "frozen", "frozen"]

    @staticmethod
    def _make_model():
        from repro import nn

        class M(nn.Module):
            def __init__(self):
                super().__init__()
                self.layer = StrassenLinear(4, 2, r=3, rng=0)

            def forward(self, x):
                return self.layer(x)

        return M()
