"""Control plane: autoscaler watermarks, canary promote/rollback, control loop.

Every decision path runs through the deterministic ``step()`` entry points
(the exact code the background thread drives), so these tests assert on
decisions, not timers.  Worker processes cost ~1 s each to spawn, so
clusters are shared per class and kept to 2 workers.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.hybrid import HybridConfig, STHybridNet
from repro.core.strassen import freeze_all
from repro.deploy import build_image
from repro.errors import ConfigError, RoutingError
from repro.serving import (
    AutoscalePolicy,
    Autoscaler,
    CanaryController,
    CanaryPolicy,
    ClusterRouter,
    ControlLoop,
    DeployManager,
    MicroBatchConfig,
    PackedModel,
)


def frozen_image(width: int = 8, rng: int = 0):
    """A small frozen ST-Hybrid image (weights random, arithmetic real)."""
    model = STHybridNet(HybridConfig(width=width), rng=rng)
    freeze_all(model)
    model.eval()
    return build_image(model)


@pytest.fixture(scope="module")
def images():
    """Two distinct model payloads (v1/v2 content differs; v1 == canary)."""
    return {v: frozen_image(8, rng=i) for i, v in enumerate(["v1", "v2"])}


@pytest.fixture(scope="module")
def x():
    """One deterministic MFCC-shaped input row."""
    return np.random.default_rng(7).standard_normal((49, 10)).astype(np.float32)


def wait_until(predicate, timeout_s: float = 15.0, interval_s: float = 0.05) -> bool:
    """Poll ``predicate`` until true or ``timeout_s`` elapses."""
    limit = time.monotonic() + timeout_s
    while time.monotonic() < limit:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


class TestAutoscalePolicy:
    def test_defaults_are_valid(self):
        AutoscalePolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"low_load": -1.0},
            {"low_load": 2.0, "high_load": 1.0},
            {"max_p99_ms": 0.0},
            {"min_replicas": 0},
            {"min_replicas": 3, "max_replicas": 2},
            {"step": 0},
            {"cooldown_steps": -1},
        ],
    )
    def test_rejects_bad_bounds(self, kwargs):
        with pytest.raises(ConfigError):
            AutoscalePolicy(**kwargs)


class TestCanaryPolicy:
    def test_defaults_are_valid(self):
        CanaryPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fraction": 0.0},
            {"fraction": 1.0},
            {"min_requests": 0},
            {"max_p99_ms": 0.0},
            {"max_p99_ratio": -1.0},
            {"max_error_rate": -0.1},
            {"max_shed": -1},
            {"decision_timeout_s": 0.0},
        ],
    )
    def test_rejects_bad_bounds(self, kwargs):
        with pytest.raises(ConfigError):
            CanaryPolicy(**kwargs)


class TestAutoscaler:
    @pytest.fixture(scope="class")
    def router(self, images, x):
        """A running 2-worker cluster with ``hot`` placed on one worker."""
        router = ClusterRouter(
            workers=2, transport=False, config=MicroBatchConfig(max_batch_size=8)
        )
        router.register("hot", images["v1"])
        with router:
            router.predict(x)  # place hot@v1 on its sticky worker
            yield router

    def test_grows_under_load_then_shrinks_when_idle(self, router, x):
        key = "hot@v1"
        scaler = Autoscaler(
            router,
            AutoscalePolicy(low_load=0.5, high_load=2.0, cooldown_steps=0),
        )
        (home,) = router.placements()[key]
        router.pool.inject_sleep(home, 0.6)  # hold the burst in flight
        futures = [router.submit(x) for _ in range(8)]
        assert wait_until(lambda: router.pool.in_flight(home) >= 8, timeout_s=5.0)

        events = scaler.step()
        assert [e.action for e in events] == ["grow"]
        assert events[0].key == key and events[0].to_replicas == 2
        assert len(router.placements()[key]) == 2
        assert "high watermark" in events[0].reason

        for future in futures:
            future.result(timeout=15)
        assert wait_until(
            lambda: all(r.in_flight == 0 for r in router.snapshot().workers)
        )
        events = scaler.step()
        assert [e.action for e in events] == ["shrink"]
        assert len(router.placements()[key]) == 1
        # decisions surface in the router's stats rollup
        actions = [e.action for e in router.snapshot().scale_events]
        assert actions[-2:] == ["grow", "shrink"]
        router.predict(x)  # the survivor still serves

    def test_cooldown_spaces_decisions(self, router, x):
        key = "hot@v1"
        scaler = Autoscaler(
            router,
            AutoscalePolicy(low_load=0.5, high_load=2.0, cooldown_steps=2),
        )
        (home,) = router.placements()[key]
        router.pool.inject_sleep(home, 0.5)
        futures = [router.submit(x) for _ in range(8)]
        assert wait_until(lambda: router.pool.in_flight(home) >= 8, timeout_s=5.0)
        assert len(scaler.step()) == 1
        # still loaded, but the key is cooling down: no second decision
        assert scaler.step() == []
        for future in futures:
            future.result(timeout=15)
        assert scaler.step() == []  # cooldown round 2
        assert wait_until(
            lambda: all(r.in_flight == 0 for r in router.snapshot().workers)
        )
        assert [e.action for e in scaler.step()] == ["shrink"]

    def test_budget_capped_grow_is_skipped(self, images, x):
        image = images["v1"]
        size = PackedModel(image, cache=True).decoded_bytes()
        router = ClusterRouter(workers=2, capacity_bytes=size, transport=False)
        router.register("hot", image)
        with router:
            router.predict(x)
            (home,) = router.placements()["hot@v1"]
            router.pool.inject_sleep(home, 0.4)
            futures = [router.submit(x) for _ in range(6)]
            assert wait_until(
                lambda: router.pool.in_flight(home) >= 6, timeout_s=5.0
            )
            scaler = Autoscaler(
                router, AutoscalePolicy(high_load=2.0, cooldown_steps=0)
            )
            # a second copy cannot fit the byte budget: the round is skipped,
            # nothing breaks, nothing is evicted
            assert scaler.step() == []
            assert len(router.placements()["hot@v1"]) == 1
            assert router.snapshot().scale_events == ()
            for future in futures:
                future.result(timeout=15)


class TestResize:
    @pytest.fixture(scope="class")
    def router(self, images, x):
        router = ClusterRouter(workers=2, transport=False)
        router.register("hot", images["v1"])
        with router:
            router.predict(x)
            yield router

    def test_grow_and_shrink_round_trip(self, router, x):
        event = router.resize("hot", 2, reason="test grow")
        assert event.action == "grow"
        assert (event.from_replicas, event.to_replicas) == (1, 2)
        assert len(router.placements()["hot@v1"]) == 2
        assert router.resize("hot", 2) is None  # no-op target
        event = router.resize("hot", 1, reason="test shrink")
        assert event.action == "shrink"
        assert len(router.placements()["hot@v1"]) == 1
        router.predict(x)  # survivor serves

    def test_target_clamped_to_pool(self, router):
        event = router.resize("hot", 99)
        assert event is not None and event.to_replicas == 2
        router.resize("hot", 1)

    def test_unplaced_version_rejected(self, router, images):
        router.register("hot", images["v2"], version="v9", activate=False)
        with pytest.raises(RoutingError, match="no live placement"):
            router.resize("hot", 2, version="v9")
        router.remove("hot", version="v9")

    def test_unknown_model_rejected(self, router):
        with pytest.raises(RoutingError, match="unknown model"):
            router.resize("ghost", 2)


class TestCanaryController:
    @pytest.fixture()
    def router(self, images, x):
        """Fresh running cluster per test: canary verdicts mutate routing."""
        router = ClusterRouter(workers=2, transport=False)
        router.register("hot", images["v1"], version="v1")
        with router:
            router.predict(x)
            yield router

    def test_healthy_canary_promotes(self, router, images, x):
        # the canary ships the SAME blob as v1: predictions must be
        # bitwise-identical before, during, and after the promotion
        reference = PackedModel(images["v1"])(x[None])[0]
        router.register("hot", images["v1"], version="v2", activate=False)
        router.warm("hot", "v2")
        controller = CanaryController(
            router,
            "hot",
            "v2",
            CanaryPolicy(fraction=0.5, min_requests=4, decision_timeout_s=30.0),
        )
        controller.begin()
        split = router.canary_split("hot")
        assert split.state == "running" and split.version == "v2"
        for _ in range(8):
            np.testing.assert_array_equal(router.predict(x), reference)
        status = controller.step()
        assert status.phase == "promoted", status.reason
        assert status.observed >= 4 and status.errors == 0
        assert router.current_version("hot") == "v2"
        assert router.canary_split("hot").state == "promoted"
        assert "hot@v1" not in router.placements()  # old plans unloaded
        np.testing.assert_array_equal(router.predict(x), reference)
        # terminal: further steps are no-ops
        assert controller.step().phase == "promoted"

    def test_slow_canary_rolls_back(self, router, images, x):
        reference = router.predict(x)
        router.register("hot", images["v1"], version="v2", activate=False)
        router.inject_version_lag("hot", "v2", 0.05)
        router.warm("hot", "v2")
        controller = CanaryController(
            router,
            "hot",
            "v2",
            CanaryPolicy(
                fraction=0.5,
                min_requests=2,
                max_p99_ms=10.0,
                decision_timeout_s=30.0,
            ),
        )
        controller.begin()
        for _ in range(6):
            np.testing.assert_array_equal(router.predict(x), reference)
        status = None
        for _ in range(20):
            status = controller.step()
            if status.done:
                break
            for _ in range(2):
                np.testing.assert_array_equal(router.predict(x), reference)
        assert status.phase == "rolled_back"
        assert "p99" in status.reason
        assert router.current_version("hot") == "v1"  # routing untouched
        assert router.canary_split("hot").state == "rolled_back"
        assert "hot@v2" not in router.placements()  # canary plans unloaded
        assert "v2" in router.versions("hot")  # image stays for diagnosis
        np.testing.assert_array_equal(router.predict(x), reference)

    def test_abort_before_flip_rolls_back(self, router, images, x):
        router.register("hot", images["v1"], version="v2", activate=False)
        router.warm("hot", "v2")
        controller = CanaryController(
            router, "hot", "v2", CanaryPolicy(fraction=0.5, min_requests=50)
        )
        controller.begin()
        router.predict(x)
        status = controller.abort("operator said no")
        assert status.phase == "rolled_back"
        assert status.reason == "operator said no"
        assert router.current_version("hot") == "v1"
        assert "hot@v2" not in router.placements()

    def test_current_version_cannot_canary(self, router):
        with pytest.raises(ConfigError, match="current"):
            CanaryController(router, "hot", "v1", CanaryPolicy())


class TestDeployManagerCanary:
    @pytest.fixture()
    def router(self, images, x):
        router = ClusterRouter(workers=2, transport=False)
        router.register("hot", images["v1"], version="v1")
        with router:
            router.predict(x)
            yield router

    def _traffic(self, router, x, stop):
        """Background decision traffic for the synchronous deploy loop."""
        while not stop.is_set():
            router.predict(x)

    def test_deploy_with_canary_promotes(self, router, images, x):
        deploys = DeployManager(router)
        stop = threading.Event()
        thread = threading.Thread(target=self._traffic, args=(router, x, stop))
        thread.start()
        try:
            report = deploys.deploy(
                "hot",
                images["v1"],
                "v2",
                canary=CanaryPolicy(
                    fraction=0.25, min_requests=8, decision_timeout_s=30.0
                ),
            )
        finally:
            stop.set()
            thread.join()
        assert report.canary_outcome == "promoted"
        assert report.canary_observed >= 8
        assert router.current_version("hot") == "v2"

    def test_deploy_with_canary_rolls_back_on_breach(self, router, images, x):
        deploys = DeployManager(router)
        # pre-stage the version so the latency fault is armed before the
        # deploy warms it (the lag re-applies on every load of the key)
        router.register("hot", images["v1"], version="v2", activate=False)
        router.inject_version_lag("hot", "v2", 0.05)
        stop = threading.Event()
        thread = threading.Thread(target=self._traffic, args=(router, x, stop))
        thread.start()
        try:
            report = deploys.deploy(
                "hot",
                images["v1"],
                "v2",
                canary=CanaryPolicy(
                    fraction=0.25,
                    min_requests=4,
                    max_p99_ms=10.0,
                    decision_timeout_s=30.0,
                ),
            )
        finally:
            stop.set()
            thread.join()
        assert report.canary_outcome == "rolled_back"
        assert "p99" in report.canary_reason
        assert router.current_version("hot") == "v1"  # rollback is a no-op flip


class TestControlLoop:
    @pytest.fixture()
    def router(self, images, x):
        router = ClusterRouter(workers=2, transport=False)
        router.register("hot", images["v1"], version="v1")
        with router:
            router.predict(x)
            yield router

    def test_step_scales_and_counts(self, router, x):
        loop = ControlLoop(
            router,
            autoscaler=AutoscalePolicy(high_load=2.0, cooldown_steps=0),
        )
        (home,) = router.placements()["hot@v1"]
        router.pool.inject_sleep(home, 0.5)
        futures = [router.submit(x) for _ in range(8)]
        assert wait_until(lambda: router.pool.in_flight(home) >= 8, timeout_s=5.0)
        events = loop.step()
        assert [e.action for e in events] == ["grow"]
        stats = loop.snapshot()
        assert stats.steps == 1 and stats.errors == 0
        assert [e.action for e in stats.scale_events] == ["grow"]
        for future in futures:
            future.result(timeout=15)

    def test_step_drives_watched_canary(self, router, images, x):
        loop = ControlLoop(router)
        router.register("hot", images["v1"], version="v2", activate=False)
        router.warm("hot", "v2")
        controller = CanaryController(
            router, "hot", "v2", CanaryPolicy(fraction=0.5, min_requests=4)
        )
        loop.watch(controller)  # watch() opens the split
        assert router.canary_split("hot").state == "running"
        for _ in range(8):
            router.predict(x)
        loop.step()
        verdict = loop.snapshot().canaries["hot"]
        assert verdict.done and verdict.phase == "promoted"
        assert router.current_version("hot") == "v2"
        loop.step()  # pruned controller: stepping again is harmless
        assert loop.snapshot().canaries["hot"].phase == "promoted"

    def test_background_thread_runs_and_stops(self, router):
        with ControlLoop(router, interval_s=0.02) as loop:
            assert wait_until(lambda: loop.snapshot().steps >= 2, timeout_s=5.0)
        steps = loop.snapshot().steps
        time.sleep(0.1)
        assert loop.snapshot().steps == steps  # thread really stopped

    def test_rejects_bad_interval(self, router):
        with pytest.raises(ConfigError):
            ControlLoop(router, interval_s=0.0)


class TestDeprecatedAliases:
    def test_router_stats_warns(self, images):
        router = ClusterRouter(workers=2, transport=False)
        router.register("hot", images["v1"])
        with pytest.warns(DeprecationWarning, match="snapshot"):
            stats = router.stats()
        assert stats.current_versions == {"hot": "v1"}

    def test_registry_stats_snapshot_warns(self):
        from repro.serving import ModelRegistry

        registry = ModelRegistry()
        with pytest.warns(DeprecationWarning, match="snapshot"):
            registry.stats_snapshot()
