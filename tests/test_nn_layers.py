"""Layer modules: shapes, gradients, containers, dropout."""

from __future__ import annotations

import numpy as np
import pytest

from conftest import make_tensor
from repro import nn
from repro.autodiff import Tensor, check_gradients


def test_linear_shapes_and_gradcheck(rng):
    layer = nn.Linear(5, 3, rng=0)
    x = make_tensor((4, 5), rng)
    out = layer(x)
    assert out.shape == (4, 3)
    check_gradients(lambda x, w, b: layer(x), [x, layer.weight, layer.bias])


def test_linear_no_bias(rng):
    layer = nn.Linear(5, 3, bias=False, rng=0)
    assert layer.bias is None
    assert layer(make_tensor((2, 5), rng)).shape == (2, 3)


def test_conv2d_module(rng):
    layer = nn.Conv2d(3, 8, (3, 3), stride=2, padding=1, rng=0)
    x = make_tensor((2, 3, 9, 9), rng)
    out = layer(x)
    assert out.shape == (2, 8, 5, 5)
    out.sum().backward()
    assert layer.weight.grad is not None


def test_pointwise_is_1x1(rng):
    layer = nn.PointwiseConv2d(4, 6, rng=0)
    assert layer.kernel_size == (1, 1)
    x = make_tensor((1, 4, 3, 3), rng)
    assert layer(x).shape == (1, 6, 3, 3)


def test_ds_block_preserves_spatial(rng):
    block = nn.DSConvBlock(4, 8, 3, padding=1, rng=0)
    x = make_tensor((2, 4, 6, 5), rng)
    out = block(x)
    assert out.shape == (2, 8, 6, 5)
    assert (out.data >= 0).all()  # ends in ReLU
    out.sum().backward()
    assert block.pointwise.weight.grad is not None
    assert block.depthwise.weight.grad is not None


def test_sequential_container(rng):
    seq = nn.Sequential(nn.Linear(4, 8, rng=0), nn.ReLU(), nn.Linear(8, 2, rng=1))
    x = make_tensor((3, 4), rng)
    assert seq(x).shape == (3, 2)
    assert len(seq) == 3
    assert isinstance(seq[1], nn.ReLU)
    assert len(list(seq.parameters())) == 4


def test_global_avg_pool(rng):
    pool = nn.GlobalAvgPool2d()
    x = make_tensor((2, 5, 4, 4), rng)
    out = pool(x)
    assert out.shape == (2, 5)
    np.testing.assert_allclose(out.data, x.data.mean(axis=(2, 3)), rtol=1e-5)


def test_dropout_train_vs_eval(rng):
    drop = nn.Dropout(0.5, rng=0)
    x = Tensor(np.ones((100, 100), dtype=np.float32))
    out = drop(x)
    zero_fraction = float(np.mean(out.data == 0))
    assert 0.35 < zero_fraction < 0.65
    # inverted scaling keeps the expectation
    assert abs(out.data.mean() - 1.0) < 0.1
    drop.eval()
    np.testing.assert_array_equal(drop(x).data, x.data)


def test_dropout_validates_probability():
    with pytest.raises(ValueError):
        nn.Dropout(1.0)


def test_activation_modules(rng):
    x = make_tensor((3, 4), rng)
    assert (nn.ReLU()(x).data >= 0).all()
    np.testing.assert_allclose(nn.Tanh()(x).data, np.tanh(x.data), rtol=1e-5)
    probs = nn.Softmax()(x).data
    np.testing.assert_allclose(probs.sum(axis=-1), 1.0, rtol=1e-5)
    assert nn.Identity()(x) is x


def test_init_schemes_bounds(rng):
    w = nn.init.kaiming_uniform((64, 32), fan_in=32, rng=rng)
    bound = np.sqrt(6.0 / 32)
    assert np.abs(w).max() <= bound
    g = nn.init.glorot_uniform((16, 16), 16, 16, rng=rng)
    assert np.abs(g).max() <= np.sqrt(6.0 / 32)
    assert nn.init.zeros(4).sum() == 0
    assert nn.init.ones(4).sum() == 4
