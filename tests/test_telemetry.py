"""Unified telemetry plane: registry, tracing, exporters, kernel profiling.

The acceptance surface of the observability layer: one ``snapshot()``
tree spanning every serving subsystem, sampled end-to-end request traces
whose lifecycle spans tile the measured wall-clock, a zero-overhead
disabled path, and the kernel-profiling hooks the perf work is gated on.
"""

from __future__ import annotations

import json
import time
import tracemalloc
import urllib.request

import numpy as np
import pytest

from repro.core.hybrid import HybridConfig, STHybridNet
from repro.core.strassen import freeze_all
from repro.deploy import build_image
from repro.serving import (
    AsyncServingFrontend,
    BatchingEngine,
    ClusterRouter,
    MicroBatchConfig,
    ModelRegistry,
    PackedModel,
    StreamSessionManager,
)
from repro.serving import telemetry
from repro.serving.control import ControlLoop
from repro.serving.telemetry import (
    Counter,
    Gauge,
    Histogram,
    KernelProfile,
    MetricsRegistry,
    TelemetryServer,
    Trace,
    Tracer,
    get_registry,
    profile_kernels,
    to_chrome_trace,
    to_jsonl,
    to_prometheus,
)


def frozen_image(width: int = 8, rng: int = 0):
    """A small frozen ST-Hybrid image (weights random, arithmetic real)."""
    model = STHybridNet(HybridConfig(width=width), rng=rng)
    freeze_all(model)
    model.eval()
    return build_image(model)


@pytest.fixture(scope="module")
def image():
    return frozen_image()


@pytest.fixture(scope="module")
def traced_cluster(image):
    """A running 2-worker cluster tracing every request."""
    router = ClusterRouter(
        workers=2,
        config=MicroBatchConfig(max_batch_size=8),
        trace_sample_rate=1.0,
    )
    router.register("kws", image)
    with router:
        yield router


def echo_model(batch: np.ndarray) -> np.ndarray:
    """Fake model: each request's first feature (traces routing)."""
    return batch.reshape(batch.shape[0], -1)[:, :1]


class TestMetricsRegistry:
    def test_counters_gauges_histograms_nest_by_dotted_name(self):
        registry = MetricsRegistry()
        registry.counter("traces.sampled").inc(3)
        registry.gauge("pool.resident_bytes").set(42.0)
        registry.gauge("pool.workers").inc(2.0)
        for v in (1.0, 2.0, 3.0):
            registry.histogram("latency.submit_ms").observe(v)
        tree = registry.snapshot()
        assert tree["traces"]["sampled"] == 3
        assert tree["pool"]["resident_bytes"] == 42.0
        assert tree["pool"]["workers"] == 2.0
        summary = tree["latency"]["submit_ms"]
        assert summary["count"] == 3 and summary["p50"] == 2.0

    def test_counter_gauge_are_reused_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")
        assert registry.gauge("g") is registry.gauge("g")
        registry.gauge("g").inc()
        registry.gauge("g").dec()
        assert registry.gauge("g").value == 0.0

    def test_sources_mount_live_trees_latest_wins(self):
        registry = MetricsRegistry()
        registry.register_source("engine", lambda: {"served": 1})
        registry.register_source("engine", lambda: {"served": 2})
        assert registry.snapshot()["engine"] == {"served": 2}
        assert registry.sources() == ("engine",)
        registry.unregister_source("engine")
        assert "engine" not in registry.snapshot()

    def test_dotted_prefix_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().register_source("a.b", lambda: {})

    def test_bound_method_sources_do_not_pin_components(self):
        class Component:
            def tree(self):
                return {"alive": True}

        registry = MetricsRegistry()
        component = Component()
        registry.register_source("thing", component.tree)
        assert registry.snapshot()["thing"] == {"alive": True}
        del component
        assert "thing" not in registry.snapshot()  # weakref died, source pruned
        assert registry.sources() == ()

    def test_broken_source_cannot_sink_the_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("ok").inc()

        def broken():
            raise RuntimeError("boom")

        registry.register_source("bad", broken)
        tree = registry.snapshot()
        assert tree["ok"] == 1
        assert "boom" in tree["bad"]["source_error"]


class TestExporters:
    def test_prometheus_renders_numeric_leaves(self):
        tree = {
            "cluster": {"served": 7, "shed_by_priority": {"HIGH": 0, "LOW": 2}},
            "versions": {"current": "v1"},  # non-numeric: skipped
            "healthy": True,
        }
        text = to_prometheus(tree)
        assert "cluster_served 7\n" in text
        assert "cluster_shed_by_priority_LOW 2" in text
        assert "healthy 1" in text
        assert "v1" not in text

    def test_jsonl_one_object_per_leaf_including_lists(self):
        tree = {"workers": [{"in_flight": 1}, {"in_flight": 0}], "served": 5}
        lines = [json.loads(line) for line in to_jsonl(tree).strip().split("\n")]
        by_name = {row["name"]: row["value"] for row in lines}
        assert by_name["workers.0.in_flight"] == 1
        assert by_name["served"] == 5

    def test_chrome_trace_events_are_complete_spans(self, tmp_path):
        trace = Trace(trace_id=7)
        trace.add("kernel", 1.0, 1.5)
        trace.add("admission", 0.0, 1.0)
        doc = to_chrome_trace([trace])
        events = doc["traceEvents"]
        assert [e["name"] for e in events] == ["admission", "kernel"]  # time order
        assert events[1]["ts"] == pytest.approx(1.0e6)
        assert events[1]["dur"] == pytest.approx(0.5e6)
        path = tmp_path / "trace.json"
        telemetry.dump_trace([trace], str(path))
        assert json.loads(path.read_text())["traceEvents"]


class TestTracer:
    def test_sampling_period_from_rate(self):
        tracer = Tracer(1.0)
        assert all(tracer.maybe_trace() is not None for _ in range(5))
        every_other = Tracer(0.5)
        sampled = [every_other.maybe_trace() is not None for _ in range(10)]
        assert sum(sampled) == 5

    def test_rate_zero_never_samples(self):
        tracer = Tracer(0.0)
        assert all(tracer.maybe_trace() is None for _ in range(100))
        assert tracer.traces() == ()

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(1.5)

    def test_finished_traces_bounded_by_keep(self):
        tracer = Tracer(1.0, keep=3)
        for _ in range(5):
            tracer.finish(tracer.maybe_trace())
        assert len(tracer.traces()) == 3

    def test_registry_counters_track_sampling(self):
        registry = MetricsRegistry()
        tracer = Tracer(1.0, registry=registry)
        trace = tracer.maybe_trace()
        trace.add("kernel", 0.0, 1.0)
        tracer.finish(trace)
        tree = registry.snapshot()
        assert tree["traces"]["sampled"] == 1
        assert tree["traces"]["finished"] == 1

    def test_span_context_manager_and_totals(self):
        trace = Trace(trace_id=1)
        with trace.span("work"):
            time.sleep(0.01)
        assert trace.spans[0].name == "work"
        assert trace.total_span_s() == pytest.approx(trace.wall_s)

    def test_rate_zero_allocates_nothing_per_request(self):
        # the disabled hot path: one attribute load, no object creation —
        # any allocation attributable to telemetry.py is a regression
        tracer = Tracer(0.0)
        tracer.maybe_trace()  # warm any lazy state
        telemetry_file = telemetry.__file__
        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot()
            for _ in range(1000):
                tracer.maybe_trace()
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        grown = [
            stat
            for stat in after.compare_to(before, "filename")
            if stat.traceback[0].filename == telemetry_file and stat.size_diff > 0
        ]
        assert not grown, f"rate=0 tracing allocated: {grown}"


class TestKernelProfile:
    def test_profiled_forward_is_bitwise_identical(self, image, rng):
        packed = PackedModel(image)
        x = rng.standard_normal((4, 49, 10)).astype(np.float32)
        baseline = packed(x)
        with profile_kernels() as profile:
            profiled = packed(x)
        np.testing.assert_array_equal(profiled, baseline)
        breakdown = profile.snapshot()
        assert {"conv", "dw", "pw", "linear"} <= set(breakdown)
        for row in breakdown.values():
            assert row["gather_calls"] > 0
            assert row["gather_s"] <= row["layer_s"] + 1e-6

    def test_hook_restored_after_block(self, image, rng):
        from repro.serving.kernels import get_kernel_profile

        assert get_kernel_profile() is None
        with profile_kernels():
            assert get_kernel_profile() is not None
        assert get_kernel_profile() is None

    def test_merge_accumulates_across_profiles(self):
        a, b = KernelProfile(), KernelProfile()
        a.record_gather(0.5)
        b.record_gather(0.25)
        a.merge(b.snapshot())
        merged = a.snapshot()["other"]
        assert merged["gather_calls"] == 2
        assert merged["gather_s"] == pytest.approx(0.75)


class TestTelemetryServer:
    def test_metrics_and_healthz_endpoints(self):
        registry = MetricsRegistry()
        registry.counter("requests.served").inc(9)
        with TelemetryServer(registry) as server:
            host, port = server.address
            with urllib.request.urlopen(f"http://{host}:{port}/metrics") as resp:
                assert b"requests_served 9" in resp.read()
            with urllib.request.urlopen(f"http://{host}:{port}/metrics.jsonl") as resp:
                assert json.loads(resp.read().split(b"\n")[0])["value"] == 9
            with urllib.request.urlopen(f"http://{host}:{port}/healthz") as resp:
                assert json.loads(resp.read())["status"] == "ok"
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"http://{host}:{port}/nope")

    def test_frontend_serves_metrics(self):
        frontend = AsyncServingFrontend(echo_model, max_pending=4)
        try:
            host, port = frontend.serve_metrics()
            assert frontend.serve_metrics() == (host, port)  # idempotent
            with urllib.request.urlopen(f"http://{host}:{port}/healthz") as resp:
                assert json.loads(resp.read())["status"] == "ok"
        finally:
            frontend.stop()
        assert frontend._metrics_server is None


class TestClusterTelemetry:
    def test_single_namespace_snapshot_covers_every_subsystem(
        self, traced_cluster, rng
    ):
        # one snapshot() tree: engine, cluster, shm, placement, control,
        # streams (plus registry) — the tentpole acceptance criterion
        model_registry = ModelRegistry()
        engine = BatchingEngine(echo_model)
        manager = StreamSessionManager(engine=engine)
        loop = ControlLoop(traced_cluster)
        session = manager.open()
        session.feed_features(rng.standard_normal((3, 49, 10)).astype(np.float32))
        manager.pump()
        manager.collect(wait=True)
        traced_cluster.predict(
            rng.standard_normal((49, 10)).astype(np.float32), model="kws"
        )
        loop.step()
        tree = telemetry.snapshot()
        assert {"engine", "cluster", "shm", "placement", "control", "streams", "registry"} <= set(
            tree
        )
        assert tree["cluster"]["served"] >= 1
        assert tree["engine"]["served"] == 3
        assert tree["streams"]["windows_served"] == 3
        assert tree["control"]["steps"] == 1
        assert "shm_requests" in tree["shm"]  # data-plane counters present
        assert tree["placement"]  # at least the predicted key is placed
        # the tree is export-ready end to end
        assert "cluster_served" in to_prometheus(tree)

    def test_end_to_end_trace_spans_tile_the_wall_clock(self, traced_cluster, rng):
        x = rng.standard_normal((49, 10)).astype(np.float32)
        before = len(traced_cluster.traces())
        start = time.monotonic()
        traced_cluster.predict(x, model="kws")
        wall = time.monotonic() - start
        assert len(traced_cluster.traces()) > before
        trace = traced_cluster.traces()[-1]
        names = [span.name for span in trace.spans]
        # >= 5 lifecycle spans, including the named acceptance set
        assert len(names) >= 5
        assert {"admission", "queue", "transport", "kernel", "completion"} <= set(names)
        # spans tile the request: durations sum to within the wall-clock
        total = trace.total_span_s()
        assert total <= wall + 0.05
        assert total >= 0.9 * trace.wall_s
        assert trace.wall_s <= wall + 0.05

    def test_traced_path_bitwise_identical_to_untraced_reference(
        self, traced_cluster, image, rng
    ):
        # every request on this cluster is traced; the packed model is the
        # untraced reference the untraced cluster path is already gated on
        reference = PackedModel(image)
        x = rng.standard_normal((49, 10)).astype(np.float32)
        np.testing.assert_array_equal(
            traced_cluster.predict(x, model="kws"), reference(x[None])[0]
        )

    def test_trace_export_round_trips(self, traced_cluster, rng, tmp_path):
        traced_cluster.predict(
            rng.standard_normal((49, 10)).astype(np.float32), model="kws"
        )
        path = tmp_path / "cluster_trace.json"
        doc = traced_cluster.dump_trace(str(path))
        assert doc["traceEvents"]
        assert json.loads(path.read_text()) == doc

    def test_cluster_kernel_profile_round_trip(self, traced_cluster, rng):
        traced_cluster.profile_kernels(True)
        try:
            traced_cluster.predict(
                rng.standard_normal((49, 10)).astype(np.float32), model="kws"
            )
            breakdown = traced_cluster.kernel_profile()
        finally:
            traced_cluster.profile_kernels(False)
        assert {"conv", "dw", "pw", "linear"} <= set(breakdown)
        assert all(row["gather_calls"] > 0 for row in breakdown.values())
        # the collected breakdown surfaces in ClusterStats and the tree
        assert traced_cluster.snapshot().kernel_profile == breakdown
        assert traced_cluster.telemetry.snapshot()["cluster"]["kernel_profile"] == breakdown

    def test_router_registry_mounts_cluster_namespaces(self, traced_cluster):
        tree = traced_cluster.telemetry.snapshot()
        assert {"cluster", "shm", "placement"} <= set(tree)
        assert tree["traces"]["sampled"] >= 1

    def test_control_loop_reads_telemetry_snapshot(self, traced_cluster):
        # the control plane's signals come from the same tree operators
        # see: autoscaler load == the snapshot's worker in-flight counters
        loop = ControlLoop(traced_cluster)
        tree = traced_cluster.telemetry.snapshot()["cluster"]
        for key, workers in traced_cluster.placements().items():
            load = loop.autoscaler._load_of(key, tree, workers)
            assert load >= 0.0
        assert loop.step() == []  # idle cluster: no scaling events
