"""Per-model cost-report structure: activation chains and size entries.

Complements test_costmodel_paper.py (which pins the paper's totals) by
checking the *internal structure* every CostReport must have: activation
chains that start at the input and end at the logits, all-positive buffer
sizes, and size entries that cover every deployed tensor exactly once.
"""

from __future__ import annotations

import pytest

from repro.core.hybrid import HybridConfig, HybridNet, STHybridNet
from repro.models import CNN, DNN, BonsaiKWS, CRNN, DSCNN, GRUModel, STDSCNN
from repro.models.rnn_models import basic_lstm, projected_lstm

ALL_REPORTS = [
    ("ds-cnn", lambda: DSCNN().cost_report()),
    ("st-ds-cnn", lambda: STDSCNN().cost_report()),
    ("cnn", lambda: CNN().cost_report()),
    ("dnn", lambda: DNN().cost_report()),
    ("basic-lstm", lambda: basic_lstm().cost_report()),
    ("lstm", lambda: projected_lstm().cost_report()),
    ("gru", lambda: GRUModel().cost_report()),
    ("crnn", lambda: CRNN().cost_report()),
    ("bonsai", lambda: BonsaiKWS().cost_report()),
    ("hybrid", lambda: HybridNet().cost_report()),
    ("st-hybrid", lambda: STHybridNet().cost_report()),
]


@pytest.mark.parametrize("name,make", ALL_REPORTS, ids=[n for n, _ in ALL_REPORTS])
class TestReportStructure:
    def test_activation_chain_endpoints(self, name, make):
        report = make()
        acts = report.activation_bytes
        assert len(acts) >= 3
        assert all(a > 0 for a in acts)
        # ends at the 12 logits (bits vary by report; logits are smallest)
        assert acts[-1] <= min(acts) + 1e-9 or acts[-1] < acts[0]

    def test_footprint_exceeds_model_size(self, name, make):
        report = make()
        assert report.footprint_kb > report.model_kb

    def test_size_entries_unique_names(self, name, make):
        report = make()
        names = [entry.name for entry in report.size.entries]
        assert len(names) == len(set(names)), "duplicate size entries"

    def test_row_renders_all_columns(self, name, make):
        row = make().row()
        assert set(row) == {
            "network", "muls", "adds", "macs", "ops", "model_kb", "footprint_kb",
        }


class TestScalingBehaviour:
    def test_ds_cnn_costs_scale_with_width(self):
        small = DSCNN(width=32).cost_report()
        large = DSCNN(width=64).cost_report()
        assert large.ops.ops > 2 * small.ops.ops  # pointwise terms are quadratic
        assert large.model_kb > small.model_kb

    def test_st_hybrid_costs_scale_with_r(self):
        import dataclasses

        base = HybridConfig()
        lean = STHybridNet(dataclasses.replace(base, r_fraction=0.5)).cost_report()
        fat = STHybridNet(dataclasses.replace(base, r_fraction=2.0)).cost_report()
        assert fat.ops.adds > lean.ops.adds
        assert fat.ops.muls > lean.ops.muls
        assert fat.model_kb > lean.model_kb

    def test_hybrid_cheaper_than_dscnn_at_every_width(self):
        for width in (16, 32, 64):
            hybrid = HybridNet(HybridConfig(width=width)).cost_report()
            ds = DSCNN(width=width).cost_report()
            assert hybrid.ops.ops < ds.ops.ops

    def test_tree_depth_barely_moves_st_hybrid_ops(self):
        import dataclasses

        base = HybridConfig()
        d1 = STHybridNet(dataclasses.replace(base, tree_depth=1)).cost_report()
        d2 = STHybridNet(base).cost_report()
        assert abs(d2.ops.ops - d1.ops.ops) / d2.ops.ops < 0.02
