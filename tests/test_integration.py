"""End-to-end integration tests on the tiny synthetic corpus.

These exercise the full pipeline — waveform synthesis → MFCC → model
training → compression — at a scale that runs in seconds, asserting the
behavioural properties the paper's tables rest on.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.core.bonsai import BonsaiAnnealingSchedule
from repro.core.hybrid import HybridConfig, HybridNet, STHybridNet
from repro.core.strassen import StrassenSchedule, strassen_modules
from repro.models import BonsaiKWS, DSCNN
from repro.quantization import quantize_st_model
from repro.training import TrainConfig, Trainer
from repro.training.trainer import evaluate_model

CFG = HybridConfig(width=16)


def _fit(model, dataset, epochs=6, loss="cross_entropy", callbacks=None, teacher=None):
    trainer = Trainer(
        model,
        TrainConfig(epochs=epochs, batch_size=16, lr=3e-3, loss=loss, lr_drop_every=None, seed=0),
        callbacks=callbacks,
        teacher=teacher,
    )
    x, y = dataset.arrays("train")
    xv, yv = dataset.arrays("val")
    history = trainer.fit(x, y, xv, yv)
    return trainer, history


@pytest.fixture(scope="module")
def corpus(tiny_dataset):
    return tiny_dataset


def test_hybrid_learns_above_chance(corpus):
    model = HybridNet(CFG, rng=0)
    trainer, history = _fit(model, corpus, epochs=12, loss="hinge",
                            callbacks=[BonsaiAnnealingSchedule(1.0, 8.0, 12)])
    x, y = corpus.arrays("test")
    acc = trainer.evaluate(x, y)
    assert acc > 0.4, f"hybrid failed to learn (acc={acc:.2f})"
    assert history.train_loss[-1] < history.train_loss[0]


def test_st_hybrid_three_phase_pipeline(corpus):
    model = STHybridNet(CFG, rng=1)
    trainer, _ = _fit(
        model,
        corpus,
        epochs=14,
        loss="hinge",
        callbacks=[StrassenSchedule(5, 4), BonsaiAnnealingSchedule(1.0, 8.0, 14)],
    )
    # after the schedule, everything is frozen ternary
    for layer in strassen_modules(model):
        assert layer.phase == "frozen"
        assert set(np.unique(layer.wb.data)).issubset({-1.0, 0.0, 1.0})
    x, y = corpus.arrays("test")
    assert trainer.evaluate(x, y) > 0.25


def test_distillation_from_hybrid_teacher(corpus):
    teacher = HybridNet(CFG, rng=0)
    t_trainer, _ = _fit(teacher, corpus, epochs=12, loss="hinge",
                        callbacks=[BonsaiAnnealingSchedule(1.0, 8.0, 12)])
    student = STHybridNet(CFG, rng=1)
    s_trainer, _ = _fit(
        student,
        corpus,
        epochs=14,
        loss="hinge",
        callbacks=[StrassenSchedule(5, 4), BonsaiAnnealingSchedule(1.0, 8.0, 14)],
        teacher=teacher,
    )
    x, y = corpus.arrays("test")
    assert s_trainer.evaluate(x, y) > 0.25


def test_ptq_preserves_most_accuracy(corpus):
    model = STHybridNet(CFG, rng=1)
    trainer, _ = _fit(
        model, corpus, epochs=14, loss="hinge",
        callbacks=[StrassenSchedule(5, 4), BonsaiAnnealingSchedule(1.0, 8.0, 14)],
    )
    x, y = corpus.arrays("test")
    baseline = trainer.evaluate(x, y)
    quantized = copy.deepcopy(model)
    quantize_st_model(quantized, corpus.features("val")[:32], act_bits=8, dw_hidden_bits=16)
    q_acc = evaluate_model(quantized, x, y)
    assert q_acc >= baseline - 0.15, f"PTQ lost too much ({baseline:.2f} -> {q_acc:.2f})"


def test_conv_features_beat_flat_projection(corpus):
    """The paper's central §2.2 claim at miniature scale: conv features >
    Bonsai's flat projection, on average over seeds."""
    hybrid_accs, bonsai_accs = [], []
    x, y = corpus.arrays("test")
    for seed in (0, 1):
        hybrid = HybridNet(CFG, rng=seed)
        trainer, _ = _fit(hybrid, corpus, epochs=12, loss="hinge",
                          callbacks=[BonsaiAnnealingSchedule(1.0, 8.0, 12)])
        hybrid_accs.append(trainer.evaluate(x, y))
        bonsai = BonsaiKWS(projection_dim=16, depth=2, rng=seed)
        b_trainer, _ = _fit(bonsai, corpus, epochs=12, loss="hinge",
                            callbacks=[BonsaiAnnealingSchedule(1.0, 8.0, 12)])
        bonsai_accs.append(b_trainer.evaluate(x, y))
    assert np.mean(hybrid_accs) > np.mean(bonsai_accs) - 0.05


def test_save_load_trained_model(corpus, tmp_path):
    from repro.utils import load_state_dict, save_state_dict

    model = DSCNN(width=8, rng=0)
    trainer, _ = _fit(model, corpus, epochs=3)
    x, y = corpus.arrays("test")
    logits_before = trainer.predict(x)
    path = tmp_path / "dscnn.npz"
    save_state_dict(path, model.state_dict())
    clone = DSCNN(width=8, rng=99)
    clone.load_state_dict(load_state_dict(path))
    logits_after = Trainer(clone, TrainConfig(epochs=1)).predict(x)
    np.testing.assert_allclose(logits_before, logits_after, rtol=1e-4, atol=1e-5)
