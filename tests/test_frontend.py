"""Async serving front-end: deadlines, admission backpressure, byte budgets."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.hybrid import HybridConfig, STHybridNet
from repro.core.strassen import freeze_all
from repro.deploy import build_image
from repro.errors import AdmissionError, ConfigError, DeadlineExceeded
from repro.evaluation import StreamingDetector, make_stream
from repro.serving import (
    AsyncServingFrontend,
    BatchingEngine,
    MicroBatchConfig,
    ModelRegistry,
    PackedModel,
)


@pytest.fixture(scope="module")
def image():
    model = STHybridNet(HybridConfig(width=8), rng=0)
    freeze_all(model)
    model.eval()
    return build_image(model)


def echo_model(batch: np.ndarray) -> np.ndarray:
    """Fake model: returns each request's first feature (traces routing)."""
    return batch.reshape(batch.shape[0], -1)[:, :1]


class TestAsyncPredict:
    def test_worker_mode_matches_direct_forward(self, image, rng):
        model = PackedModel(image)
        xs = [rng.standard_normal((49, 10)).astype(np.float32) for _ in range(10)]
        frontend = AsyncServingFrontend(
            model, config=MicroBatchConfig(max_batch_size=4, max_delay_ms=20.0)
        )

        async def run():
            async with frontend:
                return await asyncio.gather(*[frontend.predict(x) for x in xs])

        got = np.stack(asyncio.run(run()))
        np.testing.assert_array_equal(got, model(np.stack(xs)))
        assert frontend.stats.requests == 10
        assert frontend.pending == 0

    def test_flush_mode_predict_many_coalesces(self, image, rng):
        model = PackedModel(image)
        xs = [rng.standard_normal((49, 10)).astype(np.float32) for _ in range(6)]
        frontend = AsyncServingFrontend(model, config=MicroBatchConfig(max_batch_size=6))
        got = np.stack(frontend.serve(xs))
        np.testing.assert_array_equal(got, model(np.stack(xs)))
        # all six went through one deterministic micro-batch
        assert frontend.stats.batches == 1
        assert list(frontend.stats.batch_sizes) == [6]

    def test_wraps_existing_engine(self):
        engine = BatchingEngine(echo_model)
        frontend = AsyncServingFrontend(engine)
        assert frontend.engine is engine
        assert frontend.stats is engine.stats

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            AsyncServingFrontend(echo_model, max_pending=0)
        with pytest.raises(ConfigError):
            AsyncServingFrontend(echo_model, default_deadline_s=0.0)
        with pytest.raises(ConfigError):
            AsyncServingFrontend(BatchingEngine(echo_model), config=MicroBatchConfig())


class TestDeadlines:
    def test_expired_deadline_raises_through_await(self):
        frontend = AsyncServingFrontend(echo_model, default_deadline_s=1e-9)

        async def run():
            await frontend.predict(np.zeros(3))

        with pytest.raises(DeadlineExceeded):
            asyncio.run(run())
        assert frontend.stats.deadline_misses == 1

    def test_explicit_deadline_overrides_default(self):
        frontend = AsyncServingFrontend(echo_model, default_deadline_s=1e-9)

        async def run():
            return await frontend.predict(np.full(3, 5.0), deadline_s=30.0)

        assert asyncio.run(run())[0] == 5.0
        assert frontend.stats.deadline_misses == 0

    def test_explicit_none_opts_out_of_default(self):
        """deadline_s=None means 'no deadline', even with a frontend default."""
        frontend = AsyncServingFrontend(echo_model, default_deadline_s=1e-9)

        async def run():
            return await frontend.predict(np.full(3, 3.0), deadline_s=None)

        assert asyncio.run(run())[0] == 3.0
        assert frontend.stats.deadline_misses == 0

    def test_mixed_deadlines_in_one_worker_batch(self):
        """An expired request is rejected while fresh ones in the same batch serve."""
        engine = BatchingEngine(echo_model, MicroBatchConfig(max_batch_size=4, max_delay_ms=40.0))
        frontend = AsyncServingFrontend(engine)

        async def run():
            fresh = [frontend.predict(np.full(3, float(i)), deadline_s=30.0) for i in range(2)]
            doomed = frontend.predict(np.full(3, 9.0), deadline_s=1e-9)
            async with frontend:
                results = await asyncio.gather(*fresh, doomed, return_exceptions=True)
            return results

        ok0, ok1, err = asyncio.run(run())
        assert ok0[0] == 0.0 and ok1[0] == 1.0
        assert isinstance(err, DeadlineExceeded)
        assert frontend.stats.deadline_misses == 1


class TestAdmission:
    def test_shed_when_queue_full(self):
        frontend = AsyncServingFrontend(echo_model, max_pending=2)

        async def run():
            held = [frontend._admit(np.zeros(3), None, None, None, None) for _ in range(2)]
            with pytest.raises(AdmissionError):
                await frontend.predict(np.zeros(3))
            frontend.engine.flush()
            return held

        held = asyncio.run(run())
        assert all(f.done() for f in held)
        assert frontend.stats.shed == 1
        assert frontend.stats.requests == 2  # shed requests never reach the engine

    def test_partial_admission_failure_cancels_admitted(self):
        """A shed mid-predict_many cancels the already-admitted requests so
        their slots release — the frontend must not wedge permanently."""
        frontend = AsyncServingFrontend(echo_model, max_pending=2)

        async def run():
            with pytest.raises(AdmissionError):
                await frontend.predict_many([np.zeros(3)] * 3)
            assert frontend.pending == 0  # cancellation freed both slots
            assert frontend.engine.pending() == 0  # queue drained immediately
            return await frontend.predict(np.full(3, 7.0))  # still serves

        out = asyncio.run(run())
        assert out[0] == 7.0
        assert frontend.stats.shed == 1
        assert frontend.stats.served == 1  # cancelled requests never ran

    def test_slots_recycle_after_completion(self):
        frontend = AsyncServingFrontend(echo_model, max_pending=1)

        async def run():
            out = []
            for i in range(3):  # sequential: each completes before the next admits
                out.append(await frontend.predict(np.full(3, float(i))))
            return out

        outs = asyncio.run(run())
        assert [float(o[0]) for o in outs] == [0.0, 1.0, 2.0]
        assert frontend.stats.shed == 0
        assert frontend.pending == 0


class TestStreamingThroughFrontend:
    def test_frontend_path_matches_direct_path(self, image):
        wave, _ = make_stream(["yes"], rng=4)
        model = PackedModel(image)
        direct = StreamingDetector(model)
        frontend = AsyncServingFrontend(model, config=MicroBatchConfig(max_batch_size=4))
        routed = StreamingDetector(frontend=frontend)
        t_direct, p_direct = direct.posteriors(wave)
        t_front, p_front = routed.posteriors(wave)
        np.testing.assert_array_equal(t_direct, t_front)
        np.testing.assert_array_equal(p_direct, p_front)
        # windows were really coalesced into deterministic micro-batches
        assert frontend.stats.batches == -(-len(t_front) // 4)
        assert max(frontend.stats.batch_sizes) <= 4

    def test_long_stream_chunks_by_admission_bound(self, image):
        """Streams with more windows than max_pending serve in chunks, not shed."""
        wave, _ = make_stream(["yes"], rng=4)
        model = PackedModel(image)
        frontend = AsyncServingFrontend(
            model, config=MicroBatchConfig(max_batch_size=4), max_pending=3
        )
        routed = StreamingDetector(frontend=frontend)
        t_direct, p_direct = StreamingDetector(model).posteriors(wave)
        t_front, p_front = routed.posteriors(wave)
        assert len(t_front) > 3  # the stream really exceeds the admission bound
        np.testing.assert_array_equal(t_direct, t_front)
        np.testing.assert_array_equal(p_direct, p_front)
        assert frontend.stats.shed == 0

    def test_engine_and_frontend_conflict_rejected(self):
        with pytest.raises(ConfigError):
            StreamingDetector(
                engine=BatchingEngine(echo_model),
                frontend=AsyncServingFrontend(echo_model),
            )


class TestByteBudgetRegistry:
    def test_eviction_keeps_budget_and_redecodes(self, image, rng):
        plan_bytes = PackedModel(image, cache=True).decoded_bytes()
        registry = ModelRegistry(capacity_bytes=2 * plan_bytes)
        for name in ("a", "b", "c"):
            registry.register(name, image)
        registry.get("a"), registry.get("b")
        assert registry.decoded_names() == ["a@v1", "b@v1"]
        registry.get("c")  # budget fits two plans -> evicts "a"
        assert registry.decoded_names() == ["b@v1", "c@v1"]
        assert registry.stats.evictions == 1
        assert registry.stats.resident_bytes == registry.decoded_bytes() <= 2 * plan_bytes
        assert registry.stats.peak_resident_bytes <= 2 * plan_bytes
        # the evicted model re-decodes transparently and serves identically
        x = rng.standard_normal((3, 49, 10)).astype(np.float32)
        np.testing.assert_array_equal(registry.predict("a", x), PackedModel(image)(x))
        assert registry.decoded_names() == ["c@v1", "a@v1"]
        assert registry.stats.evictions == 2

    def test_oversized_plan_served_uncached(self, image, rng):
        registry = ModelRegistry(capacity_bytes=1)
        registry.register("big", image)
        x = rng.standard_normal((2, 49, 10)).astype(np.float32)
        np.testing.assert_array_equal(registry.predict("big", x), PackedModel(image)(x))
        assert registry.decoded_names() == []
        assert registry.stats.resident_bytes == 0
        assert registry.stats.misses == 1

    def test_remove_and_reregister_release_bytes(self, image):
        registry = ModelRegistry(capacity_bytes=10 * PackedModel(image).decoded_bytes())
        registry.register("m", image)
        registry.get("m")
        assert registry.stats.resident_bytes > 0
        registry.register("m", image)  # replace drops the stale plan
        assert registry.stats.resident_bytes == 0
        registry.get("m")
        registry.remove("m")
        assert registry.stats.resident_bytes == 0
        assert registry.decoded_bytes() == 0

    def test_count_capacity_is_deprecated_alias(self, image):
        with pytest.warns(DeprecationWarning, match="capacity_bytes"):
            registry = ModelRegistry(capacity=1)
        for name in ("a", "b"):
            registry.register(name, image)
        registry.get("a")
        registry.get("b")
        assert registry.decoded_names() == ["b@v1"]
        assert registry.stats.evictions == 1

    def test_constructor_validation(self):
        with pytest.raises(ConfigError):
            ModelRegistry(capacity_bytes=0)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigError):
                ModelRegistry(capacity=0)
        with pytest.raises(ConfigError):
            ModelRegistry(capacity=2, capacity_bytes=100)
