"""Losses, optimisers, schedules, metrics, and the Trainer loop."""

from __future__ import annotations

import numpy as np
import pytest

from conftest import make_tensor
from repro import nn
from repro.autodiff import Tensor, check_gradients
from repro.errors import ConfigError
from repro.nn.module import Parameter
from repro.training import (
    Adam,
    SGD,
    Callback,
    ConstantLR,
    StepDecay,
    TrainConfig,
    Trainer,
    accuracy,
    confusion_matrix,
    cross_entropy,
    distillation_loss,
    multiclass_hinge,
)
from repro.training.metrics import top_k_accuracy


class TestLosses:
    def test_cross_entropy_matches_manual(self, rng):
        logits = make_tensor((4, 3), rng, requires_grad=False)
        labels = np.array([0, 2, 1, 1])
        loss = cross_entropy(logits, labels)
        shifted = logits.data - logits.data.max(axis=1, keepdims=True)
        probs = np.exp(shifted) / np.exp(shifted).sum(axis=1, keepdims=True)
        manual = -np.log(probs[np.arange(4), labels]).mean()
        np.testing.assert_allclose(float(loss.data), manual, rtol=1e-5)

    def test_cross_entropy_gradcheck(self, rng):
        logits = make_tensor((3, 4), rng)
        labels = np.array([1, 0, 3])
        check_gradients(lambda t: cross_entropy(t, labels), [logits])

    def test_hinge_zero_when_margin_met(self):
        logits = Tensor(np.array([[10.0, 0.0, 0.0], [0.0, 10.0, 0.0]], dtype=np.float32))
        loss = multiclass_hinge(logits, np.array([0, 1]))
        np.testing.assert_allclose(float(loss.data), 0.0, atol=1e-6)

    def test_hinge_penalises_violations(self):
        logits = Tensor(np.array([[0.0, 1.0]], dtype=np.float32))
        loss = multiclass_hinge(logits, np.array([0]), margin=1.0)
        np.testing.assert_allclose(float(loss.data), 2.0, atol=1e-6)  # 1 + 1 - 0

    def test_hinge_gradcheck(self, rng):
        logits = make_tensor((4, 5), rng)
        labels = np.array([0, 1, 2, 3])
        check_gradients(lambda t: multiclass_hinge(t, labels), [logits])

    def test_distillation_mixes_soft_and_hard(self, rng):
        student = make_tensor((4, 3), rng)
        teacher = rng.standard_normal((4, 3))
        labels = np.array([0, 1, 2, 0])
        loss_soft = distillation_loss(student, teacher, labels, alpha=1.0)
        loss_hard = distillation_loss(student, teacher, labels, alpha=0.0)
        hard_only = cross_entropy(student, labels)
        np.testing.assert_allclose(float(loss_hard.data), float(hard_only.data), rtol=1e-5)
        assert float(loss_soft.data) != float(loss_hard.data)

    def test_distillation_gradcheck(self, rng):
        student = make_tensor((3, 4), rng)
        teacher = rng.standard_normal((3, 4))
        labels = np.array([0, 1, 2])
        check_gradients(lambda t: distillation_loss(t, teacher, labels), [student])


class TestOptimizers:
    def _quadratic(self, optimizer_cls, **kwargs):
        target = np.array([3.0, -2.0], dtype=np.float32)
        p = Parameter(np.zeros(2, dtype=np.float32))
        opt = optimizer_cls([p], **kwargs)
        for _ in range(300):
            opt.zero_grad()
            loss = (((p - Tensor(target)) ** 2)).sum()
            loss.backward()
            opt.step()
        return p.data, target

    def test_sgd_converges(self):
        got, want = self._quadratic(SGD, lr=0.05, momentum=0.9)
        np.testing.assert_allclose(got, want, atol=1e-2)

    def test_adam_converges(self):
        got, want = self._quadratic(Adam, lr=0.1)
        np.testing.assert_allclose(got, want, atol=1e-2)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.full(3, 10.0, dtype=np.float32))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(3, dtype=np.float32)
        opt.step()
        assert (np.abs(p.data) < 10.0).all()

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_skips_params_without_grad(self):
        p = Parameter(np.ones(2, dtype=np.float32))
        before = p.data.copy()
        Adam([p], lr=0.1).step()
        np.testing.assert_array_equal(p.data, before)


class TestSchedules:
    def test_step_decay(self):
        sched = StepDecay(1e-3, 45, 0.2)
        assert sched(0) == pytest.approx(1e-3)
        assert sched(44) == pytest.approx(1e-3)
        assert sched(45) == pytest.approx(2e-4)
        assert sched(90) == pytest.approx(4e-5)

    def test_constant(self):
        assert ConstantLR(0.01)(123) == 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            StepDecay(1e-3, 0)
        with pytest.raises(ValueError):
            StepDecay(1e-3, 10, 1.5)


class TestMetrics:
    def test_accuracy(self):
        logits = np.array([[1, 0], [0, 1], [1, 0]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_confusion_matrix(self):
        logits = np.array([[1, 0], [0, 1], [1, 0]])
        cm = confusion_matrix(logits, np.array([0, 1, 1]), 2)
        np.testing.assert_array_equal(cm, [[1, 0], [1, 1]])

    def test_top_k(self):
        logits = np.array([[3, 2, 1], [1, 2, 3]])
        assert top_k_accuracy(logits, np.array([1, 0]), k=2) == pytest.approx(0.5)


class _CountingCallback(Callback):
    def __init__(self):
        self.epochs = 0
        self.steps = 0
        self.began = False

    def on_train_begin(self, trainer):
        self.began = True

    def on_epoch_begin(self, trainer, epoch):
        self.epochs += 1

    def on_step_end(self, trainer, step):
        self.steps += 1


class TestTrainer:
    def _toy_problem(self, rng, n=120):
        x = rng.standard_normal((n, 6)).astype(np.float32)
        y = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
        return x, y

    def test_fit_improves_and_history(self, rng):
        x, y = self._toy_problem(rng)
        model = nn.Sequential(nn.Linear(6, 16, rng=0), nn.ReLU(), nn.Linear(16, 2, rng=1))
        trainer = Trainer(model, TrainConfig(epochs=8, batch_size=16, lr=5e-3, lr_drop_every=None))
        history = trainer.fit(x, y, x, y)
        assert len(history.train_loss) == 8
        assert history.val_accuracy[-1] > 0.85
        assert history.train_loss[-1] < history.train_loss[0]

    def test_callbacks_invoked(self, rng):
        x, y = self._toy_problem(rng, n=32)
        model = nn.Linear(6, 2, rng=0)
        cb = _CountingCallback()
        trainer = Trainer(model, TrainConfig(epochs=3, batch_size=16, lr_drop_every=None), callbacks=[cb])
        trainer.fit(x, y)
        assert cb.began and cb.epochs == 3 and cb.steps == 6

    def test_distillation_path(self, rng):
        x, y = self._toy_problem(rng, n=64)
        teacher = nn.Sequential(nn.Linear(6, 16, rng=0), nn.ReLU(), nn.Linear(16, 2, rng=1))
        Trainer(teacher, TrainConfig(epochs=5, batch_size=16, lr=5e-3, lr_drop_every=None)).fit(x, y)
        teacher_before = teacher.state_dict()
        student = nn.Linear(6, 2, rng=2)
        trainer = Trainer(
            student,
            TrainConfig(epochs=12, batch_size=16, lr=1e-2, lr_drop_every=None),
            teacher=teacher,
        )
        trainer.fit(x, y)
        assert trainer.evaluate(x, y) > 0.7
        for name, value in teacher.state_dict().items():  # teacher untouched
            np.testing.assert_array_equal(value, teacher_before[name])

    def test_unknown_loss_and_optimizer(self, rng):
        model = nn.Linear(4, 2, rng=0)
        with pytest.raises(ConfigError):
            Trainer(model, TrainConfig(loss="nope"))
        with pytest.raises(ConfigError):
            Trainer(model, TrainConfig(optimizer="nope"))

    def test_predict_batches_match(self, rng):
        x, y = self._toy_problem(rng, n=40)
        model = nn.Linear(6, 2, rng=0)
        trainer = Trainer(model, TrainConfig(epochs=1, batch_size=8, lr_drop_every=None))
        full = trainer.predict(x, batch_size=7)
        assert full.shape == (40, 2)
        np.testing.assert_allclose(full, trainer.predict(x, batch_size=40), rtol=1e-5)
