"""Regression tests: the cost model must land on the paper's numbers.

These encode the paper's published cost columns; if an architecture
definition or counting convention drifts, these fail.  Accuracy columns are
not tested here (they need training) — see the benchmark suite.
"""

from __future__ import annotations

import pytest

from repro.core.hybrid.config import TABLE5_CONFIGS
from repro.core.hybrid.network import HybridNet
from repro.core.hybrid.strassenified import STHybridNet
from repro.models.bonsai_kws import BonsaiKWS
from repro.models.ds_cnn import DSCNN
from repro.models.st_ds_cnn import STDSCNN


class TestDSCNN:
    def test_macs_and_size(self):
        report = DSCNN().cost_report()
        assert report.ops.macs == pytest.approx(2.7e6, rel=0.02)  # paper: 2.7M
        assert report.model_kb == pytest.approx(22.07, abs=0.05)  # paper: 22.07KB

    def test_footprint(self):
        report = DSCNN().cost_report(weight_bits=8, act_bits=8)
        assert report.footprint_kb == pytest.approx(37.7, abs=0.1)  # paper: 37.7KB


class TestSTDSCNN:
    @pytest.mark.parametrize(
        "r_fraction,muls_m,adds_m",
        [(0.5, 0.05, 2.85), (0.75, 0.06, 4.09), (1.0, 0.07, 5.32), (2.0, 0.11, 10.25)],
    )
    def test_table1_muls_adds(self, r_fraction, muls_m, adds_m):
        """Table 1's mult/add columns, matched to the printed precision."""
        report = STDSCNN(r_fraction=r_fraction).cost_report()
        assert report.ops.muls / 1e6 == pytest.approx(muls_m, abs=0.02)
        assert report.ops.adds / 1e6 == pytest.approx(adds_m, rel=0.02)

    def test_sizes_monotone_in_r(self):
        sizes = [STDSCNN(r_fraction=r).cost_report().model_kb for r in (0.5, 0.75, 1.0, 2.0)]
        assert sizes == sorted(sizes)


class TestHybrid:
    def test_hybridnet_macs(self):
        report = HybridNet().cost_report()
        assert report.ops.macs / 1e6 == pytest.approx(1.5, abs=0.05)  # paper: 1.5M

    def test_hybridnet_fp32_size(self):
        report = HybridNet().cost_report(weight_bits=32)
        assert report.model_kb == pytest.approx(94.25, rel=0.05)  # paper: 94.25KB

    def test_st_hybrid_table4(self):
        report = STHybridNet().cost_report()
        assert report.ops.muls / 1e6 == pytest.approx(0.03, abs=0.01)  # paper: 0.03M
        assert report.ops.adds / 1e6 == pytest.approx(2.37, rel=0.03)  # paper: 2.37M
        assert report.ops.ops / 1e6 == pytest.approx(2.4, rel=0.03)  # paper: 2.4M

    def test_table5_ops(self):
        expected = {
            "2 conv layers, D=2, N=7": 1.53,
            "3 conv layers, D=1, N=3": 2.39,
            "3 conv layers, D=2, N=7": 2.4,
        }
        for description, cfg in TABLE5_CONFIGS.items():
            ops = STHybridNet(cfg).cost_report().ops.ops / 1e6
            assert ops == pytest.approx(expected[description], rel=0.04), description

    def test_table6_footprints(self):
        """Fully-8b and mixed-8/16b activation accounting."""
        st = STHybridNet()
        fully = st.cost_report(a_hat_bits=16, bias_bits=8, act_bits=8)
        mixed = st.cost_report(a_hat_bits=16, bias_bits=8, act_bits=8, dw_intermediate_bits=16)
        ds = DSCNN().cost_report(weight_bits=8, act_bits=8)
        # paper: 26.17KB vs 37.7KB vs 41.8KB (ours shifted by the ~1KB model-size delta)
        assert fully.footprint_kb < ds.footprint_kb < mixed.footprint_kb
        # the mixed mode's peak pair is the two 16-bit dw intermediates: 31.25KB
        from repro.costmodel.memory import activation_footprint_bytes

        peak = activation_footprint_bytes(mixed.activation_bytes) / 1024.0
        assert peak == pytest.approx(31.25, abs=0.01)

    def test_headline_claims(self):
        """Abstract: 98.89% fewer muls, 12.22% fewer adds, 11.1% fewer ops."""
        ds = DSCNN().cost_report()
        st = STHybridNet().cost_report()
        assert 1 - st.ops.muls / ds.ops.macs > 0.985
        adds_reduction = 1 - st.ops.adds / ds.ops.macs
        assert adds_reduction == pytest.approx(0.1222, abs=0.03)
        ops_reduction = 1 - st.ops.ops / ds.ops.ops
        assert ops_reduction == pytest.approx(0.111, abs=0.03)


class TestBonsaiTable2:
    @pytest.mark.parametrize(
        "d_hat,depth,kb",
        [(64, 2, 140.75), (64, 4, 287.75), (128, 2, 281.5), (128, 4, 575.5)],
    )
    def test_exact_model_sizes_at_d392(self, d_hat, depth, kb):
        report = BonsaiKWS(projection_dim=d_hat, depth=depth).cost_report(input_dim=392)
        assert report.model_kb == pytest.approx(kb, abs=0.01)

    def test_projection_dominates(self):
        """Paper: 69.63% of the D^=64/T=2 model is the FC projection."""
        report = BonsaiKWS(projection_dim=64, depth=2).cost_report(input_dim=392)
        z_bytes = report.size.filter(lambda e: e.name == "Z").total_bytes
        assert z_bytes / report.size.total_bytes == pytest.approx(0.6963, abs=0.001)
