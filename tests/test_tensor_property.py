"""Property-based tests of the autodiff core (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.autodiff import Tensor

FLOATS = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, width=32)


def small_arrays(max_dims=3, max_side=5):
    return arrays(
        dtype=np.float32,
        shape=array_shapes(min_dims=1, max_dims=max_dims, min_side=1, max_side=max_side),
        elements=FLOATS,
    )


@given(small_arrays())
@settings(max_examples=40, deadline=None)
def test_softmax_rows_sum_to_one(data):
    probs = Tensor(data).softmax(axis=-1).data
    np.testing.assert_allclose(probs.sum(axis=-1), 1.0, rtol=1e-4, atol=1e-4)
    assert (probs >= 0).all()


@given(small_arrays())
@settings(max_examples=40, deadline=None)
def test_add_backward_is_ones(data):
    t = Tensor(data, requires_grad=True)
    (t + 1.0).sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(data))


@given(small_arrays(), st.floats(min_value=0.1, max_value=5.0, allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_scalar_mul_backward(data, scalar):
    t = Tensor(data, requires_grad=True)
    (t * scalar).sum().backward()
    np.testing.assert_allclose(t.grad, np.full_like(data, scalar), rtol=1e-5)


@given(small_arrays())
@settings(max_examples=40, deadline=None)
def test_reshape_preserves_values_and_grads(data):
    t = Tensor(data, requires_grad=True)
    flat = t.reshape(-1)
    np.testing.assert_array_equal(np.sort(flat.data), np.sort(data.reshape(-1)))
    flat.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(data))


@given(small_arrays(max_dims=2))
@settings(max_examples=40, deadline=None)
def test_relu_output_nonnegative_and_sparse_grad(data):
    t = Tensor(data, requires_grad=True)
    out = t.relu()
    assert (out.data >= 0).all()
    out.sum().backward()
    # gradient is exactly the positive-input indicator
    np.testing.assert_array_equal(t.grad != 0, data > 0)


@given(small_arrays(max_dims=2), small_arrays(max_dims=2))
@settings(max_examples=40, deadline=None)
def test_add_commutes(a, b):
    try:
        shape = np.broadcast_shapes(a.shape, b.shape)
    except ValueError:
        return  # incompatible shapes — nothing to test
    left = (Tensor(a) + Tensor(b)).data
    right = (Tensor(b) + Tensor(a)).data
    np.testing.assert_array_equal(left, right)
    assert left.shape == shape


@given(small_arrays(max_dims=2))
@settings(max_examples=40, deadline=None)
def test_sum_then_mean_consistency(data):
    t = Tensor(data)
    np.testing.assert_allclose(
        t.mean().data, t.sum().data / data.size, rtol=1e-4, atol=1e-5
    )
