"""Shared versioned catalog: unit semantics + router/registry lockstep.

`VersionedCatalog` is the single implementation of the versioned
name → version → entry bookkeeping behind both `ClusterRouter` and
`ModelRegistry`.  The unit tests pin its contract (error families,
activate semantics, mutation return values); the lockstep property test
drives the router and the registry through identical interleaved
register/remove/set_current sequences and asserts their catalogs can
never drift apart — the regression the extraction exists to prevent.
"""

from __future__ import annotations

import pytest

from repro.core.hybrid import HybridConfig, STHybridNet
from repro.core.strassen import freeze_all
from repro.deploy import build_image
from repro.errors import CatalogError, ConfigError, RoutingError
from repro.serving import ClusterRouter, ModelRegistry, VersionedCatalog
from repro.serving.catalog import (
    DEFAULT_VERSION,
    catalog_errors,
    make_key,
    split_key,
)


def frozen_image(width: int = 8, rng: int = 0):
    """A small frozen ST-Hybrid image (weights random, arithmetic real)."""
    model = STHybridNet(HybridConfig(width=width), rng=rng)
    freeze_all(model)
    model.eval()
    return build_image(model)


class TestKeys:
    def test_round_trip(self):
        assert split_key(make_key("kws", "v2")) == ("kws", "v2")

    def test_name_may_not_contain_separator(self):
        catalog = VersionedCatalog()
        with pytest.raises(CatalogError) as exc_info:
            catalog.register("a@b", object())
        assert exc_info.value.invalid_spec


class TestVersionedCatalog:
    def test_register_defaults_and_returns_resolved_version(self):
        catalog = VersionedCatalog()
        assert catalog.register("kws", "blob1") == DEFAULT_VERSION
        assert catalog.current_version("kws") == DEFAULT_VERSION
        # version=None replaces the current version
        assert catalog.register("kws", "blob2") == DEFAULT_VERSION
        assert catalog.get("kws") == "blob2"

    def test_activate_false_stages_without_flipping(self):
        catalog = VersionedCatalog()
        catalog.register("kws", "old", version="v1")
        catalog.register("kws", "new", version="v2", activate=False)
        assert catalog.current_version("kws") == "v1"
        assert catalog.versions("kws") == ["v1", "v2"]
        assert catalog.get("kws") == "old"
        assert catalog.get("kws", "v2") == "new"

    def test_activate_false_requires_explicit_version(self):
        catalog = VersionedCatalog()
        with pytest.raises(CatalogError, match="explicit") as exc_info:
            catalog.register("kws", "blob", activate=False)
        assert exc_info.value.invalid_spec

    def test_first_version_is_always_current(self):
        catalog = VersionedCatalog()
        catalog.register("kws", "blob", version="v9", activate=False)
        assert catalog.current_version("kws") == "v9"

    def test_remove_returns_doomed_versions(self):
        catalog = VersionedCatalog()
        catalog.register("kws", "b1", version="v1")
        catalog.register("kws", "b2", version="v2", activate=False)
        assert catalog.remove("kws", version="v2") == ["v2"]
        catalog.register("kws", "b2", version="v2", activate=False)
        assert sorted(catalog.remove("kws")) == ["v1", "v2"]
        assert not catalog.has("kws")

    def test_remove_current_version_is_guarded(self):
        catalog = VersionedCatalog()
        catalog.register("kws", "b1", version="v1")
        catalog.register("kws", "b2", version="v2", activate=False)
        with pytest.raises(CatalogError, match="current") as exc_info:
            catalog.remove("kws", version="v1")
        assert not exc_info.value.invalid_spec  # state-dependent family
        catalog.set_current("kws", "v2")
        assert catalog.remove("kws", version="v1") == ["v1"]

    def test_unknown_lookups_are_state_family(self):
        catalog = VersionedCatalog()
        catalog.register("kws", "blob")
        for fail in (
            lambda: catalog.remove("ghost"),
            lambda: catalog.remove("kws", version="v9"),
            lambda: catalog.set_current("kws", "v9"),
            lambda: catalog.current_version("ghost"),
            lambda: catalog.resolve_version("kws", "v9"),
            lambda: catalog.resolve_name("ghost"),
        ):
            with pytest.raises(CatalogError) as exc_info:
                fail()
            assert not exc_info.value.invalid_spec

    def test_resolve_name_lone_model_needs_no_name(self):
        catalog = VersionedCatalog()
        with pytest.raises(CatalogError, match="no models registered"):
            catalog.resolve_name(None)
        catalog.register("kws", "blob")
        assert catalog.resolve_name(None) == "kws"
        catalog.register("vad", "blob")
        with pytest.raises(CatalogError, match="model name required"):
            catalog.resolve_name(None)

    def test_find_never_raises(self):
        catalog = VersionedCatalog()
        assert catalog.find("ghost", "v1") is None
        entry = object()
        catalog.register("kws", entry)
        assert catalog.find("kws", DEFAULT_VERSION) is entry

    def test_counts(self):
        catalog = VersionedCatalog()
        catalog.register("kws", "b1", version="v1")
        catalog.register("kws", "b2", version="v2", activate=False)
        catalog.register("vad", "b3")
        assert catalog.name_count() == 2
        assert catalog.entry_count() == 3
        assert "kws" in catalog and "ghost" not in catalog


class TestErrorMapping:
    def test_spec_family_maps_to_spec_exception(self):
        with pytest.raises(ConfigError):
            with catalog_errors(ConfigError, RoutingError):
                raise CatalogError("bad spec", invalid_spec=True)

    def test_state_family_maps_to_state_exception(self):
        with pytest.raises(RoutingError) as exc_info:
            with catalog_errors(ConfigError, RoutingError):
                raise CatalogError("unknown thing")
        assert isinstance(exc_info.value.__cause__, CatalogError)

    def test_router_surface(self):
        router = ClusterRouter(workers=2, transport=False)
        image = frozen_image()
        router.register("kws", image)
        # state family -> RoutingError at the router surface
        with pytest.raises(RoutingError, match="unknown model"):
            router.current_version("ghost")
        with pytest.raises(RoutingError, match="unknown version"):
            router.set_current("kws", "v9")
        # spec family -> ConfigError at the router surface
        with pytest.raises(ConfigError, match="explicit"):
            router.register("kws", image, activate=False)
        with pytest.raises(ConfigError):
            router.register("a@b", image)

    def test_registry_surface(self):
        registry = ModelRegistry()
        registry.register("kws", frozen_image())
        # both families -> ConfigError at the registry surface
        with pytest.raises(ConfigError, match="unknown model"):
            registry.current_version("ghost")
        with pytest.raises(ConfigError, match="unknown version"):
            registry.set_current("kws", "v9")
        with pytest.raises(ConfigError, match="explicit"):
            registry.register("kws", frozen_image(), activate=False)


# --------------------------------------------------------------------------- #
# lockstep property test: router and registry can never drift
# --------------------------------------------------------------------------- #

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

NAMES = ["m1", "m2"]
VERSIONS = ["v1", "v2", "v3"]

OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("register"),
            st.sampled_from(NAMES),
            st.sampled_from(VERSIONS + [None]),
            st.booleans(),
        ),
        st.tuples(
            st.just("remove"),
            st.sampled_from(NAMES),
            st.sampled_from(VERSIONS + [None]),
        ),
        st.tuples(
            st.just("set_current"),
            st.sampled_from(NAMES),
            st.sampled_from(VERSIONS),
        ),
    ),
    min_size=1,
    max_size=12,
)


@pytest.fixture(scope="module")
def lockstep_image():
    """One image reused for every lockstep registration (content is moot)."""
    return frozen_image()


class TestLockstep:
    @settings(max_examples=25, deadline=None)
    @given(ops=OPS)
    def test_router_and_registry_expose_identical_catalogs(
        self, ops, lockstep_image
    ):
        """Same op sequence → same success/failure and same catalog view."""
        router = ClusterRouter(workers=2, transport=False)  # never started
        registry = ModelRegistry()
        for op in ops:
            outcomes = []
            for target in (router, registry):
                try:
                    if op[0] == "register":
                        _, name, version, activate = op
                        if version is None and not activate:
                            activate = True  # spec error either way; keep ops valid
                        target.register(
                            name, lockstep_image, version=version, activate=activate
                        )
                    elif op[0] == "remove":
                        _, name, version = op
                        target.remove(name, version=version)
                    else:
                        _, name, version = op
                        target.set_current(name, version)
                    outcomes.append(None)
                except (ConfigError, RoutingError) as exc:
                    outcomes.append(type(exc))
            # both surfaces accept or both reject (their exception types
            # legitimately differ: that is the documented mapping policy)
            assert (outcomes[0] is None) == (outcomes[1] is None), op
            assert router.names() == registry.names()
            for name in router.names():
                assert router.versions(name) == registry.versions(name)
                assert router.current_version(name) == registry.current_version(name)
