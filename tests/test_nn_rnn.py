"""Recurrent cells and sequence wrappers."""

from __future__ import annotations

import numpy as np

from conftest import make_tensor
from repro import nn
from repro.autodiff import Tensor


def test_lstm_cell_step(rng):
    cell = nn.LSTMCell(5, 7, rng=0)
    x = make_tensor((3, 5), rng, requires_grad=False)
    h = Tensor(np.zeros((3, 7), dtype=np.float32))
    c = Tensor(np.zeros((3, 7), dtype=np.float32))
    out, (h2, c2) = cell(x, (h, c))
    assert out.shape == (3, 7)
    assert c2.shape == (3, 7)
    assert np.abs(out.data).max() <= 1.0  # o * tanh(c) is bounded


def test_lstm_projection_shrinks_state(rng):
    cell = nn.LSTMCell(5, 8, proj_size=3, rng=0)
    assert cell.state_size == (3, 8)
    x = make_tensor((2, 5), rng, requires_grad=False)
    h = Tensor(np.zeros((2, 3), dtype=np.float32))
    c = Tensor(np.zeros((2, 8), dtype=np.float32))
    out, _ = cell(x, (h, c))
    assert out.shape == (2, 3)


def test_forget_gate_bias_initialised_to_one():
    cell = nn.LSTMCell(4, 6, rng=0)
    np.testing.assert_array_equal(cell.bias.data[6:12], np.ones(6, dtype=np.float32))


def test_gru_cell_interpolates(rng):
    cell = nn.GRUCell(4, 6, rng=0)
    x = make_tensor((2, 4), rng, requires_grad=False)
    h = Tensor(rng.standard_normal((2, 6)).astype(np.float32))
    out = cell(x, h)
    assert out.shape == (2, 6)


def test_lstm_sequence_final_and_sequences(rng):
    seq = make_tensor((3, 7, 5), rng)
    final = nn.LSTM(5, 6, rng=0)(seq)
    assert final.shape == (3, 6)
    all_steps = nn.LSTM(5, 6, return_sequences=True, rng=0)(seq)
    assert all_steps.shape == (3, 7, 6)


def test_gru_sequence_gradients_reach_input(rng):
    seq = make_tensor((2, 6, 4), rng)
    out = nn.GRU(4, 5, rng=0)(seq)
    out.sum().backward()
    assert seq.grad is not None
    assert np.abs(seq.grad).sum() > 0  # gradient flows through all steps


def test_lstm_gradients_to_parameters(rng):
    lstm = nn.LSTM(4, 5, proj_size=3, rng=0)
    seq = make_tensor((2, 5, 4), rng, requires_grad=False)
    lstm(seq).sum().backward()
    assert lstm.cell.w_ih.grad is not None
    assert lstm.cell.projection.grad is not None


def test_rnn_determinism(rng):
    seq_data = rng.standard_normal((2, 5, 4)).astype(np.float32)
    gru = nn.GRU(4, 5, rng=0)
    out1 = gru(Tensor(seq_data)).data
    out2 = gru(Tensor(seq_data)).data
    np.testing.assert_array_equal(out1, out2)
