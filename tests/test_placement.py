"""Placement subsystem: policies, replica sets, versioned rolling deploys.

Worker processes cost ~1 s each to spawn, so cluster-backed tests share
fixtures and keep pools to 1–2 workers; everything policy/table/registry
level runs without processes.
"""

from __future__ import annotations

import asyncio
import math
import threading
import time
from collections import deque

import numpy as np
import pytest

from repro.core.hybrid import HybridConfig, STHybridNet
from repro.core.strassen import freeze_all
from repro.deploy import build_image
from repro.errors import ConfigError, DeployError, RoutingError, WorkerCrashed
from repro.serving import (
    AsyncServingFrontend,
    ClusterRouter,
    DeployManager,
    LatencyStats,
    LeastLoadedPolicy,
    MicroBatchConfig,
    ModelRegistry,
    PackedModel,
    PlacementPolicy,
    Priority,
    PriorityPolicy,
    ReplicaSet,
    ReplicatedPolicy,
    SlabConfig,
    StickyPolicy,
)
from repro.serving.placement import (
    DEFAULT_VERSION,
    PlacementTable,
    make_key,
    split_key,
    validate_identifier,
)


def frozen_image(width: int = 8, rng: int = 0):
    """A small frozen ST-Hybrid image (weights random, arithmetic real)."""
    model = STHybridNet(HybridConfig(width=width), rng=rng)
    freeze_all(model)
    model.eval()
    return build_image(model)


@pytest.fixture(scope="module")
def images():
    """Two distinct model images: the v1 and v2 payloads of one model."""
    return {v: frozen_image(8, rng=i) for i, v in enumerate(["v1", "v2"])}


@pytest.fixture(scope="module")
def requests_batch():
    """A deterministic batch of MFCC-shaped inputs."""
    rng = np.random.default_rng(7)
    return [rng.standard_normal((49, 10)).astype(np.float32) for _ in range(8)]


# --------------------------------------------------------------------------- #
# keys and identifiers
# --------------------------------------------------------------------------- #


class TestModelKeys:
    def test_round_trip(self):
        assert make_key("kws", "v3") == "kws@v3"
        assert split_key("kws@v3") == ("kws", "v3")

    def test_identifiers_reject_separator_and_empty(self):
        with pytest.raises(ConfigError):
            validate_identifier("model name", "a@b")
        with pytest.raises(ConfigError):
            validate_identifier("version", "")
        assert validate_identifier("version", "v1") == "v1"

    def test_router_register_rejects_bad_names(self, images):
        router = ClusterRouter(workers=1)
        with pytest.raises(ConfigError):
            router.register("a@b", images["v1"])
        with pytest.raises(ConfigError):
            router.register("a", images["v1"], version="v@1")


# --------------------------------------------------------------------------- #
# policies and replica sets (no processes)
# --------------------------------------------------------------------------- #


class TestPlacementPolicies:
    def test_create_resolves_names_and_instances(self):
        assert isinstance(PlacementPolicy.create(None), StickyPolicy)
        assert isinstance(PlacementPolicy.create("sticky"), StickyPolicy)
        assert isinstance(PlacementPolicy.create("replicated"), ReplicatedPolicy)
        assert isinstance(PlacementPolicy.create("least-loaded"), LeastLoadedPolicy)
        custom = ReplicatedPolicy(replicas=4)
        assert PlacementPolicy.create(custom) is custom
        with pytest.raises(ConfigError, match="unknown placement policy"):
            PlacementPolicy.create("round-robin")

    def test_replica_count_validation(self):
        with pytest.raises(ConfigError):
            ReplicatedPolicy(replicas=0)
        with pytest.raises(ConfigError):
            LeastLoadedPolicy(replicas=0)

    def test_plan_prefers_least_loaded_workers(self):
        policy = ReplicatedPolicy(replicas=2)
        loads = {0: 5, 1: 0, 2: 2, 3: 9}
        plan = policy.plan([0, 1, 2, 3], loads.__getitem__, {})
        assert plan == [1, 2]

    def test_plan_breaks_ties_by_resident_then_id(self):
        policy = StickyPolicy()
        plan = policy.plan([0, 1, 2], lambda wid: 0, {0: 2, 1: 1, 2: 1})
        assert plan == [1]  # worker 1: same load, fewer resident plans, lower id

    def test_plan_caps_at_pool_size(self):
        policy = ReplicatedPolicy(replicas=8)
        assert sorted(policy.plan([0, 1], lambda wid: 0, {})) == [0, 1]

    def test_sticky_pick_is_the_single_replica(self):
        rs = ReplicaSet("m@v1", [3], StickyPolicy())
        assert rs.pick(lambda wid: 0) == 3

    def test_least_loaded_pick_scans_all_replicas(self):
        policy = LeastLoadedPolicy(replicas=3)
        rs = ReplicaSet("m@v1", [0, 1, 2], policy)
        loads = {0: 4, 1: 1, 2: 2}
        assert rs.pick(loads.__getitem__) == 1

    def test_power_of_two_choices_stays_in_set_and_prefers_lighter(self):
        policy = ReplicatedPolicy(replicas=2)
        rs = ReplicaSet("m@v1", [5, 9], policy)
        loads = {5: 10, 9: 0}
        # with two replicas both are always sampled: the lighter one wins
        for _ in range(16):
            assert rs.pick(loads.__getitem__) == 9

    def test_replica_set_counters_and_snapshot(self):
        rs = ReplicaSet("m@v1", [0, 1], ReplicatedPolicy(replicas=2))
        rs.record_dispatch(0, 3)
        rs.record_dispatch(1)
        rs.record_completion(0, 2)
        snap = {s.worker_id: s for s in rs.snapshot()}
        assert snap[0].dispatched == 3 and snap[0].completed == 2
        assert snap[1].dispatched == 1 and snap[1].completed == 0
        assert len(rs) == 2

    def test_replica_set_rejects_empty_workers(self):
        with pytest.raises(ConfigError):
            ReplicaSet("m@v1", [], StickyPolicy())


class TestPlacementTable:
    def test_lru_order_and_touch(self):
        table = PlacementTable()
        for key in ("a@v1", "b@v1", "c@v1"):
            table.insert(ReplicaSet(key, [0], StickyPolicy()))
        table.touch("a@v1")  # b is now LRU
        evicted = table.pop_lru()
        assert evicted.key == "b@v1"

    def test_pop_lru_respects_exclusions(self):
        table = PlacementTable()
        for key in ("a@v1", "b@v1"):
            table.insert(ReplicaSet(key, [0], StickyPolicy()))
        evicted = table.pop_lru(exclude={"a@v1"})
        assert evicted.key == "b@v1"
        assert table.pop_lru(exclude={"a@v1"}) is None  # only protected keys left
        assert "a@v1" in table

    def test_resident_bytes_scales_with_replicas(self):
        table = PlacementTable()
        table.insert(ReplicaSet("a@v1", [0, 1], ReplicatedPolicy(replicas=2)))
        table.insert(ReplicaSet("b@v1", [0], StickyPolicy()))
        sizes = {"a@v1": 100, "b@v1": 7}
        assert table.resident_bytes(sizes.__getitem__) == 2 * 100 + 7


class TestReplicaScaledAdmission:
    def test_limits_scale_with_replicas(self):
        policy = PriorityPolicy(max_pending=100, normal_watermark=0.8, low_watermark=0.5)
        assert policy.admit_limit(Priority.HIGH, replicas=4) == 400
        assert policy.admit_limit(Priority.NORMAL, replicas=4) == 320
        assert policy.admit_limit(Priority.LOW, replicas=4) == 200
        # replicas=1 (and the default) reproduce the single-worker limits
        assert policy.admit_limit(Priority.HIGH) == policy.admit_limit(Priority.HIGH, 1)

    def test_admits_is_replica_normalized(self):
        """The router charges 1/R per request; admits() takes that
        fractional occupancy against the *base* limit (LOW: 50)."""
        policy = PriorityPolicy(max_pending=100, normal_watermark=0.8, low_watermark=0.5)
        # 199 requests at 4 replicas = 49.75 normalized; one more quarter fits
        assert policy.admits(Priority.LOW, 199 / 4, 1 / 4)
        # 200 requests at 4 replicas = 50.0 normalized; the next is shed
        assert not policy.admits(Priority.LOW, 200 / 4, 1 / 4)


# --------------------------------------------------------------------------- #
# latency window (satellite: constructor arg + exact percentiles)
# --------------------------------------------------------------------------- #


class TestLatencyWindow:
    def test_percentiles_exact_on_synthetic_sequence(self):
        # 1..100 ms: linear-interpolated percentiles have closed forms
        window_s = [i / 1000.0 for i in range(1, 101)]
        stats = LatencyStats.from_completions(100, window_s)
        assert stats.count == 100
        assert stats.p50_ms == pytest.approx(50.5, abs=1e-9)
        assert stats.p99_ms == pytest.approx(99.01, abs=1e-9)

    def test_empty_window_is_nan(self):
        stats = LatencyStats.from_completions(0, [])
        assert math.isnan(stats.p50_ms) and math.isnan(stats.p99_ms)

    def test_router_window_size_is_configurable(self):
        router = ClusterRouter(workers=1, latency_window=4)
        assert router.latency_window == 4
        window = router._latency_by_class[Priority.NORMAL]
        assert window.maxlen == 4
        # only the most recent `latency_window` completions survive
        for value in [1.0, 2.0, 3.0, 4.0, 5.0]:
            window.append(value)
        assert list(window) == [2.0, 3.0, 4.0, 5.0]

    def test_window_validation(self):
        with pytest.raises(ConfigError):
            ClusterRouter(workers=1, latency_window=0)

    def test_sliding_window_drops_old_completions(self):
        window = deque(maxlen=3)
        for value_ms in (1, 2, 3, 1000):
            window.append(value_ms / 1000.0)
        stats = LatencyStats.from_completions(4, window)
        # the 1 ms completion fell out of the window: p50 over [2, 3, 1000]
        assert stats.p50_ms == pytest.approx(3.0, abs=1e-9)


# --------------------------------------------------------------------------- #
# SlabConfig.from_observed (satellite: adaptive slab sizing seed)
# --------------------------------------------------------------------------- #


class TestSlabConfigFromObserved:
    def test_histogram_input_rounds_to_power_of_two(self):
        config = SlabConfig.from_observed({1000: 10, 4000: 5})
        assert config.slab_bytes == 4096  # covers the 4000-byte payloads
        assert config.slabs == 128

    def test_iterable_input(self):
        config = SlabConfig.from_observed([100, 200, 300])
        assert config.slab_bytes == 512

    def test_coverage_leaves_jumbo_tail_on_the_pipe(self):
        sizes = {1024: 99, 10**6: 1}  # one jumbo in a hundred
        assert SlabConfig.from_observed(sizes, coverage=0.95).slab_bytes == 1024
        assert SlabConfig.from_observed(sizes, coverage=1.0).slab_bytes == 1 << 20

    def test_minimum_slab_size_clamped(self):
        assert SlabConfig.from_observed([1, 2, 3]).slab_bytes == 16

    def test_exact_power_of_two_not_inflated(self):
        assert SlabConfig.from_observed([4096]).slab_bytes == 4096

    def test_slabs_passthrough(self):
        assert SlabConfig.from_observed([100], slabs=7).slabs == 7

    def test_validation(self):
        with pytest.raises(ConfigError):
            SlabConfig.from_observed([])
        with pytest.raises(ConfigError):
            SlabConfig.from_observed({})
        with pytest.raises(ConfigError):
            SlabConfig.from_observed([100], coverage=0.0)
        with pytest.raises(ConfigError):
            SlabConfig.from_observed([-5])
        with pytest.raises(ConfigError):
            SlabConfig.from_observed({100: 0})


# --------------------------------------------------------------------------- #
# versioned registry (satellite of the tentpole: registry.py version keys)
# --------------------------------------------------------------------------- #


class TestRegistryVersions:
    def test_register_defaults_to_v1_and_replaces_current(self, images):
        registry = ModelRegistry()
        registry.register("kws", images["v1"])
        assert registry.current_version("kws") == DEFAULT_VERSION
        assert registry.versions("kws") == [DEFAULT_VERSION]
        x = np.random.default_rng(3).standard_normal((2, 49, 10)).astype(np.float32)
        first = registry.predict("kws", x)
        registry.register("kws", images["v2"])  # no version: replaces current
        assert registry.versions("kws") == [DEFAULT_VERSION]
        np.testing.assert_array_equal(
            registry.predict("kws", x), PackedModel(images["v2"])(x)
        )
        assert not np.array_equal(first, registry.predict("kws", x))

    def test_versioned_register_pins_and_flips(self, images):
        registry = ModelRegistry()
        registry.register("kws", images["v1"], version="v1")
        registry.register("kws", images["v2"], version="v2", activate=False)
        assert registry.current_version("kws") == "v1"
        assert registry.versions("kws") == ["v1", "v2"]
        x = np.random.default_rng(4).standard_normal((2, 49, 10)).astype(np.float32)
        np.testing.assert_array_equal(
            registry.get("kws", "v2")(x), PackedModel(images["v2"])(x)
        )
        np.testing.assert_array_equal(registry.predict("kws", x), PackedModel(images["v1"])(x))
        registry.set_current("kws", "v2")
        np.testing.assert_array_equal(registry.predict("kws", x), PackedModel(images["v2"])(x))
        with pytest.raises(ConfigError):
            registry.set_current("kws", "v9")

    def test_resident_by_version_sums_to_resident_bytes(self, images):
        registry = ModelRegistry()
        registry.register("kws", images["v1"], version="v1")
        registry.register("kws", images["v2"], version="v2", activate=False)
        x = np.zeros((1, 49, 10), dtype=np.float32)
        registry.predict("kws", x, version="v1")
        registry.predict("kws", x, version="v2")
        per_version = registry.resident_by_version()
        assert set(per_version) == {"kws@v1", "kws@v2"}
        assert sum(per_version.values()) == registry.stats.resident_bytes

    def test_remove_version_semantics(self, images):
        registry = ModelRegistry()
        registry.register("kws", images["v1"], version="v1")
        registry.register("kws", images["v2"], version="v2", activate=False)
        with pytest.raises(ConfigError, match="current"):
            registry.remove("kws", version="v1")
        registry.remove("kws", version="v2")
        assert registry.versions("kws") == ["v1"]
        registry.remove("kws")
        assert "kws" not in registry
        with pytest.raises(ConfigError):
            registry.remove("kws")

    def test_unknown_version_raises(self, images):
        registry = ModelRegistry()
        registry.register("kws", images["v1"])
        with pytest.raises(ConfigError, match="unknown version"):
            registry.get("kws", "v9")

    def test_staging_requires_explicit_version(self, images):
        """activate=False with version=None would replace the LIVE current
        version — both catalogs reject the combination."""
        registry = ModelRegistry()
        registry.register("kws", images["v1"])
        with pytest.raises(ConfigError, match="explicit"):
            registry.register("kws", images["v2"], activate=False)
        router = ClusterRouter(workers=1)
        router.register("kws", images["v1"])
        with pytest.raises(ConfigError, match="explicit"):
            router.register("kws", images["v2"], activate=False)
        # the live version was not touched by either rejected call
        x = np.random.default_rng(5).standard_normal((1, 49, 10)).astype(np.float32)
        np.testing.assert_array_equal(
            registry.predict("kws", x), PackedModel(images["v1"])(x)
        )


# --------------------------------------------------------------------------- #
# cluster integration: replication, version routing, rolling deploys
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def replicated_cluster(images):
    """A running 2-worker cluster with the hot model replicated on both."""
    router = ClusterRouter(
        workers=2,
        placement=ReplicatedPolicy(replicas=2),
        config=MicroBatchConfig(max_batch_size=8),
    )
    router.register("kws", images["v1"], version="v1")
    with router:
        yield router


class TestReplication:
    def test_hot_model_spreads_across_workers(self, replicated_cluster, requests_batch):
        for x in requests_batch:
            replicated_cluster.predict(x, model="kws")
        placements = replicated_cluster.placements()
        assert set(placements) == {"kws@v1"}
        assert sorted(placements["kws@v1"]) == [0, 1]

    def test_both_replicas_serve_traffic(self, replicated_cluster, requests_batch):
        for x in requests_batch:
            replicated_cluster.predict(x, model="kws")
        stats = replicated_cluster.snapshot()
        per_replica = {r.worker_id: r for r in stats.replicas["kws@v1"]}
        assert set(per_replica) == {0, 1}
        # sequential traffic alternates under load-aware dispatch: both
        # replicas must have served a meaningful share
        assert all(r.dispatched > 0 for r in per_replica.values())
        assert all(r.completed > 0 for r in per_replica.values())

    def test_replicated_predictions_bitwise_identical(
        self, replicated_cluster, images, requests_batch
    ):
        got = np.stack(
            [replicated_cluster.predict(x, model="kws") for x in requests_batch]
        )
        want = PackedModel(images["v1"])(np.stack(requests_batch))
        np.testing.assert_array_equal(got, want)

    def test_resident_bytes_count_every_replica(self, replicated_cluster, requests_batch):
        replicated_cluster.predict(requests_batch[0], model="kws")
        stats = replicated_cluster.snapshot()
        per_worker = [w.resident_bytes for w in stats.workers]
        # both replicas account the full plan: equal non-zero footprint
        assert per_worker[0] == per_worker[1] > 0
        assert stats.resident_bytes == sum(per_worker)

    def test_replicated_register_respects_budget_times_replicas(self, images):
        size = PackedModel(images["v1"]).decoded_bytes()
        router = ClusterRouter(
            workers=2,
            placement=ReplicatedPolicy(replicas=2),
            capacity_bytes=size + 1,  # one copy fits, two never do
        )
        with pytest.raises(ConfigError, match="replica"):
            router.register("kws", images["v1"])

    def test_placement_override_validates_every_registered_version(self, images):
        """A per-model override governs all of the name's versions, so it is
        rejected unless every registered version still fits a full replica
        set — an existing version must never become unservable."""
        size1 = PackedModel(images["v1"]).decoded_bytes()
        size2 = PackedModel(images["v2"]).decoded_bytes()
        big = max(size1, size2)
        router = ClusterRouter(workers=3, capacity_bytes=2 * big)
        router.register("m", images["v1"], version="v1")
        # v2's image alone would fit twice, but v1 (same name, same policy)
        # would not — the override must be rejected and not committed
        with pytest.raises(ConfigError, match="replica"):
            router.register(
                "m",
                images["v2"],
                version="v2",
                activate=False,
                placement=ReplicatedPolicy(replicas=3),
            )
        assert router.versions("m") == ["v1"]
        with router:
            x = np.zeros((49, 10), dtype=np.float32)
            assert router.predict(x, model="m").shape == (12,)  # still servable

    def test_placement_override_replaces_stale_replica_sets(self, images, requests_batch):
        """Changing a model's placement policy drops its replica sets so the
        next use re-places under the new policy; an *equivalent* policy
        (same class, same replicas — a fresh instance of the same spec)
        leaves the model's other versions' placements untouched."""
        router = ClusterRouter(workers=2)
        router.register("m", images["v1"], version="v1")
        with router:
            router.predict(requests_batch[0], model="m")
            assert len(router.placements()["m@v1"]) == 1  # sticky
            router.register(
                "m", images["v1"], version="v1", placement=ReplicatedPolicy(replicas=2)
            )
            router.predict(requests_batch[0], model="m")
            assert sorted(router.placements()["m@v1"]) == [0, 1]  # re-placed
            # staging v2 with an equivalent policy spec must not disturb
            # v1's live replica set
            router.register(
                "m",
                images["v2"],
                version="v2",
                activate=False,
                placement=ReplicatedPolicy(replicas=2),
            )
            assert "m@v1" in router.placements()
            # a genuinely different policy drops v1's set for re-placement
            router.register(
                "m",
                images["v2"],
                version="v2",
                activate=False,
                placement=LeastLoadedPolicy(replicas=2),
            )
            assert "m@v1" not in router.placements()
            router.predict(requests_batch[0], model="m")  # re-places under new policy
            assert sorted(router.placements()["m@v1"]) == [0, 1]

    def test_policy_equivalence(self):
        assert ReplicatedPolicy(replicas=2).equivalent(ReplicatedPolicy(replicas=2))
        assert not ReplicatedPolicy(replicas=2).equivalent(ReplicatedPolicy(replicas=3))
        assert not ReplicatedPolicy(replicas=2).equivalent(LeastLoadedPolicy(replicas=2))
        assert StickyPolicy().equivalent(StickyPolicy())
        assert not StickyPolicy().equivalent(None)

    def test_rejected_placement_override_is_not_committed(self, images):
        size = PackedModel(images["v1"]).decoded_bytes()
        router = ClusterRouter(workers=2, capacity_bytes=size + 1)
        with pytest.raises(ConfigError, match="replica"):
            router.register("kws", images["v1"], placement=ReplicatedPolicy(replicas=2))
        # the failed register must not leave the 2-replica override behind:
        # a plain sticky registration of the same name still fits the budget
        router.register("kws", images["v1"])
        assert "kws" in router


class TestVersionRouting:
    @pytest.fixture(scope="class")
    def versioned_cluster(self, images):
        """One worker serving kws v1 (current) with v2 staged inactive."""
        router = ClusterRouter(workers=1, config=MicroBatchConfig(max_batch_size=8))
        router.register("kws", images["v1"], version="v1")
        router.register("kws", images["v2"], version="v2", activate=False)
        with router:
            yield router

    def test_version_pinning_and_current_resolution(
        self, versioned_cluster, images, requests_batch
    ):
        x = requests_batch[0]
        np.testing.assert_array_equal(
            versioned_cluster.predict(x, model="kws"),
            PackedModel(images["v1"])(x[None])[0],
        )
        np.testing.assert_array_equal(
            versioned_cluster.predict(x, model="kws", version="v2"),
            PackedModel(images["v2"])(x[None])[0],
        )
        assert versioned_cluster.current_version("kws") == "v1"

    def test_unknown_version_raises(self, versioned_cluster, requests_batch):
        with pytest.raises(RoutingError, match="unknown version"):
            versioned_cluster.predict(requests_batch[0], model="kws", version="v9")

    def test_set_current_flips_default_routing(
        self, versioned_cluster, images, requests_batch
    ):
        x = requests_batch[1]
        versioned_cluster.set_current("kws", "v2")
        try:
            np.testing.assert_array_equal(
                versioned_cluster.predict(x, model="kws"),
                PackedModel(images["v2"])(x[None])[0],
            )
        finally:
            versioned_cluster.set_current("kws", "v1")

    def test_remove_current_version_guarded(self, versioned_cluster):
        with pytest.raises(RoutingError, match="current"):
            versioned_cluster.remove("kws", version="v1")

    def test_remove_discards_pins_and_unpin_is_prefix_based(self, images):
        router = ClusterRouter(workers=1)
        router.register("m", images["v1"], version="v1")
        router.register("m", images["v2"], version="v2", activate=False)
        router._protected.update({"m@v1", "m@v2", "other@v1"})
        router.remove("m", version="v2")  # a removed key must not stay pinned
        assert "m@v2" not in router._protected
        router.unpin("m")  # clears by name prefix, even for removed versions
        assert router._protected == {"other@v1"}


class TestRollingDeploy:
    @pytest.fixture()
    def deploy_cluster(self, images):
        """A fresh 2-worker cluster serving kws v1 (function-scoped: deploys
        mutate the catalog)."""
        router = ClusterRouter(workers=2, config=MicroBatchConfig(max_batch_size=8))
        router.register("kws", images["v1"], version="v1")
        with router:
            router.predict(np.zeros((49, 10), dtype=np.float32), model="kws")
            yield router

    def test_deploy_swaps_versions_without_shedding(
        self, deploy_cluster, images, requests_batch
    ):
        manager = DeployManager(deploy_cluster)
        before = deploy_cluster.snapshot()
        report = manager.deploy("kws", images["v2"], "v2")
        assert report.old_version == "v1" and report.new_version == "v2"
        assert deploy_cluster.current_version("kws") == "v2"
        # routing now serves v2, bitwise
        x = requests_batch[0]
        np.testing.assert_array_equal(
            deploy_cluster.predict(x, model="kws"),
            PackedModel(images["v2"])(x[None])[0],
        )
        # the old version's plans are gone; only v2 is placed
        assert set(deploy_cluster.placements()) == {"kws@v2"}
        after = deploy_cluster.snapshot()
        assert after.shed == before.shed  # deploys shed nothing
        assert after.current_versions["kws"] == "v2"
        # old version's image is retained for rollback
        assert deploy_cluster.versions("kws") == ["v1", "v2"]
        assert manager.history("kws") == ["v1", "v2"]
        # the released version keeps its served count but drops its latency
        # window (no per-deploy memory growth); percentiles go nan
        assert after.latency_by_version["kws@v1"].count >= 1
        assert "kws@v1" not in deploy_cluster._latency_by_key

    def test_deploy_releases_old_bytes_under_budget(self, images, requests_batch):
        size1 = PackedModel(images["v1"]).decoded_bytes()
        size2 = PackedModel(images["v2"]).decoded_bytes()
        router = ClusterRouter(workers=1, capacity_bytes=size1 + size2)
        router.register("kws", images["v1"], version="v1")
        with router:
            router.predict(requests_batch[0], model="kws")
            assert router.snapshot().resident_bytes == size1
            manager = DeployManager(router)
            manager.deploy("kws", images["v2"], "v2")
            stats = router.snapshot()
            # old bytes fully released: only v2's plan remains resident
            assert stats.resident_bytes == size2
            assert stats.resident_bytes <= router.capacity_bytes
            router.predict(requests_batch[0], model="kws")
            assert router.snapshot().resident_bytes <= router.capacity_bytes

    def test_deploy_drains_inflight_old_version(self, deploy_cluster, images, requests_batch):
        # stall the workers so admitted v1 requests are still pending when
        # the deploy flips; the drain must wait for them, not shed them
        deploy_cluster.pool.inject_sleep(0, 0.4)
        deploy_cluster.pool.inject_sleep(1, 0.4)
        held = [
            deploy_cluster.submit(x, model="kws", priority=Priority.HIGH)
            for x in requests_batch[:4]
        ]
        manager = DeployManager(deploy_cluster)
        report = manager.deploy("kws", images["v2"], "v2")
        # every stalled request was served (v1, bitwise), none shed or crashed
        want = PackedModel(images["v1"])(np.stack(requests_batch[:4]))
        got = np.stack([f.result(timeout=30.0) for f in held])
        np.testing.assert_array_equal(got, want)
        assert deploy_cluster.snapshot().shed == 0
        assert report.drained >= 0  # the flip may land after the stall ends

    def test_rollback_restores_previous_version(
        self, deploy_cluster, images, requests_batch
    ):
        manager = DeployManager(deploy_cluster)
        manager.deploy("kws", images["v2"], "v2")
        report = manager.rollback("kws")
        assert report.new_version == "v1"
        assert deploy_cluster.current_version("kws") == "v1"
        x = requests_batch[2]
        np.testing.assert_array_equal(
            deploy_cluster.predict(x, model="kws"),
            PackedModel(images["v1"])(x[None])[0],
        )

    def test_rollback_without_history_raises(self, deploy_cluster):
        manager = DeployManager(deploy_cluster)
        with pytest.raises(DeployError, match="no previous version"):
            manager.rollback("kws")

    def test_deploy_same_version_raises(self, deploy_cluster, images):
        manager = DeployManager(deploy_cluster)
        with pytest.raises(DeployError, match="already serving"):
            manager.deploy("kws", images["v1"], "v1")

    def test_first_time_deploy_registers_and_serves(self, images, requests_batch):
        router = ClusterRouter(workers=1, config=MicroBatchConfig(max_batch_size=8))
        with router:
            manager = DeployManager(router)
            report = manager.deploy("fresh", images["v1"], "v1")
            assert report.old_version is None and report.new_version == "v1"
            assert report.replicas  # plans were warmed eagerly
            np.testing.assert_array_equal(
                router.predict(requests_batch[0], model="fresh"),
                PackedModel(images["v1"])(requests_batch[0][None])[0],
            )
            assert manager.history("fresh") == ["v1"]
            assert not router._protected  # nothing stays pinned
            # and the usual rolling deploy works on top of it
            manager.deploy("fresh", images["v2"], "v2")
            assert router.current_version("fresh") == "v2"

    def test_drain_timeout_reports_after_flip_and_unpins(
        self, deploy_cluster, images, requests_batch
    ):
        """A drain timeout is a DeployError *after* the atomic flip: the new
        version is current and rollback-able, nothing stays pinned, and the
        version-pinned stragglers that stalled the drain are still served,
        never shed."""
        manager = DeployManager(
            deploy_cluster, drain_timeout_s=0.05, poll_interval_s=0.02
        )
        stop = threading.Event()
        pinned: list = []
        want = PackedModel(images["v1"])(requests_batch[0][None])[0]

        def pin_old_version():
            # keep v1 requests permanently in flight — and the workers
            # mostly stalled — so the drain cannot observe zero pending for
            # the old version (workers still answer warm-up pings between
            # stalls, so the deploy reaches its drain phase)
            window: list = []
            while not stop.is_set():
                for wid in (0, 1):
                    deploy_cluster.pool.inject_sleep(wid, 0.05)
                window.append(
                    deploy_cluster.submit(requests_batch[0], model="kws", version="v1")
                )
                if len(window) >= 4:
                    pinned.append(window.pop(0).result(timeout=30.0))
            pinned.extend(f.result(timeout=30.0) for f in window)

        thread = threading.Thread(target=pin_old_version, daemon=True)
        thread.start()
        try:
            with pytest.raises(DeployError, match="draining"):
                manager.deploy("kws", images["v2"], "v2")
        finally:
            stop.set()
            thread.join(timeout=30.0)
        assert deploy_cluster.current_version("kws") == "v2"  # flip happened
        assert "v2" in deploy_cluster.versions("kws")  # live version not removed
        assert not deploy_cluster._protected  # no permanent pins
        assert pinned, "pinned v1 traffic never completed"
        for row in pinned:  # every pinned request was served on v1, bitwise
            np.testing.assert_array_equal(row, want)
        assert deploy_cluster.snapshot().shed == 0
        report = manager.rollback("kws")  # the flipped version is on record
        assert report.new_version == "v1"

    def test_failed_deploy_leaves_old_version_serving(self, deploy_cluster, images):
        manager = DeployManager(deploy_cluster, warm_timeout_s=0.2)
        deploy_cluster.pool.inject_sleep(0, 1.0)  # warm-up cannot ack in time
        deploy_cluster.pool.inject_sleep(1, 1.0)
        with pytest.raises(DeployError, match="timed out"):
            manager.deploy("kws", images["v2"], "v2")
        # routing never flipped and the staged version was cleaned up
        assert deploy_cluster.current_version("kws") == "v1"
        assert deploy_cluster.versions("kws") == ["v1"]
        result = deploy_cluster.predict(np.zeros((49, 10), dtype=np.float32), model="kws")
        assert result.shape == (12,)


class TestCrashDuringDeploy:
    def test_worker_dies_mid_warmup_deploy_retries_and_old_serves(
        self, images, requests_batch
    ):
        """Chaos: the worker dies between receiving the new version's load
        and acking it.  The pool restarts it and replays the loads (old and
        warming version), the warm-up poll retries onto the replacement,
        and the deploy completes; the old version keeps serving meanwhile."""
        router = ClusterRouter(workers=1, config=MicroBatchConfig(max_batch_size=8))
        router.register("kws", images["v1"], version="v1")
        with router:
            router.predict(requests_batch[0], model="kws")  # place + decode v1
            # stall the worker, then queue its death: the deploy's warm-up
            # load lands in the pipe *behind* the exit command, so the
            # worker dies before decoding v2 — mid-warm-up from the
            # deploy's point of view
            router.pool.inject_sleep(0, 0.3)
            router.pool.inject_crash(0)
            manager = DeployManager(router, warm_timeout_s=30.0)
            served_v1 = []
            stop = threading.Event()

            def old_version_traffic():
                while not stop.is_set():
                    try:
                        served_v1.append(
                            router.predict(requests_batch[1], model="kws", version="v1")
                        )
                    except (WorkerCrashed, RoutingError):
                        time.sleep(0.02)  # the restart heals this; retry

            thread = threading.Thread(target=old_version_traffic, daemon=True)
            thread.start()
            try:
                report = manager.deploy("kws", images["v2"], "v2")
            finally:
                stop.set()
                thread.join(timeout=30.0)
            assert report.new_version == "v2"
            assert router.snapshot().crashes >= 1
            # the old version served traffic while the deploy recovered
            assert served_v1, "old version never served during the deploy"
            want = PackedModel(images["v1"])(requests_batch[1][None])[0]
            for row in served_v1:
                np.testing.assert_array_equal(row, want)
            # and the new version serves after it, bitwise
            np.testing.assert_array_equal(
                router.predict(requests_batch[2], model="kws"),
                PackedModel(images["v2"])(requests_batch[2][None])[0],
            )


class TestFrontendDeploy:
    def test_async_deploy_and_rollback(self, images, requests_batch):
        router = ClusterRouter(workers=1, config=MicroBatchConfig(max_batch_size=8))
        router.register("kws", images["v1"], version="v1")
        frontend = AsyncServingFrontend(router)

        async def run():
            async with frontend:
                before = await frontend.predict(requests_batch[0], model="kws")
                report = await frontend.deploy("kws", images["v2"], "v2")
                after = await frontend.predict(requests_batch[0], model="kws")
                pinned = await frontend.predict(
                    requests_batch[0], model="kws", version="v1"
                )
                rolled = await frontend.rollback("kws")
                restored = await frontend.predict(requests_batch[0], model="kws")
                return before, report, after, pinned, rolled, restored

        before, report, after, pinned, rolled, restored = asyncio.run(run())
        assert report.new_version == "v2" and rolled.new_version == "v1"
        np.testing.assert_array_equal(
            before, PackedModel(images["v1"])(requests_batch[0][None])[0]
        )
        np.testing.assert_array_equal(
            after, PackedModel(images["v2"])(requests_batch[0][None])[0]
        )
        np.testing.assert_array_equal(pinned, before)
        np.testing.assert_array_equal(restored, before)

    def test_engine_frontend_rejects_deploy_and_version(self, images, requests_batch):
        frontend = AsyncServingFrontend(PackedModel(images["v1"]))

        async def deploy():
            await frontend.deploy("kws", images["v2"], "v2")

        async def versioned_predict():
            await frontend.predict(requests_batch[0], version="v1")

        with pytest.raises(ConfigError, match="cluster"):
            asyncio.run(deploy())
        with pytest.raises(ConfigError, match="cluster"):
            asyncio.run(versioned_predict())


class TestReplicaScaledAdmissionIntegration:
    def test_replicated_flood_cannot_starve_other_models(self, images):
        """Admission is replica-*normalized*: a LOW flood to a replicated
        model fills its scaled allowance without consuming the HIGH headroom
        of a sticky model sharing the cluster."""
        from repro.errors import AdmissionError

        policy = PriorityPolicy(max_pending=4, normal_watermark=0.75, low_watermark=0.5)
        router = ClusterRouter(workers=2, policy=policy)
        router.register("big", images["v1"], placement=ReplicatedPolicy(replicas=2))
        router.register("small", images["v2"])  # sticky
        with router:
            router.predict(np.zeros((49, 10), dtype=np.float32), model="big")
            router.predict(np.zeros((49, 10), dtype=np.float32), model="small")
            router.pool.inject_sleep(0, 0.5)
            router.pool.inject_sleep(1, 0.5)
            x = np.zeros((49, 10), dtype=np.float32)
            # LOW to 'big' (weight 1/2 each): admitted until normalized
            # occupancy reaches the LOW watermark (2.0), i.e. 4 requests
            held = []
            for _ in range(4):
                held.append(router.submit(x, model="big", priority=Priority.LOW))
            with pytest.raises(AdmissionError):
                router.submit(x, model="big", priority=Priority.LOW)
            # HIGH to the sticky model still fits: 2.0 + 1 <= 4
            held.append(router.submit(x, model="small", priority=Priority.HIGH))
            for future in held:
                assert future.result(timeout=30.0).shape == (12,)

    def test_replicated_model_admits_more_pending(self, images):
        policy = PriorityPolicy(max_pending=1, normal_watermark=1.0, low_watermark=1.0)
        router = ClusterRouter(
            workers=2,
            placement=ReplicatedPolicy(replicas=2),
            policy=policy,
        )
        router.register("kws", images["v1"])
        with router:
            router.predict(np.zeros((49, 10), dtype=np.float32))  # place both replicas
            router.pool.inject_sleep(0, 0.4)
            router.pool.inject_sleep(1, 0.4)
            xs = np.zeros((3, 49, 10), dtype=np.float32)
            # two replicas double the 1-slot budget: two admits, third sheds
            held = [router.submit(xs[0]), router.submit(xs[1])]
            from repro.errors import AdmissionError

            with pytest.raises(AdmissionError):
                router.submit(xs[2])
            for future in held:
                assert future.result(timeout=30.0).shape == (12,)
