"""Streaming keyword detection: stream synthesis, detector, scoring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bonsai import BonsaiAnnealingSchedule
from repro.core.hybrid import HybridConfig, HybridNet
from repro.errors import ConfigError
from repro.evaluation import (
    DetectionEvent,
    StreamingConfig,
    StreamingDetector,
    StreamingMetrics,
    make_stream,
    score_detections,
)
from repro.training import TrainConfig, Trainer


class TestStreamSynthesis:
    def test_stream_contains_keywords_with_truth(self):
        wave, truth = make_stream(["yes", "no", "stop"], rng=0)
        assert len(truth) == 3
        assert [w for w, _ in truth] == ["yes", "no", "stop"]
        times = [t for _, t in truth]
        assert times == sorted(times)
        assert len(wave) > 3 * 16000  # keywords + gaps
        assert np.isfinite(wave).all()

    def test_stream_deterministic(self):
        w1, t1 = make_stream(["go"], rng=5)
        w2, t2 = make_stream(["go"], rng=5)
        np.testing.assert_array_equal(w1, w2)
        assert t1 == t2


class TestConfig:
    def test_derived_sizes(self):
        cfg = StreamingConfig(hop_ms=250.0)
        assert cfg.hop_samples == 4000
        assert cfg.window_samples == 16000

    def test_smoothing_validation(self):
        class Dummy:
            def eval(self):
                pass

        with pytest.raises(ConfigError):
            StreamingDetector(Dummy(), StreamingConfig(smoothing_windows=0))


class TestScoring:
    def test_hits_misses_false_alarms(self):
        truth = [("yes", 2.0), ("no", 5.0), ("bed", 8.0)]  # bed -> unknown
        events = [
            DetectionEvent(label=2, time_seconds=2.1, score=0.9),  # hit "yes"
            DetectionEvent(label=3, time_seconds=9.0, score=0.8),  # FA (wrong place)
        ]
        metrics = score_detections(events, truth, stream_seconds=10.0)
        assert metrics.hits == 1
        assert metrics.misses == 1  # "no" missed; "bed" excluded (unknown)
        assert metrics.false_alarms == 1
        assert metrics.miss_rate == pytest.approx(0.5)
        assert metrics.false_alarms_per_hour == pytest.approx(360.0)

    def test_each_truth_claimed_once(self):
        truth = [("yes", 2.0)]
        events = [
            DetectionEvent(label=2, time_seconds=2.0, score=0.9),
            DetectionEvent(label=2, time_seconds=2.2, score=0.9),
        ]
        metrics = score_detections(events, truth, stream_seconds=10.0)
        assert metrics.hits == 1
        assert metrics.false_alarms == 1

    def test_empty_everything(self):
        metrics = score_detections([], [], stream_seconds=0.0)
        assert metrics.miss_rate == 0.0
        assert metrics.false_alarms_per_hour == 0.0


class TestDetectorEndToEnd:
    @pytest.fixture(scope="class")
    def trained_model(self, tiny_dataset):
        model = HybridNet(HybridConfig(width=16), rng=0)
        trainer = Trainer(
            model,
            TrainConfig(epochs=10, batch_size=16, lr=3e-3, loss="hinge", lr_drop_every=None, seed=0),
            callbacks=[BonsaiAnnealingSchedule(1.0, 8.0, 10)],
        )
        trainer.fit(*tiny_dataset.arrays("train"), *tiny_dataset.arrays("val"))
        return model, tiny_dataset

    def test_posterior_shape_and_normalisation(self, trained_model):
        model, dataset = trained_model
        wave, _ = make_stream(["yes"], rng=1)
        detector = StreamingDetector(
            model,
            StreamingConfig(hop_ms=500.0),
            feature_mean=dataset.feature_mean,
            feature_std=dataset.feature_std,
        )
        times, probs = detector.posteriors(wave)
        assert probs.shape == (len(times), 12)
        np.testing.assert_allclose(probs[-1].sum(), 1.0, rtol=1e-4)
        assert (np.diff(times) > 0).all()

    def test_detect_fires_fewer_than_windows(self, trained_model):
        model, dataset = trained_model
        wave, truth = make_stream(["yes", "stop"], rng=2)
        detector = StreamingDetector(
            model,
            StreamingConfig(hop_ms=250.0, threshold=0.5),
            feature_mean=dataset.feature_mean,
            feature_std=dataset.feature_std,
        )
        events = detector.detect(wave)
        times, _ = detector.posteriors(wave)
        assert len(events) <= len(times)
        for event in events:
            assert event.label >= 2  # never fires on silence/unknown
        metrics = score_detections(events, truth, stream_seconds=len(wave) / 16000.0)
        assert isinstance(metrics, StreamingMetrics)

    def test_refractory_suppresses_bursts(self, trained_model):
        model, dataset = trained_model
        wave, _ = make_stream(["yes"], rng=3)
        detector = StreamingDetector(
            model,
            StreamingConfig(hop_ms=125.0, threshold=0.2, refractory_ms=2000.0),
            feature_mean=dataset.feature_mean,
            feature_std=dataset.feature_std,
        )
        events = detector.detect(wave)
        gaps = np.diff([e.time_seconds for e in events])
        assert (gaps >= 2.0 - 1e-9).all() if len(events) > 1 else True

    def test_short_stream_rejected(self, trained_model):
        model, dataset = trained_model
        detector = StreamingDetector(model)
        with pytest.raises(ConfigError):
            detector.posteriors(np.zeros(1000))
