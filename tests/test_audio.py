"""Audio frontend: signal utilities, mel filterbank, DCT, MFCC, augmentation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audio import (
    MFCC,
    MFCCConfig,
    add_background_noise,
    dct_matrix,
    frame_signal,
    hz_to_mel,
    mel_filterbank,
    mel_to_hz,
    preemphasis,
    random_time_shift,
    rms_normalize,
)
from repro.errors import ConfigError, ShapeError


class TestSignal:
    def test_preemphasis_flattens_dc(self):
        signal = np.ones(100)
        out = preemphasis(signal, 0.97)
        np.testing.assert_allclose(out[1:], 0.03, atol=1e-12)

    def test_preemphasis_rejects_2d(self):
        with pytest.raises(ShapeError):
            preemphasis(np.ones((2, 3)))

    def test_frame_count_formula(self):
        frames = frame_signal(np.arange(16000), 640, 320)
        assert frames.shape == (49, 640)  # the paper's 49 frames
        np.testing.assert_array_equal(frames[1][:10], np.arange(320, 330))

    def test_frame_too_short_raises(self):
        with pytest.raises(ShapeError):
            frame_signal(np.arange(10), 64, 32)

    def test_rms_normalize(self, rng):
        signal = rng.standard_normal(1000) * 5
        out = rms_normalize(signal, 0.1)
        np.testing.assert_allclose(np.sqrt(np.mean(out**2)), 0.1, rtol=1e-6)
        np.testing.assert_array_equal(rms_normalize(np.zeros(10)), np.zeros(10))


class TestMel:
    @given(st.floats(min_value=1.0, max_value=8000.0, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_mel_roundtrip(self, hz):
        np.testing.assert_allclose(mel_to_hz(hz_to_mel(hz)), hz, rtol=1e-9)

    def test_filterbank_shape_and_coverage(self):
        bank = mel_filterbank(40, 1024, 16000)
        assert bank.shape == (40, 513)
        assert (bank >= 0).all()
        # triangles peak near 1 (exact unity only when a bin hits the centre)
        assert (bank.max(axis=1) > 0.5).all()
        assert (bank.max(axis=1) <= 1.0).all()
        # centres increase monotonically
        centres = bank.argmax(axis=1)
        assert (np.diff(centres) > 0).all()

    def test_filterbank_invalid_range(self):
        with pytest.raises(ConfigError):
            mel_filterbank(10, 512, 16000, low_hz=9000.0)


class TestDCT:
    def test_orthonormal_rows(self):
        m = dct_matrix(40, 40)
        np.testing.assert_allclose(m @ m.T, np.eye(40), atol=1e-10)

    def test_truncated(self):
        m = dct_matrix(10, 40)
        assert m.shape == (10, 40)
        np.testing.assert_allclose(m @ m.T, np.eye(10), atol=1e-10)

    def test_too_many_coefficients(self):
        with pytest.raises(ValueError):
            dct_matrix(41, 40)


class TestMFCC:
    def test_paper_shape(self):
        extractor = MFCC()
        feats = extractor(np.random.default_rng(0).standard_normal(16000))
        assert feats.shape == (49, 10)  # the paper's 49x10 input
        assert feats.dtype == np.float32

    def test_batch(self):
        extractor = MFCC()
        waves = np.random.default_rng(0).standard_normal((3, 16000))
        assert extractor.batch(waves).shape == (3, 49, 10)

    def test_distinguishes_tones(self):
        t = np.arange(16000) / 16000.0
        low = MFCC()(np.sin(2 * np.pi * 300 * t))
        high = MFCC()(np.sin(2 * np.pi * 3000 * t))
        assert np.abs(low - high).mean() > 0.5

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            MFCC(MFCCConfig(num_coefficients=50, num_mel_filters=40))

    def test_config_derived_sizes(self):
        cfg = MFCCConfig()
        assert cfg.frame_length == 640
        assert cfg.frame_step == 320
        assert cfg.effective_fft_length == 1024
        assert cfg.num_frames(16000) == 49


class TestAugment:
    def test_time_shift_preserves_content(self, rng):
        wave = rng.standard_normal(1000)
        out = random_time_shift(wave, max_shift_ms=10, sample_rate=16000, rng=0)
        assert out.shape == wave.shape
        # energy approximately preserved (zeros pad at most max_shift samples)
        assert np.abs(out).sum() >= 0.7 * np.abs(wave).sum()

    def test_time_shift_zero(self, rng):
        wave = rng.standard_normal(100)
        np.testing.assert_array_equal(
            random_time_shift(wave, 0.0, 16000, rng=0), wave
        )

    def test_noise_mixing_raises_energy(self, rng):
        wave = np.zeros(1000)
        noise = rng.standard_normal(5000)
        out = add_background_noise(wave, noise, volume=0.5, rng=0)
        assert np.abs(out).sum() > 0

    def test_zero_volume_is_identity(self, rng):
        wave = rng.standard_normal(100)
        np.testing.assert_array_equal(
            add_background_noise(wave, rng.standard_normal(200), 0.0, rng=0), wave
        )

    def test_short_noise_is_tiled(self, rng):
        wave = rng.standard_normal(1000)
        out = add_background_noise(wave, rng.standard_normal(100), 0.3, rng=0)
        assert out.shape == wave.shape
