"""Module/Parameter registration, state_dict, modes."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.autodiff import Tensor
from repro.nn.module import Module, Parameter


class Toy(Module):
    def __init__(self):
        super().__init__()
        self.lin = nn.Linear(4, 3, rng=0)
        self.scale = Parameter(np.ones(3, dtype=np.float32))
        self.register_buffer("running", Tensor(np.zeros(3, dtype=np.float32)))

    def forward(self, x):
        return self.lin(x) * self.scale


def test_parameter_registration_and_names():
    toy = Toy()
    names = dict(toy.named_parameters())
    assert set(names) == {"lin.weight", "lin.bias", "scale"}
    assert all(isinstance(p, Parameter) for p in names.values())


def test_buffer_registration():
    toy = Toy()
    buffers = dict(toy.named_buffers())
    assert "running" in buffers
    # buffers appear in state_dict but not in parameters
    assert "running" in toy.state_dict()
    assert "running" not in dict(toy.named_parameters())


def test_state_dict_roundtrip():
    toy = Toy()
    state = toy.state_dict()
    toy2 = Toy()
    for p in toy2.parameters():
        p.data = p.data + 1.0
    toy2.load_state_dict(state)
    for name, p in toy2.named_parameters():
        np.testing.assert_array_equal(p.data, state[name])


def test_load_state_dict_strict_errors():
    toy = Toy()
    state = toy.state_dict()
    del state["scale"]
    with pytest.raises(KeyError):
        toy.load_state_dict(state)
    toy.load_state_dict(state, strict=False)  # tolerated when not strict


def test_load_state_dict_shape_mismatch():
    toy = Toy()
    state = toy.state_dict()
    state["scale"] = np.ones(7)
    with pytest.raises(ValueError):
        toy.load_state_dict(state)


def test_train_eval_recurses():
    toy = Toy()
    assert toy.training and toy.lin.training
    toy.eval()
    assert not toy.training and not toy.lin.training
    toy.train()
    assert toy.training and toy.lin.training


def test_num_parameters():
    toy = Toy()
    assert toy.num_parameters() == 4 * 3 + 3 + 3
    assert toy.num_parameters(trainable_only=False) == 4 * 3 + 3 + 3 + 3


def test_zero_grad_clears_all(rng):
    toy = Toy()
    out = toy(Tensor(rng.standard_normal((2, 4)).astype(np.float32)))
    out.sum().backward()
    assert any(p.grad is not None for p in toy.parameters())
    toy.zero_grad()
    assert all(p.grad is None for p in toy.parameters())


def test_reassignment_replaces_registration():
    toy = Toy()
    toy.scale = Parameter(np.zeros(3, dtype=np.float32))
    assert len(list(toy.named_parameters())) == 3  # no duplicate entry


def test_named_modules_walks_tree():
    toy = Toy()
    names = [name for name, _ in toy.named_modules()]
    assert "" in names and "lin" in names
