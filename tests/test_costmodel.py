"""Cost model: count algebra, layer formulas, memory accounting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel import (
    OpCounts,
    SizeBreakdown,
    activation_footprint_bytes,
    bonsai_counts,
    conv2d_counts,
    depthwise_conv2d_counts,
    format_table,
    linear_counts,
    strassen_conv2d_counts,
    strassen_depthwise_counts,
    strassen_linear_counts,
)
from repro.costmodel.counts import fmt_count

COUNTS = st.builds(
    OpCounts,
    muls=st.integers(min_value=0, max_value=10**9),
    adds=st.integers(min_value=0, max_value=10**9),
    macs=st.integers(min_value=0, max_value=10**9),
)


class TestOpCounts:
    @given(COUNTS, COUNTS)
    @settings(max_examples=50, deadline=None)
    def test_addition_is_componentwise(self, a, b):
        c = a + b
        assert c.muls == a.muls + b.muls
        assert c.adds == a.adds + b.adds
        assert c.macs == a.macs + b.macs
        assert c.ops == a.ops + b.ops

    @given(COUNTS, st.integers(min_value=0, max_value=100))
    @settings(max_examples=50, deadline=None)
    def test_scaling(self, a, k):
        scaled = a.scaled(k)
        assert scaled.ops == a.ops * k

    def test_fmt_count(self):
        assert fmt_count(2_700_000) == "2.70M"
        assert fmt_count(768) == "768"
        assert fmt_count(23_180) == "23.2K"


class TestLayerFormulas:
    def test_conv_hand_example(self):
        # DS-CNN conv1: 64 filters of 10x4 over 1 channel on a 25x5 output
        counts = conv2d_counts(1, 64, (10, 4), (25, 5))
        assert counts.macs == 64 * 25 * 5 * 40 + 64 * 25 * 5

    def test_depthwise_hand_example(self):
        counts = depthwise_conv2d_counts(64, (3, 3), (25, 5))
        assert counts.macs == 64 * 125 * 9 + 64 * 125

    def test_linear(self):
        assert linear_counts(64, 12).macs == 64 * 12 + 12
        assert linear_counts(64, 12, bias=False).macs == 64 * 12

    def test_strassen_pointwise_equals_two_convs(self):
        """With r = c_out a strassenified pointwise layer costs exactly two
        ternary 1x1 convs of the original size — the paper's observation."""
        standard = conv2d_counts(64, 64, (1, 1), (25, 5), bias=False)
        strassen = strassen_conv2d_counts(64, 64, (1, 1), (25, 5), r=64, bias=False)
        assert strassen.adds == 2 * standard.macs
        assert strassen.muls == 64 * 125

    def test_strassen_linear(self):
        counts = strassen_linear_counts(64, 12, r=12)
        assert counts.muls == 12
        assert counts.adds == 12 * 64 + 12 * 12 + 12

    def test_strassen_depthwise(self):
        counts = strassen_depthwise_counts(64, (3, 3), (25, 5))
        assert counts.muls == 125 * 64
        assert counts.adds == 125 * (64 * 9 + 64) + 125 * 64

    def test_bonsai_counts_with_and_without_projection(self):
        with_proj = bonsai_counts(392, 64, 12, 7, 3, project=True)
        without = bonsai_counts(392, 64, 12, 7, 3, project=False)
        assert with_proj.macs - without.macs == 64 * 392


class TestMemory:
    def test_size_breakdown_bytes(self):
        size = SizeBreakdown().add("w", 1024, 8).add("t", 1024, 2)
        assert size.total_bytes == 1024 + 256
        assert size.kb() == pytest.approx((1024 + 256) / 1024)
        assert size.total_elements == 2048

    def test_size_breakdown_validation(self):
        with pytest.raises(ValueError):
            SizeBreakdown().add("w", -1, 8)
        with pytest.raises(ValueError):
            SizeBreakdown().add("w", 1, 0)

    def test_with_bits_reprices(self):
        size = SizeBreakdown().add("w", 100, 32)
        repriced = size.with_bits(lambda e: 8)
        assert repriced.total_bytes == 100

    def test_filter(self):
        size = SizeBreakdown().add("a.w", 10, 8).add("b.w", 20, 8)
        assert size.filter(lambda e: e.name.startswith("a")).total_elements == 10

    def test_footprint_max_consecutive_pair(self):
        # the paper's example: two adjacent 8000-byte buffers -> 16000
        acts = [490, 8000, 8000, 8000, 64, 12]
        assert activation_footprint_bytes(acts) == 16000

    def test_footprint_edges(self):
        assert activation_footprint_bytes([]) == 0.0
        assert activation_footprint_bytes([100]) == 100.0

    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=2, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_footprint_bounds(self, sizes):
        footprint = activation_footprint_bytes(sizes)
        assert footprint >= max(sizes)
        assert footprint <= 2 * max(sizes)


class TestReportTable:
    def test_format_table_alignment(self):
        rows = [{"name": "a", "value": 1}, {"name": "bbbb", "value": 22}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "NAME" in lines[1]
        assert len(lines) == 5

    def test_empty_rows(self):
        assert format_table([], title="T") == "T"
