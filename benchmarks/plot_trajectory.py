"""Merge ``BENCH_*.json`` artifacts into one ``BENCH_TRAJECTORY.md`` table.

Every bench in this directory emits a machine-readable ``BENCH_<name>.json``
(see ``benchmarks/conftest.py``); CI uploads them as artifacts per Python
version.  This tool is the first slice of the perf-trajectory dashboard: it
sweeps one or more directories for those files and renders a single
markdown report — a summary table of headline metrics (throughput floors,
speedups, latency percentiles) plus a per-bench breakdown of every scalar
metric — so a run's performance posture is one artifact, not a pile of
JSON files.

Usage::

    python benchmarks/plot_trajectory.py                  # scan CWD
    python benchmarks/plot_trajectory.py --dir artifacts  # downloaded artifacts
    python benchmarks/plot_trajectory.py --out report.md
    python benchmarks/plot_trajectory.py --snapshot pr8   # archive this run

Directories are scanned recursively, so pointing ``--dir`` at an unpacked
multi-artifact download (one subdirectory per CI matrix entry) merges them
all, with the subdirectory recorded as the row's source.

Prior runs live in ``benchmarks/history/<label>/BENCH_*.json`` (committed,
exempt from the ``BENCH_*.json`` gitignore): every report appends a
**prior runs** section comparing each bench's headline metrics across the
archived runs, and ``--snapshot <label>`` archives the current scan into
the history — the perf *trajectory*, not just the latest point.
"""

from __future__ import annotations

import argparse
import json
import shutil
import time
from pathlib import Path
from typing import Dict, List, Tuple

#: committed prior-run artifacts, one subdirectory per archived run
DEFAULT_HISTORY = Path(__file__).resolve().parent / "history"

#: top-level keys that make a bench's one-line summary, in display order
HEADLINE_KEYS = (
    "speedup",
    "floor",
    "floor_enforced",
    "throughput_rps",
    "requests_per_s",
    "p50_ms",
    "p99_ms",
    "overhead",
    "ceiling",
)


def collect(dirs: List[Path]) -> List[Tuple[str, Path]]:
    """All ``BENCH_*.json`` files under the given directories, recursively.

    Returns ``(source, path)`` pairs where ``source`` is the path's parent
    relative to its search root (``"."`` for top-level files) — with CI
    artifact downloads that is the matrix entry that produced the file.
    """
    found: List[Tuple[str, Path]] = []
    for root in dirs:
        for path in sorted(root.rglob("BENCH_*.json")):
            source = path.parent.relative_to(root)
            found.append((str(source), path))
    return found


def flatten(payload: dict, prefix: str = "", depth: int = 2) -> Dict[str, object]:
    """Scalar metrics of one bench payload with dotted keys, depth-limited.

    Nested mappings flatten as ``outer.inner``; lists and deeper nesting are
    summarised by length rather than expanded (batch-size histograms and
    per-test timing arrays belong in the JSON, not the trajectory table).
    """
    flat: Dict[str, object] = {}
    for key, value in payload.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            if depth > 1:
                flat.update(flatten(value, prefix=f"{name}.", depth=depth - 1))
            else:
                flat[name] = f"<{len(value)} entries>"
        elif isinstance(value, list):
            flat[name] = f"<{len(value)} items>"
        elif isinstance(value, float):
            flat[name] = round(value, 4)
        else:
            flat[name] = value
    return flat


def headline(flat: Dict[str, object]) -> str:
    """The one-line summary for a bench: its headline keys, else a count."""
    parts = [f"{key}={flat[key]}" for key in HEADLINE_KEYS if key in flat]
    if not parts:
        parts = [f"{len(flat)} metrics"]
    return ", ".join(parts)


def render_table(header: List[str], rows: List[List[str]]) -> List[str]:
    """A GitHub-markdown table as a list of lines."""
    lines = ["| " + " | ".join(header) + " |"]
    lines.append("|" + "|".join([" --- "] * len(header)) + "|")
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return lines


def load_rows(
    found: List[Tuple[str, Path]]
) -> List[Tuple[str, str, str, object, object]]:
    """``(bench, source, recorded, flat-or-error, raw)`` per artifact file.

    ``flat`` is the flattened metric dict, or an error string when the
    file is unreadable — callers render both without dying.  ``raw`` is
    the unflattened payload (``None`` when unreadable) for sections that
    need deeper nesting than the depth-2 flatten keeps, like the
    per-backend kernel speedups.
    """
    rows: List[Tuple[str, str, str, object, object]] = []
    for source, path in found:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            rows.append((path.name, source, "?", f"unreadable: {exc}", None))
            continue
        bench = str(payload.get("bench", path.stem.removeprefix("BENCH_")))
        recorded = payload.get("unix_time")
        when = (
            time.strftime("%Y-%m-%d %H:%M", time.gmtime(recorded))
            if isinstance(recorded, (int, float))
            else "?"
        )
        flat = flatten(
            {k: v for k, v in payload.items() if k not in ("bench", "schema", "unix_time")}
        )
        rows.append((bench, source, when, flat, payload))
    return rows


def backend_section(backends: Dict[str, dict]) -> List[str]:
    """Per-backend kernel speedup table (one column per layer kind).

    ``backends`` is the ``bench_kernels`` sweep payload: backend name →
    layer kind → ``{"ms", "speedup_vs_reference"}``.  The flatten step
    collapses it to an entry count, so the trajectory report renders it
    here as its own table.
    """
    kinds = sorted({kind for per_kind in backends.values() for kind in per_kind})
    header = ["backend"] + [f"{kind} speedup" for kind in kinds]
    rows = []
    for name in sorted(backends):
        row = [name]
        for kind in kinds:
            cell = backends[name].get(kind)
            if isinstance(cell, dict) and "speedup_vs_reference" in cell:
                row.append(f"{cell['speedup_vs_reference']:.2f}x")
            else:
                row.append("–")
        rows.append(row)
    lines = ["", "### Kernel backend speedups (vs reference)", ""]
    lines.extend(render_table(header, rows))
    return lines


def history_section(history_found: List[Tuple[str, Path]]) -> List[str]:
    """The prior-runs comparison: one headline row per archived artifact."""
    lines = ["", "## Prior runs", ""]
    if not history_found:
        lines.append(
            "_No archived runs — `--snapshot <label>` stores the current "
            "artifacts under `benchmarks/history/`._"
        )
        return lines
    rows = []
    for bench, run, when, flat, _ in sorted(
        load_rows(history_found), key=lambda r: (r[0], r[2], r[1])
    ):
        summary = flat if isinstance(flat, str) else headline(flat)
        rows.append([bench, run, when, summary])
    lines.extend(render_table(["bench", "run", "recorded (UTC)", "headline"], rows))
    return lines


def build_markdown(
    found: List[Tuple[str, Path]],
    history_found: List[Tuple[str, Path]] = (),
) -> str:
    """Render the merged trajectory report for the collected files."""
    stamp = time.strftime("%Y-%m-%d %H:%M:%S UTC", time.gmtime())
    lines = [
        "# Bench trajectory",
        "",
        f"Merged from {len(found)} `BENCH_*.json` artifact(s) at {stamp}.",
        "",
    ]
    if not found:
        lines.append("_No artifacts found — run the benches first._")
        lines.extend(history_section(list(history_found)))
        return "\n".join(lines) + "\n"
    summary_rows = []
    details: List[Tuple[str, str, Dict[str, object], object]] = []
    for bench, source, when, flat, raw in load_rows(found):
        if isinstance(flat, str):  # unreadable artifact: surface, don't die
            summary_rows.append([bench, source, when, flat])
            continue
        summary_rows.append([bench, source, when, headline(flat)])
        details.append((bench, source, flat, raw))
    lines.extend(render_table(["bench", "source", "recorded (UTC)", "headline"], summary_rows))
    for bench, source, flat, raw in details:
        lines.extend(["", f"## {bench} ({source})", ""])
        lines.extend(
            render_table(
                ["metric", "value"], [[key, str(flat[key])] for key in sorted(flat)]
            )
        )
        backends = raw.get("backends") if isinstance(raw, dict) else None
        if isinstance(backends, dict) and backends:
            lines.extend(backend_section(backends))
    lines.extend(history_section(list(history_found)))
    return "\n".join(lines) + "\n"


def snapshot(found: List[Tuple[str, Path]], history: Path, label: str) -> Path:
    """Archive the current artifacts under ``history/<label>/``."""
    target = history / label
    target.mkdir(parents=True, exist_ok=True)
    for _, path in found:
        shutil.copy2(path, target / path.name)
    return target


def main() -> None:
    """Scan for artifacts and write the merged trajectory markdown."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--dir",
        action="append",
        type=Path,
        default=None,
        help="directory to scan recursively (repeatable; default: CWD)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_TRAJECTORY.md"),
        help="output markdown path (default: BENCH_TRAJECTORY.md)",
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=DEFAULT_HISTORY,
        help="prior-run archive to compare against (default: benchmarks/history)",
    )
    parser.add_argument(
        "--snapshot",
        metavar="LABEL",
        default=None,
        help="also archive the scanned artifacts under <history>/<LABEL>/",
    )
    args = parser.parse_args()
    dirs = args.dir or [Path(".")]
    for root in dirs:
        if not root.is_dir():
            parser.error(f"--dir {root} is not a directory")
    history = args.history.resolve()
    # the archive is reported in its own section — keep it out of the scan
    found = [
        (source, path)
        for source, path in collect(dirs)
        if history not in path.resolve().parents
    ]
    history_found = collect([args.history]) if args.history.is_dir() else []
    args.out.write_text(build_markdown(found, history_found), encoding="utf-8")
    print(
        f"merged {len(found)} artifact(s) into {args.out} "
        f"({len(history_found)} prior-run artifact(s))"
    )
    if args.snapshot is not None:
        if not found:
            parser.error("--snapshot needs at least one scanned artifact")
        target = snapshot(found, args.history, args.snapshot)
        print(f"archived {len(found)} artifact(s) under {target}")


if __name__ == "__main__":
    main()
