"""Table 2 bench: standalone Bonsai trees vs DS-CNN.

Asserts the paper's §2.2 story — Bonsai uses orders of magnitude fewer ops
but saturates well below the conv baseline, with the projection matrix
dominating its (much larger) model — and benchmarks tree inference.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import record_metrics, record_table
from repro.autodiff.tensor import Tensor, no_grad
from repro.experiments import table2
from repro.experiments.common import get_dataset, trained
from repro.models.bonsai_kws import BonsaiKWS
from repro.models.ds_cnn import DSCNN


@pytest.fixture(scope="module")
def result():
    res = table2.run("ci")
    record_table(res.table())
    record_metrics(
        "table2",
        experiment=res.experiment,
        title=res.title,
        config={"scale": "ci"},
        rows=res.rows,
        notes=res.notes,
    )
    return res


def test_benchmark_table2_shape(result):
    """Bonsai accuracy saturates below DS-CNN (mean over the grid —
    individual cells are noisy on the small CI test split)."""
    rows = {row["network"]: row for row in result.rows}
    ds_acc = float(rows["DS-CNN"]["acc%"])
    bonsai_accs = [
        float(rows[f"Bonsai (D^={d}, T={t})"]["acc%"]) for d, t in table2.GRID
    ]
    assert sum(bonsai_accs) / len(bonsai_accs) < ds_acc - 2.0, (
        "Bonsai should trail the conv model on average"
    )


def test_benchmark_table2_exact_model_sizes():
    """Model sizes reproduce the paper's Table 2 exactly at D=392."""
    for (d_hat, depth), (_acc, _ops, kb) in (
        ((64, 2), table2.PAPER_ROWS[(64, 2)]),
        ((64, 4), table2.PAPER_ROWS[(64, 4)]),
        ((128, 2), table2.PAPER_ROWS[(128, 2)]),
        ((128, 4), table2.PAPER_ROWS[(128, 4)]),
    ):
        report = BonsaiKWS(projection_dim=d_hat, depth=depth).cost_report(
            input_dim=table2.PAPER_INPUT_DIM
        )
        assert abs(report.model_kb - kb) < 0.01, (d_hat, depth, report.model_kb)


def test_benchmark_table2_ops_gap():
    """Bonsai needs >30x fewer ops than DS-CNN (the paper's trade-off)."""
    ds_ops = DSCNN().cost_report().ops.ops
    bonsai_ops = BonsaiKWS(projection_dim=64, depth=2).cost_report(input_dim=392).ops.ops
    assert bonsai_ops * 30 < ds_ops


def test_benchmark_table2_inference(benchmark, result):
    """Throughput of the trained D^=64/T=2 Bonsai on a 32-clip batch."""
    model = trained(
        "bonsai-d64-t2", lambda: BonsaiKWS(projection_dim=64, depth=2, rng=0), scale="ci"
    ).model
    features = get_dataset("ci").features("test")[:32]
    model.eval()

    def infer():
        with no_grad():
            return model(Tensor(features)).data

    logits = benchmark(infer)
    assert logits.shape == (32, 12)
    assert np.isfinite(logits).all()
