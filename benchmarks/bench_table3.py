"""Table 3 bench: baseline zoo vs the uncompressed HybridNet.

Asserts the headline ordering — HybridNet matches DS-CNN accuracy with ~44 %
fewer ops — and benchmarks HybridNet inference.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import record_metrics, record_table
from repro.autodiff.tensor import Tensor, no_grad
from repro.core.hybrid.config import HybridConfig
from repro.core.hybrid.network import HybridNet
from repro.experiments import table3
from repro.experiments.common import get_dataset, trained
from repro.models.ds_cnn import DSCNN


@pytest.fixture(scope="module")
def result():
    res = table3.run("ci")
    record_table(res.table())
    record_metrics(
        "table3",
        experiment=res.experiment,
        title=res.title,
        config={"scale": "ci"},
        rows=res.rows,
        notes=res.notes,
    )
    return res


def test_benchmark_table3_hybrid_matches_dscnn(result):
    """HybridNet accuracy close to DS-CNN (paper: +0.14; CI scale: −3)."""
    rows = {row["network"]: row for row in result.rows}
    assert float(rows["HybridNet"]["acc%"]) >= float(rows["DS-CNN"]["acc%"]) - 4.0


def test_benchmark_table3_hybrid_ops_win():
    """HybridNet cuts ≈44 % of DS-CNN's operations (analytic, paper scale)."""
    ds = DSCNN().cost_report().ops.ops
    hybrid = HybridNet().cost_report().ops.ops
    reduction = 1.0 - hybrid / ds
    assert 0.35 < reduction < 0.52, f"ops reduction {reduction:.2%} out of band"


@pytest.mark.xfail(
    strict=False,
    reason=(
        "known substitution artifact: the paper's DNN trails conv models by "
        "7+ points on real speech, but the synthetic corpus lacks the "
        "speaker/channel variability that sinks flat MLPs, so the DNN can "
        "match conv models at CI scale (recorded in EXPERIMENTS.md)"
    ),
)
def test_benchmark_table3_dnn_is_weak(result):
    """The DNN trails every conv/recurrent model (paper: 84.6 vs 91+)."""
    rows = {row["network"]: float(row["acc%"]) for row in result.rows}
    assert rows["DNN"] <= min(rows["DS-CNN"], rows["HybridNet"], rows["CRNN"]) + 1.0


def test_benchmark_table3_paper_costs():
    """Analytic MACs/model-size land on Table 3 for every baseline."""
    for name, (_acc, ops_m, kb) in table3.PAPER_ROWS.items():
        report = table3.paper_builders()[name]().cost_report()
        assert abs(report.ops.ops / 1e6 - ops_m) / ops_m < 0.12, (
            name,
            report.ops.ops / 1e6,
            ops_m,
        )
        assert abs(report.model_kb - kb) / kb < 0.18, (name, report.model_kb, kb)


def test_benchmark_table3_inference(benchmark, result):
    """Throughput of the trained HybridNet on a 32-clip batch."""
    model = trained(
        "table3-HybridNet", lambda: HybridNet(HybridConfig(width=24), rng=0), scale="ci"
    ).model
    features = get_dataset("ci").features("test")[:32]
    model.eval()

    def infer():
        with no_grad():
            return model(Tensor(features)).data

    logits = benchmark(infer)
    assert logits.shape == (32, 12)
    assert np.isfinite(logits).all()
