"""Table 5 bench: ST-HybridNet hyperparameter ablation.

Asserts the paper's design-space conclusion (3 conv layers + depth-2 tree
wins; removing a conv layer hurts most) and benchmarks the small variant.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from conftest import record_metrics, record_table
from repro.autodiff.tensor import Tensor, no_grad
from repro.core.hybrid.config import PAPER_HYBRID, TABLE5_CONFIGS
from repro.core.hybrid.strassenified import STHybridNet
from repro.experiments import table5
from repro.experiments.common import get_dataset, trained


@pytest.fixture(scope="module")
def result():
    res = table5.run("ci")
    record_table(res.table())
    record_metrics(
        "table5",
        experiment=res.experiment,
        title=res.title,
        config={"scale": "ci"},
        rows=res.rows,
        notes=res.notes,
    )
    return res


def test_benchmark_table5_full_config_wins(result):
    """The 3-conv/depth-2 configuration is the most accurate row."""
    accs = {row["hyperparameters"]: float(row["acc%"]) for row in result.rows}
    full = accs["3 conv layers, D=2, N=7"]
    assert full >= max(accs.values()) - 0.5  # ties within noise allowed


def test_benchmark_table5_conv_depth_dominates(result):
    """Dropping a conv layer costs more accuracy than shrinking the tree.

    Paper: 91.1 % (2 conv) vs 93.15 % (shallow tree) vs 94.51 % (full).
    """
    accs = {row["hyperparameters"]: float(row["acc%"]) for row in result.rows}
    assert accs["2 conv layers, D=2, N=7"] <= accs["3 conv layers, D=2, N=7"]


def test_benchmark_table5_ops_shape():
    """Analytic ops: the 2-conv variant is much cheaper; tree depth barely
    moves the total (paper: 1.53M / 2.39M / 2.4M)."""
    ops = {
        desc: STHybridNet(cfg).cost_report().ops.ops
        for desc, cfg in TABLE5_CONFIGS.items()
    }
    assert ops["2 conv layers, D=2, N=7"] < 0.75 * ops["3 conv layers, D=2, N=7"]
    shallow = ops["3 conv layers, D=1, N=3"]
    full = ops["3 conv layers, D=2, N=7"]
    assert abs(full - shallow) / full < 0.02


def test_benchmark_table5_inference(benchmark, result):
    """Throughput of the cheapest (2-conv) variant on a 32-clip batch."""
    cfg = dataclasses.replace(
        TABLE5_CONFIGS["2 conv layers, D=2, N=7"], width=24
    )
    model = trained("st-hybrid-c2-d2", lambda: STHybridNet(cfg, rng=0), scale="ci").model
    features = get_dataset("ci").features("test")[:32]
    model.eval()

    def infer():
        with no_grad():
            return model(Tensor(features)).data

    logits = benchmark(infer)
    assert logits.shape == (32, 12)
    assert np.isfinite(logits).all()
