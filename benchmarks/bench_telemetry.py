"""Telemetry-plane benchmark: tracing overhead under cluster load.

Not a paper table — this guards the observability plane
(:mod:`repro.serving.telemetry`) on its one load-bearing promise:
watching the system must not slow the system down.

* **tracing overhead**: sustained sliding-window traffic against a
  :data:`WORKERS`-worker cluster with ``trace_sample_rate=0.01`` (one
  request in a hundred carries a :class:`~repro.serving.telemetry.Trace`
  through the control frames) must sustain at least ``1 -``
  :data:`OVERHEAD_CEILING` of the throughput of the identical run with
  tracing disabled.  The throughput gate needs real parallel hardware,
  so it is skipped on machines with < 4 CPUs;
* **traced-path invariants** (always on): at ``trace_sample_rate=1.0``
  every response stays bitwise-equal to
  :class:`~repro.serving.packed.PackedModel`, every request produces a
  finished trace, and each trace tiles the request lifetime (span sum
  bounded by trace wall clock).

Runs standalone (``python benchmarks/bench_telemetry.py [--quick]``) and
as pytest assertions guarding the ceiling in CI.
"""

from __future__ import annotations

import argparse
import os
import threading
import time
from typing import Dict, List, Tuple

import numpy as np
import pytest

from conftest import record_metrics, write_bench_json
from repro.core.hybrid import HybridConfig, STHybridNet
from repro.core.strassen import freeze_all
from repro.deploy import build_image
from repro.deploy.image import ModelImage
from repro.serving import ClusterRouter, MicroBatchConfig, PackedModel

WORKERS = 4
#: traced throughput may lose at most this fraction vs. tracing disabled
OVERHEAD_CEILING = 0.05
SAMPLE_RATE = 0.01


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def hot_image(width: int = 8, rng: int = 0) -> ModelImage:
    """One frozen ST-Hybrid image."""
    model = STHybridNet(HybridConfig(width=width), rng=rng)
    freeze_all(model)
    model.eval()
    return build_image(model)


def run_traffic(
    image: ModelImage,
    sample_rate: float,
    clients: int = 4,
    requests_per_client: int = 128,
    window: int = 8,
    workers: int = WORKERS,
) -> Dict[str, float]:
    """Sliding-window traffic at one ``trace_sample_rate``; returns metrics.

    Identical traffic shape to ``bench_control``'s clients: each thread
    keeps ``window`` requests in flight and checks every response bitwise
    against :class:`PackedModel`.  The only knob between runs is the
    sample rate, so the throughput delta *is* the telemetry overhead.
    """
    rng = np.random.default_rng(3)
    xs = [rng.standard_normal((49, 10)).astype(np.float32) for _ in range(16)]
    want = PackedModel(image)(np.stack(xs))
    total = clients * requests_per_client
    router = ClusterRouter(
        workers=workers,
        config=MicroBatchConfig(max_batch_size=32, max_delay_ms=2.0),
        trace_sample_rate=sample_rate,
    )
    router.register("hot", image)
    failures: List[str] = []
    mismatches: List[int] = []
    lock = threading.Lock()

    def client(seed: int) -> None:
        """One traffic thread: a sliding window of in-flight requests."""
        inflight: List[Tuple[int, object]] = []

        def resolve(idx: int, future) -> None:
            try:
                row = future.result(timeout=120.0)
            except Exception as exc:
                with lock:
                    failures.append(f"{type(exc).__name__}: {exc}")
                return
            if not np.array_equal(row, want[idx]):
                with lock:
                    mismatches.append(idx)

        for i in range(requests_per_client):
            idx = (seed * 31 + i) % len(xs)
            try:
                future = router.submit(xs[idx], model="hot")
            except Exception as exc:
                with lock:
                    failures.append(f"submit {type(exc).__name__}: {exc}")
                continue
            inflight.append((idx, future))
            if len(inflight) >= window:
                resolve(*inflight.pop(0))
        for idx, future in inflight:
            resolve(idx, future)

    with router:
        router.predict(xs[0], model="hot")  # place + decode before timing
        threads = [
            threading.Thread(target=client, args=(seed,), daemon=True)
            for seed in range(clients)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300.0)
        elapsed = time.perf_counter() - start
        tree = router.telemetry.snapshot()
        traces = router.traces()
        crashes = router.snapshot().crashes
    if failures:
        raise SystemExit(f"FAIL: {len(failures)} request failures: {failures[:3]}")
    if mismatches:
        raise SystemExit(f"FAIL: {len(mismatches)} responses not bitwise-identical")
    assert crashes == 0, f"{crashes} worker crash(es) under telemetry load"
    span_overrun = sum(
        1 for t in traces if t.spans and t.total_span_s() > t.wall_s + 1e-6
    )
    assert span_overrun == 0, f"{span_overrun} trace(s) with span sum > wall clock"
    sampled = int(tree.get("traces", {}).get("sampled", 0))
    return {
        "throughput_rps": total / elapsed,
        "elapsed_s": elapsed,
        "requests": total,
        "sample_rate": sample_rate,
        "sampled": sampled,
        "finished_traces": len(traces),
    }


def best_of(
    image: ModelImage, sample_rate: float, repeats: int, **kwargs: int
) -> Dict[str, float]:
    """Best throughput over ``repeats`` runs — the noise damper for the gate."""
    runs = [run_traffic(image, sample_rate, **kwargs) for _ in range(repeats)]
    return max(runs, key=lambda m: m["throughput_rps"])


# -- pytest entry points ----------------------------------------------------- #


def test_traced_path_invariants() -> None:
    """At 100% sampling every response is bitwise-identical, every request
    yields a trace whose spans stay within its wall clock."""
    metrics = run_traffic(
        hot_image(), sample_rate=1.0, clients=2, requests_per_client=32, workers=2
    )
    record_metrics("telemetry", traced_full=metrics)
    # +1 for the warm-up predict; keep=256 bounds what is retained
    assert metrics["sampled"] == metrics["requests"] + 1
    assert metrics["finished_traces"] > 0


def test_sampling_counts_every_nth_request() -> None:
    """1% sampling traces ~1/100 requests (counter-based, not probabilistic)."""
    metrics = run_traffic(
        hot_image(),
        sample_rate=SAMPLE_RATE,
        clients=2,
        requests_per_client=128,
        workers=2,
    )
    record_metrics("telemetry", traced_sampled=metrics)
    expect = (metrics["requests"] + 1) * SAMPLE_RATE
    assert 0 < metrics["sampled"] <= expect + 1


@pytest.mark.skipif(
    available_cpus() < WORKERS,
    reason=f"overhead gate needs >= {WORKERS} CPUs (have {available_cpus()})",
)
def test_tracing_overhead_ceiling() -> None:
    """1% sampling must cost < 5% throughput vs. telemetry disabled."""
    image = hot_image()
    baseline = best_of(image, 0.0, repeats=3)
    traced = best_of(image, SAMPLE_RATE, repeats=3)
    overhead = 1.0 - traced["throughput_rps"] / baseline["throughput_rps"]
    record_metrics(
        "telemetry",
        baseline_rps=baseline["throughput_rps"],
        traced_rps=traced["throughput_rps"],
        overhead=overhead,
    )
    assert overhead < OVERHEAD_CEILING, (
        f"tracing at {SAMPLE_RATE:.0%} sampling cost {overhead:.1%} throughput "
        f"({traced['throughput_rps']:.0f} vs {baseline['throughput_rps']:.0f} "
        f"req/s; ceiling {OVERHEAD_CEILING:.0%})"
    )


# -- standalone report ------------------------------------------------------- #


def main() -> None:
    """Measure the tracing overhead and enforce the ceiling."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="fewer requests (CI smoke)")
    parser.add_argument("--width", type=int, default=8, help="model channel width")
    args = parser.parse_args()
    if args.width < 1:
        parser.error("--width must be >= 1")
    per_client = 64 if args.quick else 128
    repeats = 1 if args.quick else 3

    image = hot_image(width=args.width)
    cpus = available_cpus()
    print(f"one hot ST-Hybrid model, width={args.width}; {cpus} CPU(s) available")

    full = run_traffic(
        image, sample_rate=1.0, clients=2, requests_per_client=32, workers=2
    )
    print("\ntraced path (100% sampling, 2 workers):")
    print(f"  requests           {full['requests']:6.0f} (all bitwise-identical)")
    print(f"  traces sampled     {full['sampled']:6.0f}")

    payload: Dict[str, object] = {"traced_full": full, "ceiling": OVERHEAD_CEILING}
    if cpus >= WORKERS:
        baseline = best_of(image, 0.0, repeats=repeats, requests_per_client=per_client)
        traced = best_of(
            image, SAMPLE_RATE, repeats=repeats, requests_per_client=per_client
        )
        overhead = 1.0 - traced["throughput_rps"] / baseline["throughput_rps"]
        print(f"\ntracing overhead ({WORKERS}-worker pool, best of {repeats}):")
        print(f"  disabled           {baseline['throughput_rps']:6.0f} req/s")
        print(
            f"  {SAMPLE_RATE:4.0%} sampled       {traced['throughput_rps']:6.0f} req/s "
            f"({traced['sampled']:.0f} traces)"
        )
        note = "OK" if overhead < OVERHEAD_CEILING else "ABOVE CEILING"
        print(
            f"  overhead           {overhead:6.1%}  (ceiling {OVERHEAD_CEILING:.0%}) {note}"
        )
        payload.update(
            baseline=baseline, traced=traced, overhead=overhead, workers=WORKERS
        )
        if overhead >= OVERHEAD_CEILING:
            raise SystemExit(f"FAIL: tracing overhead {overhead:.1%} above ceiling")
    else:
        print(f"\n< {WORKERS} CPUs: overhead gate skipped; invariants checked")
        payload.update(ceiling_skipped=True, workers=WORKERS)

    write_bench_json("telemetry", payload)
    print("\nwrote BENCH_telemetry.json")


if __name__ == "__main__":
    main()
