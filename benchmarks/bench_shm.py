"""Shared-memory data-plane benchmarks: transport throughput, identity, leaks.

Not a paper table — this guards the cluster's zero-copy transport
(:mod:`repro.serving.shm`) on three axes:

* **throughput**: at large batch shapes (bursts of 64 requests, 1024-float
  inputs each) the slab plane plus ``submit_many`` burst frames must
  sustain >= 2x the aggregate cluster throughput of the legacy per-request
  pickle-over-pipe transport.  The gate needs real parallel hardware, so —
  like ``bench_cluster.py`` — it is skipped below 4 CPUs;
* **identity**: predictions routed through shared memory must be bitwise
  identical to direct :class:`~repro.serving.packed.PackedModel` execution
  (and to the pipe path, which remains the automatic fallback);
* **leaks**: after ``stop()`` every slab lease is back (``acquired ==
  released``, ``leased == 0``) and the segment is unlinked from the OS.

Runs standalone (``python benchmarks/bench_shm.py [--quick]``) and as
pytest assertions guarding the floors in CI.  Emits ``BENCH_shm.json``.
"""

from __future__ import annotations

import argparse
import time
from multiprocessing import shared_memory
from typing import Dict, List

import numpy as np
import pytest

from bench_cluster import available_cpus
from conftest import write_bench_json
from repro.core.hybrid import HybridConfig, STHybridNet
from repro.core.strassen import freeze_all
from repro.deploy import build_image
from repro.deploy.image import ModelImage
from repro.serving import (
    ClusterRouter,
    MicroBatchConfig,
    PackedModel,
    PriorityPolicy,
    SlabConfig,
)

WORKERS = 4
MODELS = 4
BURST = 64  # requests per submit_many frame
FEATURES = (64, 16)  # 1024 floats = 4 KB per request payload
SPEEDUP_FLOOR = 2.0


def demo_images(count: int = MODELS, width: int = 8) -> Dict[str, ModelImage]:
    """``count`` distinct frozen ST-Hybrid images taking 1024-float inputs."""
    images = {}
    for i in range(count):
        model = STHybridNet(HybridConfig(width=width, input_shape=FEATURES), rng=i)
        freeze_all(model)
        model.eval()
        images[f"kws-{i}"] = build_image(model)
    return images


def _cluster(images: Dict[str, ModelImage], workers: int, load: int, transport) -> ClusterRouter:
    """A router sized to admit the whole up-front load without shedding."""
    router = ClusterRouter(
        workers=workers,
        transport=transport,
        policy=PriorityPolicy(max_pending=load + 1, normal_watermark=1.0, low_watermark=1.0),
        config=MicroBatchConfig(max_batch_size=BURST, max_delay_ms=2.0),
    )
    for name, image in images.items():
        router.register(name, image)
    return router


def measure_transport(
    images: Dict[str, ModelImage],
    workers: int,
    *,
    shm: bool,
    bursts_per_model: int = 2,
    repeats: int = 3,
) -> Dict[str, float]:
    """Aggregate req/s plus p50/p99 request latency for one data plane.

    ``shm=False`` measures the legacy transport exactly as PR 3 shipped it:
    every request pickled individually through its worker pipe.  ``shm=True``
    measures the slab plane with ``submit_many`` burst frames — the two
    deltas this PR introduces, together.
    """
    rng = np.random.default_rng(0)
    load: List[tuple] = []  # (model name, burst array list)
    for _ in range(bursts_per_model):
        for name in images:
            load.append(
                (name, [rng.standard_normal(FEATURES).astype(np.float32) for _ in range(BURST)])
            )
    total = len(load) * BURST
    transport = SlabConfig(slab_bytes=8192, slabs=total) if shm else False
    router = _cluster(images, workers, load=total, transport=transport)
    with router:
        for name in images:  # warm up: spawn, decode, placement
            router.predict(load[0][1][0], model=name)
        best = float("inf")
        latencies: List[float] = []
        for _ in range(repeats):
            marks: List[float] = []  # per-request submit->resolve seconds
            start = time.monotonic()
            futures = []
            for name, xs in load:
                submitted = time.monotonic()
                if shm:
                    burst_futures = router.submit_many(xs, model=name)
                else:
                    burst_futures = [router.submit(x, model=name) for x in xs]
                for f in burst_futures:
                    f.add_done_callback(
                        lambda _f, t0=submitted: marks.append(time.monotonic() - t0)
                    )
                futures.extend(burst_futures)
            for f in futures:
                f.result(timeout=300.0)
            elapsed = time.monotonic() - start
            if elapsed < best:
                best = elapsed
                latencies = list(marks)
        stats = router.snapshot()
        assert stats.deadline_misses == 0
        if shm:
            assert stats.transport["shm_requests"] > 0, "shm plane never used"
    p50, p99 = (
        np.percentile(latencies, [50, 99]) if latencies else (float("nan"),) * 2
    )
    return {
        "throughput_rps": total / best,
        "p50_ms": float(p50) * 1e3,
        "p99_ms": float(p99) * 1e3,
        "requests": total,
    }


def check_identity(images: Dict[str, ModelImage]) -> int:
    """Route a burst to every model over the slab plane; returns the number
    of bitwise-equal comparisons (raises on any mismatch)."""
    rng = np.random.default_rng(2)
    xs = [rng.standard_normal(FEATURES).astype(np.float32) for _ in range(5)]
    checked = 0
    router = _cluster(images, workers=1, load=len(xs) * len(images), transport=SlabConfig())
    with router:
        for name, image in images.items():
            got = np.stack([f.result(timeout=60.0) for f in router.submit_many(xs, model=name)])
            np.testing.assert_array_equal(got, PackedModel(image)(np.stack(xs)))
            checked += 1
        transport = router.snapshot().transport
        assert transport["shm_requests"] == len(xs) * len(images), "a payload left the slab plane"
        assert transport["pipe_requests"] == 0
        segment = router.pool._slab_pool.name
    snapshot = router.pool.transport_snapshot()
    assert snapshot["leased"] == 0, f"{snapshot['leased']} slab(s) leaked"
    assert snapshot["acquired"] == snapshot["released"]
    try:
        shared_memory.SharedMemory(name=segment)
    except FileNotFoundError:
        pass  # unlinked, as required
    else:
        raise AssertionError(f"shared-memory segment {segment} survived stop()")
    return checked


# -- pytest entry points ----------------------------------------------------- #


def test_shm_identity_and_no_leaks() -> None:
    """Slab-routed predictions are bitwise identical to direct PackedModel
    execution, and stop() leaves zero leased slabs and no OS segment."""
    assert check_identity(demo_images(2)) == 2


@pytest.mark.skipif(
    available_cpus() < WORKERS,
    reason=f"transport gate needs >= {WORKERS} CPUs (have {available_cpus()})",
)
def test_shm_throughput_floor() -> None:
    """The slab plane + burst frames must give >= 2x aggregate throughput
    over per-request pickle transport at 64-request x 1024-float bursts."""
    images = demo_images()
    pipe = measure_transport(images, WORKERS, shm=False)
    shm = measure_transport(images, WORKERS, shm=True)
    speedup = shm["throughput_rps"] / pipe["throughput_rps"]
    assert speedup >= SPEEDUP_FLOOR, (
        f"shm transport served {shm['throughput_rps']:.0f} req/s vs "
        f"{pipe['throughput_rps']:.0f} req/s over pipes — only {speedup:.2f}x "
        f"(floor {SPEEDUP_FLOOR}x)"
    )


# -- standalone report ------------------------------------------------------- #


def main() -> None:
    """Run all measurements, enforce the floors, emit BENCH_shm.json."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="fewer repeats (CI smoke)")
    parser.add_argument("--width", type=int, default=8, help="model channel width")
    args = parser.parse_args()
    if args.width < 1:
        parser.error("--width must be >= 1")
    repeats = 2 if args.quick else 4
    bursts = 1 if args.quick else 2

    images = demo_images(width=args.width)
    cpus = available_cpus()
    print(
        f"{MODELS} ST-Hybrid models, width={args.width}, "
        f"{FEATURES[0]}x{FEATURES[1]} inputs ({4 * FEATURES[0] * FEATURES[1]} B); "
        f"{cpus} CPU(s) available"
    )

    checked = check_identity(images)
    print(f"\nidentity: {checked}/{MODELS} models bitwise-identical over the slab plane"
          f" (zero leases and no segment left after stop)")

    results = {}
    for label, shm in (("pipe/pickle", False), ("shm slabs", True)):
        results[label] = measure_transport(
            images, WORKERS, shm=shm, bursts_per_model=bursts, repeats=repeats
        )
        r = results[label]
        print(
            f"  {label:12s} {r['throughput_rps']:10.0f} req/s   "
            f"p50 {r['p50_ms']:7.2f} ms   p99 {r['p99_ms']:7.2f} ms"
        )
    speedup = results["shm slabs"]["throughput_rps"] / results["pipe/pickle"]["throughput_rps"]
    print(f"  speedup      {speedup:10.2f}x  (floor: {SPEEDUP_FLOOR}x on >= {WORKERS} CPUs)")

    write_bench_json(
        "shm",
        {
            "config": {
                "workers": WORKERS,
                "models": MODELS,
                "burst": BURST,
                "input_shape": list(FEATURES),
                "width": args.width,
                "cpus": cpus,
                "quick": args.quick,
            },
            "pipe": results["pipe/pickle"],
            "shm": results["shm slabs"],
            "speedup": speedup,
            "floor": SPEEDUP_FLOOR,
            "floor_enforced": cpus >= WORKERS,
        },
    )

    if cpus < WORKERS:
        print(
            f"\nSKIP: {SPEEDUP_FLOOR}x floor not enforced with {cpus} CPU(s) — "
            f"{WORKERS} workers cannot run in parallel here"
        )
    elif speedup < SPEEDUP_FLOOR:
        raise SystemExit(
            f"FAIL: shm transport only {speedup:.2f}x over pipes (floor {SPEEDUP_FLOOR}x)"
        )
    else:
        print(f"\nOK: {speedup:.2f}x >= {SPEEDUP_FLOOR}x with bitwise identity and no leaks")


if __name__ == "__main__":
    main()
