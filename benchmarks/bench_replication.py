"""Replication benchmarks: hot-model scaling, policy identity, rolling deploys.

Not a paper table — this guards the placement subsystem
(:mod:`repro.serving.placement`) on three axes:

* **replication scaling**: one hot model replicated on 4 workers must
  sustain >= 2x the aggregate throughput of the same model stuck on a
  single worker of the same 4-worker pool (the whole point of replica
  sets: a hot model is no longer capped at one process).  The gate needs
  real parallel hardware, so it is skipped on machines with fewer than
  4 CPUs;
* **policy identity**: predictions routed under sticky, replicated and
  least-loaded placement must be bitwise identical to direct
  :class:`~repro.serving.packed.PackedModel` execution — placement moves
  plans around, it never touches the math;
* **rolling deploy**: a versioned deploy (warm → flip → drain → unload)
  must complete under live NORMAL+HIGH traffic with **zero** sheds on
  those classes and **zero** :class:`~repro.errors.WorkerCrashed`, every
  response bitwise-equal to the old or the new version, the cluster byte
  budget respected throughout, and the old version's decoded bytes fully
  released afterwards.

Runs standalone (``python benchmarks/bench_replication.py [--quick]``) and
as pytest assertions guarding the floors in CI.
"""

from __future__ import annotations

import argparse
import os
import threading
import time
from typing import Dict, List, Tuple

import numpy as np
import pytest

from conftest import record_metrics, write_bench_json
from repro.core.hybrid import HybridConfig, STHybridNet
from repro.core.strassen import freeze_all
from repro.deploy import build_image
from repro.deploy.image import ModelImage
from repro.serving import (
    ClusterRouter,
    DeployManager,
    MicroBatchConfig,
    PackedModel,
    Priority,
    PriorityPolicy,
    ReplicatedPolicy,
)

WORKERS = 4
SCALING_FLOOR = 2.0
POLICIES = ("sticky", "replicated", "least-loaded")


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def hot_images(count: int = 2, width: int = 8) -> List[ModelImage]:
    """``count`` distinct frozen ST-Hybrid images (deploy versions)."""
    images = []
    for i in range(count):
        model = STHybridNet(HybridConfig(width=width), rng=i)
        freeze_all(model)
        model.eval()
        images.append(build_image(model))
    return images


def measure_hot_model(
    image: ModelImage,
    replicas: int,
    requests: int = 384,
    repeats: int = 3,
) -> float:
    """Aggregate req/s for one hot model at the given replica count.

    The pool always has :data:`WORKERS` workers; only the placement policy
    changes (``replicas=1`` reproduces sticky's single-process ceiling), so
    the comparison isolates replication, not pool size.
    """
    rng = np.random.default_rng(0)
    load = [rng.standard_normal((49, 10)).astype(np.float32) for _ in range(requests)]
    router = ClusterRouter(
        workers=WORKERS,
        placement=ReplicatedPolicy(replicas=replicas),
        # the whole load is submitted up front: admit everything, shed nothing
        policy=PriorityPolicy(
            max_pending=requests + 1, normal_watermark=1.0, low_watermark=1.0
        ),
        config=MicroBatchConfig(max_batch_size=32, max_delay_ms=2.0),
    )
    router.register("hot", image)
    with router:
        for _ in range(replicas * 2):  # warm every replica's plan + first touch
            router.predict(load[0])
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            futures = [router.submit(x) for x in load]
            for future in futures:
                future.result(timeout=120.0)
            best = min(best, time.perf_counter() - start)
        assert router.snapshot().deadline_misses == 0
    return len(load) / best


def check_policy_identity(images: List[ModelImage], workers: int = 2) -> int:
    """Serve one batch under every placement policy; returns the number of
    bitwise-equal comparisons (raises on any mismatch)."""
    rng = np.random.default_rng(2)
    xs = [rng.standard_normal((49, 10)).astype(np.float32) for _ in range(6)]
    want = PackedModel(images[0])(np.stack(xs))
    checked = 0
    for policy in POLICIES:
        router = ClusterRouter(workers=workers, placement=policy)
        router.register("hot", images[0])
        with router:
            got = np.stack([router.predict(x) for x in xs])
        np.testing.assert_array_equal(got, want)
        checked += 1
    return checked


def run_rolling_deploy(
    images: List[ModelImage],
    workers: int = 2,
    clients: int = 4,
    requests_per_client: int = 32,
    window: int = 8,
) -> Dict[str, float]:
    """A versioned deploy under live NORMAL+HIGH traffic; returns metrics.

    Each client thread keeps ``window`` requests in flight (alternating
    NORMAL and HIGH) while the main thread deploys v2 over v1.  Every
    response must be bitwise-equal to the request's row under v1 *or* v2
    (pre-flip requests get v1, post-flip v2 — never anything else), no
    request may shed or crash, the byte budget must hold at every sampled
    instant, and the old version's decoded bytes must be fully released.
    """
    size_v1 = PackedModel(images[0]).decoded_bytes()
    size_v2 = PackedModel(images[1]).decoded_bytes()
    rng = np.random.default_rng(3)
    xs = [rng.standard_normal((49, 10)).astype(np.float32) for _ in range(16)]
    want = {
        "v1": PackedModel(images[0])(np.stack(xs)),
        "v2": PackedModel(images[1])(np.stack(xs)),
    }
    router = ClusterRouter(
        workers=workers,
        capacity_bytes=size_v1 + size_v2,  # both versions fit only transiently
        config=MicroBatchConfig(max_batch_size=16, max_delay_ms=1.0),
    )
    router.register("kws", images[0], version="v1")
    failures: List[str] = []
    mismatches: List[int] = []
    budget_violations: List[int] = []
    served = [0]
    lock = threading.Lock()
    stop = threading.Event()

    def client(seed: int) -> None:
        """One traffic thread: a sliding window of NORMAL/HIGH requests."""
        inflight: List[Tuple[int, object]] = []

        def resolve(idx: int, future) -> None:
            try:
                row = future.result(timeout=60.0)
            except Exception as exc:  # shed/crash/deadline: all deploy bugs here
                with lock:
                    failures.append(f"{type(exc).__name__}: {exc}")
                return
            ok = np.array_equal(row, want["v1"][idx]) or np.array_equal(
                row, want["v2"][idx]
            )
            with lock:
                served[0] += 1
                if not ok:
                    mismatches.append(idx)

        for i in range(requests_per_client):
            idx = (seed * 31 + i) % len(xs)
            priority = Priority.HIGH if i % 2 else Priority.NORMAL
            try:
                future = router.submit(xs[idx], model="kws", priority=priority)
            except Exception as exc:
                with lock:
                    failures.append(f"submit {type(exc).__name__}: {exc}")
                continue
            inflight.append((idx, future))
            if len(inflight) >= window:
                resolve(*inflight.pop(0))
        for idx, future in inflight:
            resolve(idx, future)

    def budget_monitor() -> None:
        """Sample the budget invariant while the deploy is in flight."""
        while not stop.is_set():
            stats = router.snapshot()
            if stats.resident_bytes > router.capacity_bytes:
                with lock:
                    budget_violations.append(stats.resident_bytes)
            time.sleep(0.005)

    with router:
        router.predict(xs[0], model="kws")  # place + decode v1
        threads = [
            threading.Thread(target=client, args=(seed,), daemon=True)
            for seed in range(clients)
        ]
        monitor = threading.Thread(target=budget_monitor, daemon=True)
        monitor.start()
        for thread in threads:
            thread.start()
        time.sleep(0.05)  # let traffic build before the deploy starts
        manager = DeployManager(router)
        report = manager.deploy("kws", images[1], "v2")
        for thread in threads:
            thread.join(timeout=120.0)
        stop.set()
        monitor.join(timeout=10.0)
        stats = router.snapshot()
        resident_after = stats.resident_bytes
        crashes = stats.crashes
        shed_normal = stats.shed_by_priority[Priority.NORMAL]
        shed_high = stats.shed_by_priority[Priority.HIGH]
    if failures:
        raise SystemExit(f"FAIL: {len(failures)} request failures: {failures[:3]}")
    if mismatches:
        raise SystemExit(f"FAIL: {len(mismatches)} responses matched neither version")
    if budget_violations:
        raise SystemExit(f"FAIL: byte budget exceeded: {budget_violations[:3]}")
    assert crashes == 0, f"{crashes} worker crash(es) during the deploy"
    assert shed_normal == 0 and shed_high == 0, "NORMAL/HIGH traffic was shed"
    assert resident_after == size_v2, (
        f"old version's bytes not released: {resident_after} resident, "
        f"expected {size_v2}"
    )
    return {
        "served": served[0],
        "drained_at_flip": report.drained,
        "warm_s": report.warm_s,
        "drain_s": report.drain_s,
        "resident_after": resident_after,
        "crashes": crashes,
        "shed_normal": shed_normal,
        "shed_high": shed_high,
    }


# -- pytest entry points ----------------------------------------------------- #


def test_policy_identity() -> None:
    """All three placement policies serve bitwise-identically to PackedModel."""
    assert check_policy_identity(hot_images(1)) == len(POLICIES)


def test_rolling_deploy_no_shed_no_crash() -> None:
    """A rolling deploy under NORMAL+HIGH traffic sheds and crashes nothing,
    holds the byte budget throughout, and releases the old version's bytes."""
    metrics = run_rolling_deploy(hot_images(2))
    record_metrics("replication", rolling_deploy=metrics)
    assert metrics["served"] > 0
    assert metrics["crashes"] == 0
    assert metrics["shed_normal"] == 0 and metrics["shed_high"] == 0


@pytest.mark.skipif(
    available_cpus() < WORKERS,
    reason=f"replication gate needs >= {WORKERS} CPUs (have {available_cpus()})",
)
def test_replication_floor() -> None:
    """One hot model on 4 replicas must sustain >= 2x its 1-replica rate."""
    image = hot_images(1)[0]
    single = measure_hot_model(image, replicas=1)
    multi = measure_hot_model(image, replicas=WORKERS)
    speedup = multi / single
    assert speedup >= SCALING_FLOOR, (
        f"{WORKERS} replicas served {multi:.0f} req/s vs {single:.0f} req/s on one "
        f"— only {speedup:.2f}x (floor {SCALING_FLOOR}x)"
    )


# -- standalone report ------------------------------------------------------- #


def main() -> None:
    """Run all three measurements and enforce the acceptance floors."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="fewer repeats (CI smoke)")
    parser.add_argument("--width", type=int, default=8, help="model channel width")
    args = parser.parse_args()
    if args.width < 1:
        parser.error("--width must be >= 1")
    repeats = 2 if args.quick else 5
    requests = 192 if args.quick else 384

    images = hot_images(2, width=args.width)
    cpus = available_cpus()
    print(f"one hot ST-Hybrid model, width={args.width}; {cpus} CPU(s) available")

    checked = check_policy_identity(images)
    print(f"\nidentity: {checked}/{len(POLICIES)} policies bitwise-identical")

    deploy_metrics = run_rolling_deploy(images)
    print("\nrolling deploy v1 -> v2 under NORMAL+HIGH traffic:")
    print(f"  served             {deploy_metrics['served']:6.0f}")
    print(f"  drained at flip    {deploy_metrics['drained_at_flip']:6.0f}")
    print(f"  shed (N/H)         {deploy_metrics['shed_normal']:.0f}/"
          f"{deploy_metrics['shed_high']:.0f}  (floor: 0)")
    print(f"  crashes            {deploy_metrics['crashes']:6.0f}  (floor: 0)")
    print(f"  warm {deploy_metrics['warm_s'] * 1e3:.0f} ms, "
          f"drain {deploy_metrics['drain_s'] * 1e3:.0f} ms")

    replica_counts = [1, WORKERS] if args.quick else [1, 2, WORKERS]
    throughput = {}
    for replicas in replica_counts:
        throughput[replicas] = measure_hot_model(
            images[0], replicas, requests=requests, repeats=repeats
        )
    print(f"\nhot-model scaling ({requests} requests per pass, {WORKERS}-worker pool):")
    for replicas in replica_counts:
        note = ""
        if replicas > 1:
            note = f"  ({throughput[replicas] / throughput[1]:.2f}x vs 1 replica)"
        print(f"  {replicas} replica(s)    {throughput[replicas]:10.0f} req/s{note}")
    speedup = throughput[WORKERS] / throughput[1]
    write_bench_json(
        "replication",
        {
            "config": {
                "workers": WORKERS,
                "width": args.width,
                "cpus": cpus,
                "quick": args.quick,
            },
            "identity_checked": checked,
            "rolling_deploy": deploy_metrics,
            "scaling_rps": {str(r): throughput[r] for r in replica_counts},
            "speedup": speedup,
            "floor": SCALING_FLOOR,
            "floor_enforced": cpus >= WORKERS,
        },
    )
    if cpus < WORKERS:
        print(
            f"\nSKIP: {SCALING_FLOOR}x floor not enforced with {cpus} CPU(s) — "
            f"{WORKERS} replicas cannot run in parallel here"
        )
    elif speedup < SCALING_FLOOR:
        raise SystemExit(
            f"FAIL: {WORKERS} replicas only {speedup:.2f}x over one (floor {SCALING_FLOOR}x)"
        )
    else:
        print(f"\nOK: {speedup:.2f}x >= {SCALING_FLOOR}x with a clean rolling deploy")


if __name__ == "__main__":
    main()
