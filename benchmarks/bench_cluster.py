"""Cluster benchmarks: multi-worker scaling, priority isolation, identity.

Not a paper table — this guards the multi-process serving cluster
(:mod:`repro.serving.cluster`) on three axes:

* **scaling**: 4 workers must sustain >= 2x the aggregate throughput of a
  single-worker engine on the same batched multi-model load (the whole
  point of replicating the engine across processes).  The gate needs real
  parallel hardware, so it is skipped on machines with fewer than 4 CPUs;
* **priority isolation**: while a low-priority flood is being shed at
  admission, concurrently submitted high-priority requests must be served
  with **zero** deadline misses at a generous budget — watermark admission
  really does reserve headroom for the top class;
* **identity**: predictions routed through the cluster (worker process,
  pipe hop, per-worker engine, decoded-from-bytes plans) must be bitwise
  identical to direct :class:`~repro.serving.packed.PackedModel` execution
  for every routed model.

Runs standalone (``python benchmarks/bench_cluster.py [--quick]``) and as
pytest assertions guarding the floors in CI.
"""

from __future__ import annotations

import argparse
import os
import time
from typing import Dict, List, Tuple

import numpy as np
import pytest

from conftest import record_metrics, write_bench_json
from repro.core.hybrid import HybridConfig, STHybridNet
from repro.core.strassen import freeze_all
from repro.deploy import build_image
from repro.deploy.image import ModelImage
from repro.errors import AdmissionError
from repro.serving import (
    ClusterRouter,
    MicroBatchConfig,
    PackedModel,
    Priority,
    PriorityPolicy,
)

WORKERS = 4
MODELS = 4
SCALING_FLOOR = 2.0
HIGH_DEADLINE_S = 10.0  # generous: misses at this budget indicate a bug


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def demo_images(count: int = MODELS, width: int = 8) -> Dict[str, ModelImage]:
    """``count`` distinct frozen ST-Hybrid images (a realistic model zoo)."""
    images = {}
    for i in range(count):
        model = STHybridNet(HybridConfig(width=width), rng=i)
        freeze_all(model)
        model.eval()
        images[f"kws-{i}"] = build_image(model)
    return images


def _cluster(images: Dict[str, ModelImage], workers: int, **kwargs) -> ClusterRouter:
    """A router with every image registered (not yet started)."""
    router = ClusterRouter(workers=workers, **kwargs)
    for name, image in images.items():
        router.register(name, image)
    return router


def measure_scaling(
    images: Dict[str, ModelImage],
    workers: int,
    requests_per_model: int = 96,
    repeats: int = 3,
) -> float:
    """Aggregate req/s for an interleaved multi-model load on ``workers``.

    The load is identical for every worker count: ``requests_per_model``
    requests per model, round-robin across models, all submitted up front
    (the fan-out pattern the async front door produces under load).
    """
    rng = np.random.default_rng(0)
    load: List[Tuple[str, np.ndarray]] = []
    for r in range(requests_per_model):
        for name in images:
            load.append((name, rng.standard_normal((49, 10)).astype(np.float32)))
    router = _cluster(
        images,
        workers,
        # the whole load is submitted up front: admit everything, shed nothing
        policy=PriorityPolicy(
            max_pending=len(load) + 1, normal_watermark=1.0, low_watermark=1.0
        ),
        config=MicroBatchConfig(max_batch_size=32, max_delay_ms=2.0),
    )
    with router:
        # warm up: spawn cost, worker-side decode, first-touch placement
        for name in images:
            router.predict(load[0][1], model=name)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            futures = [router.submit(x, model=name) for name, x in load]
            for future in futures:
                future.result(timeout=120.0)
            best = min(best, time.perf_counter() - start)
        assert router.snapshot().deadline_misses == 0
    return len(load) / best


def measure_priority_isolation(
    image: ModelImage, low_flood: int = 200, high_clients: int = 32
) -> Tuple[int, int, int, int]:
    """(high_served, high_misses, low_shed, low_served) under a LOW flood.

    One worker is stalled briefly so admitted requests stay pending, then a
    LOW flood and a HIGH burst are submitted concurrently: the watermark
    policy (LOW capped at 25 % of 64 slots) sheds most of the flood while
    every HIGH request is admitted into the reserved headroom and served
    within a generous deadline.
    """
    policy = PriorityPolicy(max_pending=64, normal_watermark=0.8, low_watermark=0.25)
    router = _cluster({"kws": image}, workers=1, policy=policy)
    with router:
        router.predict(np.zeros((49, 10), dtype=np.float32))  # place + decode
        router.pool.inject_sleep(0, 0.4)
        rng = np.random.default_rng(1)
        xs = rng.standard_normal((max(low_flood, high_clients), 49, 10)).astype(np.float32)
        low_futures, low_shed = [], 0
        for i in range(low_flood):  # no deadline: admitted LOW must be served
            try:
                low_futures.append(router.submit(xs[i], priority=Priority.LOW))
            except AdmissionError:
                low_shed += 1
        high_futures = [
            router.submit(xs[i], priority=Priority.HIGH, deadline_s=HIGH_DEADLINE_S)
            for i in range(high_clients)
        ]
        high_served = sum(1 for f in high_futures if f.result(timeout=60.0).shape == (12,))
        low_served = sum(1 for f in low_futures if f.result(timeout=60.0).shape == (12,))
        misses = router.snapshot().deadline_misses
    return high_served, misses, low_shed, low_served


def check_identity(images: Dict[str, ModelImage], workers: int = 2) -> int:
    """Route a batch to every model; returns the number of bitwise-equal
    comparisons (raises on any mismatch)."""
    rng = np.random.default_rng(2)
    xs = [rng.standard_normal((49, 10)).astype(np.float32) for _ in range(5)]
    checked = 0
    with _cluster(images, workers) as router:
        for name, image in images.items():
            got = np.stack([router.predict(x, model=name) for x in xs])
            np.testing.assert_array_equal(got, PackedModel(image)(np.stack(xs)))
            checked += 1
    return checked


# -- pytest entry points ----------------------------------------------------- #


def test_cluster_identity() -> None:
    """Cluster-routed predictions are bitwise identical to direct PackedModel
    execution for every routed model."""
    assert check_identity(demo_images(2)) == 2


def test_priority_isolation() -> None:
    """Zero high-priority deadline misses while low-priority traffic sheds."""
    high_served, misses, low_shed, low_served = measure_priority_isolation(
        demo_images(1)["kws-0"]
    )
    record_metrics(
        "cluster",
        priority_isolation={
            "high_served": high_served,
            "high_misses": misses,
            "low_shed": low_shed,
            "low_served": low_served,
        },
    )
    assert misses == 0, f"{misses} HIGH deadline misses at {HIGH_DEADLINE_S:.0f} s budget"
    assert high_served == 32, "a HIGH request was not served"
    assert low_shed > 0, "the LOW flood was never shed — admission did nothing"
    assert low_served > 0, "admitted LOW requests must still be served"


@pytest.mark.skipif(
    available_cpus() < WORKERS,
    reason=f"scaling gate needs >= {WORKERS} CPUs (have {available_cpus()})",
)
def test_scaling_floor() -> None:
    """4 workers must sustain >= 2x a single worker on the same batched load."""
    images = demo_images()
    single = measure_scaling(images, workers=1)
    multi = measure_scaling(images, workers=WORKERS)
    speedup = multi / single
    assert speedup >= SCALING_FLOOR, (
        f"{WORKERS} workers served {multi:.0f} req/s vs {single:.0f} req/s on one "
        f"worker — only {speedup:.2f}x (floor {SCALING_FLOOR}x)"
    )


# -- standalone report ------------------------------------------------------- #


def main() -> None:
    """Run all three measurements and enforce the acceptance floors."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="fewer repeats (CI smoke)")
    parser.add_argument("--width", type=int, default=8, help="model channel width")
    args = parser.parse_args()
    if args.width < 1:
        parser.error("--width must be >= 1")
    repeats = 2 if args.quick else 5
    per_model = 48 if args.quick else 96

    images = demo_images(width=args.width)
    cpus = available_cpus()
    print(f"{MODELS} ST-Hybrid models, width={args.width}; {cpus} CPU(s) available")

    checked = check_identity(images, workers=2)
    print(f"\nidentity: {checked}/{MODELS} models bitwise-identical through the cluster")

    high_served, misses, low_shed, low_served = measure_priority_isolation(
        images["kws-0"]
    )
    print(f"\npriority isolation (LOW flood of 200 vs 32 HIGH clients, 1 worker):")
    print(f"  HIGH served        {high_served:6d}/32")
    print(f"  HIGH misses        {misses:6d}  (floor: 0)")
    print(f"  LOW shed           {low_shed:6d}  (must be > 0)")
    print(f"  LOW served         {low_served:6d}")
    if misses or high_served != 32 or not low_shed:
        raise SystemExit("FAIL: priority isolation violated")

    worker_counts = [1, WORKERS] if args.quick else [1, 2, WORKERS]
    throughput = {}
    for workers in worker_counts:
        throughput[workers] = measure_scaling(
            images, workers, requests_per_model=per_model, repeats=repeats
        )
    print(f"\nscaling ({MODELS} models, {per_model * MODELS} requests per pass):")
    for workers in worker_counts:
        note = ""
        if workers > 1:
            note = f"  ({throughput[workers] / throughput[1]:.2f}x vs 1 worker)"
        print(f"  {workers} worker(s)     {throughput[workers]:10.0f} req/s{note}")
    speedup = throughput[WORKERS] / throughput[1]
    write_bench_json(
        "cluster",
        {
            "config": {
                "workers": WORKERS,
                "models": MODELS,
                "width": args.width,
                "cpus": cpus,
                "quick": args.quick,
            },
            "identity_checked": checked,
            "priority_isolation": {
                "high_served": high_served,
                "high_misses": misses,
                "low_shed": low_shed,
                "low_served": low_served,
            },
            "scaling_rps": {str(w): throughput[w] for w in worker_counts},
            "speedup": speedup,
            "floor": SCALING_FLOOR,
            "floor_enforced": cpus >= WORKERS,
        },
    )
    if cpus < WORKERS:
        print(
            f"\nSKIP: {SCALING_FLOOR}x floor not enforced with {cpus} CPU(s) — "
            f"{WORKERS} processes cannot run in parallel here"
        )
    elif speedup < SCALING_FLOOR:
        raise SystemExit(
            f"FAIL: {WORKERS} workers only {speedup:.2f}x over one (floor {SCALING_FLOOR}x)"
        )
    else:
        print(f"\nOK: {speedup:.2f}x >= {SCALING_FLOOR}x with zero deadline misses")


if __name__ == "__main__":
    main()
