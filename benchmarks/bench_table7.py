"""Table 7 bench: gradual pruning (and §5 TWN) of the DS-CNN.

Asserts the compression-comparison shape — accuracy degrades monotonically
with sparsity, 50 % is nearly free, TWN costs several points — and
benchmarks pruned-model inference.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import record_metrics, record_table
from repro.autodiff.tensor import Tensor, no_grad
from repro.experiments import table7
from repro.experiments.common import get_dataset, trained
from repro.models.ds_cnn import DSCNN
from repro.pruning.gradual import zhu_gupta_sparsity


@pytest.fixture(scope="module")
def result():
    res = table7.run("ci")
    record_table(res.table())
    record_metrics(
        "table7",
        experiment=res.experiment,
        title=res.title,
        config={"scale": "ci"},
        rows=res.rows,
        notes=res.notes,
    )
    return res


def test_benchmark_table7_monotone_degradation(result):
    """Accuracy is (weakly) decreasing in sparsity, 90 % clearly worse."""
    rows = {row["sparsity"]: float(row["acc%"]) for row in result.rows}
    assert rows["50%"] >= rows["90%"], "50% sparse must beat 90% sparse"
    assert rows["0%"] >= rows["90%"] + 1.0, "90% sparsity must cost accuracy"
    # the paper loses 0.37 pts at 50%; CI-scale models have less redundancy
    assert rows["50%"] >= rows["0%"] - 10.0, "50% sparsity should be cheap"


def test_benchmark_table7_sparsity_achieved(result):
    """Measured nonzero counts reflect the target sparsities."""
    rows = {row["sparsity"]: row for row in result.rows}
    dense = float(rows["0%"]["nonzero(meas)"].rstrip("K"))
    pruned90 = float(rows["90%"]["nonzero(meas)"].rstrip("K"))
    assert pruned90 < 0.35 * dense


def test_benchmark_table7_twn_hurts(result):
    """Post-training ternarisation costs accuracy (paper: −2.27 %)."""
    rows = {row["sparsity"]: float(row["acc%"]) for row in result.rows}
    assert rows["TWN (ternary)"] <= rows["0%"] - 1.0


def test_benchmark_table7_schedule_shape():
    """The Zhu & Gupta ramp: cubic, monotone, clamped at both ends."""
    values = [zhu_gupta_sparsity(t, 0.9, 10, 110) for t in range(0, 140, 5)]
    assert values[0] == 0.0
    assert values[-1] == 0.9
    assert all(b >= a for a, b in zip(values, values[1:]))


def test_benchmark_table7_inference(benchmark, result):
    """Throughput of the 90 %-sparse DS-CNN on a 32-clip batch."""
    model = trained("ds-cnn-pruned-0.9", lambda: DSCNN(width=24, rng=0), scale="ci").model
    features = get_dataset("ci").features("test")[:32]
    model.eval()

    def infer():
        with no_grad():
            return model(Tensor(features)).data

    logits = benchmark(infer)
    assert logits.shape == (32, 12)
    assert np.isfinite(logits).all()
