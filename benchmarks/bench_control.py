"""Control-plane benchmarks: autoscaler throughput + canary auto-rollback.

Not a paper table — this guards the self-driving control plane
(:mod:`repro.serving.control`) on two axes:

* **autoscaling**: one hot model starting on a single worker of a 4-worker
  pool, under sustained sliding-window traffic, must sustain >=
  :data:`SCALING_FLOOR` x the throughput of the identical run with the
  control loop disabled — the :class:`~repro.serving.control.Autoscaler`
  has to notice the load, grow the replica set inside the byte budget and
  actually spread traffic, then shrink back to one replica once the load
  subsides.  Zero :class:`~repro.errors.WorkerCrashed`, zero sheds, zero
  byte-budget violations, every response bitwise-equal to
  :class:`~repro.serving.packed.PackedModel`.  The throughput gate needs
  real parallel hardware, so it is skipped on machines with < 4 CPUs;
* **canary rollback**: a deploy of a deliberately *slow* version (same
  blob, worker-side latency fault injected via ``inject_version_lag``)
  behind ``canary=CanaryPolicy(...)`` must auto-roll-back on the p99 SLO
  breach while NORMAL+HIGH traffic flows: zero HIGH-priority sheds, zero
  crashes, routing still on the incumbent afterwards, and every response
  bitwise-identical throughout (the canary is slow, never wrong).

Runs standalone (``python benchmarks/bench_control.py [--quick]``) and as
pytest assertions guarding the floors in CI.
"""

from __future__ import annotations

import argparse
import os
import threading
import time
from typing import Dict, List, Tuple

import numpy as np
import pytest

from conftest import record_metrics, write_bench_json
from repro.core.hybrid import HybridConfig, STHybridNet
from repro.core.strassen import freeze_all
from repro.deploy import build_image
from repro.deploy.image import ModelImage
from repro.serving import (
    AutoscalePolicy,
    CanaryPolicy,
    ClusterRouter,
    ControlLoop,
    DeployManager,
    MicroBatchConfig,
    PackedModel,
    Priority,
    PriorityPolicy,
)

WORKERS = 4
SCALING_FLOOR = 1.3


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def hot_image(width: int = 8, rng: int = 0) -> ModelImage:
    """One frozen ST-Hybrid image."""
    model = STHybridNet(HybridConfig(width=width), rng=rng)
    freeze_all(model)
    model.eval()
    return build_image(model)


def run_autoscaled(
    image: ModelImage,
    autoscale: bool,
    clients: int = 4,
    requests_per_client: int = 96,
    window: int = 8,
) -> Dict[str, float]:
    """Sustained sliding-window traffic against one hot model; returns metrics.

    The model starts sticky-placed on a single worker of a
    :data:`WORKERS`-worker pool with byte budget for :data:`WORKERS`
    copies.  With ``autoscale=True`` a :class:`ControlLoop` watches the
    load watermarks; the identical run with ``autoscale=False`` is the
    single-replica baseline the floor compares against.
    """
    rng = np.random.default_rng(1)
    xs = [rng.standard_normal((49, 10)).astype(np.float32) for _ in range(16)]
    want = PackedModel(image)(np.stack(xs))
    size = PackedModel(image).decoded_bytes()
    total = clients * requests_per_client
    router = ClusterRouter(
        workers=WORKERS,
        capacity_bytes=size * WORKERS,
        policy=PriorityPolicy(
            max_pending=total + 1, normal_watermark=1.0, low_watermark=1.0
        ),
        config=MicroBatchConfig(max_batch_size=32, max_delay_ms=2.0),
    )
    router.register("hot", image)
    failures: List[str] = []
    mismatches: List[int] = []
    budget_violations: List[int] = []
    lock = threading.Lock()
    stop = threading.Event()

    def client(seed: int) -> None:
        """One traffic thread: a sliding window of in-flight requests."""
        inflight: List[Tuple[int, object]] = []

        def resolve(idx: int, future) -> None:
            try:
                row = future.result(timeout=120.0)
            except Exception as exc:  # shed/crash/deadline: all control bugs here
                with lock:
                    failures.append(f"{type(exc).__name__}: {exc}")
                return
            if not np.array_equal(row, want[idx]):
                with lock:
                    mismatches.append(idx)

        for i in range(requests_per_client):
            idx = (seed * 31 + i) % len(xs)
            try:
                future = router.submit(xs[idx], model="hot")
            except Exception as exc:
                with lock:
                    failures.append(f"submit {type(exc).__name__}: {exc}")
                continue
            inflight.append((idx, future))
            if len(inflight) >= window:
                resolve(*inflight.pop(0))
        for idx, future in inflight:
            resolve(idx, future)

    def budget_monitor() -> None:
        """Sample the byte-budget invariant while the autoscaler works."""
        while not stop.is_set():
            stats = router.snapshot()
            if stats.resident_bytes > router.capacity_bytes:
                with lock:
                    budget_violations.append(stats.resident_bytes)
            time.sleep(0.005)

    loop = ControlLoop(
        router,
        interval_s=0.05,
        autoscaler=AutoscalePolicy(low_load=0.5, high_load=2.0, cooldown_steps=1),
    )
    with router:
        router.predict(xs[0], model="hot")  # place + decode on one worker
        assert len(router.placements()["hot@v1"]) == 1
        monitor = threading.Thread(target=budget_monitor, daemon=True)
        monitor.start()
        if autoscale:
            loop.start()
        threads = [
            threading.Thread(target=client, args=(seed,), daemon=True)
            for seed in range(clients)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300.0)
        elapsed = time.perf_counter() - start
        peak_replicas = max(
            (e.to_replicas for e in router.snapshot().scale_events), default=1
        )
        shrunk_back = True
        if autoscale:
            # the load is gone: the loop must walk the replica set back down
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if len(router.placements()["hot@v1"]) == 1:
                    break
                time.sleep(0.05)
            shrunk_back = len(router.placements()["hot@v1"]) == 1
            loop.stop()
        stop.set()
        monitor.join(timeout=10.0)
        stats = router.snapshot()
        crashes = stats.crashes
        shed = sum(stats.shed_by_priority.values())
        grow_events = sum(1 for e in stats.scale_events if e.action == "grow")
        shrink_events = sum(1 for e in stats.scale_events if e.action == "shrink")
    if failures:
        raise SystemExit(f"FAIL: {len(failures)} request failures: {failures[:3]}")
    if mismatches:
        raise SystemExit(f"FAIL: {len(mismatches)} responses not bitwise-identical")
    if budget_violations:
        raise SystemExit(f"FAIL: byte budget exceeded: {budget_violations[:3]}")
    assert crashes == 0, f"{crashes} worker crash(es) under autoscaling"
    assert shed == 0, f"{shed} request(s) shed under autoscaling"
    if autoscale:
        assert grow_events > 0, "autoscaler never grew under sustained load"
        assert shrunk_back, "autoscaler did not shrink back after the load subsided"
        assert shrink_events > 0, "no shrink events recorded"
    return {
        "throughput_rps": total / elapsed,
        "elapsed_s": elapsed,
        "peak_replicas": peak_replicas,
        "grow_events": grow_events,
        "shrink_events": shrink_events,
        "crashes": crashes,
        "shed": shed,
    }


def run_canary_rollback(
    image: ModelImage,
    workers: int = 2,
    clients: int = 4,
    requests_per_client: int = 48,
    window: int = 8,
    lag_s: float = 0.05,
) -> Dict[str, float]:
    """Deploy a deliberately slow canary under live traffic; returns metrics.

    The canary ships the *same blob* as the incumbent with a worker-side
    latency fault injected on its key, so the SLO breach is pure latency:
    every response must stay bitwise-identical while the
    :class:`~repro.serving.placement.DeployManager` observes the canary
    slice, detects the p99 breach and rolls the deploy back.
    """
    rng = np.random.default_rng(5)
    xs = [rng.standard_normal((49, 10)).astype(np.float32) for _ in range(16)]
    want = PackedModel(image)(np.stack(xs))
    router = ClusterRouter(
        workers=workers,
        config=MicroBatchConfig(max_batch_size=16, max_delay_ms=1.0),
    )
    router.register("hot", image, version="v1")
    failures: List[str] = []
    mismatches: List[int] = []
    lock = threading.Lock()

    def client(seed: int) -> None:
        """One traffic thread: alternating NORMAL/HIGH, sliding window."""
        inflight: List[Tuple[int, object]] = []

        def resolve(idx: int, future) -> None:
            try:
                row = future.result(timeout=120.0)
            except Exception as exc:
                with lock:
                    failures.append(f"{type(exc).__name__}: {exc}")
                return
            if not np.array_equal(row, want[idx]):
                with lock:
                    mismatches.append(idx)

        for i in range(requests_per_client):
            idx = (seed * 31 + i) % len(xs)
            priority = Priority.HIGH if i % 2 else Priority.NORMAL
            try:
                future = router.submit(xs[idx], model="hot", priority=priority)
            except Exception as exc:
                with lock:
                    failures.append(f"submit {type(exc).__name__}: {exc}")
                continue
            inflight.append((idx, future))
            if len(inflight) >= window:
                resolve(*inflight.pop(0))
        for idx, future in inflight:
            resolve(idx, future)

    with router:
        router.predict(xs[0], model="hot")
        # arm the latency fault before the deploy warms the canary: the lag
        # re-applies on every load of hot@v2, including the deploy's own
        router.register("hot", image, version="v2", activate=False)
        router.inject_version_lag("hot", "v2", lag_s)
        threads = [
            threading.Thread(target=client, args=(seed,), daemon=True)
            for seed in range(clients)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.05)  # let traffic build before the canary opens
        manager = DeployManager(router)
        start = time.perf_counter()
        report = manager.deploy(
            "hot",
            image,
            "v2",
            canary=CanaryPolicy(
                fraction=0.25,
                min_requests=16,
                max_p99_ms=10.0,
                decision_timeout_s=120.0,
            ),
        )
        verdict_s = time.perf_counter() - start
        for thread in threads:
            thread.join(timeout=300.0)
        stats = router.snapshot()
        crashes = stats.crashes
        shed_high = stats.shed_by_priority[Priority.HIGH]
        current = router.current_version("hot")
        canary_placed = "hot@v2" in router.placements()
    if failures:
        raise SystemExit(f"FAIL: {len(failures)} request failures: {failures[:3]}")
    if mismatches:
        raise SystemExit(f"FAIL: {len(mismatches)} responses not bitwise-identical")
    assert report.canary_outcome == "rolled_back", (
        f"slow canary was not rolled back: {report.canary_outcome!r} "
        f"({report.canary_reason!r})"
    )
    assert current == "v1", f"routing left the incumbent: now on {current!r}"
    assert not canary_placed, "canary plans were not unloaded after rollback"
    assert crashes == 0, f"{crashes} worker crash(es) during the canary"
    assert shed_high == 0, f"{shed_high} HIGH-priority shed(s) during the canary"
    return {
        "verdict_s": verdict_s,
        "canary_observed": report.canary_observed,
        "canary_reason": str(report.canary_reason),
        "crashes": crashes,
        "shed_high": shed_high,
    }


# -- pytest entry points ----------------------------------------------------- #


def test_canary_rollback_no_shed_no_crash() -> None:
    """A deliberately slow canary rolls back on p99 breach under live
    NORMAL+HIGH traffic: zero HIGH sheds, zero crashes, bitwise-identical."""
    metrics = run_canary_rollback(hot_image())
    record_metrics("control", canary_rollback=metrics)
    assert metrics["crashes"] == 0
    assert metrics["shed_high"] == 0


def test_autoscaler_shrinks_back_and_breaks_nothing() -> None:
    """Autoscaling under load grows then shrinks back to one replica with
    zero crashes, sheds and budget violations (no throughput floor here —
    that gate is CPU-gated below)."""
    metrics = run_autoscaled(hot_image(), autoscale=True, requests_per_client=48)
    record_metrics("control", autoscaled=metrics)
    assert metrics["grow_events"] > 0 and metrics["shrink_events"] > 0
    assert metrics["crashes"] == 0 and metrics["shed"] == 0


@pytest.mark.skipif(
    available_cpus() < WORKERS,
    reason=f"autoscaling gate needs >= {WORKERS} CPUs (have {available_cpus()})",
)
def test_autoscaling_floor() -> None:
    """Autoscaled throughput must beat the scaling-disabled baseline."""
    image = hot_image()
    baseline = run_autoscaled(image, autoscale=False)
    scaled = run_autoscaled(image, autoscale=True)
    record_metrics(
        "control",
        baseline_rps=baseline["throughput_rps"],
        autoscaled_rps=scaled["throughput_rps"],
        speedup=scaled["throughput_rps"] / baseline["throughput_rps"],
    )
    speedup = scaled["throughput_rps"] / baseline["throughput_rps"]
    assert speedup >= SCALING_FLOOR, (
        f"autoscaled {scaled['throughput_rps']:.0f} req/s vs "
        f"{baseline['throughput_rps']:.0f} req/s disabled — only {speedup:.2f}x "
        f"(floor {SCALING_FLOOR}x)"
    )


# -- standalone report ------------------------------------------------------- #


def main() -> None:
    """Run both control-plane measurements and enforce the floors."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="fewer requests (CI smoke)")
    parser.add_argument("--width", type=int, default=8, help="model channel width")
    args = parser.parse_args()
    if args.width < 1:
        parser.error("--width must be >= 1")
    per_client = 48 if args.quick else 96

    image = hot_image(width=args.width)
    cpus = available_cpus()
    print(f"one hot ST-Hybrid model, width={args.width}; {cpus} CPU(s) available")

    canary = run_canary_rollback(image)
    print("\ncanary deploy of a deliberately slow v2 (same blob, +50 ms lag):")
    print(f"  verdict            rolled_back in {canary['verdict_s'] * 1e3:6.0f} ms")
    print(f"  observed           {canary['canary_observed']:6.0f} canary requests")
    print(f"  shed (HIGH)        {canary['shed_high']:6.0f}  (floor: 0)")
    print(f"  crashes            {canary['crashes']:6.0f}  (floor: 0)")

    payload = {"canary_rollback": canary, "floor": SCALING_FLOOR}
    if cpus >= WORKERS:
        baseline = run_autoscaled(image, autoscale=False, requests_per_client=per_client)
        scaled = run_autoscaled(image, autoscale=True, requests_per_client=per_client)
        speedup = scaled["throughput_rps"] / baseline["throughput_rps"]
        print(f"\nautoscaling ({WORKERS}-worker pool, sliding-window clients):")
        print(f"  disabled           {baseline['throughput_rps']:6.0f} req/s")
        print(
            f"  autoscaled         {scaled['throughput_rps']:6.0f} req/s "
            f"(peak {scaled['peak_replicas']:.0f} replicas, "
            f"{scaled['grow_events']:.0f} grows / {scaled['shrink_events']:.0f} shrinks)"
        )
        note = "OK" if speedup >= SCALING_FLOOR else "BELOW FLOOR"
        print(f"  speedup            {speedup:6.2f}x  (floor {SCALING_FLOOR}x) {note}")
        payload.update(
            baseline=baseline, autoscaled=scaled, speedup=speedup, workers=WORKERS
        )
        if speedup < SCALING_FLOOR:
            raise SystemExit(f"FAIL: autoscaling speedup {speedup:.2f}x below floor")
    else:
        scaled = run_autoscaled(image, autoscale=True, requests_per_client=per_client)
        print(f"\n< {WORKERS} CPUs: throughput floor skipped; invariants checked")
        payload.update(autoscaled=scaled, workers=WORKERS, floor_skipped=True)

    write_bench_json("control", payload)
    print("\nwrote BENCH_control.json")


if __name__ == "__main__":
    main()
