"""Front-end benchmarks: async fan-out throughput and byte-budget admission.

Not a paper table — this guards the serving front door added on top of the
micro-batching engine:

* **async fan-out**: 64 concurrent asyncio clients, each awaiting
  ``AsyncServingFrontend.predict`` with a generous deadline, must sustain
  >= 3x the throughput of one-at-a-time serving with **zero** deadline
  misses (the coalescing win must survive the asyncio bridge);
* **byte-budget admission**: a :class:`~repro.serving.registry.ModelRegistry`
  bounded by ``capacity_bytes`` must never exceed its budget (checked via
  ``RegistryStats``) while traffic rotates across more models than fit.

Runs standalone (``python benchmarks/bench_frontend.py [--quick]``) and as
pytest assertions guarding the floors in CI.
"""

from __future__ import annotations

import argparse
import asyncio
import time
from typing import List, Tuple

import numpy as np

from conftest import record_metrics, write_bench_json
from repro.core.hybrid import HybridConfig, STHybridNet
from repro.core.strassen import freeze_all
from repro.deploy import build_image
from repro.deploy.image import ModelImage
from repro.serving import AsyncServingFrontend, MicroBatchConfig, PackedModel, ModelRegistry

CLIENTS = 64
DEADLINE_S = 0.5  # generous (>= 100 ms): misses at this budget indicate a bug


def demo_image(width: int = 8, rng: int = 0) -> ModelImage:
    """A small frozen ST-Hybrid image (weights random, arithmetic real)."""
    model = STHybridNet(HybridConfig(width=width), rng=rng)
    freeze_all(model)
    model.eval()
    return build_image(model)


def measure_async_fanout(
    image: ModelImage, clients: int = CLIENTS, repeats: int = 5
) -> Tuple[float, float, float, int]:
    """(single req/s, async req/s, speedup, deadline misses) for ``clients`` clients."""
    model = PackedModel(image, cache=True)
    rng = np.random.default_rng(0)
    requests = [rng.standard_normal((49, 10)).astype(np.float32) for _ in range(clients)]
    model(requests[0][None])  # warm up

    def serve_singles() -> None:
        for x in requests:
            model(x[None])

    times: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        serve_singles()
        times.append(time.perf_counter() - start)
    single_s = min(times)

    frontend = AsyncServingFrontend(
        model,
        config=MicroBatchConfig(max_batch_size=clients, max_delay_ms=2.0),
        max_pending=4 * clients,
        default_deadline_s=DEADLINE_S,
    )

    async def bench() -> float:
        async def fanout() -> None:
            await asyncio.gather(*[frontend.predict(x) for x in requests])

        async with frontend:
            await fanout()  # warm up the worker path
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                await fanout()
                best = min(best, time.perf_counter() - start)
        return best

    async_s = asyncio.run(bench())
    single = clients / single_s
    fanout_tput = clients / async_s
    # snapshot(): the counters are mutated on the engine worker thread
    return single, fanout_tput, fanout_tput / single, frontend.snapshot().deadline_misses


def measure_byte_budget(
    widths: Tuple[int, ...] = (8, 8, 8, 8), rounds: int = 3
) -> Tuple[ModelRegistry, int]:
    """Rotate traffic over more models than the budget fits; returns
    (registry, max observed resident bytes across every step)."""
    images = [demo_image(w, rng=i) for i, w in enumerate(widths)]
    # budget: any two decoded plans fit, three never do (plan sizes vary with
    # the random sparsity, so size the budget from the two largest)
    sizes = sorted(PackedModel(img, cache=True).decoded_bytes() for img in images)
    registry = ModelRegistry(capacity_bytes=sizes[-1] + sizes[-2])
    for i, image in enumerate(images):
        registry.register(f"m{i}", image)

    x = np.random.default_rng(1).standard_normal((2, 49, 10)).astype(np.float32)
    observed_max = 0
    for _ in range(rounds):
        for i in range(len(images)):
            registry.predict(f"m{i}", x)
            observed_max = max(observed_max, registry.stats.resident_bytes)
            assert registry.stats.resident_bytes == registry.decoded_bytes()
    return registry, observed_max


# -- pytest entry points ----------------------------------------------------- #


def test_async_fanout_throughput() -> None:
    """64 concurrent async clients must sustain >= 3x one-at-a-time serving
    with zero deadline misses at a generous deadline."""
    single, fanout, speedup, misses = measure_async_fanout(demo_image())
    record_metrics(
        "frontend",
        config={"clients": CLIENTS, "deadline_s": DEADLINE_S},
        fanout={
            "single_rps": single,
            "async_rps": fanout,
            "speedup": speedup,
            "deadline_misses": misses,
        },
    )
    assert misses == 0, f"{misses} deadline misses at a {DEADLINE_S * 1e3:.0f} ms budget"
    assert speedup >= 3.0, (
        f"async fan-out of {CLIENTS} clients served {fanout:.0f} req/s vs "
        f"{single:.0f} req/s single — only {speedup:.2f}x"
    )


def test_registry_byte_budget() -> None:
    """RegistryStats must never report occupancy above capacity_bytes."""
    registry, observed_max = measure_byte_budget()
    assert observed_max <= registry.capacity_bytes, (
        f"resident {observed_max} bytes exceeded budget {registry.capacity_bytes}"
    )
    assert registry.stats.peak_resident_bytes <= registry.capacity_bytes
    assert registry.stats.evictions > 0, "rotation over 4 models never evicted"


# -- standalone report ------------------------------------------------------- #


def main() -> None:
    """Run both measurements and enforce the acceptance floors."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="fewer repeats (CI smoke)")
    parser.add_argument("--width", type=int, default=8, help="model channel width")
    args = parser.parse_args()
    if args.width < 1:
        parser.error("--width must be >= 1")
    repeats = 2 if args.quick else 7

    image = demo_image(args.width)
    print(f"ST-Hybrid width={args.width}; image payload {image.total_bytes():,} bytes")

    single, fanout, speedup, misses = measure_async_fanout(image, repeats=repeats)
    print(f"\n{CLIENTS} concurrent async clients (deadline {DEADLINE_S * 1e3:.0f} ms):")
    print(f"  one-at-a-time      {single:10.0f} req/s")
    print(f"  async fan-out      {fanout:10.0f} req/s")
    print(f"  speedup            {speedup:10.2f}x  (floor: 3x)")
    print(f"  deadline misses    {misses:10d}  (floor: 0)")

    registry, observed_max = measure_byte_budget()
    stats = registry.stats
    print(f"\nbyte-budget registry (budget {registry.capacity_bytes:,} bytes, 4 models):")
    print(f"  max resident       {observed_max:10,} bytes")
    print(f"  peak (stats)       {stats.peak_resident_bytes:10,} bytes")
    print(f"  hits/misses/evicts {stats.hits}/{stats.misses}/{stats.evictions}")

    write_bench_json(
        "frontend",
        {
            "config": {
                "clients": CLIENTS,
                "deadline_s": DEADLINE_S,
                "width": args.width,
                "quick": args.quick,
            },
            "fanout": {
                "single_rps": single,
                "async_rps": fanout,
                "speedup": speedup,
                "deadline_misses": misses,
            },
            "registry": {
                "capacity_bytes": registry.capacity_bytes,
                "max_resident_bytes": observed_max,
                "peak_resident_bytes": stats.peak_resident_bytes,
                "evictions": stats.evictions,
            },
        },
    )

    if misses or speedup < 3.0:
        raise SystemExit("FAIL: async fan-out below the 3x floor or deadline misses seen")
    if observed_max > registry.capacity_bytes:
        raise SystemExit("FAIL: registry exceeded its byte budget")
    print("\nOK: fan-out >= 3x with zero misses; byte budget never exceeded")


if __name__ == "__main__":
    main()
