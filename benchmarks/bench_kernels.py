"""Micro-benchmarks of the substrate kernels.

Not a paper table — these keep the building blocks honest: MFCC extraction,
conv forward/backward, strassenified vs dense matmul layers, the
synthetic-corpus generator, and the packed bit-plane kernels' per-kind
gather breakdown (via :func:`repro.serving.telemetry.profile_kernels`).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import record_metrics
from repro.audio.mfcc import MFCC
from repro.autodiff.ops_conv import conv2d, depthwise_conv2d
from repro.autodiff.tensor import Tensor, no_grad
from repro.core.hybrid import HybridConfig, STHybridNet
from repro.core.strassen import freeze_all
from repro.core.strassen.layers import StrassenLinear
from repro.datasets.synthesizer import keyword_spec, synthesize
from repro.deploy import build_image
from repro.nn.linear import Linear
from repro.serving import PackedModel, profile_kernels

RNG = np.random.default_rng(0)

# per-kernel timings land in BENCH_kernels.json via the conftest summary
# hook when pytest-benchmark is enabled; the config rides along either way
record_metrics(
    "kernels",
    config={
        "kernels": [
            "mfcc",
            "synthesizer",
            "conv2d_forward",
            "depthwise_forward",
            "conv2d_backward",
            "linear_kinds",
            "packed_profile",
        ],
        "batch": 32,
    },
)


def test_benchmark_mfcc(benchmark):
    """MFCC pipeline on a 1-second clip."""
    extractor = MFCC()
    wave = RNG.standard_normal(16_000)
    features = benchmark(extractor, wave)
    assert features.shape == (49, 10)


def test_benchmark_synthesizer(benchmark):
    """Formant synthesis of one keyword utterance."""
    spec = keyword_spec("seven")
    wave = benchmark(lambda: synthesize(spec, 0))
    assert wave.shape == (16_000,)


def test_benchmark_conv2d_forward(benchmark):
    """DS-CNN-shaped conv forward (batch 32)."""
    x = Tensor(RNG.standard_normal((32, 1, 49, 10)).astype(np.float32))
    w = Tensor(RNG.standard_normal((64, 1, 10, 4)).astype(np.float32) * 0.1)

    def forward():
        with no_grad():
            return conv2d(x, w, stride=(2, 2), padding=(5, 1)).data

    out = benchmark(forward)
    assert out.shape == (32, 64, 25, 5)


def test_benchmark_depthwise_forward(benchmark):
    """Depthwise 3x3 forward on the DS-CNN feature map (batch 32)."""
    x = Tensor(RNG.standard_normal((32, 64, 25, 5)).astype(np.float32))
    w = Tensor(RNG.standard_normal((64, 3, 3)).astype(np.float32) * 0.1)

    def forward():
        with no_grad():
            return depthwise_conv2d(x, w, stride=1, padding=1).data

    out = benchmark(forward)
    assert out.shape == (32, 64, 25, 5)


def test_benchmark_conv2d_backward(benchmark):
    """Conv forward+backward (training-step cost driver)."""
    x = Tensor(RNG.standard_normal((16, 1, 49, 10)).astype(np.float32), requires_grad=True)
    w = Tensor(RNG.standard_normal((64, 1, 10, 4)).astype(np.float32) * 0.1, requires_grad=True)

    def step():
        x.zero_grad()
        w.zero_grad()
        out = conv2d(x, w, stride=(2, 2), padding=(5, 1))
        out.sum().backward()
        return w.grad

    grad = benchmark(step)
    assert grad.shape == (64, 1, 10, 4)


def test_packed_kernel_gather_breakdown():
    """Per-kind gather share of a packed forward, bitwise-unperturbed.

    ``profile_kernels`` attributes the two ``_plane_sums`` passes behind
    every ternary matmul to the active layer kind — the latency-accounting
    substrate for bit-plane kernel work.  Profiling must never change the
    result, every kind must report, and a kind's gather time can never
    exceed its layer time.
    """
    model = STHybridNet(HybridConfig(width=8), rng=0)
    freeze_all(model)
    model.eval()
    packed = PackedModel(build_image(model))
    x = RNG.standard_normal((32, 49, 10)).astype(np.float32)
    want = packed(x)
    with profile_kernels() as profile:
        got = packed(x)
    np.testing.assert_array_equal(got, want)
    breakdown = profile.snapshot()
    assert {"conv", "dw", "pw", "linear"} <= set(breakdown)
    for kind, row in breakdown.items():
        assert row["layers"] > 0 and row["gather_calls"] > 0, kind
        assert 0.0 <= row["gather_s"] <= row["layer_s"], kind
    record_metrics(
        "kernels",
        packed_profile={
            kind: {
                "layer_ms": row["layer_s"] * 1e3,
                "gather_ms": row["gather_s"] * 1e3,
                "gather_share": row["gather_s"] / row["layer_s"]
                if row["layer_s"]
                else 0.0,
            }
            for kind, row in breakdown.items()
        },
    )


@pytest.mark.parametrize("layer_kind", ["dense", "strassen"])
def test_benchmark_linear_kinds(benchmark, layer_kind):
    """Dense vs strassenified 64→12 matmul layer (batch 256)."""
    x = Tensor(RNG.standard_normal((256, 64)).astype(np.float32))
    if layer_kind == "dense":
        layer = Linear(64, 12, rng=0)
    else:
        layer = StrassenLinear(64, 12, r=12, rng=0)
        layer.freeze()
    layer.eval()

    def forward():
        with no_grad():
            return layer(x).data

    out = benchmark(forward)
    assert out.shape == (256, 12)
