"""Micro-benchmarks of the substrate kernels.

Not a paper table — these keep the building blocks honest: MFCC extraction,
conv forward/backward, strassenified vs dense matmul layers, the
synthetic-corpus generator, and the packed bit-plane kernels' per-kind
gather breakdown (via :func:`repro.serving.telemetry.profile_kernels`).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from conftest import record_metrics
from repro.audio.mfcc import MFCC
from repro.autodiff.ops_conv import conv2d, depthwise_conv2d
from repro.autodiff.tensor import Tensor, no_grad
from repro.core.hybrid import HybridConfig, STHybridNet
from repro.core.strassen import freeze_all
from repro.core.strassen.layers import StrassenLinear
from repro.datasets.synthesizer import keyword_spec, synthesize
from repro.deploy import build_image
from repro.deploy.packing import pack_ternary
from repro.nn.linear import Linear
from repro.serving import (
    PackedModel,
    available_backends,
    decode_planes,
    get_backend,
    profile_kernels,
    ternary_matmul,
)

#: fused backend must beat the reference by this factor on linear+pw kinds
FUSED_SPEEDUP_FLOOR = 1.3
#: the speedup gate needs quiet parallel hardware, like the cluster benches
MIN_GATE_CPUS = 4

RNG = np.random.default_rng(0)

# per-kernel timings land in BENCH_kernels.json via the conftest summary
# hook when pytest-benchmark is enabled; the config rides along either way
record_metrics(
    "kernels",
    config={
        "kernels": [
            "mfcc",
            "synthesizer",
            "conv2d_forward",
            "depthwise_forward",
            "conv2d_backward",
            "linear_kinds",
            "packed_profile",
            "backend_speedups",
        ],
        "batch": 32,
    },
)


def test_benchmark_mfcc(benchmark):
    """MFCC pipeline on a 1-second clip."""
    extractor = MFCC()
    wave = RNG.standard_normal(16_000)
    features = benchmark(extractor, wave)
    assert features.shape == (49, 10)


def test_benchmark_synthesizer(benchmark):
    """Formant synthesis of one keyword utterance."""
    spec = keyword_spec("seven")
    wave = benchmark(lambda: synthesize(spec, 0))
    assert wave.shape == (16_000,)


def test_benchmark_conv2d_forward(benchmark):
    """DS-CNN-shaped conv forward (batch 32)."""
    x = Tensor(RNG.standard_normal((32, 1, 49, 10)).astype(np.float32))
    w = Tensor(RNG.standard_normal((64, 1, 10, 4)).astype(np.float32) * 0.1)

    def forward():
        with no_grad():
            return conv2d(x, w, stride=(2, 2), padding=(5, 1)).data

    out = benchmark(forward)
    assert out.shape == (32, 64, 25, 5)


def test_benchmark_depthwise_forward(benchmark):
    """Depthwise 3x3 forward on the DS-CNN feature map (batch 32)."""
    x = Tensor(RNG.standard_normal((32, 64, 25, 5)).astype(np.float32))
    w = Tensor(RNG.standard_normal((64, 3, 3)).astype(np.float32) * 0.1)

    def forward():
        with no_grad():
            return depthwise_conv2d(x, w, stride=1, padding=1).data

    out = benchmark(forward)
    assert out.shape == (32, 64, 25, 5)


def test_benchmark_conv2d_backward(benchmark):
    """Conv forward+backward (training-step cost driver)."""
    x = Tensor(RNG.standard_normal((16, 1, 49, 10)).astype(np.float32), requires_grad=True)
    w = Tensor(RNG.standard_normal((64, 1, 10, 4)).astype(np.float32) * 0.1, requires_grad=True)

    def step():
        x.zero_grad()
        w.zero_grad()
        out = conv2d(x, w, stride=(2, 2), padding=(5, 1))
        out.sum().backward()
        return w.grad

    grad = benchmark(step)
    assert grad.shape == (64, 1, 10, 4)


def test_packed_kernel_gather_breakdown():
    """Per-kind gather share of a packed forward, bitwise-unperturbed.

    ``profile_kernels`` attributes the two ``_plane_sums`` passes behind
    every ternary matmul to the active layer kind — the latency-accounting
    substrate for bit-plane kernel work.  Profiling must never change the
    result, every kind must report, and a kind's gather time can never
    exceed its layer time.
    """
    model = STHybridNet(HybridConfig(width=8), rng=0)
    freeze_all(model)
    model.eval()
    packed = PackedModel(build_image(model))
    x = RNG.standard_normal((32, 49, 10)).astype(np.float32)
    want = packed(x)
    with profile_kernels() as profile:
        got = packed(x)
    np.testing.assert_array_equal(got, want)
    breakdown = profile.snapshot()
    assert {"conv", "dw", "pw", "linear"} <= set(breakdown)
    backend_name = packed.kernel_backend.name
    for kind, row in breakdown.items():
        assert row["layers"] > 0 and row["gather_calls"] > 0, kind
        assert 0.0 <= row["gather_s"] <= row["layer_s"], kind
        # every gather pass is attributed to the backend that ran it
        per_backend = row["backends"]
        assert backend_name in per_backend, (kind, per_backend)
        assert sum(b["gather_calls"] for b in per_backend.values()) == row["gather_calls"]
    record_metrics(
        "kernels",
        packed_profile={
            kind: {
                "layer_ms": row["layer_s"] * 1e3,
                "gather_ms": row["gather_s"] * 1e3,
                "gather_share": row["gather_s"] / row["layer_s"]
                if row["layer_s"]
                else 0.0,
            }
            for kind, row in breakdown.items()
        },
    )


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _ternary_values(rng, rows: int, cols: int, density: float) -> np.ndarray:
    """Random {-1, 0, +1} matrix with the requested nonzero density."""
    mask = rng.random((rows, cols)) < density
    signs = rng.choice(np.array([-1, 1], dtype=np.int8), size=(rows, cols))
    return (mask * signs).astype(np.int8)


def _best_seconds(fn, repeats: int = 5, inner: int = 4) -> float:
    """Best-of-``repeats`` mean over ``inner`` calls (noise-resistant)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return best


#: per-kind plane geometries shaped like the packed model's hot layers:
#: (batch rows M, activation cols C, transform rows R, nonzero density).
#: ``linear`` is the tree layers' 64-feature -> r=12 transform at serving
#: batch; ``pw`` is a pointwise conv over its N*OH*OW patch rows; ``dw``
#: is the block-diagonal depthwise gather (9-tap rows in a C*K space).
BACKEND_CASES = {
    "linear": (256, 64, 12, 0.9),
    "pw": (4000, 64, 64, 0.9),
    "dw": (2000, 576, 64, 9 / 576),
}


def test_backend_speedups():
    """Every registered backend: bitwise identity plus timed speedup.

    Identity against :func:`ternary_matmul` is asserted unconditionally on
    every kind; the fused-backend speedup floor on the linear and pw kinds
    only gates on >= ``MIN_GATE_CPUS`` machines (like the cluster benches)
    — below that the timings are still recorded, just not enforced.
    """
    rng = np.random.default_rng(7)
    results: dict = {}
    for kind, (m, cols, rows, density) in BACKEND_CASES.items():
        blob, shape = pack_ternary(_ternary_values(rng, rows, cols, density))
        planes = decode_planes(blob, shape)
        x = rng.standard_normal((m, cols)).astype(np.float32)
        want = ternary_matmul(x, planes)
        ref_s = _best_seconds(lambda: ternary_matmul(x, planes))
        for name in sorted(available_backends()):
            backend = get_backend(name)
            prepared = backend.prepare(planes)
            got = backend.matmul(x, prepared)
            np.testing.assert_array_equal(got, want, err_msg=f"{name}/{kind}")
            best = _best_seconds(lambda: backend.matmul(x, prepared))
            results.setdefault(name, {})[kind] = {
                "ms": best * 1e3,
                "speedup_vs_reference": ref_s / best,
            }
    cpus = available_cpus()
    enforced = cpus >= MIN_GATE_CPUS
    record_metrics(
        "kernels",
        backends=results,
        backend_gate={
            "floor": FUSED_SPEEDUP_FLOOR,
            "kinds": ["linear", "pw"],
            "cpus": cpus,
            "enforced": enforced,
        },
    )
    if enforced:
        for kind in ("linear", "pw"):
            speedup = results["fused"][kind]["speedup_vs_reference"]
            assert speedup >= FUSED_SPEEDUP_FLOOR, (kind, speedup)


@pytest.mark.parametrize("layer_kind", ["dense", "strassen"])
def test_benchmark_linear_kinds(benchmark, layer_kind):
    """Dense vs strassenified 64→12 matmul layer (batch 256)."""
    x = Tensor(RNG.standard_normal((256, 64)).astype(np.float32))
    if layer_kind == "dense":
        layer = Linear(64, 12, rng=0)
    else:
        layer = StrassenLinear(64, 12, r=12, rng=0)
        layer.freeze()
    layer.eval()

    def forward():
        with no_grad():
            return layer(x).data

    out = benchmark(forward)
    assert out.shape == (256, 12)
