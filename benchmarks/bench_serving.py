"""Serving-path benchmarks: micro-batching and cached bit-plane decode.

Not a paper table — this measures the two wins of the serving subsystem:

* **micro-batching**: throughput of 32 requests served one-at-a-time vs
  coalesced by the :class:`~repro.serving.batching.BatchingEngine` into a
  single vectorised forward (acceptance floor: >= 3x);
* **plan caching**: per-call latency of the cached
  :class:`~repro.serving.packed.PackedModel` vs the ``cache=False`` mode
  that re-decodes every 2-bit blob on every call.

Runs standalone (``python benchmarks/bench_serving.py [--quick]``) and as
pytest assertions guarding the speedups in CI.
"""

from __future__ import annotations

import argparse
import time
from typing import Callable, List, Tuple

import numpy as np

from conftest import record_metrics, write_bench_json
from repro.core.hybrid import HybridConfig, STHybridNet
from repro.core.strassen import freeze_all
from repro.deploy import build_image
from repro.deploy.image import ModelImage
from repro.serving import BatchingEngine, MicroBatchConfig, PackedModel

REQUESTS = 32


def demo_image(width: int = 8) -> ModelImage:
    """A small frozen ST-Hybrid image (weights random, arithmetic real)."""
    model = STHybridNet(HybridConfig(width=width), rng=0)
    freeze_all(model)
    model.eval()
    return build_image(model)


def _best_seconds(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-N wall time of ``fn`` (min is the noise-robust estimator)."""
    times: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def measure_microbatch_speedup(
    image: ModelImage, repeats: int = 5
) -> Tuple[float, float, float]:
    """(single req/s, micro-batched req/s, speedup) for REQUESTS requests."""
    model = PackedModel(image, cache=True)
    rng = np.random.default_rng(0)
    requests = [rng.standard_normal((49, 10)).astype(np.float32) for _ in range(REQUESTS)]
    model(requests[0][None])  # warm up

    def serve_singles() -> None:
        for x in requests:
            model(x[None])

    def serve_microbatched() -> None:
        engine = BatchingEngine(model, MicroBatchConfig(max_batch_size=REQUESTS))
        futures = engine.submit_many(requests)
        engine.flush()
        for future in futures:
            future.result()

    single = REQUESTS / _best_seconds(serve_singles, repeats)
    batched = REQUESTS / _best_seconds(serve_microbatched, repeats)
    return single, batched, batched / single


def measure_cache_speedup(
    image: ModelImage, batch: int = 16, repeats: int = 5
) -> Tuple[float, float, float]:
    """(uncached s/call, cached s/call, speedup) on a ``batch``-row forward."""
    cached = PackedModel(image, cache=True)
    uncached = PackedModel(image, cache=False)
    x = np.random.default_rng(1).standard_normal((batch, 49, 10)).astype(np.float32)
    cached(x)  # warm up
    uncached_s = _best_seconds(lambda: uncached(x), repeats)
    cached_s = _best_seconds(lambda: cached(x), repeats)
    return uncached_s, cached_s, uncached_s / cached_s


# -- pytest entry points ----------------------------------------------------- #


def test_microbatch_throughput() -> None:
    """Coalescing 32 requests into one forward must be >= 3x faster."""
    single, batched, speedup = measure_microbatch_speedup(demo_image())
    record_metrics(
        "serving",
        config={"requests": REQUESTS, "width": 8},
        microbatch={"single_rps": single, "batched_rps": batched, "speedup": speedup},
    )
    assert speedup >= 3.0, (
        f"micro-batch {REQUESTS} served {batched:.0f} req/s vs {single:.0f} req/s "
        f"single — only {speedup:.2f}x"
    )


def test_cached_decode_faster() -> None:
    """Decoding bit planes once must beat per-call unpacking."""
    uncached_s, cached_s, speedup = measure_cache_speedup(demo_image())
    assert speedup > 1.0, (
        f"cached forward {cached_s * 1e3:.2f} ms vs uncached {uncached_s * 1e3:.2f} ms"
    )


# -- standalone report ------------------------------------------------------- #


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="fewer repeats (CI smoke)")
    parser.add_argument("--width", type=int, default=8, help="model channel width")
    args = parser.parse_args()
    if args.width < 1:
        parser.error("--width must be >= 1")
    repeats = 2 if args.quick else 7

    image = demo_image(args.width)
    print(f"ST-Hybrid width={args.width}; image payload {image.total_bytes():,} bytes")

    single, batched, speedup = measure_microbatch_speedup(image, repeats=repeats)
    print(f"\nserving {REQUESTS} requests:")
    print(f"  one-at-a-time      {single:10.0f} req/s")
    print(f"  micro-batch {REQUESTS:>2d}     {batched:10.0f} req/s")
    print(f"  speedup            {speedup:10.2f}x  (floor: 3x)")

    uncached_s, cached_s, cache_speedup = measure_cache_speedup(image, repeats=repeats)
    print("\nbatch-16 forward latency:")
    print(f"  cache=False (per-call unpack) {uncached_s * 1e3:8.2f} ms")
    print(f"  cache=True  (bit-plane plans) {cached_s * 1e3:8.2f} ms")
    print(f"  speedup                       {cache_speedup:8.2f}x")

    write_bench_json(
        "serving",
        {
            "config": {"requests": REQUESTS, "width": args.width, "quick": args.quick},
            "microbatch": {"single_rps": single, "batched_rps": batched, "speedup": speedup},
            "cache": {
                "uncached_ms": uncached_s * 1e3,
                "cached_ms": cached_s * 1e3,
                "speedup": cache_speedup,
            },
        },
    )

    if speedup < 3.0:
        raise SystemExit("FAIL: micro-batch speedup below the 3x acceptance floor")
    print("\nOK: micro-batch speedup meets the 3x acceptance floor")


if __name__ == "__main__":
    main()
