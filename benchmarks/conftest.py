"""Benchmark-suite plumbing: rendered tables + machine-readable JSON.

Each bench module renders its paper-vs-measured table; we collect the
rendered text here and print everything in the terminal summary so
``pytest benchmarks/ --benchmark-only`` shows the reproduced tables even
with output capture on.

Every bench also emits a machine-readable ``BENCH_<name>.json`` — the
start of the repo's perf trajectory (CI uploads them as artifacts):

* standalone ``main()`` runs call :func:`write_bench_json` directly with
  their throughput / latency-percentile / config numbers;
* pytest runs call :func:`record_metrics` from fixtures (the paper-table
  benches record their reproduced rows), and the terminal-summary hook
  writes one JSON per bench module, folding in any pytest-benchmark
  timings collected for that module.

Output lands in the current working directory, or ``$BENCH_OUT_DIR``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List

RENDERED_TABLES: List[str] = []


def _cpu_count() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1

#: bench name -> metrics payload accumulated during a pytest run
RECORDED_METRICS: Dict[str, dict] = {}

#: bench names whose modules were collected this session (each gets a JSON)
COLLECTED_BENCHES: List[str] = []

#: bump when the JSON layout changes incompatibly
SCHEMA_VERSION = 1


def record_table(text: str) -> None:
    """Register a rendered experiment table for the end-of-run summary."""
    RENDERED_TABLES.append(text)


def _jsonable(obj):
    """Recursively coerce numpy scalars/arrays (and mappings) to plain JSON."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    for attr in ("item",):  # numpy scalars and 0-d arrays
        if hasattr(obj, attr) and not isinstance(obj, (str, bytes)):
            try:
                return obj.item()
            except (AttributeError, ValueError):
                break
    if hasattr(obj, "tolist"):
        return obj.tolist()
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return str(obj)


def write_bench_json(name: str, payload: dict, out_dir=None) -> Path:
    """Write ``BENCH_<name>.json`` with the given metrics; returns the path.

    ``payload`` is free-form per bench (throughput, p50/p99 latency,
    config, reproduced table rows, ...); a ``bench``/``schema``/
    ``unix_time``/``cpu_count`` envelope is added here so every file is
    self-describing — ``cpu_count`` (affinity-aware) lets trajectory plots
    separate perf regressions from machine changes.
    """
    directory = Path(out_dir or os.environ.get("BENCH_OUT_DIR", "."))
    directory.mkdir(parents=True, exist_ok=True)
    doc = {
        "bench": name,
        "schema": SCHEMA_VERSION,
        "unix_time": round(time.time(), 3),
        "cpu_count": _cpu_count(),
    }
    doc.update(_jsonable(payload))
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def record_metrics(name: str, **payload) -> None:
    """Accumulate metrics for one bench during a pytest run.

    The terminal-summary hook merges every call for ``name`` into a single
    ``BENCH_<name>.json`` at the end of the session.
    """
    RECORDED_METRICS.setdefault(name, {}).update(payload)


def _bench_name(path: str) -> str:
    """``.../bench_table1.py`` -> ``table1`` (the BENCH_<name> key)."""
    stem = Path(path).stem
    return stem[len("bench_"):] if stem.startswith("bench_") else stem


def pytest_collection_modifyitems(items):  # noqa: D103
    for item in items:
        name = _bench_name(str(item.fspath))
        if name not in COLLECTED_BENCHES:
            COLLECTED_BENCHES.append(name)


def _benchmark_timings(config) -> Dict[str, list]:
    """pytest-benchmark stats grouped by bench name (empty when disabled)."""
    session = getattr(config, "_benchmarksession", None)
    grouped: Dict[str, list] = {}
    for bench in getattr(session, "benchmarks", []) or []:
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue
        # pytest-benchmark exposes the numbers on bench.stats.stats in some
        # versions and directly on bench.stats in others
        inner = getattr(stats, "stats", stats)
        grouped.setdefault(_bench_name(bench.fullname.split("::")[0]), []).append(
            {
                "test": bench.name,
                "mean_s": getattr(inner, "mean", float("nan")),
                "stddev_s": getattr(inner, "stddev", float("nan")),
                "rounds": getattr(inner, "rounds", getattr(stats, "rounds", 0)),
            }
        )
    return grouped


def pytest_terminal_summary(terminalreporter, exitstatus, config):  # noqa: D103
    timings = _benchmark_timings(config)
    for name in COLLECTED_BENCHES:
        payload = dict(RECORDED_METRICS.get(name, {}))
        if name in timings:
            payload["timings"] = timings[name]
        if payload:  # deselected/skipped runs must not clobber real artifacts
            write_bench_json(name, payload)
    if not RENDERED_TABLES:
        return
    terminalreporter.write_sep("=", "reproduced paper tables")
    for text in RENDERED_TABLES:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
