"""Benchmark-suite plumbing.

Each bench module renders its paper-vs-measured table; we collect the
rendered text here and print everything in the terminal summary so
``pytest benchmarks/ --benchmark-only`` shows the reproduced tables even
with output capture on.
"""

from __future__ import annotations

from typing import List

RENDERED_TABLES: List[str] = []


def record_table(text: str) -> None:
    """Register a rendered experiment table for the end-of-run summary."""
    RENDERED_TABLES.append(text)


def pytest_terminal_summary(terminalreporter, exitstatus, config):  # noqa: D103
    if not RENDERED_TABLES:
        return
    terminalreporter.write_sep("=", "reproduced paper tables")
    for text in RENDERED_TABLES:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
