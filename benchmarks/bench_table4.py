"""Table 4 bench: the headline ST-HybridNet comparison.

Asserts the paper's main claims analytically (98.89 % fewer muls, ~12 %
fewer adds, smaller model) and behaviourally (accuracy parity at CI scale),
then benchmarks ST-HybridNet inference.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import record_metrics, record_table
from repro.autodiff.tensor import Tensor, no_grad
from repro.core.hybrid.config import HybridConfig
from repro.core.hybrid.strassenified import STHybridNet
from repro.experiments import table4
from repro.experiments.common import get_dataset, trained
from repro.models.ds_cnn import DSCNN
from repro.models.st_ds_cnn import STDSCNN


@pytest.fixture(scope="module")
def result():
    res = table4.run("ci")
    record_table(res.table())
    record_metrics(
        "table4",
        experiment=res.experiment,
        title=res.title,
        config={"scale": "ci"},
        rows=res.rows,
        notes=res.notes,
    )
    return res


def test_benchmark_table4_headline_claims():
    """The abstract's numbers from our cost model (paper scale).

    98.89 % fewer multiplications, ~12 % fewer additions, fewer total ops
    than DS-CNN; fewer additions than ST-DS-CNN.
    """
    ds = DSCNN().cost_report()
    st_ds = STDSCNN(r_fraction=0.75).cost_report()
    st_hybrid = STHybridNet().cost_report()

    mult_reduction = 1.0 - st_hybrid.ops.muls / ds.ops.macs
    assert mult_reduction > 0.985, f"muls reduction {mult_reduction:.4f}"
    assert st_hybrid.ops.ops < ds.ops.ops, "total ops must beat DS-CNN"
    assert st_hybrid.ops.adds < st_ds.ops.adds, "adds must beat ST-DS-CNN"
    assert st_hybrid.ops.ops < st_ds.ops.ops < 2 * st_hybrid.ops.ops + ds.ops.ops


def test_benchmark_table4_model_size_ordering():
    """ST-HybridNet < DS-CNN(8b) < HybridNet(fp32) in bytes."""
    from repro.core.hybrid.network import HybridNet

    st = STHybridNet().cost_report().model_kb
    ds = DSCNN().cost_report().model_kb
    hybrid = HybridNet().cost_report().model_kb
    assert st < ds < hybrid


def test_benchmark_table4_accuracy_parity(result):
    """ST-HybridNet (either KD setting) within 6 pts of DS-CNN at CI scale.

    The paper reports near-parity after 3x135 epochs; our 13-epoch CI
    schedule under-trains the ternary phases, so the margin is wider.
    """
    rows = {row["network"]: float(row["acc%"]) for row in result.rows}
    best_st = max(
        rows["ST-HybridNet (without KD)"], rows["ST-HybridNet (with KD)"]
    )
    assert best_st >= rows["DS-CNN"] - 6.0


def test_benchmark_table4_inference(benchmark, result):
    """Throughput of the trained ST-HybridNet on a 32-clip batch."""
    model = trained(
        "st-hybrid", lambda: STHybridNet(HybridConfig(width=24), rng=0), scale="ci"
    ).model
    features = get_dataset("ci").features("test")[:32]
    model.eval()

    def infer():
        with no_grad():
            return model(Tensor(features)).data

    logits = benchmark(infer)
    assert logits.shape == (32, 12)
    assert np.isfinite(logits).all()
