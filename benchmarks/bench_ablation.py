"""Ablation bench: the addition-budget extension (paper §6 future work).

Sweeps a per-row nonzero budget on the ternary W_b transforms of
ST-HybridNet's conv layers and asserts the designed trade-off: tighter
budgets monotonically reduce deployed additions.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import record_metrics, record_table
from repro.autodiff.tensor import Tensor, no_grad
from repro.experiments import addition_budget
from repro.experiments.common import get_dataset, trained


@pytest.fixture(scope="module")
def result():
    res = addition_budget.run("ci")
    record_table(res.table())
    record_metrics(
        "ablation",
        experiment=res.experiment,
        title=res.title,
        config={"scale": "ci"},
        rows=res.rows,
        notes=res.notes,
    )
    return res


def test_benchmark_budget_reduces_adds(result):
    """W_b nonzeros (deployed additions) shrink monotonically with budget."""
    nonzeros = [int(row["wb_nonzeros"]) for row in result.rows]
    assert nonzeros == sorted(nonzeros, reverse=True)
    assert nonzeros[-1] < 0.7 * nonzeros[0]


def test_benchmark_budget_accuracy_cost_bounded(result):
    """A 0.5x fan-in budget costs only a few accuracy points at CI scale."""
    accs = {row["wb_budget"]: float(row["acc%"]) for row in result.rows}
    assert accs["0.5x fan-in"] >= accs["dense"] - 12.0


def test_benchmark_budgeted_inference(benchmark, result):
    """Throughput of the 0.25x-budget ST-HybridNet on a 32-clip batch."""
    model = trained("st-hybrid-budget-0.25x fan-in", lambda: None, scale="ci").model
    features = get_dataset("ci").features("test")[:32]
    model.eval()

    def infer():
        with no_grad():
            return model(Tensor(features)).data

    logits = benchmark(infer)
    assert logits.shape == (32, 12)
    assert np.isfinite(logits).all()
