"""Figure 1 bench: the hybrid architecture's evaluation semantics.

Regenerates the architecture walk and verifies the branch-free tree
evaluation the paper highlights for SIMD friendliness, then benchmarks the
tree head alone (the compute-efficient classifier).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import record_metrics, record_table
from repro.autodiff.tensor import Tensor, no_grad
from repro.core.bonsai.tree import BonsaiTree
from repro.experiments import figure1


@pytest.fixture(scope="module")
def result():
    res = figure1.run("ci")
    record_table(res.table())
    record_metrics(
        "figure1",
        experiment=res.experiment,
        title=res.title,
        config={"scale": "ci"},
        rows=res.rows,
        notes=res.notes,
    )
    return res


def test_benchmark_figure1_stage_walk(result):
    """The per-stage walk covers input → conv ×3 → pool → tree."""
    stages = [row["stage"] for row in result.rows]
    assert stages[0] == "MFCC input"
    assert "Bonsai tree" in stages[-1]
    total_ops = sum(int(str(row["ops"]).replace(",", "")) for row in result.rows)
    assert abs(total_ops - 1.54e6) / 1.54e6 < 0.02  # Table 3's 1.5M


def test_benchmark_figure1_branch_free(result):
    """All nodes evaluated; exactly depth+1 carry weight (from the notes)."""
    note = result.notes[0]
    assert "all 7 node scores" in note
    assert "3 nodes/sample" in note


def test_benchmark_figure1_tree_inference(benchmark, result):
    """Throughput of a depth-2 Bonsai head on 64-dim features (batch 256)."""
    tree = BonsaiTree(input_dim=64, num_labels=12, depth=2, rng=0)
    tree.eval()
    features = Tensor(np.random.default_rng(0).standard_normal((256, 64)).astype(np.float32))

    def infer():
        with no_grad():
            return tree(features).data

    scores = benchmark(infer)
    assert scores.shape == (256, 12)
