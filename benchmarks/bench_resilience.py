"""Resilience benchmark: a seeded chaos scenario retries must fully mask.

Not a paper table — this guards the fault-masking layer
(:mod:`repro.serving.resilience` + :mod:`repro.serving.chaos`) end to end.
One deterministic :class:`~repro.serving.chaos.FaultPlan` runs against a
4-worker cluster serving two models: ``hot`` (replicated across every
worker, the latency-sensitive traffic) and ``flaky`` (sticky on one
worker, whose scripted sleep+crash *and* poisoned re-decode turn that
worker into a crash loop).  The identical scenario runs three ways —
fault-free, chaos with the resilience stack, chaos without retries — and
the gates are:

* **success**: >= :data:`SUCCESS_FLOOR` of requests succeed under chaos
  with retries, and *strictly more* than the same scenario without them
  (the no-retry run must actually lose requests — the faults are real);
* **bitwise**: every successful response in every run equals the
  :class:`~repro.serving.packed.PackedModel` reference — chaos delays and
  kills, it never perturbs results;
* **bounded p99**: the hot model's p99 under chaos stays within
  :data:`P99_INFLATION` x the fault-free p99 (+ a fixed allowance for the
  retry backoff floor);
* **isolation**: zero HIGH-priority sheds, zero slab-lease leaks after
  shutdown (``leased == 0``, ``acquired == released``);
* **visibility**: the crash-looping worker shows up in telemetry — its
  circuit breaker opened and the restart backoff held at least one
  respawn with a crash streak >= 2.

Runs standalone (``python benchmarks/bench_resilience.py [--quick]``) and
as pytest assertions guarding the floors in CI (skipped below 4 CPUs —
the scenario needs real parallel workers for its latency gate to mean
anything).
"""

from __future__ import annotations

import argparse
import os
import time
from concurrent.futures import wait
from typing import Dict, List, Tuple

import numpy as np
import pytest

from conftest import record_metrics, write_bench_json
from repro.core.hybrid import HybridConfig, STHybridNet
from repro.core.strassen import freeze_all
from repro.deploy import build_image
from repro.deploy.image import ModelImage
from repro.serving import (
    BreakerPolicy,
    ChaosHarness,
    ClusterRouter,
    FaultPlan,
    MicroBatchConfig,
    PackedModel,
    Priority,
    PriorityPolicy,
    RestartBackoffPolicy,
    RetryPolicy,
    ScriptStep,
    WorkerScript,
)

WORKERS = 4
SUCCESS_FLOOR = 0.999
P99_INFLATION = 10.0  # chaos p99 <= this x fault-free p99 (+ fixed allowance)
P99_ALLOWANCE_MS = 500.0  # covers the retry backoff floor on small baselines


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def hot_image(width: int = 8, rng: int = 0) -> ModelImage:
    """One frozen ST-Hybrid image."""
    model = STHybridNet(HybridConfig(width=width), rng=rng)
    freeze_all(model)
    model.eval()
    return build_image(model)


def _crash_loop_plan(victim: int, crash_tick: int) -> FaultPlan:
    """Sleep-then-crash the flaky model's worker at ``crash_tick``.

    The sleep stalls the worker so the crash control frame — and every
    request submitted after it — queues behind in-flight work; when the
    worker dies, those queued requests die with it (the deterministic
    in-flight-kill recipe).  The poisoned re-decode armed by the run turns
    the single crash into a crash *loop*.
    """
    return FaultPlan(
        seed=7,
        scripts=(
            WorkerScript(
                worker_id=victim,
                steps=(
                    ScriptStep(at=crash_tick, action="sleep", seconds=0.3),
                    ScriptStep(at=crash_tick, action="crash"),
                ),
            ),
        ),
    )


def run_scenario(
    images: Tuple[ModelImage, ModelImage],
    *,
    chaos: bool,
    retries: bool,
    ticks: int = 48,
    hot_burst: int = 8,
    flaky_burst: int = 2,
) -> Dict[str, object]:
    """One tick-driven traffic run; returns its metrics.

    Every tick submits a ``hot`` burst (replicated, NORMAL) plus one HIGH
    single request, and every 4th tick a small ``flaky`` burst (sticky on
    the victim worker).  With ``chaos=True`` the fault plan sleeps+crashes
    the victim a quarter of the way in and poisons its next two re-decodes
    of the flaky model, so the worker crash-loops under restart backoff
    while retries (when enabled) steer the dead requests to recovery.
    """
    image_hot, image_flaky = images
    rng = np.random.default_rng(1)
    xs = [rng.standard_normal((49, 10)).astype(np.float32) for _ in range(16)]
    want_hot = PackedModel(image_hot)(np.stack(xs))
    want_flaky = PackedModel(image_flaky)(np.stack(xs))
    router = ClusterRouter(
        workers=WORKERS,
        policy=PriorityPolicy(max_pending=100_000),
        config=MicroBatchConfig(max_batch_size=16, max_delay_ms=1.0),
        retry=RetryPolicy(
            max_attempts=8,
            base_backoff_s=0.3,
            multiplier=2.0,
            max_backoff_s=2.0,
            jitter=0.1,
            seed=7,
            budget_fraction=0.5,
            budget_burst=128,
        )
        if retries
        else None,
        breakers=BreakerPolicy(failure_threshold=3, reset_timeout_s=0.5),
        restart_backoff=RestartBackoffPolicy(
            base_s=0.5, multiplier=2.0, max_s=2.0,
            stable_after_s=60.0, free_restarts=0,
        ),
    )
    router.register("hot", image_hot, placement="replicated")
    router.register("flaky", image_flaky)  # sticky: one replica to kill
    crash_tick = max(2, ticks // 4)
    #: (model, expected_row_index, future) for every submitted request
    submitted: List[Tuple[str, int, object]] = []
    hot_latencies: List[float] = []
    with router:
        router.predict(xs[0], model="hot")
        router.predict(xs[0], model="flaky")
        (victim,) = router.placements()["flaky@v1"]
        harness = None
        if chaos:
            # the scripted crash plus two poisoned re-decodes = a worker
            # that dies three times in a row before it heals
            router.pool.inject_crash_on_load(victim, "flaky@v1", times=2)
            harness = ChaosHarness(router, _crash_loop_plan(victim, crash_tick))

        def note_hot_latency(t0: float):
            def _record(future) -> None:
                if not future.cancelled() and future.exception() is None:
                    hot_latencies.append(time.perf_counter() - t0)

            return _record

        for t in range(1, ticks + 1):
            idx = t % len(xs)
            t0 = time.perf_counter()
            for i, future in enumerate(
                router.submit_many([xs[(idx + i) % len(xs)] for i in range(hot_burst)],
                                   model="hot")
            ):
                future.add_done_callback(note_hot_latency(t0))
                submitted.append(("hot", (idx + i) % len(xs), future))
            high = router.submit(xs[idx], model="hot", priority=Priority.HIGH)
            high.add_done_callback(note_hot_latency(t0))
            submitted.append(("hot", idx, high))
            if t % 4 == 0:
                for i in range(flaky_burst):
                    submitted.append(
                        (
                            "flaky",
                            (idx + i) % len(xs),
                            router.submit(xs[(idx + i) % len(xs)], model="flaky"),
                        )
                    )
            if harness is not None:
                harness.tick()
            time.sleep(0.01)  # pace the ticks so faults land mid-traffic
        failures: List[str] = []
        mismatches = 0
        wait([future for _, _, future in submitted], timeout=180.0)
        for model, idx, future in submitted:
            try:
                row = future.result(timeout=60.0)
            except Exception as exc:  # noqa: BLE001 — every failure kind counts
                failures.append(f"{model}: {type(exc).__name__}")
                continue
            want = want_hot if model == "hot" else want_flaky
            if not np.array_equal(row, want[idx]):
                mismatches += 1
        if harness is not None:
            harness.quiesce()
        stats = router.snapshot()
        restart = router.pool.restart_snapshot()
        resilience = stats.resilience.as_tree()
        shed_high = stats.shed_by_priority[Priority.HIGH]
    transport = router.pool.transport_snapshot()
    total = len(submitted)
    p99_ms = (
        float(np.percentile(hot_latencies, 99)) * 1e3 if hot_latencies else float("nan")
    )
    return {
        "total": total,
        "failures": len(failures),
        "failure_kinds": sorted(set(failures)),
        "mismatches": mismatches,
        "success_rate": (total - len(failures)) / total,
        "hot_p99_ms": p99_ms,
        "shed_high": shed_high,
        "retries_attempted": resilience["retries_attempted"],
        "retries_succeeded": resilience["retries_succeeded"],
        "retries_exhausted": resilience["retries_exhausted"],
        "breaker_opens": sum(
            int(row["opens"]) for row in resilience["breakers"].values()
        ),
        "delayed_restarts": restart["delayed_restarts"],
        "max_crash_streak": max(
            (int(row["streak"]) for row in restart["workers"].values()), default=0
        ),
        "leased": transport.get("leased", 0),
        "slab_leak": transport.get("acquired", 0) - transport.get("released", 0),
    }


def run_all(quick: bool = False) -> Dict[str, Dict[str, object]]:
    """Fault-free baseline, chaos+retries, chaos-without — same seeds."""
    ticks = 24 if quick else 48
    images = (hot_image(rng=0), hot_image(rng=1))
    return {
        "baseline": run_scenario(images, chaos=False, retries=True, ticks=ticks),
        "with_retries": run_scenario(images, chaos=True, retries=True, ticks=ticks),
        "without_retries": run_scenario(images, chaos=True, retries=False, ticks=ticks),
    }


def check_gates(runs: Dict[str, Dict[str, object]]) -> None:
    """Assert every resilience floor on a completed three-run comparison."""
    baseline, masked, bare = (
        runs["baseline"], runs["with_retries"], runs["without_retries"],
    )
    for name, run in runs.items():
        assert run["mismatches"] == 0, (
            f"{name}: {run['mismatches']} responses not bitwise-identical"
        )
        assert run["leased"] == 0 and run["slab_leak"] == 0, (
            f"{name}: slab leases leaked ({run['leased']} live, "
            f"{run['slab_leak']} unreturned)"
        )
    assert baseline["failures"] == 0, (
        f"fault-free baseline lost requests: {baseline['failure_kinds']}"
    )
    assert masked["success_rate"] >= SUCCESS_FLOOR, (
        f"with retries only {masked['success_rate']:.4%} succeeded "
        f"({masked['failure_kinds']}; floor {SUCCESS_FLOOR:.1%})"
    )
    assert bare["failures"] >= 1, (
        "the no-retry run lost nothing — the fault plan injected no real faults"
    )
    assert bare["success_rate"] < masked["success_rate"], (
        f"retries did not improve success: {bare['success_rate']:.4%} without vs "
        f"{masked['success_rate']:.4%} with"
    )
    assert masked["shed_high"] == 0, f"{masked['shed_high']} HIGH shed(s) under chaos"
    bound_ms = max(
        P99_INFLATION * baseline["hot_p99_ms"],
        baseline["hot_p99_ms"] + P99_ALLOWANCE_MS,
    )
    assert masked["hot_p99_ms"] <= bound_ms, (
        f"hot p99 inflated beyond bound: {masked['hot_p99_ms']:.1f} ms under chaos "
        f"vs {baseline['hot_p99_ms']:.1f} ms fault-free (bound {bound_ms:.1f} ms)"
    )
    assert masked["retries_attempted"] > 0 and masked["retries_succeeded"] > 0
    assert masked["breaker_opens"] >= 1, "crash loop never opened a breaker"
    assert masked["delayed_restarts"] >= 1, "restart backoff never held a respawn"
    assert masked["max_crash_streak"] >= 2, "crash streak not visible in telemetry"


# -- pytest entry points ----------------------------------------------------- #


@pytest.mark.skipif(
    available_cpus() < WORKERS,
    reason=f"resilience gate needs >= {WORKERS} CPUs (have {available_cpus()})",
)
def test_retries_mask_the_chaos_scenario() -> None:
    """Under the seeded crash-loop plan, retries lift success to
    >= 99.9% (strictly above the no-retry run), every response stays
    bitwise-identical, HIGH is never shed, nothing leaks, and the flapping
    worker is visibly quarantined (breaker opens + delayed respawns)."""
    runs = run_all(quick=True)
    record_metrics("resilience", **runs)
    check_gates(runs)


# -- standalone report ------------------------------------------------------- #


def main() -> None:
    """Run the three-way comparison and enforce every floor."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="fewer ticks (CI smoke)")
    args = parser.parse_args()

    cpus = available_cpus()
    print(
        f"seeded crash-loop chaos on a {WORKERS}-worker cluster; "
        f"{cpus} CPU(s) available"
    )
    if cpus < WORKERS:
        print(f"note: < {WORKERS} CPUs — numbers are indicative, gates still run")
    runs = run_all(quick=args.quick)
    for name in ("baseline", "with_retries", "without_retries"):
        run = runs[name]
        print(f"\n{name.replace('_', ' ')}:")
        print(f"  requests           {run['total']:6d}")
        print(f"  success            {run['success_rate']:8.4%}")
        print(f"  hot p99            {run['hot_p99_ms']:8.1f} ms")
        print(f"  retries            {run['retries_attempted']:6d} attempted, "
              f"{run['retries_succeeded']} succeeded")
        print(f"  breaker opens      {run['breaker_opens']:6d}")
        print(f"  delayed respawns   {run['delayed_restarts']:6d} "
              f"(max streak {run['max_crash_streak']})")
    check_gates(runs)
    print(
        f"\nPASS: chaos success {runs['with_retries']['success_rate']:.4%} with "
        f"retries (floor {SUCCESS_FLOOR:.1%}) vs "
        f"{runs['without_retries']['success_rate']:.4%} without; bitwise-identical "
        f"throughout; zero HIGH sheds; zero slab leaks"
    )
    write_bench_json(
        "resilience",
        {
            **runs,
            "success_floor": SUCCESS_FLOOR,
            "p99_inflation_bound": P99_INFLATION,
            "workers": WORKERS,
        },
    )


if __name__ == "__main__":
    main()
