"""Table 1 bench: ST-DS-CNN hidden-width sweep.

Regenerates the table (training at CI scale, analytic costs at paper scale),
asserts its qualitative shape — strassenifying a DS-dominated network slashes
multiplications but *grows total ops* past the uncompressed baseline — and
benchmarks ST-DS-CNN inference.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import record_metrics, record_table
from repro.autodiff.tensor import Tensor, no_grad
from repro.experiments import table1
from repro.experiments.common import get_dataset, trained
from repro.models.ds_cnn import DSCNN
from repro.models.st_ds_cnn import STDSCNN


@pytest.fixture(scope="module")
def result():
    res = table1.run("ci")
    record_table(res.table())
    record_metrics(
        "table1",
        experiment=res.experiment,
        title=res.title,
        config={"scale": "ci"},
        rows=res.rows,
        notes=res.notes,
    )
    return res


def test_benchmark_table1_shape(result):
    """Muls collapse ≥95 %; ops at r≥0.75 exceed the DS-CNN baseline."""
    ds = DSCNN().cost_report()
    for r_fraction in (0.75, 1.0, 2.0):
        st = STDSCNN(r_fraction=r_fraction).cost_report()
        assert st.ops.muls < 0.05 * ds.ops.macs, "muls should nearly vanish"
        assert st.ops.ops > ds.ops.ops, "additions overhead should exceed baseline ops"
    # monotone in r
    ops = [STDSCNN(r_fraction=r).cost_report().ops.ops for r in table1.R_SWEEP]
    assert ops == sorted(ops)
    sizes = [STDSCNN(r_fraction=r).cost_report().model_kb for r in table1.R_SWEEP]
    assert sizes == sorted(sizes)
    assert len(result.rows) == 5


def test_benchmark_table1_accuracy_recovers(result):
    """Wider strassen layers recover accuracy (r=2 ≥ r=0.5, CI-scale)."""
    accs = {row["network"]: float(row["acc%"]) for row in result.rows}
    assert accs["ST-DS-CNN (r=2c_out)"] >= accs["ST-DS-CNN (r=0.5c_out)"] - 3.0


def test_benchmark_table1_inference(benchmark, result):
    """Throughput of the trained r=0.75 ST-DS-CNN on a 32-clip batch."""
    model = trained(
        "st-ds-cnn-r0.75", lambda: STDSCNN(width=24, r_fraction=0.75, rng=0), scale="ci"
    ).model
    features = get_dataset("ci").features("test")[:32]
    model.eval()

    def infer():
        with no_grad():
            return model(Tensor(features)).data

    logits = benchmark(infer)
    assert logits.shape == (32, 12)
    assert np.isfinite(logits).all()
