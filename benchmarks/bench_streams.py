"""Sessionful streaming benchmarks: session scale, dispatch speedup, identity.

Not a paper table — this guards the sessionful streaming layer
(:mod:`repro.serving.streams` + :mod:`repro.serving.loadgen`) on three axes:

* **scale**: >= 256 concurrent keyword-spotting sessions replayed through
  one manager must all resolve every analysis window (no gaps, no
  failures), with p99 window-to-decision latency reported in the JSON
  envelope;
* **dispatch**: coalescing windows *across* sessions into ``submit_many``
  cluster bursts must sustain >= 2x the aggregate window throughput of
  dispatching each window as its own request.  Like the other cluster
  benches the gate needs real parallel hardware, so it is skipped below
  4 CPUs;
* **identity**: per-session posteriors must be bitwise identical to a solo
  :class:`~repro.evaluation.streaming.StreamingDetector` run over the
  same waveform.

Runs standalone (``python benchmarks/bench_streams.py [--quick]``) and as
pytest assertions guarding the floors in CI.  Emits ``BENCH_streams.json``.
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, List

import numpy as np
import pytest

from bench_cluster import available_cpus
from conftest import write_bench_json, record_metrics
from repro.core.hybrid import HybridConfig, STHybridNet
from repro.core.strassen import freeze_all
from repro.deploy import build_image
from repro.deploy.image import ModelImage
from repro.evaluation import StreamingConfig, StreamingDetector
from repro.serving import (
    BatchingEngine,
    ClusterRouter,
    MicroBatchConfig,
    PackedModel,
    PriorityPolicy,
    SlabConfig,
    StreamSession,
    StreamSessionManager,
)
from repro.serving.loadgen import build_arrivals, replay

WORKERS = 4
SESSIONS_FLOOR = 256
SPEEDUP_FLOOR = 2.0
MAX_BURST = 64
#: short synthesised streams keep 256-session replays affordable
GAP_SECONDS = (0.3, 0.6)


def demo_image(width: int = 8) -> ModelImage:
    """One frozen ST-Hybrid image taking standard 49x10 MFCC windows."""
    model = STHybridNet(HybridConfig(width=width), rng=0)
    freeze_all(model)
    model.eval()
    return build_image(model)


def check_identity(image: ModelImage, arrivals, manager: StreamSessionManager) -> int:
    """Assert per-session posteriors == solo detector, bitwise; returns count.

    Arrivals cycle a pool of distinct waveforms, so checking one session
    per distinct waveform covers every stream the replay contained.
    """
    packed = PackedModel(image)
    checked = set()
    for arrival in arrivals:
        key = arrival.waveform.shape[0], arrival.scenario
        if key in checked:
            continue
        checked.add(key)
        solo = StreamingDetector(packed, manager.config)
        ref_times, ref_probs = solo.posteriors(arrival.waveform)
        times, probs = manager.session(f"load-{arrival.index}").posteriors()
        np.testing.assert_array_equal(times, ref_times)
        np.testing.assert_array_equal(probs, ref_probs)
    return len(checked)


def measure_sessions(image: ModelImage, num_sessions: int, pool_size: int = 6) -> Dict[str, float]:
    """Replay ``num_sessions`` sessions through an engine-backed manager.

    Single-process (runs on any CPU count): the gate here is session scale
    and zero lost windows, not parallel speedup.
    """
    engine = BatchingEngine(
        PackedModel(image), MicroBatchConfig(max_batch_size=MAX_BURST, max_delay_ms=2.0)
    )
    manager = StreamSessionManager(engine=engine, max_burst=MAX_BURST)
    arrivals = build_arrivals(
        num_sessions,
        keywords=("yes",),
        pool_size=pool_size,
        gap_seconds=GAP_SECONDS,
        seed=0,
    )
    report = replay(manager, arrivals, pump_every=8)
    assert report.sessions == num_sessions
    assert report.windows_failed == 0 and report.gaps == 0, "windows were lost"
    assert report.stats.sessions_done == num_sessions, "a session never drained"
    identity_checked = check_identity(image, arrivals, manager)
    return {
        "sessions": num_sessions,
        "windows": report.windows_served,
        "wall_s": report.wall_s,
        "sessions_per_s": report.sessions_per_s,
        "windows_per_s": report.windows_per_s,
        "p50_window_to_decision_ms": report.p50_ms,
        "p99_window_to_decision_ms": report.p99_ms,
        "identity_streams_checked": identity_checked,
    }


def _cut_windows(arrivals, config: StreamingConfig) -> List[List[np.ndarray]]:
    """Per-arrival analysis windows, cut exactly as a session would."""
    per_session: List[List[np.ndarray]] = []
    for arrival in arrivals:
        session = StreamSession(f"cut-{arrival.index}", config, None, None)
        session.feed(arrival.waveform)
        per_session.append([features for _, features, _ in session.ready])
    return per_session


def measure_dispatch(
    image: ModelImage, num_sessions: int, *, batched: bool, repeats: int = 2
) -> Dict[str, float]:
    """Aggregate windows/s for one dispatch style over a 4-worker cluster.

    Windows are pre-cut so both styles measure *dispatch*, not MFCC cost.
    ``batched=True`` runs the session manager — windows from all sessions
    coalesce into ``submit_many`` bursts (one control frame per burst).
    ``batched=False`` is the counterfactual the manager replaces — the
    pre-manager per-stream loop: every session dispatches one window as its
    own request and waits for the result before its next window (sessions
    interleaved round-robin).  Each round-trip serialises behind the
    worker engine's coalescing delay, which is exactly why a session layer
    that keeps windows in flight across sessions exists.
    """
    config = StreamingConfig()
    arrivals = build_arrivals(
        num_sessions, keywords=("yes",), pool_size=4, gap_seconds=GAP_SECONDS, seed=1
    )
    per_session = _cut_windows(arrivals, config)
    total = sum(len(windows) for windows in per_session)
    router = ClusterRouter(
        workers=WORKERS,
        transport=SlabConfig(slab_bytes=4096, slabs=max(1024, total)),
        policy=PriorityPolicy(max_pending=100_000, normal_watermark=1.0, low_watermark=1.0),
        config=MicroBatchConfig(max_batch_size=MAX_BURST, max_delay_ms=2.0),
    )
    router.register("kws", image)
    best = float("inf")
    with router:
        router.predict(per_session[0][0], model="kws")  # spawn, decode, place
        for _ in range(repeats):
            if batched:
                manager = StreamSessionManager(
                    router, config=config, model="kws", max_burst=MAX_BURST
                )
                start = time.monotonic()
                for i, windows in enumerate(per_session):
                    session = manager.open(session_id=f"d{i}")
                    session.feed_features(windows)
                    session.close()
                    if (i + 1) % 8 == 0:
                        manager.pump()
                        manager.collect(wait=False)
                stats = manager.drain()
                elapsed = time.monotonic() - start
                assert stats.windows_served == total, "windows were lost"
            else:
                start = time.monotonic()
                served = 0
                cursors = [list(windows) for windows in per_session]
                while any(cursors):  # one window per session per sweep
                    for windows in cursors:
                        if windows:
                            router.submit(windows.pop(0), model="kws").result(timeout=300.0)
                            served += 1
                elapsed = time.monotonic() - start
                assert served == total
            best = min(best, elapsed)
    return {
        "windows": total,
        "best_wall_s": best,
        "windows_per_s": total / best,
    }


# -- pytest entry points ----------------------------------------------------- #


def test_session_scale_floor_and_identity() -> None:
    """>= 256 concurrent sessions all drain with zero lost windows, and
    per-session posteriors are bitwise identical to a solo detector."""
    image = demo_image()
    result = measure_sessions(image, SESSIONS_FLOOR)
    assert result["sessions"] >= SESSIONS_FLOOR
    assert result["identity_streams_checked"] > 0
    record_metrics(
        "streams",
        scale=result,
        sessions_floor=SESSIONS_FLOOR,
    )


@pytest.mark.skipif(
    available_cpus() < WORKERS,
    reason=f"dispatch gate needs >= {WORKERS} CPUs (have {available_cpus()})",
)
def test_cross_session_batching_floor() -> None:
    """Cross-session submit_many bursts must give >= 2x aggregate window
    throughput over one-window-at-a-time dispatch on a 4-worker cluster."""
    image = demo_image()
    single = measure_dispatch(image, 48, batched=False)
    batched = measure_dispatch(image, 48, batched=True)
    speedup = batched["windows_per_s"] / single["windows_per_s"]
    record_metrics(
        "streams",
        dispatch={"batched": batched, "single": single, "speedup": speedup},
        speedup_floor=SPEEDUP_FLOOR,
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"cross-session bursts served {batched['windows_per_s']:.0f} windows/s vs "
        f"{single['windows_per_s']:.0f} windows/s one-at-a-time — only "
        f"{speedup:.2f}x (floor {SPEEDUP_FLOOR}x)"
    )


# -- standalone report ------------------------------------------------------- #


def main() -> None:
    """Run all measurements, enforce the floors, emit BENCH_streams.json."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller load (CI smoke)")
    parser.add_argument("--width", type=int, default=8, help="model channel width")
    args = parser.parse_args()
    if args.width < 1:
        parser.error("--width must be >= 1")
    sessions = SESSIONS_FLOOR
    dispatch_sessions = 16 if args.quick else 48
    repeats = 1 if args.quick else 2

    image = demo_image(width=args.width)
    cpus = available_cpus()
    print(
        f"ST-Hybrid width={args.width}, 49x10 MFCC windows; {cpus} CPU(s) available"
    )

    scale = measure_sessions(image, sessions)
    print(
        f"\nscale: {scale['sessions']} sessions / {scale['windows']} windows in "
        f"{scale['wall_s']:.2f} s ({scale['sessions_per_s']:.0f} sessions/s, "
        f"{scale['windows_per_s']:.0f} windows/s)\n"
        f"       p50 {scale['p50_window_to_decision_ms']:.2f} ms  "
        f"p99 {scale['p99_window_to_decision_ms']:.2f} ms window-to-decision; "
        f"{scale['identity_streams_checked']} stream(s) bitwise-identical to solo detector"
    )

    payload = {
        "config": {
            "width": args.width,
            "workers": WORKERS,
            "max_burst": MAX_BURST,
            "cpus": cpus,
            "quick": args.quick,
        },
        "scale": scale,
        "sessions_floor": SESSIONS_FLOOR,
        "speedup_floor": SPEEDUP_FLOOR,
        "floor_enforced": cpus >= WORKERS,
    }

    if cpus >= WORKERS:
        single = measure_dispatch(image, dispatch_sessions, batched=False, repeats=repeats)
        batched = measure_dispatch(image, dispatch_sessions, batched=True, repeats=repeats)
        speedup = batched["windows_per_s"] / single["windows_per_s"]
        payload["dispatch"] = {"batched": batched, "single": single, "speedup": speedup}
        print(
            f"\ndispatch ({dispatch_sessions} sessions, {WORKERS} workers):\n"
            f"  one-at-a-time {single['windows_per_s']:10.0f} windows/s\n"
            f"  cross-session {batched['windows_per_s']:10.0f} windows/s\n"
            f"  speedup       {speedup:10.2f}x  (floor: {SPEEDUP_FLOOR}x)"
        )
        write_bench_json("streams", payload)
        if speedup < SPEEDUP_FLOOR:
            raise SystemExit(
                f"FAIL: cross-session bursts only {speedup:.2f}x (floor {SPEEDUP_FLOOR}x)"
            )
        print(f"\nOK: {speedup:.2f}x >= {SPEEDUP_FLOOR}x with bitwise identity at "
              f"{scale['sessions']} sessions")
    else:
        write_bench_json("streams", payload)
        print(
            f"\nSKIP: {SPEEDUP_FLOOR}x dispatch floor not enforced with {cpus} CPU(s) — "
            f"{WORKERS} workers cannot run in parallel here"
        )


if __name__ == "__main__":
    main()
