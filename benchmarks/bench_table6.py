"""Table 6 bench: post-training quantization of ST-HybridNet.

Asserts the memory-footprint story — the quantized model is less than half
the DS-CNN's size; fully-8-bit activations give the smallest footprint;
16-bit depthwise intermediates inflate it — and benchmarks quantized
inference.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from conftest import record_metrics, record_table
from repro.autodiff.tensor import Tensor, no_grad
from repro.core.hybrid.config import HybridConfig
from repro.core.hybrid.strassenified import STHybridNet
from repro.experiments import table6
from repro.experiments.common import get_dataset, trained
from repro.models.ds_cnn import DSCNN
from repro.quantization.post_training import quantize_st_model


@pytest.fixture(scope="module")
def result():
    res = table6.run("ci")
    record_table(res.table())
    record_metrics(
        "table6",
        experiment=res.experiment,
        title=res.title,
        config={"scale": "ci"},
        rows=res.rows,
        notes=res.notes,
    )
    return res


def test_benchmark_table6_size_reduction():
    """Quantized ST-HybridNet model ≈ half the DS-CNN's (paper: 52.2 %)."""
    ds = DSCNN().cost_report(weight_bits=8, act_bits=8)
    st = STHybridNet().cost_report(a_hat_bits=16, bias_bits=8, act_bits=8)
    reduction = 1.0 - st.model_kb / ds.model_kb
    assert reduction > 0.45, f"model-size reduction {reduction:.2%}"


def test_benchmark_table6_footprint_ordering():
    """fully-8b footprint < DS-CNN footprint < mixed-8/16b footprint."""
    ds = DSCNN().cost_report(weight_bits=8, act_bits=8)
    st8 = STHybridNet().cost_report(a_hat_bits=16, bias_bits=8, act_bits=8)
    st_mixed = STHybridNet().cost_report(
        a_hat_bits=16, bias_bits=8, act_bits=8, dw_intermediate_bits=16
    )
    assert st8.footprint_kb < ds.footprint_kb
    assert st_mixed.footprint_kb > ds.footprint_kb
    # paper's footprint reduction claim: 30.6 % for the fully-8b setting
    reduction = 1.0 - st8.footprint_kb / ds.footprint_kb
    assert 0.2 < reduction < 0.45, f"footprint reduction {reduction:.2%}"


def test_benchmark_table6_quantized_accuracy(result):
    """PTQ costs little accuracy at CI scale (paper: −0.27 % worst case)."""
    rows = {row["network"]: float(row["acc%"]) for row in result.rows}
    st = trained(
        "st-hybrid", lambda: STHybridNet(HybridConfig(width=24), rng=0), scale="ci"
    )
    for name in (
        "ST-HybridNet quantized (fully 8b acts)",
        "ST-HybridNet quantized (mixed 8b/16b acts)",
    ):
        assert rows[name] >= 100 * st.test_accuracy - 5.0


def test_benchmark_table6_inference(benchmark, result):
    """Throughput of the PTQ'd (mixed) ST-HybridNet on a 32-clip batch."""
    dataset = get_dataset("ci")
    base = trained(
        "st-hybrid", lambda: STHybridNet(HybridConfig(width=24), rng=0), scale="ci"
    ).model
    model = copy.deepcopy(base)
    quantize_st_model(model, dataset.features("val")[:32], act_bits=8, dw_hidden_bits=16)
    features = dataset.features("test")[:32]
    model.eval()

    def infer():
        with no_grad():
            return model(Tensor(features)).data

    logits = benchmark(infer)
    assert logits.shape == (32, 12)
    assert np.isfinite(logits).all()
