"""CNN baseline (Table 3: 2.5 M ops, 67.6 KB, 91.6 %).

Follows the cnn-trad-fpool3 lineage used by Zhang et al.: two standard
convolutions followed by a low-rank linear layer and a small FC stack.
Constants are chosen so the analytic costs land on Table 3's row
(≈2.5 M MACs, ≈69 K 8-bit parameters).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.autodiff.tensor import Tensor
from repro.costmodel.layers import conv2d_counts, linear_counts
from repro.costmodel.memory import SizeBreakdown
from repro.costmodel.report import CostReport
from repro.nn import BatchNorm2d, Conv2d, GlobalAvgPool2d, Linear, Module
from repro.utils.rng import SeedLike, new_rng


class CNN(Module):
    """Two-conv KWS baseline."""

    def __init__(
        self,
        num_labels: int = 12,
        conv1_filters: int = 28,
        conv2_filters: int = 30,
        linear_dim: int = 16,
        dnn_dim: int = 128,
        input_shape: Tuple[int, int] = (49, 10),
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        rng = new_rng(rng)
        self.num_labels = num_labels
        self.input_shape = input_shape
        self.conv1_filters = conv1_filters
        self.conv2_filters = conv2_filters
        self.linear_dim = linear_dim
        self.dnn_dim = dnn_dim

        self.conv1 = Conv2d(1, conv1_filters, (10, 4), stride=1, padding=0, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(conv1_filters)
        self.conv2 = Conv2d(
            conv1_filters, conv2_filters, (10, 4), stride=(2, 1), padding=0, bias=False, rng=rng
        )
        self.bn2 = BatchNorm2d(conv2_filters)
        h2, w2 = self._conv_out_hw()
        self.flat_dim = conv2_filters * h2 * w2
        self.linear = Linear(self.flat_dim, linear_dim, rng=rng)
        self.dnn = Linear(linear_dim, dnn_dim, rng=rng)
        self.fc = Linear(dnn_dim, num_labels, rng=rng)

    def _conv_out_hw(self) -> Tuple[int, int]:
        t, f = self.input_shape
        h1, w1 = t - 10 + 1, f - 4 + 1
        return (h1 - 10) // 2 + 1, w1 - 4 + 1

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim == 3:
            x = x.reshape(x.shape[0], 1, x.shape[1], x.shape[2])
        x = self.bn1(self.conv1(x)).relu()
        x = self.bn2(self.conv2(x)).relu()
        x = x.flatten(1)
        x = self.linear(x)
        x = self.dnn(x).relu()
        return self.fc(x)

    def cost_report(self, weight_bits: int = 8, act_bits: int = 8, name: Optional[str] = None) -> CostReport:
        """Analytic inference cost."""
        t, f = self.input_shape
        h1, w1 = t - 10 + 1, f - 4 + 1
        h2, w2 = self._conv_out_hw()
        ops = conv2d_counts(1, self.conv1_filters, (10, 4), (h1, w1))
        ops = ops + conv2d_counts(self.conv1_filters, self.conv2_filters, (10, 4), (h2, w2))
        ops = ops + linear_counts(self.flat_dim, self.linear_dim)
        ops = ops + linear_counts(self.linear_dim, self.dnn_dim)
        ops = ops + linear_counts(self.dnn_dim, self.num_labels)

        size = SizeBreakdown()
        size.add("conv1.w", self.conv1_filters * 40, weight_bits)
        size.add("conv1.b", self.conv1_filters, weight_bits)
        size.add("conv2.w", self.conv2_filters * self.conv1_filters * 40, weight_bits)
        size.add("conv2.b", self.conv2_filters, weight_bits)
        size.add("linear.w", self.flat_dim * self.linear_dim, weight_bits)
        size.add("linear.b", self.linear_dim, weight_bits)
        size.add("dnn.w", self.linear_dim * self.dnn_dim, weight_bits)
        size.add("dnn.b", self.dnn_dim, weight_bits)
        size.add("fc.w", self.dnn_dim * self.num_labels, weight_bits)
        size.add("fc.b", self.num_labels, weight_bits)

        acts = [
            t * f * act_bits / 8.0,
            h1 * w1 * self.conv1_filters * act_bits / 8.0,
            h2 * w2 * self.conv2_filters * act_bits / 8.0,
            self.linear_dim * act_bits / 8.0,
            self.dnn_dim * act_bits / 8.0,
            self.num_labels * act_bits / 8.0,
        ]
        return CostReport(name or "CNN", ops, size, acts)
