"""Model registry: every network of Tables 1–5 by name."""

from __future__ import annotations

from repro.core.hybrid.config import HybridConfig
from repro.core.hybrid.network import HybridNet
from repro.core.hybrid.strassenified import STHybridNet
from repro.models.bonsai_kws import BonsaiKWS
from repro.models.cnn import CNN
from repro.models.dnn import DNN
from repro.models.ds_cnn import DSCNN
from repro.models.rnn_models import CRNN, GRUModel, basic_lstm, projected_lstm
from repro.models.st_ds_cnn import STDSCNN
from repro.nn.module import Module
from repro.utils.registry import Registry

MODELS: Registry[Module] = Registry("model")


@MODELS.register("ds-cnn")
def _ds_cnn(**kwargs) -> DSCNN:
    return DSCNN(**kwargs)


@MODELS.register("st-ds-cnn")
def _st_ds_cnn(**kwargs) -> STDSCNN:
    return STDSCNN(**kwargs)


@MODELS.register("cnn")
def _cnn(**kwargs) -> CNN:
    return CNN(**kwargs)


@MODELS.register("dnn")
def _dnn(**kwargs) -> DNN:
    return DNN(**kwargs)


@MODELS.register("basic-lstm")
def _basic_lstm(**kwargs):
    return basic_lstm(**kwargs)


@MODELS.register("lstm")
def _lstm(**kwargs):
    return projected_lstm(**kwargs)


@MODELS.register("gru")
def _gru(**kwargs) -> GRUModel:
    return GRUModel(**kwargs)


@MODELS.register("crnn")
def _crnn(**kwargs) -> CRNN:
    return CRNN(**kwargs)


@MODELS.register("bonsai")
def _bonsai(**kwargs) -> BonsaiKWS:
    return BonsaiKWS(**kwargs)


@MODELS.register("hybrid")
def _hybrid(config: HybridConfig | None = None, **kwargs) -> HybridNet:
    return HybridNet(config=config, **kwargs)


@MODELS.register("st-hybrid")
def _st_hybrid(config: HybridConfig | None = None, **kwargs) -> STHybridNet:
    return STHybridNet(config=config, **kwargs)


def build_model(name: str, **kwargs) -> Module:
    """Instantiate a registered model by name."""
    return MODELS.get(name)(**kwargs)
