"""Recurrent KWS baselines: Basic LSTM, LSTM (projected), GRU, CRNN.

The paper takes these rows from Zhang et al. (2017) without republishing
hyperparameters, so the constants below are reverse-engineered from Table 3
itself (parameters ≈ model-size bytes at 8 bits; ops ≈ per-step MACs x
steps):

* **Basic LSTM** — H=118 over all 49 frames: 4·118·(10+118) ≈ 60.4 K params,
  x49 ≈ 2.96 M ops (paper: 2.95 M / 60.9 KB).
* **LSTM** (with recurrent projection) — H=188, P=78, frame stride 2
  (25 steps): ≈80.8 K params, ≈2.0 M ops (paper: 1.95 M / 76.8 KB).
* **GRU** — H=154, stride 2: 3·154·(10+154) ≈ 75.8 K params, x25 ≈ 1.89 M
  ops (paper: 1.9 M / 76.3 KB — exact).
* **CRNN** — Conv(48, 10x4, s3x2) → GRU(H=80) over the 17 conv frames →
  FC: ≈1.5 M ops (paper: 1.5 M / 73.7 KB).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.autodiff.tensor import Tensor
from repro.costmodel.counts import OpCounts
from repro.costmodel.layers import conv2d_counts, linear_counts
from repro.costmodel.memory import SizeBreakdown
from repro.costmodel.report import CostReport
from repro.nn import GRU, LSTM, BatchNorm2d, Conv2d, Linear, Module
from repro.utils.rng import SeedLike, new_rng


class LSTMModel(Module):
    """LSTM baseline; ``proj_size=None`` gives the "Basic LSTM" row."""

    def __init__(
        self,
        num_labels: int = 12,
        hidden_size: int = 118,
        proj_size: Optional[int] = None,
        frame_stride: int = 1,
        input_shape: Tuple[int, int] = (49, 10),
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        rng = new_rng(rng)
        self.num_labels = num_labels
        self.hidden_size = hidden_size
        self.proj_size = proj_size
        self.frame_stride = frame_stride
        self.input_shape = input_shape
        self.lstm = LSTM(input_shape[1], hidden_size, proj_size=proj_size, rng=rng)
        self.fc = Linear(proj_size or hidden_size, num_labels, rng=rng)

    @property
    def num_steps(self) -> int:
        """Recurrent steps after frame subsampling."""
        return (self.input_shape[0] + self.frame_stride - 1) // self.frame_stride

    def forward(self, x: Tensor) -> Tensor:
        if self.frame_stride > 1:
            x = x[:, :: self.frame_stride, :]
        return self.fc(self.lstm(x))

    def cost_report(self, weight_bits: int = 8, act_bits: int = 8, name: Optional[str] = None) -> CostReport:
        """Analytic inference cost."""
        h, p, i = self.hidden_size, self.proj_size, self.input_shape[1]
        out_size = p or h
        per_step = 4 * h * (i + out_size) + 4 * h  # gates + biases
        if p:
            per_step += p * h  # recurrent projection
        macs = per_step * self.num_steps
        ops = OpCounts(macs=macs) + linear_counts(out_size, self.num_labels)

        size = SizeBreakdown()
        size.add("lstm.w_ih", 4 * h * i, weight_bits)
        size.add("lstm.w_hh", 4 * h * out_size, weight_bits)
        size.add("lstm.bias", 4 * h, weight_bits)
        if p:
            size.add("lstm.projection", p * h, weight_bits)
        size.add("fc.w", out_size * self.num_labels, weight_bits)
        size.add("fc.b", self.num_labels, weight_bits)

        acts = [
            self.input_shape[0] * i * act_bits / 8.0,
            (out_size + h) * act_bits / 8.0,  # recurrent state
            self.num_labels * act_bits / 8.0,
        ]
        default = "LSTM" if p else "Basic LSTM"
        return CostReport(name or default, ops, size, acts)


def basic_lstm(num_labels: int = 12, rng: SeedLike = None, **kwargs) -> LSTMModel:
    """Table 3 "Basic LSTM" row configuration."""
    kwargs.setdefault("hidden_size", 118)
    return LSTMModel(num_labels=num_labels, proj_size=None, frame_stride=1, rng=rng, **kwargs)


def projected_lstm(num_labels: int = 12, rng: SeedLike = None, **kwargs) -> LSTMModel:
    """Table 3 "LSTM" (projected) row configuration."""
    kwargs.setdefault("hidden_size", 188)
    kwargs.setdefault("proj_size", 78)
    return LSTMModel(num_labels=num_labels, frame_stride=2, rng=rng, **kwargs)


class GRUModel(Module):
    """GRU baseline (Table 3 "GRU" row)."""

    def __init__(
        self,
        num_labels: int = 12,
        hidden_size: int = 154,
        frame_stride: int = 2,
        input_shape: Tuple[int, int] = (49, 10),
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        rng = new_rng(rng)
        self.num_labels = num_labels
        self.hidden_size = hidden_size
        self.frame_stride = frame_stride
        self.input_shape = input_shape
        self.gru = GRU(input_shape[1], hidden_size, rng=rng)
        self.fc = Linear(hidden_size, num_labels, rng=rng)

    @property
    def num_steps(self) -> int:
        """Recurrent steps after frame subsampling."""
        return (self.input_shape[0] + self.frame_stride - 1) // self.frame_stride

    def forward(self, x: Tensor) -> Tensor:
        if self.frame_stride > 1:
            x = x[:, :: self.frame_stride, :]
        return self.fc(self.gru(x))

    def cost_report(self, weight_bits: int = 8, act_bits: int = 8, name: Optional[str] = None) -> CostReport:
        """Analytic inference cost."""
        h, i = self.hidden_size, self.input_shape[1]
        per_step = 3 * h * (i + h) + 3 * h
        ops = OpCounts(macs=per_step * self.num_steps) + linear_counts(h, self.num_labels)
        size = SizeBreakdown()
        size.add("gru.w_ih", 3 * h * i, weight_bits)
        size.add("gru.w_hh", 3 * h * h, weight_bits)
        size.add("gru.bias", 3 * h, weight_bits)
        size.add("fc.w", h * self.num_labels, weight_bits)
        size.add("fc.b", self.num_labels, weight_bits)
        acts = [
            self.input_shape[0] * i * act_bits / 8.0,
            h * act_bits / 8.0,
            self.num_labels * act_bits / 8.0,
        ]
        return CostReport(name or "GRU", ops, size, acts)


class CRNN(Module):
    """Convolutional-recurrent baseline (Table 3 "CRNN" row).

    One strided convolution compresses the spectrogram into 17 frames of
    ``conv_filters x 5`` features, a GRU summarises them, an FC classifies.
    """

    def __init__(
        self,
        num_labels: int = 12,
        conv_filters: int = 48,
        gru_hidden: int = 80,
        input_shape: Tuple[int, int] = (49, 10),
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        rng = new_rng(rng)
        self.num_labels = num_labels
        self.conv_filters = conv_filters
        self.gru_hidden = gru_hidden
        self.input_shape = input_shape
        self.conv1 = Conv2d(
            1, conv_filters, (10, 4), stride=(3, 2), padding=(5, 1), bias=False, rng=rng
        )
        self.bn1 = BatchNorm2d(conv_filters)
        t, f = input_shape
        self.out_t = (t + 2 * 5 - 10) // 3 + 1
        self.out_f = (f + 2 * 1 - 4) // 2 + 1
        self.gru = GRU(conv_filters * self.out_f, gru_hidden, rng=rng)
        self.fc = Linear(gru_hidden, num_labels, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim == 3:
            x = x.reshape(x.shape[0], 1, x.shape[1], x.shape[2])
        x = self.bn1(self.conv1(x)).relu()  # (N, C, T', F')
        n, c, t, f = x.shape
        x = x.transpose(0, 2, 1, 3).reshape(n, t, c * f)
        return self.fc(self.gru(x))

    def cost_report(self, weight_bits: int = 8, act_bits: int = 8, name: Optional[str] = None) -> CostReport:
        """Analytic inference cost."""
        c, h = self.conv_filters, self.gru_hidden
        feat = c * self.out_f
        ops = conv2d_counts(1, c, (10, 4), (self.out_t, self.out_f))
        per_step = 3 * h * (feat + h) + 3 * h
        ops = ops + OpCounts(macs=per_step * self.out_t)
        ops = ops + linear_counts(h, self.num_labels)
        size = SizeBreakdown()
        size.add("conv1.w", c * 40, weight_bits)
        size.add("conv1.b", c, weight_bits)
        size.add("gru.w_ih", 3 * h * feat, weight_bits)
        size.add("gru.w_hh", 3 * h * h, weight_bits)
        size.add("gru.bias", 3 * h, weight_bits)
        size.add("fc.w", h * self.num_labels, weight_bits)
        size.add("fc.b", self.num_labels, weight_bits)
        t, f = self.input_shape
        acts = [
            t * f * act_bits / 8.0,
            self.out_t * self.out_f * c * act_bits / 8.0,
            h * act_bits / 8.0,
            self.num_labels * act_bits / 8.0,
        ]
        return CostReport(name or "CRNN", ops, size, acts)
