"""DS-CNN — the paper's state-of-the-art KWS baseline (Zhang et al. 2017).

Paper-scale architecture (``width=64``, ``num_ds_blocks=4``) on the 49x10
MFCC input:

    Conv(64, 10x4, s2x2, p5x1) → BN → ReLU
    4 x [DWConv 3x3 → BN → ReLU → PWConv 1x1 → BN → ReLU]
    global average pool → FC(12)

Analytic costs: 2.73 M MACs and 22 604 8-bit parameters = 22.07 KB — the
exact Table 3 row.  ``width`` scales the experiment down for CI runs.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.autodiff.tensor import Tensor
from repro.costmodel.counts import OpCounts
from repro.costmodel.layers import conv2d_counts, depthwise_conv2d_counts, linear_counts
from repro.costmodel.memory import SizeBreakdown
from repro.costmodel.report import CostReport
from repro.nn import (
    BatchNorm2d,
    Conv2d,
    DSConvBlock,
    GlobalAvgPool2d,
    Linear,
    Module,
)
from repro.utils.rng import SeedLike, new_rng


class DSCNN(Module):
    """Depthwise-separable CNN for keyword spotting."""

    def __init__(
        self,
        num_labels: int = 12,
        width: int = 64,
        num_ds_blocks: int = 4,
        input_shape: Tuple[int, int] = (49, 10),
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        rng = new_rng(rng)
        self.num_labels = num_labels
        self.width = width
        self.num_ds_blocks = num_ds_blocks
        self.input_shape = input_shape

        self.conv1 = Conv2d(
            1, width, (10, 4), stride=(2, 2), padding=(5, 1), bias=False, rng=rng
        )
        self.bn1 = BatchNorm2d(width)
        for i in range(num_ds_blocks):
            setattr(self, f"ds{i}", DSConvBlock(width, width, 3, padding=1, rng=rng))
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(width, num_labels, rng=rng)

    # ------------------------------------------------------------------ #

    @property
    def feature_hw(self) -> Tuple[int, int]:
        """Spatial size after conv1 (and every DS block, stride 1)."""
        t, f = self.input_shape
        return ((t + 2 * 5 - 10) // 2 + 1, (f + 2 * 1 - 4) // 2 + 1)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim == 3:
            x = x.reshape(x.shape[0], 1, x.shape[1], x.shape[2])
        x = self.bn1(self.conv1(x)).relu()
        for i in range(self.num_ds_blocks):
            x = getattr(self, f"ds{i}")(x)
        return self.fc(self.pool(x))

    # ------------------------------------------------------------------ #

    def cost_report(
        self,
        weight_bits: int = 8,
        act_bits: int = 8,
        name: Optional[str] = None,
    ) -> CostReport:
        """Analytic inference cost (deployed: batch norm folded into bias)."""
        oh, ow = self.feature_hw
        w = self.width
        ops = conv2d_counts(1, w, (10, 4), (oh, ow))
        for _ in range(self.num_ds_blocks):
            ops = ops + depthwise_conv2d_counts(w, (3, 3), (oh, ow))
            ops = ops + conv2d_counts(w, w, (1, 1), (oh, ow))
        ops = ops + linear_counts(w, self.num_labels)

        size = SizeBreakdown()
        size.add("conv1.w", w * 1 * 10 * 4, weight_bits)
        size.add("conv1.b", w, weight_bits)
        for i in range(self.num_ds_blocks):
            size.add(f"ds{i}.dw.w", w * 3 * 3, weight_bits)
            size.add(f"ds{i}.dw.b", w, weight_bits)
            size.add(f"ds{i}.pw.w", w * w, weight_bits)
            size.add(f"ds{i}.pw.b", w, weight_bits)
        size.add("fc.w", w * self.num_labels, weight_bits)
        size.add("fc.b", self.num_labels, weight_bits)

        t, f = self.input_shape
        acts = [t * f * act_bits / 8.0, oh * ow * w * act_bits / 8.0]
        for _ in range(self.num_ds_blocks):
            acts.append(oh * ow * w * act_bits / 8.0)  # depthwise output
            acts.append(oh * ow * w * act_bits / 8.0)  # pointwise output
        acts.append(w * act_bits / 8.0)
        acts.append(self.num_labels * act_bits / 8.0)
        return CostReport(name or "DS-CNN", ops, size, acts)
