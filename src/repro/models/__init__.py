"""The KWS model zoo: every baseline of the paper's Table 3.

Architecture constants follow Zhang et al. (2017) where published and are
otherwise reverse-engineered so the analytic cost model reproduces Table 3's
parameter counts and operation counts (see each module's docstring for the
derivation).  All models consume the (N, 49, 10) MFCC tensor and emit 12
logits; all expose ``cost_report()``.
"""

from repro.models.ds_cnn import DSCNN
from repro.models.st_ds_cnn import STDSCNN
from repro.models.cnn import CNN
from repro.models.dnn import DNN
from repro.models.rnn_models import CRNN, GRUModel, LSTMModel, basic_lstm, projected_lstm
from repro.models.bonsai_kws import BonsaiKWS
from repro.models.zoo import MODELS, build_model

__all__ = [
    "DSCNN",
    "STDSCNN",
    "CNN",
    "DNN",
    "LSTMModel",
    "basic_lstm",
    "projected_lstm",
    "GRUModel",
    "CRNN",
    "BonsaiKWS",
    "MODELS",
    "build_model",
]
