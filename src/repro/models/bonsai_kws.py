"""Standalone Bonsai tree on flattened MFCC input (Table 2 baselines).

The tree sees the raw 490-dim flattened spectrogram through a learned
dense projection ``Z`` — exactly the configuration the paper shows failing
("the simple projection matrix … is likely not effective in compressing
KWS's initial speech inputs").  Table 2's model sizes imply the authors'
input dimension was D=392; :meth:`cost_report` takes the input dimension
from the configured shape so the experiment can price both.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.autodiff.tensor import Tensor
from repro.core.bonsai.tree import BonsaiTree, tree_num_internal, tree_num_nodes
from repro.costmodel.layers import bonsai_counts
from repro.costmodel.memory import SizeBreakdown
from repro.costmodel.report import CostReport
from repro.nn import Module
from repro.utils.rng import SeedLike, new_rng


class BonsaiKWS(Module):
    """Bonsai classifier over the flattened MFCC input."""

    def __init__(
        self,
        num_labels: int = 12,
        projection_dim: int = 64,
        depth: int = 2,
        input_shape: Tuple[int, int] = (49, 10),
        prediction_sigma: float = 1.0,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        rng = new_rng(rng)
        self.num_labels = num_labels
        self.projection_dim = projection_dim
        self.depth = depth
        self.input_shape = input_shape
        self.input_dim = input_shape[0] * input_shape[1]
        self.tree = BonsaiTree(
            input_dim=self.input_dim,
            num_labels=num_labels,
            depth=depth,
            projection_dim=projection_dim,
            prediction_sigma=prediction_sigma,
            rng=rng,
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.tree(x.flatten(1))

    def cost_report(
        self,
        weight_bits: int = 32,
        act_bits: int = 32,
        input_dim: Optional[int] = None,
        name: Optional[str] = None,
    ) -> CostReport:
        """Analytic cost; Table 2 stores weights at 4 bytes (fp32).

        ``input_dim`` overrides D for pricing under the paper's D=392.
        """
        d = input_dim if input_dim is not None else self.input_dim
        d_hat, l = self.projection_dim, self.num_labels
        nodes = tree_num_nodes(self.depth)
        internal = tree_num_internal(self.depth)
        ops = bonsai_counts(d, d_hat, l, nodes, internal, project=True)

        size = SizeBreakdown()
        size.add("Z", d_hat * d, weight_bits)
        size.add("W", nodes * d_hat * l, weight_bits)
        size.add("V", nodes * d_hat * l, weight_bits)
        size.add("theta", internal * d_hat, weight_bits)

        acts = [
            d * act_bits / 8.0,
            d_hat * act_bits / 8.0,
            l * act_bits / 8.0,
        ]
        label = name or f"Bonsai (D^={d_hat}, T={self.depth})"
        return CostReport(label, ops, size, acts)
