"""DNN baseline (Table 3: 0.08 M ops, 77.8 KB, 84.6 %).

A plain MLP over the flattened MFCC "image": 490 → 128 → 128 → 12, giving
≈80.6 K parameters ≈ 0.08 M MACs — Table 3's DNN row (for an MLP,
parameters ≈ MACs, which is why the paper's DNN is tiny in ops but large in
bytes).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.autodiff.tensor import Tensor
from repro.costmodel.layers import linear_counts
from repro.costmodel.memory import SizeBreakdown
from repro.costmodel.report import CostReport
from repro.nn import Linear, Module
from repro.utils.rng import SeedLike, new_rng


class DNN(Module):
    """Fully-connected KWS baseline."""

    def __init__(
        self,
        num_labels: int = 12,
        hidden: Sequence[int] = (128, 128),
        input_shape: Tuple[int, int] = (49, 10),
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        rng = new_rng(rng)
        self.num_labels = num_labels
        self.hidden = tuple(hidden)
        self.input_shape = input_shape
        self.input_dim = input_shape[0] * input_shape[1]
        dims = [self.input_dim, *self.hidden]
        for i, (din, dout) in enumerate(zip(dims[:-1], dims[1:])):
            setattr(self, f"fc{i}", Linear(din, dout, rng=rng))
        self.out = Linear(dims[-1], num_labels, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = x.flatten(1)
        for i in range(len(self.hidden)):
            x = getattr(self, f"fc{i}")(x).relu()
        return self.out(x)

    def cost_report(self, weight_bits: int = 8, act_bits: int = 8, name: Optional[str] = None) -> CostReport:
        """Analytic inference cost."""
        dims = [self.input_dim, *self.hidden, self.num_labels]
        ops = linear_counts(dims[0], dims[1])
        for din, dout in zip(dims[1:-1], dims[2:]):
            ops = ops + linear_counts(din, dout)
        size = SizeBreakdown()
        for i, (din, dout) in enumerate(zip(dims[:-1], dims[1:])):
            size.add(f"fc{i}.w", din * dout, weight_bits)
            size.add(f"fc{i}.b", dout, weight_bits)
        acts = [d * act_bits / 8.0 for d in dims]
        return CostReport(name or "DNN", ops, size, acts)
