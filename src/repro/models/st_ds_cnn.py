"""ST-DS-CNN — the strassenified DS-CNN of paper §2.1 (Table 1).

Every conv layer (and the final FC) of the DS-CNN baseline is replaced with
a ternary SPN: the standard/pointwise convs at hidden width
``r = r_fraction·c_out``, the depthwise convs with the grouped SPN, the FC
with ``r = r_fraction·L``.  Table 1 sweeps ``r_fraction`` ∈
{0.5, 0.75, 1, 2}; the analytic adds explode with r — the paper's central
observation about strassenifying DS-dominated networks.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.autodiff.tensor import Tensor
from repro.core.hybrid.blocks import StrassenDSConvBlock
from repro.core.strassen.layers import StrassenConv2d, StrassenLinear
from repro.costmodel.counts import OpCounts
from repro.costmodel.layers import (
    strassen_conv2d_counts,
    strassen_depthwise_counts,
    strassen_linear_counts,
)
from repro.costmodel.memory import SizeBreakdown
from repro.costmodel.report import CostReport
from repro.nn import BatchNorm2d, GlobalAvgPool2d, Module
from repro.utils.rng import SeedLike, new_rng

TERNARY_BITS = 2


class STDSCNN(Module):
    """Strassenified DS-CNN with configurable hidden-width fraction."""

    def __init__(
        self,
        num_labels: int = 12,
        width: int = 64,
        num_ds_blocks: int = 4,
        r_fraction: float = 0.75,
        input_shape: Tuple[int, int] = (49, 10),
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        rng = new_rng(rng)
        self.num_labels = num_labels
        self.width = width
        self.num_ds_blocks = num_ds_blocks
        self.r_fraction = r_fraction
        self.input_shape = input_shape
        r = self.conv_r

        self.conv1 = StrassenConv2d(
            1, width, (10, 4), r=r, stride=(2, 2), padding=(5, 1), bias=False, rng=rng
        )
        self.bn1 = BatchNorm2d(width)
        for i in range(num_ds_blocks):
            setattr(self, f"ds{i}", StrassenDSConvBlock(width, width, r=r, padding=1, rng=rng))
        self.pool = GlobalAvgPool2d()
        self.fc = StrassenLinear(width, num_labels, r=self.fc_r, rng=rng)

    @property
    def conv_r(self) -> int:
        """Strassen hidden width of standard/pointwise conv layers."""
        return max(1, round(self.r_fraction * self.width))

    @property
    def fc_r(self) -> int:
        """Strassen hidden width of the classifier FC."""
        return max(1, round(self.r_fraction * self.num_labels))

    @property
    def feature_hw(self) -> Tuple[int, int]:
        """Spatial size after conv1."""
        t, f = self.input_shape
        return ((t + 2 * 5 - 10) // 2 + 1, (f + 2 * 1 - 4) // 2 + 1)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim == 3:
            x = x.reshape(x.shape[0], 1, x.shape[1], x.shape[2])
        x = self.bn1(self.conv1(x)).relu()
        for i in range(self.num_ds_blocks):
            x = getattr(self, f"ds{i}")(x)
        return self.fc(self.pool(x))

    def cost_report(
        self,
        a_hat_bits: int = 32,
        bias_bits: int = 32,
        act_bits: int = 8,
        name: Optional[str] = None,
    ) -> CostReport:
        """Analytic cost of the deployed (collapsed, BN-folded) network."""
        oh, ow = self.feature_hw
        w, r = self.width, self.conv_r

        ops = strassen_conv2d_counts(1, w, (10, 4), (oh, ow), r)
        for _ in range(self.num_ds_blocks):
            ops = ops + strassen_depthwise_counts(w, (3, 3), (oh, ow))
            ops = ops + strassen_conv2d_counts(w, w, (1, 1), (oh, ow), r)
        ops = ops + strassen_linear_counts(w, self.num_labels, self.fc_r)

        size = SizeBreakdown()
        size.add("conv1.wb", r * 40, TERNARY_BITS)
        size.add("conv1.wc", w * r, TERNARY_BITS)
        size.add("conv1.a_hat", r, a_hat_bits)
        size.add("conv1.bias", w, bias_bits)
        for i in range(self.num_ds_blocks):
            size.add(f"ds{i}.dw.wb", w * 9, TERNARY_BITS)
            size.add(f"ds{i}.dw.wc", w, TERNARY_BITS)
            size.add(f"ds{i}.dw.a_hat", w, a_hat_bits)
            size.add(f"ds{i}.dw.bias", w, bias_bits)
            size.add(f"ds{i}.pw.wb", r * w, TERNARY_BITS)
            size.add(f"ds{i}.pw.wc", w * r, TERNARY_BITS)
            size.add(f"ds{i}.pw.a_hat", r, a_hat_bits)
            size.add(f"ds{i}.pw.bias", w, bias_bits)
        size.add("fc.wb", self.fc_r * w, TERNARY_BITS)
        size.add("fc.wc", self.num_labels * self.fc_r, TERNARY_BITS)
        size.add("fc.a_hat", self.fc_r, a_hat_bits)
        size.add("fc.bias", self.num_labels, bias_bits)

        t, f = self.input_shape
        plane = oh * ow
        acts = [t * f * act_bits / 8.0, plane * r * act_bits / 8.0, plane * w * act_bits / 8.0]
        for _ in range(self.num_ds_blocks):
            acts.append(plane * w * act_bits / 8.0)
            acts.append(plane * w * act_bits / 8.0)
            acts.append(plane * r * act_bits / 8.0)
            acts.append(plane * w * act_bits / 8.0)
        acts.append(w * act_bits / 8.0)
        acts.append(self.num_labels * act_bits / 8.0)
        label = name or f"ST-DS-CNN (r={self.r_fraction:g}c_out)"
        return CostReport(label, ops, size, acts)
