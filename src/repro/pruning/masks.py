"""Per-parameter binary pruning masks."""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

from repro.nn.module import Module, Parameter


class PruningMasks:
    """Holds one binary mask per prunable parameter and applies them.

    Prunable = any parameter whose name does not end in a skipped suffix
    (biases and batch-norm parameters are never pruned, as in Zhu & Gupta).
    """

    SKIP_SUFFIXES: Tuple[str, ...] = ("bias", "gamma", "beta")

    def __init__(self, model: Module) -> None:
        self.targets: Dict[str, Parameter] = {}
        self.masks: Dict[str, np.ndarray] = {}
        for name, param in model.named_parameters():
            leaf = name.rsplit(".", 1)[-1]
            if leaf in self.SKIP_SUFFIXES or param.size < 32:
                continue
            self.targets[name] = param
            self.masks[name] = np.ones_like(param.data, dtype=bool)

    def update_to_sparsity(self, sparsity: float) -> None:
        """Re-derive every mask to keep the largest (1−s) fraction per layer.

        Masks are monotone in practice because weights under a zeroed mask
        stay zero (they are re-zeroed after every optimiser step).
        """
        if not 0.0 <= sparsity < 1.0:
            raise ValueError(f"sparsity must be in [0, 1); got {sparsity}")
        for name, param in self.targets.items():
            drop = int(round(sparsity * param.size))
            if drop == 0:
                self.masks[name] = np.ones_like(param.data, dtype=bool)
                continue
            flat = np.abs(param.data).reshape(-1)
            cutoff = np.partition(flat, drop - 1)[drop - 1]
            self.masks[name] = np.abs(param.data) > cutoff

    def apply(self) -> None:
        """Zero masked weights in place."""
        for name, param in self.targets.items():
            param.data = param.data * self.masks[name]

    def nonzero_parameters(self) -> int:
        """Surviving weights across all masked tensors."""
        return int(sum(mask.sum() for mask in self.masks.values()))

    def total_parameters(self) -> int:
        """Total weights across all masked tensors."""
        return int(sum(mask.size for mask in self.masks.values()))

    @property
    def sparsity(self) -> float:
        """Fraction of masked (zero) weights."""
        total = self.total_parameters()
        return 1.0 - self.nonzero_parameters() / total if total else 0.0


def sparsity_report(model: Module) -> Dict[str, float]:
    """Fraction of exactly-zero entries per parameter (diagnostics)."""
    return {
        name: float(np.mean(param.data == 0.0))
        for name, param in model.named_parameters()
    }
