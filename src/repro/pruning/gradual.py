"""The Zhu & Gupta gradual pruning schedule as a Trainer callback."""

from __future__ import annotations

from typing import Optional

from repro.pruning.masks import PruningMasks
from repro.training.trainer import Callback, Trainer
from repro.utils.logging import get_logger

logger = get_logger("pruning")


def zhu_gupta_sparsity(
    step: int, final_sparsity: float, begin_step: int, end_step: int, initial_sparsity: float = 0.0
) -> float:
    """Target sparsity at ``step``: cubic ramp from initial to final.

    ``s_t = s_f + (s_i − s_f)·(1 − (t − t₀)/(t₁ − t₀))³`` clamped to the
    ramp window (Zhu & Gupta 2017, eq. 1).
    """
    if step <= begin_step:
        return initial_sparsity
    if step >= end_step:
        return final_sparsity
    progress = (step - begin_step) / float(end_step - begin_step)
    return final_sparsity + (initial_sparsity - final_sparsity) * (1.0 - progress) ** 3


class GradualPruningCallback(Callback):
    """Prune toward ``final_sparsity`` during training.

    Every ``frequency`` steps inside the ramp window the masks are
    recomputed at the scheduled sparsity; after *every* step the masks are
    re-applied so pruned weights cannot be resurrected by the optimiser.
    """

    def __init__(
        self,
        final_sparsity: float,
        begin_step: int = 0,
        end_step: Optional[int] = None,
        frequency: int = 20,
    ) -> None:
        self.final_sparsity = final_sparsity
        self.begin_step = begin_step
        self.end_step = end_step
        self.frequency = max(1, frequency)
        self.masks: Optional[PruningMasks] = None

    def on_train_begin(self, trainer: Trainer) -> None:
        self.masks = PruningMasks(trainer.model)
        if self.end_step is None:
            # default: ramp over the first two thirds of training
            steps_per_epoch = max(trainer._step, 1)
            self.end_step = max(2 * trainer.config.epochs * 20 // 3, 60)

    def on_step_end(self, trainer: Trainer, step: int) -> None:
        assert self.masks is not None and self.end_step is not None
        if step <= self.end_step and (step - self.begin_step) % self.frequency == 0:
            target = zhu_gupta_sparsity(step, self.final_sparsity, self.begin_step, self.end_step)
            self.masks.update_to_sparsity(target)
        self.masks.apply()

    @property
    def nonzero_parameters(self) -> int:
        """Surviving weights (0 before training starts)."""
        return self.masks.nonzero_parameters() if self.masks else 0
