"""Gradual magnitude pruning (Zhu & Gupta 2017) — the Table-7 comparison.

The paper prunes the DS-CNN baseline to 50/75/90 % sparsity with the
"to prune or not to prune" schedule: sparsity ramps from 0 to the target
following ``s_t = s_f·(1 − (1 − t/T)³)`` while training continues, masking
the smallest-magnitude weights per layer.
"""

from repro.pruning.masks import PruningMasks, sparsity_report
from repro.pruning.gradual import GradualPruningCallback, zhu_gupta_sparsity

__all__ = [
    "PruningMasks",
    "sparsity_report",
    "GradualPruningCallback",
    "zhu_gupta_sparsity",
]
