"""Datasets: a synthetic stand-in for the Google Speech Commands corpus.

The paper evaluates on Google Speech Commands (Warden 2018): 65 K one-second
clips of 30 keywords, classified into 10 target words + *silence* +
*unknown*.  That corpus cannot be downloaded offline, so this package
synthesises an equivalent task: each keyword is a deterministic sequence of
formant targets rendered by a source-filter vocal synthesiser with
per-utterance speaker variation, plus background-noise / timing-jitter
augmentation.  The label set, split protocol (80/10/10) and feature pipeline
are identical to the paper's; see DESIGN.md §2 for the substitution record.
"""

from repro.datasets.synthesizer import KeywordSpec, PhonemeSpec, keyword_spec, synthesize
from repro.datasets.noise import pink_noise, white_noise
from repro.datasets.speech_commands import (
    ALL_KEYWORDS,
    LABELS,
    TARGET_WORDS,
    SpeechCommandsConfig,
    SpeechCommandsDataset,
    label_index,
)
from repro.datasets.loader import iterate_minibatches

__all__ = [
    "PhonemeSpec",
    "KeywordSpec",
    "keyword_spec",
    "synthesize",
    "white_noise",
    "pink_noise",
    "ALL_KEYWORDS",
    "TARGET_WORDS",
    "LABELS",
    "label_index",
    "SpeechCommandsConfig",
    "SpeechCommandsDataset",
    "iterate_minibatches",
]
