"""Minibatch iteration over in-memory arrays."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.utils.rng import SeedLike, new_rng


def iterate_minibatches(
    features: np.ndarray,
    labels: np.ndarray,
    batch_size: int,
    rng: SeedLike = None,
    shuffle: bool = True,
    drop_last: bool = False,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield (features, labels) minibatches.

    ``shuffle`` permutes once per epoch using ``rng``; ``drop_last`` skips a
    trailing partial batch (keeps batch-norm statistics stable).
    """
    if len(features) != len(labels):
        raise ValueError(f"length mismatch: {len(features)} features vs {len(labels)} labels")
    count = len(features)
    order = new_rng(rng).permutation(count) if shuffle else np.arange(count)
    for start in range(0, count, batch_size):
        index = order[start : start + batch_size]
        if drop_last and len(index) < batch_size:
            return
        yield features[index], labels[index]
