"""Synthetic Speech-Commands task assembly (12-label KWS classification).

Mirrors the protocol of Warden (2018) / Zhang et al. (2017) used by the
paper: 30 keywords; models classify into the 10 target words plus
``silence`` (background noise only) and ``unknown`` (any of the remaining 20
keywords); 80/10/10 train/validation/test split decided by a stable hash of
the utterance identity; training samples augmented with background noise and
random timing jitter.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

import numpy as np

from repro.audio.augment import add_background_noise, random_time_shift
from repro.audio.mfcc import MFCC, MFCCConfig
from repro.datasets.noise import pink_noise, white_noise
from repro.datasets.synthesizer import keyword_spec, synthesize
from repro.errors import DatasetError
from repro.utils.rng import new_rng

#: the 30 words of Speech Commands v1
ALL_KEYWORDS: Tuple[str, ...] = (
    "yes", "no", "up", "down", "left", "right", "on", "off", "stop", "go",
    "bed", "bird", "cat", "dog", "eight", "five", "four", "happy", "house",
    "marvin", "nine", "one", "seven", "sheila", "six", "three", "tree",
    "two", "wow", "zero",
)

#: the 10 classification targets used by the paper
TARGET_WORDS: Tuple[str, ...] = (
    "yes", "no", "up", "down", "left", "right", "on", "off", "stop", "go",
)

#: model output labels, in index order
LABELS: Tuple[str, ...] = ("silence", "unknown") + TARGET_WORDS


def label_index(word: str) -> int:
    """Map a keyword (or 'silence') to its classification label index."""
    if word == "silence":
        return 0
    if word in TARGET_WORDS:
        return LABELS.index(word)
    if word in ALL_KEYWORDS or word == "unknown":
        return 1
    raise DatasetError(f"unknown keyword {word!r}")


def _split_of(identity: str, val_pct: float = 10.0, test_pct: float = 10.0) -> str:
    """Stable train/val/test assignment via SHA-1 of the utterance identity.

    Same scheme as Warden (2018): the hash, not the iteration order, decides
    membership, so splits never leak when the corpus is regrown.
    """
    digest = hashlib.sha1(identity.encode("utf-8")).hexdigest()
    percent = (int(digest, 16) % 10_000) / 100.0
    if percent < val_pct:
        return "val"
    if percent < val_pct + test_pct:
        return "test"
    return "train"


@dataclass(frozen=True)
class SpeechCommandsConfig:
    """Synthetic corpus configuration.

    ``utterances_per_word`` is the count per *target* word.  As in the
    Warden/Zhang training pipeline, the *unknown* class (the other 20
    keywords) and *silence* are rebalanced to roughly 10 % of the corpus
    each rather than appearing at their natural 20/30 frequency —
    ``unknown_fraction`` / ``silence_fraction`` control that, expressed
    relative to the total number of target utterances.

    ``noise_volume`` / ``time_shift_ms`` control train-split augmentation;
    val/test are rendered with a light fixed noise floor only.
    """

    utterances_per_word: int = 120
    unknown_fraction: float = 0.15
    silence_fraction: float = 0.15
    sample_rate: int = 16_000
    clip_seconds: float = 1.0
    seed: int = 2019
    noise_volume: float = 0.25
    augment_probability: float = 0.8
    time_shift_ms: float = 100.0
    mfcc: MFCCConfig = field(default_factory=MFCCConfig)

    @property
    def clip_samples(self) -> int:
        """Samples per clip."""
        return int(round(self.sample_rate * self.clip_seconds))

    @property
    def unknown_per_word(self) -> int:
        """Utterances generated per non-target keyword."""
        total_targets = len(TARGET_WORDS) * self.utterances_per_word
        pool = len(ALL_KEYWORDS) - len(TARGET_WORDS)
        return max(1, int(round(total_targets * self.unknown_fraction / pool)))

    @property
    def silence_clips(self) -> int:
        """Number of silence clips generated."""
        total_targets = len(TARGET_WORDS) * self.utterances_per_word
        return max(4, int(round(total_targets * self.silence_fraction)))


class SpeechCommandsDataset:
    """Materialised synthetic corpus with MFCC features.

    Builds all splits eagerly on first use and caches them; repeated
    experiment runs share one build.  Returned arrays:

    * ``features(split)`` → (N, frames, coeffs) float32
    * ``labels(split)``   → (N,) int64 in ``range(len(LABELS))``
    """

    _cache: Dict[SpeechCommandsConfig, "SpeechCommandsDataset"] = {}

    def __init__(self, config: Optional[SpeechCommandsConfig] = None) -> None:
        self.config = config or SpeechCommandsConfig()
        self._extractor = MFCC(self.config.mfcc)
        self._splits: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        self._build()

    @classmethod
    def cached(cls, config: Optional[SpeechCommandsConfig] = None) -> "SpeechCommandsDataset":
        """Return a process-wide cached dataset for ``config``."""
        config = config or SpeechCommandsConfig()
        if config not in cls._cache:
            cls._cache[config] = cls(config)
        return cls._cache[config]

    # ------------------------------------------------------------------ #

    def _build(self) -> None:
        cfg = self.config
        rng = new_rng(cfg.seed)
        noise_bank = [
            pink_noise(cfg.clip_samples * 4, rng),
            white_noise(cfg.clip_samples * 4, rng),
        ]
        rows: Dict[str, list] = {"train": [], "val": [], "test": []}

        for word in ALL_KEYWORDS:
            spec = keyword_spec(word)
            count = (
                cfg.utterances_per_word if word in TARGET_WORDS else cfg.unknown_per_word
            )
            for i in range(count):
                identity = f"{word}/{i}"
                split = _split_of(identity)
                utt_rng = new_rng(
                    int.from_bytes(hashlib.sha256(identity.encode()).digest()[:8], "little")
                    ^ cfg.seed
                )
                wave = synthesize(
                    spec, utt_rng, sample_rate=cfg.sample_rate, clip_seconds=cfg.clip_seconds
                )
                wave = self._augment(wave, split, utt_rng, noise_bank)
                rows[split].append((self._extractor(wave), label_index(word)))

        for i in range(cfg.silence_clips):
            identity = f"silence/{i}"
            split = _split_of(identity)
            utt_rng = new_rng(
                int.from_bytes(hashlib.sha256(identity.encode()).digest()[:8], "little")
                ^ cfg.seed
            )
            base = noise_bank[int(utt_rng.integers(len(noise_bank)))]
            start = int(utt_rng.integers(0, len(base) - cfg.clip_samples + 1))
            level = float(utt_rng.uniform(0.0, 0.05))
            wave = base[start : start + cfg.clip_samples] * level
            rows[split].append((self._extractor(wave), label_index("silence")))

        for split, pairs in rows.items():
            if not pairs:
                raise DatasetError(
                    f"empty split {split!r}; increase utterances_per_word"
                )
            # stable per-split stream: Python's hash() is salted per process
            split_tag = int.from_bytes(hashlib.sha256(split.encode()).digest()[:2], "little")
            order = new_rng(cfg.seed + split_tag).permutation(len(pairs))
            feats = np.stack([pairs[i][0] for i in order]).astype(np.float32)
            labels = np.array([pairs[i][1] for i in order], dtype=np.int64)
            self._splits[split] = (feats, labels)

        # Standardise per cepstral coefficient over the train split: c0 has an
        # order of magnitude more variance than c9 and would otherwise dominate
        # every distance and every first-layer filter.
        train_feats = self._splits["train"][0]
        mean = train_feats.mean(axis=(0, 1), keepdims=True)
        std = train_feats.std(axis=(0, 1), keepdims=True) + 1e-6
        for split, (feats, labels) in self._splits.items():
            self._splits[split] = (((feats - mean) / std).astype(np.float32), labels)
        self.feature_mean, self.feature_std = mean.reshape(-1), std.reshape(-1)

    def _augment(self, wave, split, rng, noise_bank):
        cfg = self.config
        if split != "train":
            # evaluation clips get a fixed light noise floor only
            noise = noise_bank[int(rng.integers(len(noise_bank)))]
            return add_background_noise(wave, noise, volume=0.05, rng=rng)
        if rng.random() < cfg.augment_probability:
            wave = random_time_shift(wave, cfg.time_shift_ms, cfg.sample_rate, rng)
            noise = noise_bank[int(rng.integers(len(noise_bank)))]
            volume = float(rng.uniform(0.0, cfg.noise_volume))
            wave = add_background_noise(wave, noise, volume=volume, rng=rng)
        return wave

    # ------------------------------------------------------------------ #

    def features(self, split: str) -> np.ndarray:
        """MFCC features of a split: (N, frames, coefficients) float32."""
        return self._splits[split][0]

    def labels(self, split: str) -> np.ndarray:
        """Integer labels of a split."""
        return self._splits[split][1]

    def arrays(self, split: str) -> Tuple[np.ndarray, np.ndarray]:
        """(features, labels) pair for a split."""
        return self._splits[split]

    @property
    def num_labels(self) -> int:
        """Number of classification targets (12)."""
        return len(LABELS)

    @property
    def feature_shape(self) -> Tuple[int, int]:
        """(frames, coefficients) of one example."""
        return self._splits["train"][0].shape[1:]

    def summary(self) -> str:
        """Human-readable corpus description."""
        sizes = {s: len(self._splits[s][1]) for s in ("train", "val", "test")}
        return (
            f"SyntheticSpeechCommands(words={len(ALL_KEYWORDS)}, labels={self.num_labels}, "
            f"train={sizes['train']}, val={sizes['val']}, test={sizes['test']}, "
            f"features={self.feature_shape})"
        )


def small_config(seed: int = 2019, utterances_per_word: int = 24) -> SpeechCommandsConfig:
    """A reduced corpus for CI-scale experiments and tests."""
    return SpeechCommandsConfig(utterances_per_word=utterances_per_word, seed=seed)
