"""Background-noise generators for augmentation and *silence* clips."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, new_rng


def white_noise(num_samples: int, rng: SeedLike = None) -> np.ndarray:
    """Unit-variance Gaussian white noise."""
    rng = new_rng(rng)
    return rng.standard_normal(num_samples)


def pink_noise(num_samples: int, rng: SeedLike = None) -> np.ndarray:
    """Approximate 1/f noise via the Voss–McCartney octave-sum construction.

    Spectrally closer to real room/background recordings than white noise,
    which matters for the *silence* class statistics.
    """
    rng = new_rng(rng)
    octaves = max(int(np.ceil(np.log2(max(num_samples, 2)))), 1)
    total = np.zeros(num_samples)
    for octave in range(octaves):
        step = 2**octave
        values = rng.standard_normal(num_samples // step + 2)
        total += np.repeat(values, step)[:num_samples]
    total /= np.sqrt(octaves)
    return total
