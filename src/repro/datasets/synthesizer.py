"""Formant-based keyword synthesiser (source–filter model).

Each keyword is mapped deterministically to a short sequence of *phonemes*
(formant-target frames); an utterance renders that sequence with a glottal
pulse-train (voiced) or noise (unvoiced) source through three second-order
resonators, with per-utterance speaker variation (pitch, vocal-tract length,
tempo, energy).  Distinct keywords therefore occupy distinct trajectories in
MFCC space — the property the KWS models learn to separate — while
utterances of one keyword vary the way different speakers do.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np
from scipy import signal as sps

from repro.audio.signal import rms_normalize
from repro.utils.rng import SeedLike, new_rng


@dataclass(frozen=True)
class PhonemeSpec:
    """A single formant target.

    Attributes
    ----------
    formants: centre frequencies (F1, F2, F3) in Hz.
    voiced: pulse-train source when True, noise source otherwise.
    duration_weight: relative share of the utterance's voiced duration.
    amplitude: relative loudness of the segment.
    """

    formants: tuple
    voiced: bool
    duration_weight: float
    amplitude: float


@dataclass(frozen=True)
class KeywordSpec:
    """A keyword's deterministic phoneme sequence."""

    word: str
    phonemes: tuple


def _seed_for(word: str) -> int:
    """Stable 64-bit seed derived from the keyword spelling."""
    digest = hashlib.sha256(word.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


#: number of phonemes in the shared inventory all keywords draw from
INVENTORY_SIZE = 10

#: seed fixing the inventory across processes
_INVENTORY_SEED = 7_777_777


def phoneme_inventory() -> tuple:
    """The shared phoneme inventory (deterministic).

    Keywords are *sequences over a common inventory*, like real speech:
    two words can share most of their phonemes and differ mainly in order
    and timing.  This is what makes the task require local
    (time-translation-robust) feature extraction — time-averaged spectra
    collide between words, so a linear projection on the flattened
    spectrogram (Bonsai's Z) underperforms convolutional front-ends,
    reproducing the paper's §2.2 observation.
    """
    rng = np.random.default_rng(_INVENTORY_SEED)
    inventory: List[PhonemeSpec] = []
    for _ in range(INVENTORY_SIZE):
        f1 = float(rng.uniform(250.0, 850.0))
        f2 = float(rng.uniform(max(900.0, f1 + 250.0), 2400.0))
        f3 = float(rng.uniform(max(2500.0, f2 + 400.0), 3400.0))
        inventory.append(
            PhonemeSpec(
                formants=(f1, f2, f3),
                voiced=bool(rng.random() < 0.75),
                duration_weight=1.0,
                amplitude=1.0,
            )
        )
    return tuple(inventory)


def keyword_spec(word: str) -> KeywordSpec:
    """Derive the canonical phoneme sequence for ``word``.

    Deterministic: the same word always produces the same spec.  The word
    picks 3–4 phonemes from the shared inventory (with word-specific
    durations, amplitudes and a small ±3 % formant colour so that even
    coinciding sequences remain distinguishable in principle).
    """
    import dataclasses

    rng = np.random.default_rng(_seed_for(word))
    inventory = phoneme_inventory()
    num_phonemes = int(rng.integers(3, 5))
    indices = rng.integers(0, len(inventory), size=num_phonemes)
    colour = float(rng.uniform(0.97, 1.03))
    phonemes: List[PhonemeSpec] = []
    for idx in indices:
        base = inventory[int(idx)]
        phonemes.append(
            dataclasses.replace(
                base,
                formants=tuple(f * colour for f in base.formants),
                duration_weight=float(rng.uniform(0.6, 1.4)),
                amplitude=float(rng.uniform(0.6, 1.0)),
            )
        )
    return KeywordSpec(word=word, phonemes=tuple(phonemes))


def _glottal_source(num_samples: int, f0: float, sample_rate: int, rng: np.random.Generator) -> np.ndarray:
    """Impulse-train source with mild jitter and a decaying pulse shape."""
    out = np.zeros(num_samples)
    period = sample_rate / f0
    position = 0.0
    while position < num_samples:
        index = int(position)
        out[index] = 1.0
        position += period * (1.0 + 0.02 * rng.standard_normal())
    # Convolve with a short exponential pulse so the source has a -12 dB/oct tilt.
    pulse = np.exp(-np.arange(24) / 6.0)
    return np.convolve(out, pulse)[:num_samples]


def _resonator(x: np.ndarray, centre_hz: float, bandwidth_hz: float, sample_rate: int) -> np.ndarray:
    """Second-order all-pole resonator (one formant)."""
    r = np.exp(-np.pi * bandwidth_hz / sample_rate)
    theta = 2.0 * np.pi * centre_hz / sample_rate
    a = np.array([1.0, -2.0 * r * np.cos(theta), r * r])
    b = np.array([1.0 - r])
    return sps.lfilter(b, a, x)


def synthesize(
    spec: KeywordSpec,
    rng: SeedLike = None,
    sample_rate: int = 16_000,
    clip_seconds: float = 1.0,
    speech_fraction: float | None = None,
) -> np.ndarray:
    """Render one utterance of ``spec`` as a 1-D float waveform.

    Per-utterance draws: fundamental frequency (speaker pitch), vocal-tract
    scale (formant multiplier), tempo, segment amplitudes, and the placement
    of the utterance inside the clip — so no two utterances are identical.
    """
    rng = new_rng(rng)
    clip_samples = int(round(sample_rate * clip_seconds))

    f0 = float(rng.uniform(110.0, 190.0))
    tract_scale = float(rng.uniform(0.95, 1.05))
    tempo = float(rng.uniform(0.93, 1.07))
    if speech_fraction is None:
        speech_fraction = 0.6
    speech_samples = int(clip_samples * speech_fraction * tempo)
    speech_samples = min(speech_samples, clip_samples)

    weights = np.array([p.duration_weight for p in spec.phonemes])
    durations = np.maximum((weights / weights.sum() * speech_samples).astype(int), 32)

    segments: List[np.ndarray] = []
    for phoneme, duration in zip(spec.phonemes, durations):
        if phoneme.voiced:
            src = _glottal_source(duration, f0 * float(rng.uniform(0.96, 1.04)), sample_rate, rng)
        else:
            src = rng.standard_normal(duration) * 0.5
        seg = src
        for centre, bandwidth in zip(phoneme.formants, (90.0, 110.0, 150.0)):
            seg = _resonator(seg, centre * tract_scale, bandwidth, sample_rate)
        # Attack / release envelope removes clicks at segment joints.
        ramp = min(64, duration // 4)
        envelope = np.ones(duration)
        envelope[:ramp] = np.linspace(0.0, 1.0, ramp)
        envelope[-ramp:] = np.linspace(1.0, 0.0, ramp)
        seg = rms_normalize(seg, target_rms=0.1) * phoneme.amplitude * envelope
        segments.append(seg)

    speech = np.concatenate(segments)
    waveform = np.zeros(clip_samples)
    # Uniform placement inside the clip: alignment is *not* a class cue, so
    # models must be robust to it (the property that favours conv features
    # over a flat linear projection).
    slack = max(clip_samples - len(speech), 0)
    start = int(rng.integers(0, slack + 1)) if slack else 0
    end = min(start + len(speech), clip_samples)
    waveform[start:end] = speech[: end - start]
    return rms_normalize(waveform, target_rms=0.08)


def synthesize_batch(
    spec: KeywordSpec, count: int, rng: SeedLike = None, sample_rate: int = 16_000
) -> np.ndarray:
    """Render ``count`` independent utterances → (count, samples) array."""
    rng = new_rng(rng)
    return np.stack([synthesize(spec, rng, sample_rate=sample_rate) for _ in range(count)])


def distinctness_score(words: Sequence[str], utterances_per_word: int = 3, rng: SeedLike = 0) -> float:
    """Separability diagnostic: between-word / within-word MFCC distance.

    Uses time-pooled MFCCs (mean over frames) so the score reflects
    spectral-envelope separability rather than timing alignment — timing
    variation is deliberate (it is what the conv front-ends are for).  Tests
    assert the score is substantially above 1.
    """
    from repro.audio.mfcc import MFCC

    rng = new_rng(rng)
    extractor = MFCC()
    feats = {
        w: np.stack(
            [
                extractor(synthesize(keyword_spec(w), rng)).mean(axis=0)
                for _ in range(utterances_per_word)
            ]
        )
        for w in words
    }
    centroids = {w: f.mean(axis=0) for w, f in feats.items()}
    within = np.mean(
        [np.linalg.norm(f - centroids[w], axis=1).mean() for w, f in feats.items()]
    )
    words = list(words)
    between = np.mean(
        [
            np.linalg.norm(centroids[a] - centroids[b])
            for i, a in enumerate(words)
            for b in words[i + 1 :]
        ]
    )
    return float(between / max(within, 1e-9))
