"""Bonsai decision trees (Kumar et al. 2017).

A Bonsai model is a single shallow binary tree whose every node — internal
and leaf — owns two matrices ``W_k, V_k`` and predicts the non-linear score
``W_kᵀ ẑ ∘ tanh(σ V_kᵀ ẑ)`` on the projected input ``ẑ = Z x``; internal
nodes additionally own a branching hyperplane ``θ_k``.  The model output is
the sum of node scores along the root-to-leaf path the input traverses.

Training relaxes the discontinuous path indicator to a product of smooth
branching probabilities whose sharpness is annealed upward until points
"gradually start traversing at most a single path" (the paper's wording);
:class:`BonsaiAnnealingSchedule` drives that.  Inference is hard and
branch-free: all nodes are evaluated, off-path nodes weighted zero — the
data-parallel pattern the paper highlights for SIMD microcontrollers.
"""

from repro.core.bonsai.tree import BonsaiTree, tree_num_internal, tree_num_nodes
from repro.core.bonsai.schedule import BonsaiAnnealingSchedule
from repro.core.bonsai.sparsity import BonsaiIHTCallback, hard_threshold

__all__ = [
    "BonsaiTree",
    "tree_num_nodes",
    "tree_num_internal",
    "BonsaiAnnealingSchedule",
    "BonsaiIHTCallback",
    "hard_threshold",
]
