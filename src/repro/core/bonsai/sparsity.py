"""Iterated-hard-thresholding (IHT) sparsity for Bonsai parameters.

Kumar et al. train Bonsai with projected gradient descent onto a sparsity
budget: after each step, all but the largest-magnitude entries of each
parameter are zeroed.  The paper's Table-2 baselines store dense weights, so
this is off by default, but it reproduces the original algorithm and lets
the comparative-analysis benches explore the sparse regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.bonsai.tree import BonsaiTree
from repro.training.trainer import Callback, Trainer


def hard_threshold(values: np.ndarray, keep_fraction: float) -> np.ndarray:
    """Zero all but the top ``keep_fraction`` magnitudes (in place copy)."""
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError(f"keep_fraction must be in (0, 1]; got {keep_fraction}")
    out = values.copy()
    keep = int(np.ceil(keep_fraction * out.size))
    if keep >= out.size:
        return out
    flat = np.abs(out).reshape(-1)
    cutoff = np.partition(flat, out.size - keep)[out.size - keep]
    out[np.abs(out) < cutoff] = 0.0
    return out


@dataclass
class BonsaiIHTCallback(Callback):
    """Project Bonsai parameters onto a sparsity budget after each step.

    ``keep_fractions`` maps parameter-name prefixes (``"projection"``,
    ``"w"``, ``"v"``, ``"theta"``) to the fraction of entries kept; missing
    prefixes stay dense.  Projection starts after ``warmup_steps`` so the
    support can stabilise first (as in the original Bonsai training).
    """

    keep_fractions: Dict[str, float]
    warmup_steps: int = 100

    def on_step_end(self, trainer: Trainer, step: int) -> None:
        if step < self.warmup_steps:
            return
        for module in trainer.model.modules():
            if not isinstance(module, BonsaiTree):
                continue
            for name, param in module.named_parameters():
                prefix = name.split(".")[0].rstrip("0123456789")
                if prefix == "Z" or name.startswith("projection"):
                    prefix = "projection"
                fraction = self.keep_fractions.get(prefix)
                if fraction is not None and fraction < 1.0:
                    param.data = hard_threshold(param.data, fraction)
