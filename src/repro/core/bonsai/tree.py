"""The Bonsai tree module.

Node matmuls are built through a pluggable ``linear_factory`` so the same
tree runs dense (``nn.Linear``) in HybridNet and strassenified
(``StrassenLinear``) in ST-HybridNet — the paper strassenifies "the matrix
multiplications associated with the entire hybrid network", tree included.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.autodiff.tensor import Tensor
from repro.errors import ConfigError
from repro.nn import init
from repro.nn.linear import Linear
from repro.nn.module import Module, Parameter
from repro.utils.rng import SeedLike, new_rng

LinearFactory = Callable[[int, int], Module]


def tree_num_nodes(depth: int) -> int:
    """Total nodes of a complete binary tree of the given depth (7 for T=2)."""
    return 2 ** (depth + 1) - 1


def tree_num_internal(depth: int) -> int:
    """Internal (branching) nodes (3 for T=2)."""
    return 2**depth - 1


class BonsaiTree(Module):
    """Single shallow Bonsai tree classifier.

    Parameters
    ----------
    input_dim:
        Dimension ``D`` of the raw input vector.
    num_labels:
        Number of classes ``L``.
    depth:
        Tree depth ``T``; nodes = ``2^(T+1) − 1``.
    projection_dim:
        Low dimension ``D̂`` of the learned projection ``Z``; ``None`` uses
        the input directly (identity projection — the hybrid network's conv
        stack already produced a low-dimensional feature).
    prediction_sigma:
        The σ inside ``tanh(σ Vᵀẑ)``.
    branch_sharpness:
        Initial sharpness of the soft branching sigmoid; annealed upward by
        :class:`~repro.core.bonsai.schedule.BonsaiAnnealingSchedule`.
        Inference always branches hard.
    linear_factory:
        ``f(din, dout) -> Module`` building each node matmul (``W_k``,
        ``V_k`` and ``θ_k``).  Defaults to a dense bias-free ``Linear``.
    """

    def __init__(
        self,
        input_dim: int,
        num_labels: int,
        depth: int = 2,
        projection_dim: Optional[int] = None,
        prediction_sigma: float = 1.0,
        branch_sharpness: float = 1.0,
        linear_factory: Optional[LinearFactory] = None,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        if depth < 1:
            raise ConfigError(f"tree depth must be >= 1; got {depth}")
        rng = new_rng(rng)
        self.input_dim = input_dim
        self.num_labels = num_labels
        self.depth = depth
        self.projection_dim = projection_dim
        self.prediction_sigma = prediction_sigma
        self.branch_sharpness = branch_sharpness

        effective_dim = projection_dim if projection_dim is not None else input_dim
        self.effective_dim = effective_dim

        if projection_dim is not None:
            self.projection: Optional[Parameter] = Parameter(
                init.glorot_uniform((projection_dim, input_dim), input_dim, projection_dim, rng),
                name="bonsai.Z",
            )
        else:
            self.projection = None

        if linear_factory is None:
            def linear_factory(din: int, dout: int, _rng=rng) -> Module:
                return Linear(din, dout, bias=False, rng=_rng)

        self.num_nodes = tree_num_nodes(depth)
        self.num_internal = tree_num_internal(depth)
        for k in range(self.num_nodes):
            setattr(self, f"w{k}", linear_factory(effective_dim, num_labels))
            setattr(self, f"v{k}", linear_factory(effective_dim, num_labels))
        for k in range(self.num_internal):
            setattr(self, f"theta{k}", linear_factory(effective_dim, 1))

    # ------------------------------------------------------------------ #

    def project(self, x: Tensor) -> Tensor:
        """``ẑ = Z x`` (or identity when no projection is learned)."""
        if self.projection is None:
            return x
        return x @ self.projection.T

    def path_weights(self, z: Tensor) -> List[Tensor]:
        """Per-node path weights ``p_k`` of shape (N, 1).

        Training: products of smooth branch sigmoids with the current
        ``branch_sharpness``.  Evaluation: hard 0/1 indicators of the
        traversed root-to-leaf path.
        """
        n = z.shape[0]
        weights: List[Optional[Tensor]] = [None] * self.num_nodes
        weights[0] = Tensor(np.ones((n, 1), dtype=z.dtype))
        for k in range(self.num_internal):
            theta_score = getattr(self, f"theta{k}")(z)  # (N, 1)
            if self.training:
                go_left = (theta_score * (2.0 * self.branch_sharpness)).sigmoid()
            else:
                go_left = Tensor((theta_score.data > 0).astype(z.dtype))
            weights[2 * k + 1] = weights[k] * go_left
            weights[2 * k + 2] = weights[k] * (1.0 - go_left)
        return weights  # type: ignore[return-value]

    def node_score(self, k: int, z: Tensor) -> Tensor:
        """Non-linear prediction of node ``k``: ``W_kᵀẑ ∘ tanh(σ V_kᵀẑ)``."""
        w_score = getattr(self, f"w{k}")(z)
        v_score = getattr(self, f"v{k}")(z)
        return w_score * (v_score * self.prediction_sigma).tanh()

    def forward(self, x: Tensor) -> Tensor:
        """Class scores: path-weighted sum of all node predictions."""
        if x.ndim > 2:
            x = x.flatten(1)
        z = self.project(x)
        weights = self.path_weights(z)
        out: Optional[Tensor] = None
        for k in range(self.num_nodes):
            term = self.node_score(k, z) * weights[k]
            out = term if out is None else out + term
        return out

    # ------------------------------------------------------------------ #

    def traversed_paths(self, x: Tensor) -> np.ndarray:
        """Leaf index reached by each sample under hard branching.

        Diagnostic / test helper; shape (N,), values in ``[0, 2^depth)``.
        """
        was_training = self.training
        self.eval()
        try:
            if x.ndim > 2:
                x = x.flatten(1)
            z = self.project(x)
            weights = self.path_weights(z)
        finally:
            self.train(was_training)
        first_leaf = self.num_internal
        leaf_weights = np.concatenate(
            [weights[k].data for k in range(first_leaf, self.num_nodes)], axis=1
        )
        return np.argmax(leaf_weights, axis=1)

    def extra_repr(self) -> str:
        proj = self.projection_dim if self.projection is not None else "identity"
        return (
            f"D={self.input_dim}, D_hat={proj}, L={self.num_labels}, "
            f"depth={self.depth}, nodes={self.num_nodes}"
        )
