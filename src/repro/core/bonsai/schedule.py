"""Branching-sharpness annealing for Bonsai training."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bonsai.tree import BonsaiTree
from repro.training.trainer import Callback, Trainer


@dataclass
class BonsaiAnnealingSchedule(Callback):
    """Geometrically anneal every tree's ``branch_sharpness``.

    Starts at ``start`` and reaches ``end`` at the final epoch, so inputs
    move from traversing many paths softly to effectively one path — the
    trick that makes the discontinuous tree differentiable (paper §3,
    "End-to-end training").
    """

    start: float = 1.0
    end: float = 16.0
    total_epochs: int = 1

    def _sharpness(self, epoch: int) -> float:
        if self.total_epochs <= 1:
            return self.end
        t = min(epoch / (self.total_epochs - 1), 1.0)
        return float(self.start * (self.end / self.start) ** t)

    def on_epoch_begin(self, trainer: Trainer, epoch: int) -> None:
        sharpness = self._sharpness(epoch)
        for module in trainer.model.modules():
            if isinstance(module, BonsaiTree):
                module.branch_sharpness = sharpness
