"""Hybrid-network hyperparameter configurations (paper §4, Table 5)."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class HybridConfig:
    """Architecture hyperparameters of (ST-)HybridNet.

    ``num_conv_layers`` counts the standard conv plus DS blocks (the paper's
    Table 5 speaks of "2/3 convolutional layers" = Conv1 + 1 or 2 DS
    blocks).  ``r_fraction`` is the strassen hidden-width rule for conv
    layers (``r = r_fraction · c_out``); tree matmuls always use ``r = L``.
    """

    num_labels: int = 12
    width: int = 64
    num_conv_layers: int = 3
    tree_depth: int = 2
    input_shape: Tuple[int, int] = (49, 10)
    r_fraction: float = 0.75
    prediction_sigma: float = 1.0

    def __post_init__(self) -> None:
        if self.num_conv_layers < 1:
            raise ConfigError("need at least the standard conv layer")
        if self.tree_depth < 1:
            raise ConfigError("tree depth must be >= 1")

    @property
    def num_ds_blocks(self) -> int:
        """DS blocks following the standard convolution."""
        return self.num_conv_layers - 1

    @property
    def conv_r(self) -> int:
        """Strassen hidden width of standard/pointwise conv layers."""
        return max(1, round(self.r_fraction * self.width))

    @property
    def tree_r(self) -> int:
        """Strassen hidden width of tree-node matmuls (= L, per the paper)."""
        return self.num_labels

    def scaled(self, width: int) -> "HybridConfig":
        """Same architecture at a different channel width (CI scale)."""
        return replace(self, width=width)


#: the configuration the paper converges on (3 conv layers, depth-2 tree)
PAPER_HYBRID = HybridConfig()

#: Table 5's ablation grid, keyed by its row description
TABLE5_CONFIGS: Dict[str, HybridConfig] = {
    "2 conv layers, D=2, N=7": replace(PAPER_HYBRID, num_conv_layers=2, tree_depth=2),
    "3 conv layers, D=1, N=3": replace(PAPER_HYBRID, num_conv_layers=3, tree_depth=1),
    "3 conv layers, D=2, N=7": PAPER_HYBRID,
}
