"""HybridNet — the uncompressed hybrid neural-tree network (paper Fig. 1).

Conv(width, 10x4, s2x2) → BN → ReLU → ``num_ds_blocks`` DS blocks → global
average pool → Bonsai tree (identity projection: the conv stack *is* the
projection into the low-dimensional space, replacing Bonsai's FC matrix Z).

At paper scale (width 64, 2 DS blocks, depth-2 tree) the analytic costs are
1.50 M MACs and ≈24 K fp32 parameters ≈ 94 KB — Table 3's HybridNet row.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.autodiff.tensor import Tensor
from repro.core.bonsai.tree import BonsaiTree, tree_num_internal, tree_num_nodes
from repro.core.hybrid.config import HybridConfig
from repro.costmodel.counts import OpCounts
from repro.costmodel.layers import (
    bonsai_counts,
    conv2d_counts,
    depthwise_conv2d_counts,
)
from repro.costmodel.memory import SizeBreakdown
from repro.costmodel.report import CostReport
from repro.nn import BatchNorm2d, Conv2d, DSConvBlock, GlobalAvgPool2d, Module
from repro.utils.rng import SeedLike, new_rng


class HybridNet(Module):
    """Uncompressed hybrid neural-tree KWS network."""

    def __init__(self, config: Optional[HybridConfig] = None, rng: SeedLike = None) -> None:
        super().__init__()
        self.config = config or HybridConfig()
        cfg = self.config
        rng = new_rng(rng)

        self.conv1 = Conv2d(
            1, cfg.width, (10, 4), stride=(2, 2), padding=(5, 1), bias=False, rng=rng
        )
        self.bn1 = BatchNorm2d(cfg.width)
        for i in range(cfg.num_ds_blocks):
            setattr(self, f"ds{i}", DSConvBlock(cfg.width, cfg.width, 3, padding=1, rng=rng))
        self.pool = GlobalAvgPool2d()
        self.tree = BonsaiTree(
            input_dim=cfg.width,
            num_labels=cfg.num_labels,
            depth=cfg.tree_depth,
            projection_dim=None,
            prediction_sigma=cfg.prediction_sigma,
            rng=rng,
        )

    # ------------------------------------------------------------------ #

    @property
    def feature_hw(self) -> Tuple[int, int]:
        """Spatial size after conv1 (preserved by the stride-1 DS blocks)."""
        t, f = self.config.input_shape
        return ((t + 2 * 5 - 10) // 2 + 1, (f + 2 * 1 - 4) // 2 + 1)

    def features(self, x: Tensor) -> Tensor:
        """The conv feature extractor: (N, 49, 10) → (N, width)."""
        if x.ndim == 3:
            x = x.reshape(x.shape[0], 1, x.shape[1], x.shape[2])
        x = self.bn1(self.conv1(x)).relu()
        for i in range(self.config.num_ds_blocks):
            x = getattr(self, f"ds{i}")(x)
        return self.pool(x)

    def forward(self, x: Tensor) -> Tensor:
        return self.tree(self.features(x))

    # ------------------------------------------------------------------ #

    def cost_report(
        self,
        weight_bits: int = 32,
        act_bits: int = 32,
        name: Optional[str] = None,
    ) -> CostReport:
        """Analytic cost; Table 3 prices the uncompressed hybrid at fp32."""
        cfg = self.config
        oh, ow = self.feature_hw
        w = cfg.width
        nodes = tree_num_nodes(cfg.tree_depth)
        internal = tree_num_internal(cfg.tree_depth)

        ops = conv2d_counts(1, w, (10, 4), (oh, ow))
        for _ in range(cfg.num_ds_blocks):
            ops = ops + depthwise_conv2d_counts(w, (3, 3), (oh, ow))
            ops = ops + conv2d_counts(w, w, (1, 1), (oh, ow))
        ops = ops + bonsai_counts(w, w, cfg.num_labels, nodes, internal, project=False)

        size = SizeBreakdown()
        size.add("conv1.w", w * 40, weight_bits)
        size.add("conv1.b", w, weight_bits)
        for i in range(cfg.num_ds_blocks):
            size.add(f"ds{i}.dw.w", w * 9, weight_bits)
            size.add(f"ds{i}.dw.b", w, weight_bits)
            size.add(f"ds{i}.pw.w", w * w, weight_bits)
            size.add(f"ds{i}.pw.b", w, weight_bits)
        size.add("tree.W", nodes * w * cfg.num_labels, weight_bits)
        size.add("tree.V", nodes * w * cfg.num_labels, weight_bits)
        size.add("tree.theta", internal * w, weight_bits)

        t, f = cfg.input_shape
        acts = [t * f * act_bits / 8.0, oh * ow * w * act_bits / 8.0]
        for _ in range(cfg.num_ds_blocks):
            acts.append(oh * ow * w * act_bits / 8.0)
            acts.append(oh * ow * w * act_bits / 8.0)
        acts.append(w * act_bits / 8.0)
        acts.append(cfg.num_labels * act_bits / 8.0)
        return CostReport(name or "HybridNet", ops, size, acts)
