"""The hybrid neural-tree architecture (paper §3) and its strassenified form.

``HybridNet`` = a few DS-convolutional layers for local feature extraction
(Conv + 2 DS blocks at paper scale) → global average pool → a single shallow
Bonsai tree for global interaction and classification.  ``STHybridNet``
strassenifies every matrix multiplication in the network — convolutions and
tree nodes alike — with hidden widths ``r = 0.75·c_out`` (convs) and
``r = L`` (tree node matmuls), per the paper.
"""

from repro.core.hybrid.config import HybridConfig, PAPER_HYBRID, TABLE5_CONFIGS
from repro.core.hybrid.blocks import StrassenDSConvBlock
from repro.core.hybrid.network import HybridNet
from repro.core.hybrid.strassenified import STHybridNet

__all__ = [
    "HybridConfig",
    "PAPER_HYBRID",
    "TABLE5_CONFIGS",
    "StrassenDSConvBlock",
    "HybridNet",
    "STHybridNet",
]
