"""ST-HybridNet — the strassenified hybrid network (the paper's headline).

Every matrix multiplication of :class:`~repro.core.hybrid.network.HybridNet`
is replaced by a ternary sum-product network: the standard conv and the
pointwise convs with hidden width ``r = 0.75·c_out``, the depthwise convs
with the grouped SPN (``r = c``), and all 2·nodes + internal tree matmuls
with ``r = L``.  At paper scale the analytic costs are ≈0.03 M muls +
≈2.3 M adds ≈ 2.4 M ops — Table 4's ST-HybridNet row.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.autodiff.tensor import Tensor
from repro.core.bonsai.tree import BonsaiTree, tree_num_internal, tree_num_nodes
from repro.core.hybrid.blocks import StrassenDSConvBlock
from repro.core.hybrid.config import HybridConfig
from repro.core.strassen.layers import StrassenConv2d, StrassenLinear
from repro.costmodel.counts import OpCounts
from repro.costmodel.layers import (
    strassen_bonsai_counts,
    strassen_conv2d_counts,
    strassen_depthwise_counts,
)
from repro.costmodel.memory import SizeBreakdown
from repro.costmodel.report import CostReport
from repro.nn import BatchNorm2d, GlobalAvgPool2d, Module
from repro.utils.rng import SeedLike, new_rng

TERNARY_BITS = 2


class STHybridNet(Module):
    """Strassenified hybrid neural-tree KWS network."""

    def __init__(self, config: Optional[HybridConfig] = None, rng: SeedLike = None) -> None:
        super().__init__()
        self.config = config or HybridConfig()
        cfg = self.config
        rng = new_rng(rng)

        self.conv1 = StrassenConv2d(
            1,
            cfg.width,
            (10, 4),
            r=cfg.conv_r,
            stride=(2, 2),
            padding=(5, 1),
            bias=False,
            rng=rng,
        )
        self.bn1 = BatchNorm2d(cfg.width)
        for i in range(cfg.num_ds_blocks):
            setattr(
                self,
                f"ds{i}",
                StrassenDSConvBlock(cfg.width, cfg.width, r=cfg.conv_r, padding=1, rng=rng),
            )
        self.pool = GlobalAvgPool2d()

        tree_r = cfg.tree_r

        def strassen_factory(din: int, dout: int) -> StrassenLinear:
            return StrassenLinear(din, dout, r=tree_r, bias=False, rng=rng)

        self.tree = BonsaiTree(
            input_dim=cfg.width,
            num_labels=cfg.num_labels,
            depth=cfg.tree_depth,
            projection_dim=None,
            prediction_sigma=cfg.prediction_sigma,
            linear_factory=strassen_factory,
            rng=rng,
        )

    # ------------------------------------------------------------------ #

    @property
    def feature_hw(self) -> Tuple[int, int]:
        """Spatial size after conv1."""
        t, f = self.config.input_shape
        return ((t + 2 * 5 - 10) // 2 + 1, (f + 2 * 1 - 4) // 2 + 1)

    def features(self, x: Tensor) -> Tensor:
        """Strassenified conv feature extractor: (N, 49, 10) → (N, width)."""
        if x.ndim == 3:
            x = x.reshape(x.shape[0], 1, x.shape[1], x.shape[2])
        x = self.bn1(self.conv1(x)).relu()
        for i in range(self.config.num_ds_blocks):
            x = getattr(self, f"ds{i}")(x)
        return self.pool(x)

    def forward(self, x: Tensor) -> Tensor:
        return self.tree(self.features(x))

    # ------------------------------------------------------------------ #

    def cost_report(
        self,
        a_hat_bits: int = 32,
        bias_bits: int = 32,
        act_bits: int = 32,
        dw_intermediate_bits: Optional[int] = None,
        name: Optional[str] = None,
    ) -> CostReport:
        """Analytic cost of the deployed (collapsed, BN-folded) network.

        ``dw_intermediate_bits`` prices the W_b-intermediate activations of
        the strassenified depthwise layers separately (Table 6 keeps them at
        16 bits while everything else drops to 8).
        """
        cfg = self.config
        oh, ow = self.feature_hw
        w, r = cfg.width, cfg.conv_r
        nodes = tree_num_nodes(cfg.tree_depth)
        internal = tree_num_internal(cfg.tree_depth)
        if dw_intermediate_bits is None:
            dw_intermediate_bits = act_bits

        ops = strassen_conv2d_counts(1, w, (10, 4), (oh, ow), r)
        for _ in range(cfg.num_ds_blocks):
            ops = ops + strassen_depthwise_counts(w, (3, 3), (oh, ow))
            ops = ops + strassen_conv2d_counts(w, w, (1, 1), (oh, ow), r)
        ops = ops + strassen_bonsai_counts(w, cfg.num_labels, nodes, internal, cfg.tree_r)

        size = SizeBreakdown()
        size.add("conv1.wb", r * 40, TERNARY_BITS)
        size.add("conv1.wc", w * r, TERNARY_BITS)
        size.add("conv1.a_hat", r, a_hat_bits)
        size.add("conv1.bias", w, bias_bits)  # folded batch norm
        for i in range(cfg.num_ds_blocks):
            size.add(f"ds{i}.dw.wb", w * 9, TERNARY_BITS)
            size.add(f"ds{i}.dw.wc", w, TERNARY_BITS)
            size.add(f"ds{i}.dw.a_hat", w, a_hat_bits)
            size.add(f"ds{i}.dw.bias", w, bias_bits)
            size.add(f"ds{i}.pw.wb", r * w, TERNARY_BITS)
            size.add(f"ds{i}.pw.wc", w * r, TERNARY_BITS)
            size.add(f"ds{i}.pw.a_hat", r, a_hat_bits)
            size.add(f"ds{i}.pw.bias", w, bias_bits)
        tree_r = cfg.tree_r
        size.add("tree.WV.wb", 2 * nodes * tree_r * w, TERNARY_BITS)
        size.add("tree.WV.wc", 2 * nodes * cfg.num_labels * tree_r, TERNARY_BITS)
        size.add("tree.WV.a_hat", 2 * nodes * tree_r, a_hat_bits)
        size.add("tree.theta.wb", internal * tree_r * w, TERNARY_BITS)
        size.add("tree.theta.wc", internal * tree_r, TERNARY_BITS)
        size.add("tree.theta.a_hat", internal * tree_r, a_hat_bits)

        t, f = cfg.input_shape
        plane = oh * ow
        acts = [
            t * f * act_bits / 8.0,
            plane * r * act_bits / 8.0,  # conv1 SPN hidden
            plane * w * act_bits / 8.0,  # conv1 output
        ]
        for _ in range(cfg.num_ds_blocks):
            acts.append(plane * w * dw_intermediate_bits / 8.0)  # dw W_b intermediate
            acts.append(plane * w * dw_intermediate_bits / 8.0)  # dw ⊙â product
            acts.append(plane * r * act_bits / 8.0)  # pw SPN hidden
            acts.append(plane * w * act_bits / 8.0)  # pw output
        acts.append(w * act_bits / 8.0)
        acts.append(cfg.num_labels * act_bits / 8.0)
        return CostReport(name or "ST-HybridNet", ops, size, acts)
