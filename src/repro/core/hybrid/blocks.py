"""Strassenified depthwise-separable block."""

from __future__ import annotations

from repro.autodiff.ops_conv import IntPair
from repro.autodiff.tensor import Tensor
from repro.core.strassen.layers import StrassenConv2d, StrassenDepthwiseConv2d
from repro.nn import BatchNorm2d, Module
from repro.utils.rng import SeedLike, new_rng


class StrassenDSConvBlock(Module):
    """DS block with both halves strassenified.

    Mirrors :class:`~repro.nn.conv.DSConvBlock` — DW → BN → ReLU → PW → BN →
    ReLU — with the depthwise conv replaced by a grouped-SPN
    :class:`StrassenDepthwiseConv2d` and the pointwise conv by a
    :class:`StrassenConv2d` of hidden width ``r``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        r: int,
        kernel_size: IntPair = 3,
        stride: IntPair = 1,
        padding: IntPair = 1,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        rng = new_rng(rng)
        self.depthwise = StrassenDepthwiseConv2d(
            in_channels, kernel_size, stride=stride, padding=padding, bias=False, rng=rng
        )
        self.bn_dw = BatchNorm2d(in_channels)
        self.pointwise = StrassenConv2d(
            in_channels, out_channels, 1, r=r, stride=1, padding=0, bias=False, rng=rng
        )
        self.bn_pw = BatchNorm2d(out_channels)

    def forward(self, x: Tensor) -> Tensor:
        x = self.bn_dw(self.depthwise(x)).relu()
        return self.bn_pw(self.pointwise(x)).relu()
