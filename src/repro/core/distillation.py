"""Knowledge distillation between uncompressed and strassenified networks.

The paper uses the uncompressed hybrid network as the teacher and the
ST-HybridNet as the student (and likewise DS-CNN → ST-DS-CNN in §2).  All
heavy lifting lives in :func:`repro.training.losses.distillation_loss`; this
module provides the convenience constructor wiring a teacher into a
:class:`~repro.training.trainer.Trainer`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.nn.module import Module
from repro.training.trainer import Callback, Trainer, TrainConfig


def make_distillation_trainer(
    student: Module,
    teacher: Module,
    config: TrainConfig,
    callbacks: Optional[List[Callback]] = None,
    temperature: float = 4.0,
    alpha: float = 0.7,
) -> Trainer:
    """Build a Trainer that distils ``teacher`` into ``student``.

    The teacher runs in inference mode on every batch; its logits feed the
    soft term of the distillation loss.  ``alpha`` and ``temperature``
    follow the StrassenNets defaults.
    """
    teacher.eval()
    return Trainer(
        student,
        config,
        callbacks=callbacks,
        teacher=teacher,
        distill_temperature=temperature,
        distill_alpha=alpha,
    )
