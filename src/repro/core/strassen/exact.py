"""Exact Strassen sum-product matrices (reference / validation).

Strassen's classical algorithm multiplies two 2×2 matrices with 7 products.
Expressed as the paper's equation (1), it is a sum-product network with
ternary ``W_a, W_b ∈ K^{7×4}`` and ``W_c ∈ K^{4×7}``.  These exact matrices
anchor the test suite: the generic SPN evaluator applied to them must
reproduce dense matmul to machine precision, which validates both the SPN
algebra and the layer implementations built on it.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def exact_strassen_2x2() -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The ternary (W_a, W_b, W_c) of Strassen's 2×2 algorithm.

    Conventions: matrices are vectorised row-major,
    ``vec([[a11, a12], [a21, a22]]) = [a11, a12, a21, a22]``, and
    ``vec(C) = W_c [(W_b vec(B)) ⊙ (W_a vec(A))]`` computes ``C = A @ B``.
    """
    # M1..M7 in terms of A = [[a11,a12],[a21,a22]]
    wa = np.array(
        [
            [1, 0, 0, 1],    # M1: (a11 + a22)
            [0, 0, 1, 1],    # M2: (a21 + a22)
            [1, 0, 0, 0],    # M3: a11
            [0, 0, 0, 1],    # M4: a22
            [1, 1, 0, 0],    # M5: (a11 + a12)
            [-1, 0, 1, 0],   # M6: (a21 - a11)
            [0, 1, 0, -1],   # M7: (a12 - a22)
        ],
        dtype=np.float64,
    )
    wb = np.array(
        [
            [1, 0, 0, 1],    # M1: (b11 + b22)
            [1, 0, 0, 0],    # M2: b11
            [0, 1, 0, -1],   # M3: (b12 - b22)
            [-1, 0, 1, 0],   # M4: (b21 - b11)
            [0, 0, 0, 1],    # M5: b22
            [1, 1, 0, 0],    # M6: (b11 + b12)
            [0, 0, 1, 1],    # M7: (b21 + b22)
        ],
        dtype=np.float64,
    )
    wc = np.array(
        [
            [1, 0, 0, 1, -1, 0, 1],   # c11 = M1 + M4 - M5 + M7
            [0, 0, 1, 0, 1, 0, 0],    # c12 = M3 + M5
            [0, 1, 0, 1, 0, 0, 0],    # c21 = M2 + M4
            [1, -1, 1, 0, 0, 1, 0],   # c22 = M1 - M2 + M3 + M6
        ],
        dtype=np.float64,
    )
    return wa, wb, wc


def spn_matmul(
    wa: np.ndarray,
    wb: np.ndarray,
    wc: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    out_shape: Tuple[int, int],
) -> np.ndarray:
    """Evaluate ``C = unvec(W_c[(W_b vec(B)) ⊙ (W_a vec(A))])``.

    Pure-NumPy reference evaluator (no autodiff) used by tests and by the
    documentation examples; vectorisation is row-major.
    """
    a_vec = np.asarray(a, dtype=np.float64).reshape(-1)
    b_vec = np.asarray(b, dtype=np.float64).reshape(-1)
    hidden = (wb @ b_vec) * (wa @ a_vec)
    return (wc @ hidden).reshape(out_shape)
