"""StrassenNets (Tschannen et al. 2018): ternary sum-product matmuls.

A strassenified matrix multiplication replaces ``C = A·B`` with the 2-layer
sum-product network ``vec(C) = W_c[(W_b vec(B)) ⊙ (W_a vec(A))]`` where
``W_a, W_b, W_c`` are ternary.  In a DNN layer ``A`` is the (fixed) weight
tensor, so ``â = W_a vec(A)`` collapses to an ``r``-vector of full-precision
weights at inference; following the paper, ``â`` is *learned directly* ("they
are learned jointly as collapsed full-precision â from scratch").

Training follows the paper's three phases:

1. ``full``      — â, W_b, W_c all full-precision;
2. ``quantize``  — W_b/W_c pass through a ternary straight-through
   estimator (full-precision shadows keep accumulating gradients);
3. ``frozen``    — W_b/W_c fixed to their ternary values, their TWN scaling
   factors absorbed into â, and only â (+ biases, batch norm) keep training.

:class:`StrassenSchedule` drives those transitions from epoch numbers.
"""

from repro.core.strassen.exact import (
    exact_strassen_2x2,
    spn_matmul,
)
from repro.core.strassen.layers import (
    PHASES,
    StrassenConv2d,
    StrassenDepthwiseConv2d,
    StrassenLinear,
    StrassenModule,
    freeze_all,
    set_phase,
    strassen_modules,
)
from repro.core.strassen.schedule import StrassenSchedule

__all__ = [
    "exact_strassen_2x2",
    "spn_matmul",
    "PHASES",
    "StrassenModule",
    "StrassenLinear",
    "StrassenConv2d",
    "StrassenDepthwiseConv2d",
    "strassen_modules",
    "set_phase",
    "freeze_all",
    "StrassenSchedule",
]
