"""Three-phase StrassenNets training schedule as a Trainer callback."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.strassen.layers import set_phase
from repro.training.trainer import Callback, History, Trainer
from repro.utils.logging import get_logger

logger = get_logger("strassen")


@dataclass
class StrassenSchedule(Callback):
    """Switch every strassen layer between phases at epoch boundaries.

    Epochs ``[0, full_epochs)`` run full-precision; ``[full_epochs,
    full_epochs + quantize_epochs)`` run with the ternary STE; everything
    after freezes the ternary matrices (absorbing scales into â) and
    fine-tunes â / biases / batch-norm.  Mirrors the paper's 135 + 135 + 135
    epoch recipe at any scale.
    """

    full_epochs: int
    quantize_epochs: int

    def on_epoch_begin(self, trainer: Trainer, epoch: int) -> None:
        if epoch < self.full_epochs:
            changed = set_phase(trainer.model, "full")
        elif epoch < self.full_epochs + self.quantize_epochs:
            changed = set_phase(trainer.model, "quantize")
        else:
            changed = set_phase(trainer.model, "frozen")
        if changed:
            logger.info("epoch %d: switched %d strassen layers", epoch, changed)

    def on_epoch_end(self, trainer: Trainer, epoch: int, history: History) -> None:
        pass
