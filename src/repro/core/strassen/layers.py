"""Strassenified network layers (linear / conv / depthwise).

Each layer holds the collapsed full-precision vector ``â`` plus ternary
transforms ``W_b`` (input side) and ``W_c`` (output side), trained through
the three-phase schedule described in :mod:`repro.core.strassen`.  The
``phase`` attribute selects behaviour:

* ``"full"``     — W_b / W_c used at full precision,
* ``"quantize"`` — W_b / W_c pass through :func:`ternary_ste`,
* ``"frozen"``   — W_b / W_c hold literal ternary values (scales already
  absorbed into â) and no longer receive gradients.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.autodiff.ops_conv import IntPair, _pair, conv2d, depthwise_conv2d
from repro.autodiff.ste import ternarize_array, ternarize_array_topk, ternary_ste
from repro.autodiff.tensor import Tensor
from repro.costmodel.memory import SizeBreakdown
from repro.errors import ConfigError
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.utils.rng import SeedLike, new_rng

PHASES = ("full", "quantize", "frozen")

#: bit-width of a packed ternary weight in deployment size accounting
TERNARY_BITS = 2


class StrassenModule(Module):
    """Shared phase machinery for strassenified layers.

    ``quant_hidden`` / ``quant_output`` are optional callables (e.g.
    :class:`~repro.quantization.fixedpoint.FixedPointQuantizer`) applied to
    the SPN hidden activations and the layer output during *evaluation* —
    the hook the post-training-quantisation experiments (Table 6) use to
    price 8-bit vs mixed 8/16-bit activations.
    """

    #: optional cap on nonzeros per W_b row — the paper's future-work
    #: "constrain the number of additions" extension.  ``None`` = unlimited.
    addition_budget = None

    def __init__(self) -> None:
        super().__init__()
        self.phase = "full"
        self.quant_hidden = None
        self.quant_output = None

    def _ternarize_wb(self):
        """Ternary (values, alpha) of W_b honouring the addition budget."""
        if self.addition_budget is None:
            return ternarize_array(self.wb.data)
        return ternarize_array_topk(self.wb.data, self.addition_budget)

    def _maybe_quant(self, tensor: Tensor, quantizer) -> Tensor:
        if quantizer is None or self.training:
            return tensor
        return Tensor(quantizer(tensor.data))

    # subclasses expose (wb, wc, a_hat) parameters
    wb: Parameter
    wc: Parameter
    a_hat: Parameter

    def set_phase(self, phase: str) -> None:
        """Switch training phase; entering ``frozen`` quantises in place."""
        if phase not in PHASES:
            raise ConfigError(f"unknown strassen phase {phase!r}; valid: {PHASES}")
        if phase == "frozen" and self.phase != "frozen":
            self.freeze()
            return
        if self.phase == "frozen" and phase != "frozen":
            raise ConfigError("cannot leave the frozen phase (ternary values fixed)")
        self.phase = phase

    def freeze(self) -> None:
        """Fix W_b/W_c to ternary values and absorb their scales into â.

        After freezing only â (and bias / batch norm) keep training — the
        paper's final phase ("we fix the strassen matrices to their learned
        ternary values and continue training… so the scaling factors can be
        absorbed by the full-precision vec(A)").
        """
        ternary_b, alpha_b = self._ternarize_wb()
        ternary_c, alpha_c = ternarize_array(self.wc.data)
        self.wb.data = ternary_b.astype(self.wb.dtype)
        self.wc.data = ternary_c.astype(self.wc.dtype)
        self.wb.requires_grad = False
        self.wc.requires_grad = False
        self.a_hat.data = (self.a_hat.data * alpha_b * alpha_c).astype(self.a_hat.dtype)
        self.phase = "frozen"

    def _effective_transforms(self) -> Tuple[Tensor, Tensor]:
        """(W_b, W_c) as seen by the forward pass in the current phase."""
        if self.phase == "quantize":
            wb = ternary_ste(self.wb, max_nonzeros_per_row=self.addition_budget)
            return wb, ternary_ste(self.wc)
        return self.wb, self.wc

    def ternary_values(self) -> Tuple[np.ndarray, np.ndarray]:
        """Deployment ternary matrices (quantising on the fly if needed)."""
        if self.phase == "frozen":
            return self.wb.data.copy(), self.wc.data.copy()
        return self._ternarize_wb()[0], ternarize_array(self.wc.data)[0]

    def wb_nonzeros(self) -> int:
        """Nonzero count of the (deployment) ternary W_b — the adds it costs."""
        return int(np.count_nonzero(self.ternary_values()[0]))

    def extra_repr(self) -> str:
        return f"phase={self.phase}"


class StrassenLinear(StrassenModule):
    """Strassenified affine layer: ``y = W_c(â ⊙ (W_b x)) + b``.

    ``r`` is the SPN hidden width — the number of multiplications per
    forward pass and the length of ``â``.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        r: int,
        bias: bool = True,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        if r <= 0:
            raise ConfigError(f"hidden width r must be positive; got {r}")
        rng = new_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.r = r
        self.wb = Parameter(
            init.glorot_uniform((r, in_features), in_features, r, rng), name="st.wb"
        )
        self.wc = Parameter(
            init.glorot_uniform((out_features, r), r, out_features, rng), name="st.wc"
        )
        self.a_hat = Parameter(init.ones(r), name="st.a_hat")
        self.bias: Optional[Parameter] = (
            Parameter(init.zeros(out_features), name="st.bias") if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        wb, wc = self._effective_transforms()
        hidden = self._maybe_quant(x @ wb.T, self.quant_hidden)
        out = (hidden * self.a_hat) @ wc.T
        if self.bias is not None:
            out = out + self.bias
        return self._maybe_quant(out, self.quant_output)

    def size_breakdown(self, a_hat_bits: int = 32, bias_bits: int = 32) -> SizeBreakdown:
        """Deployment storage: ternary transforms + â + bias."""
        sb = SizeBreakdown()
        sb.add("wb", self.wb.size, TERNARY_BITS)
        sb.add("wc", self.wc.size, TERNARY_BITS)
        sb.add("a_hat", self.a_hat.size, a_hat_bits)
        if self.bias is not None:
            sb.add("bias", self.bias.size, bias_bits)
        return sb

    def extra_repr(self) -> str:
        return (
            f"in={self.in_features}, out={self.out_features}, r={self.r}, "
            f"phase={self.phase}"
        )


class StrassenConv2d(StrassenModule):
    """Strassenified standard (or pointwise) convolution.

    ``W_b`` is a ternary convolution with ``r`` output channels and the
    original receptive field; ``W_c`` is a ternary 1×1 convolution mapping
    ``r → c_out``; ``â`` scales the ``r`` hidden channels.  With
    ``r = c_out`` on a 1×1 layer this is literally the paper's "two
    equal-sized 1×1 convolutions with ternary weight filters".
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: IntPair,
        r: int,
        stride: IntPair = 1,
        padding: IntPair = 0,
        bias: bool = True,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        if r <= 0:
            raise ConfigError(f"hidden width r must be positive; got {r}")
        rng = new_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        self.r = r
        kh, kw = self.kernel_size
        fan_in = in_channels * kh * kw
        self.wb = Parameter(
            init.kaiming_uniform((r, in_channels, kh, kw), fan_in, rng), name="st.wb"
        )
        self.wc = Parameter(
            init.kaiming_uniform((out_channels, r, 1, 1), r, rng), name="st.wc"
        )
        self.a_hat = Parameter(init.ones(r), name="st.a_hat")
        self.bias: Optional[Parameter] = (
            Parameter(init.zeros(out_channels), name="st.bias") if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        wb, wc = self._effective_transforms()
        hidden = conv2d(x, wb, None, stride=self.stride, padding=self.padding)
        hidden = self._maybe_quant(hidden, self.quant_hidden)
        hidden = hidden * self.a_hat.reshape(1, self.r, 1, 1)
        out = conv2d(hidden, wc, self.bias, stride=1, padding=0)
        return self._maybe_quant(out, self.quant_output)

    def size_breakdown(self, a_hat_bits: int = 32, bias_bits: int = 32) -> SizeBreakdown:
        """Deployment storage: ternary transforms + â + bias."""
        sb = SizeBreakdown()
        sb.add("wb", self.wb.size, TERNARY_BITS)
        sb.add("wc", self.wc.size, TERNARY_BITS)
        sb.add("a_hat", self.a_hat.size, a_hat_bits)
        if self.bias is not None:
            sb.add("bias", self.bias.size, bias_bits)
        return sb

    def extra_repr(self) -> str:
        return (
            f"{self.in_channels}->{self.out_channels}, k={self.kernel_size}, "
            f"r={self.r}, s={self.stride}, p={self.padding}, phase={self.phase}"
        )


class StrassenDepthwiseConv2d(StrassenModule):
    """Strassenified depthwise convolution (grouped SPN, one unit/channel).

    ``W_b`` is a ternary depthwise filter (C, KH, KW), ``â`` scales each
    channel, and the block-diagonal ``W_c`` degenerates to one ternary value
    per channel.  This is the structure implied by the paper's Table-6
    accounting (the 16-bit "intermediate activations … post-convolution with
    strassen matrix W_b" have exactly C channels).
    """

    def __init__(
        self,
        channels: int,
        kernel_size: IntPair,
        stride: IntPair = 1,
        padding: IntPair = 1,
        bias: bool = True,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        rng = new_rng(rng)
        self.channels = channels
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        self.r = channels
        kh, kw = self.kernel_size
        self.wb = Parameter(
            init.kaiming_uniform((channels, kh, kw), kh * kw, rng), name="st.wb"
        )
        self.wc = Parameter(init.ones(channels), name="st.wc")
        self.a_hat = Parameter(init.ones(channels), name="st.a_hat")
        self.bias: Optional[Parameter] = (
            Parameter(init.zeros(channels), name="st.bias") if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        wb, wc = self._effective_transforms()
        hidden = depthwise_conv2d(x, wb, None, stride=self.stride, padding=self.padding)
        hidden = self._maybe_quant(hidden, self.quant_hidden)
        scale = (self.a_hat * wc).reshape(1, self.channels, 1, 1)
        out = hidden * scale
        if self.bias is not None:
            out = out + self.bias.reshape(1, self.channels, 1, 1)
        return self._maybe_quant(out, self.quant_output)

    def size_breakdown(self, a_hat_bits: int = 32, bias_bits: int = 32) -> SizeBreakdown:
        """Deployment storage: ternary transforms + â + bias."""
        sb = SizeBreakdown()
        sb.add("wb", self.wb.size, TERNARY_BITS)
        sb.add("wc", self.wc.size, TERNARY_BITS)
        sb.add("a_hat", self.a_hat.size, a_hat_bits)
        if self.bias is not None:
            sb.add("bias", self.bias.size, bias_bits)
        return sb

    def extra_repr(self) -> str:
        return (
            f"ch={self.channels}, k={self.kernel_size}, s={self.stride}, "
            f"p={self.padding}, phase={self.phase}"
        )


# ---------------------------------------------------------------------- #
# model-tree helpers
# ---------------------------------------------------------------------- #


def strassen_modules(model: Module) -> Iterator[StrassenModule]:
    """Yield every strassenified layer in ``model`` (depth-first)."""
    for module in model.modules():
        if isinstance(module, StrassenModule):
            yield module


def set_phase(model: Module, phase: str) -> int:
    """Set the phase of every strassen layer; returns how many changed."""
    count = 0
    for module in strassen_modules(model):
        if module.phase != phase:
            module.set_phase(phase)
            count += 1
    return count


def freeze_all(model: Module) -> int:
    """Freeze every strassen layer (idempotent); returns how many froze."""
    count = 0
    for module in strassen_modules(model):
        if module.phase != "frozen":
            module.freeze()
            count += 1
    return count
