"""The paper's contribution: StrassenNets, Bonsai trees, hybrid networks."""

from repro.core import bonsai, distillation, hybrid, strassen

__all__ = ["strassen", "bonsai", "hybrid", "distillation"]
