"""Sessionful streaming: many concurrent KWS streams over one serving stack.

The paper's workload is always-on keyword spotting, but a deployment never
serves one stream — it serves thousands of concurrent audio sessions, each
with its own featurizer and posterior-smoothing state.  This module adds
that layer on top of the existing data path:

* :class:`StreamSession` — one live stream: incremental windowing (same
  ``hop_ms``/``window_seconds`` arithmetic as
  :class:`~repro.evaluation.streaming.StreamingDetector`), a private
  :class:`~repro.audio.mfcc.MFCC` extractor, a private
  :class:`~repro.evaluation.streaming.PosteriorSmoother`, and per-session
  metrics (windows served, failures, deadline misses, the gap indices a
  worker crash left behind);
* :class:`StreamSessionManager` — owns N sessions and coalesces their
  ready analysis windows *across* sessions into
  :meth:`~repro.serving.cluster.ClusterRouter.submit_many` bursts (one
  control frame per burst; per-window deadlines, priority class and
  version pinning all flow through the existing cluster path).  A
  :class:`~repro.serving.batching.BatchingEngine` or an
  :class:`~repro.serving.frontend.AsyncServingFrontend` can stand in for
  the cluster in single-process settings.

Because windows are featurized with the same MFCC configuration, executed
through a batch-composition-invariant runtime, and smoothed by the same
:class:`PosteriorSmoother` code path, a session's posteriors are **bitwise
identical** to a solo ``StreamingDetector`` run over the same waveform —
``benchmarks/bench_streams.py`` gates exactly that.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.audio.mfcc import MFCC
from repro.errors import AdmissionError, ConfigError, DeadlineExceeded
from repro.evaluation.streaming import (
    DetectionEvent,
    PosteriorSmoother,
    StreamingConfig,
    detect_events,
    num_windows,
)
from repro.serving.priority import Priority
from repro.serving.telemetry import get_registry


@dataclass
class SessionStats:
    """Per-session window accounting.

    ``windows_featurized`` counts windows cut from the fed audio;
    ``windows_submitted`` those handed to the serving backend;
    ``windows_served`` those whose posteriors resolved.  Failed windows are
    split into ``deadline_misses`` and ``windows_failed`` (worker crashes
    and other backend errors); either kind leaves its window index in
    ``gap_windows`` — the session's posterior timeline simply skips those
    windows, exactly the gap a listener would have heard.
    """

    windows_featurized: int = 0
    windows_submitted: int = 0
    windows_served: int = 0
    windows_failed: int = 0
    deadline_misses: int = 0
    gap_windows: List[int] = field(default_factory=list)
    #: per-window featurize→submit wait (manager-side queueing: burst
    #: coalescing, admission sheds) — window-to-decision time splits as
    #: ``queue_s[i] + latencies_s[i]``
    queue_s: List[float] = field(default_factory=list)
    #: per-window submit→resolve latency (the backend's share)
    latencies_s: List[float] = field(default_factory=list)

    @property
    def gaps(self) -> int:
        """Windows lost to failures or deadline misses."""
        return len(self.gap_windows)


class StreamSession:
    """One live keyword-spotting stream inside a session manager.

    Created via :meth:`StreamSessionManager.open`; audio arrives through
    :meth:`feed` (any chunk sizes), analysis windows are cut as soon as
    enough samples exist, and the manager ships them to the backend.
    Resolved posteriors accumulate in window order and are read back with
    :meth:`posteriors` / :meth:`detect`.
    """

    def __init__(
        self,
        session_id: str,
        config: StreamingConfig,
        feature_mean: Optional[np.ndarray],
        feature_std: Optional[np.ndarray],
        total_windows: Optional[int] = None,
    ) -> None:
        self.session_id = session_id
        self.config = config
        self.closed = False
        self.stats = SessionStats()
        self._extractor = MFCC(config.mfcc)
        self._smoother = PosteriorSmoother(config.smoothing_windows, total_windows=total_windows)
        self._feature_mean = feature_mean
        self._feature_std = feature_std
        self._buffer = np.empty(0, dtype=np.float64)
        self._buffer_start = 0  # absolute sample index of _buffer[0]
        self._features_only = False
        self._raw_audio = False
        self._emitted = 0  # windows featurized so far
        #: featurized windows awaiting submission:
        #: (window index, features, monotonic time the window became ready)
        self.ready: Deque[Tuple[int, np.ndarray, float]] = deque()
        #: submitted windows awaiting results: (index, future, submit time)
        self.inflight: Deque[Tuple[int, "Future[np.ndarray]", float]] = deque()
        self._times: List[float] = []
        self._rows: List[np.ndarray] = []

    # -- audio ingest ----------------------------------------------------- #

    def feed(self, samples: np.ndarray) -> int:
        """Append audio; cut and featurize every newly complete window.

        Returns how many windows became ready.  Chunks may be any length —
        windowing follows the same ``hop``/``window`` arithmetic as
        ``StreamingDetector.posteriors`` over the concatenated stream.
        """
        if self.closed:
            raise ConfigError(f"session {self.session_id} is closed")
        if self._features_only:
            raise ConfigError("session already ingests pre-featurized windows")
        self._raw_audio = True
        samples = np.asarray(samples, dtype=np.float64)
        if samples.ndim != 1:
            raise ConfigError("sessions consume 1-D waveforms")
        self._buffer = np.concatenate([self._buffer, samples]) if self._buffer.size else samples
        hop = self.config.hop_samples
        window = self.config.window_samples
        cut = 0
        while True:
            start = self._emitted * hop
            end = start + window
            if end > self._buffer_start + len(self._buffer):
                break
            frame = self._buffer[start - self._buffer_start : end - self._buffer_start]
            features = self._extractor(frame)
            if self._feature_mean is not None:
                features = (features - self._feature_mean) / self._feature_std
            self.ready.append((self._emitted, features.astype(np.float32), time.monotonic()))
            self._emitted += 1
            self.stats.windows_featurized += 1
            cut += 1
            # drop samples no later window can reach
            drop = self._emitted * hop - self._buffer_start
            if drop > 0:
                self._buffer = self._buffer[drop:]
                self._buffer_start += drop
        return cut

    def feed_features(self, features) -> int:
        """Enqueue pre-featurized analysis windows, bypassing the extractor.

        Constrained IoT clients often ship MFCC features instead of raw
        audio; such windows enter the same ready queue and burst path.  A
        session ingests either raw audio or features, never both — the
        windowing arithmetic has no meaning across the two.
        """
        if self.closed:
            raise ConfigError(f"session {self.session_id} is closed")
        if self._raw_audio:
            raise ConfigError("session already ingests raw audio")
        self._features_only = True
        count = 0
        for window in features:
            self.ready.append(
                (self._emitted, np.asarray(window, dtype=np.float32), time.monotonic())
            )
            self._emitted += 1
            self.stats.windows_featurized += 1
            count += 1
        return count

    def close(self) -> None:
        """End of stream: the sub-window tail is discarded (as in batch)."""
        self.closed = True
        self._buffer = np.empty(0, dtype=np.float64)

    @property
    def done(self) -> bool:
        """Closed with no window waiting to be submitted or resolved."""
        return self.closed and not self.ready and not self.inflight

    # -- results ---------------------------------------------------------- #

    def _resolve(self, index: int, logits: np.ndarray) -> None:
        """Fold one resolved window into the smoothed posterior timeline."""
        row = np.asarray(logits)
        shifted = row - row.max(axis=-1, keepdims=True)
        probs = np.exp(shifted)
        probs /= probs.sum(axis=-1, keepdims=True)
        cfg = self.config
        self._times.append((index * cfg.hop_samples + cfg.window_samples / 2) / cfg.sample_rate)
        self._rows.append(self._smoother.push(probs))
        self.stats.windows_served += 1

    def posteriors(self) -> Tuple[np.ndarray, np.ndarray]:
        """Smoothed posteriors resolved so far: ``(times, probs)``.

        Same shapes and — for gap-free sessions — the same bits as
        ``StreamingDetector.posteriors`` on the same waveform.
        """
        if not self._rows:
            return np.empty(0), np.empty((0, 0))
        return np.asarray(self._times), np.stack(self._rows)

    def detect(self) -> List[DetectionEvent]:
        """Threshold the resolved posteriors into detection events."""
        times, probs = self.posteriors()
        return detect_events(times, probs, self.config)


@dataclass
class ManagerStats:
    """Aggregate counters across every session the manager has opened."""

    sessions: int = 0
    sessions_done: int = 0
    windows_featurized: int = 0
    windows_submitted: int = 0
    windows_served: int = 0
    windows_failed: int = 0
    deadline_misses: int = 0
    gaps: int = 0
    bursts: int = 0
    bursts_shed: int = 0


class StreamSessionManager:
    """N concurrent KWS sessions multiplexed onto one serving backend.

    Exactly one backend is wired at construction:

    * ``cluster=`` — a :class:`~repro.serving.cluster.ClusterRouter`; ready
      windows from *all* sessions are coalesced into ``submit_many`` bursts
      (one control frame each) with ``model``/``version``/``priority``/
      ``deadline_s`` flowing through the normal admission path.  A shed
      burst (:class:`~repro.errors.AdmissionError`) is returned to the
      sessions' ready queues and retried on the next pump;
    * ``engine=`` — a :class:`~repro.serving.batching.BatchingEngine` for
      single-process use; windows coalesce into its micro-batches;
    * ``frontend=`` — an :class:`~repro.serving.frontend.AsyncServingFrontend`;
      the manager submits through whichever cluster or engine it fronts.

    Call :meth:`pump` whenever sessions have been fed (ships ready windows),
    :meth:`collect` to fold finished results into the sessions, and
    :meth:`drain` to run both to completion.
    """

    def __init__(
        self,
        cluster=None,
        *,
        engine=None,
        frontend=None,
        config: Optional[StreamingConfig] = None,
        feature_mean: Optional[np.ndarray] = None,
        feature_std: Optional[np.ndarray] = None,
        model: Optional[str] = None,
        version: Optional[str] = None,
        priority: Optional[Priority] = None,
        deadline_s: Optional[float] = None,
        max_burst: int = 64,
    ) -> None:
        wired = sum(backend is not None for backend in (cluster, engine, frontend))
        if wired != 1:
            raise ConfigError(
                "StreamSessionManager needs exactly one backend: cluster, engine or frontend"
            )
        if frontend is not None:
            cluster, engine = frontend.cluster, frontend.engine
        if cluster is None and (model is not None or version is not None or priority is not None):
            raise ConfigError("model/version/priority need a cluster backend")
        if max_burst < 1:
            raise ConfigError("max_burst must be >= 1")
        self.cluster = cluster
        self.engine = engine
        self.config = config or StreamingConfig()
        self.feature_mean = feature_mean
        self.feature_std = feature_std
        self.model = model
        self.version = version
        self.priority = Priority.NORMAL if priority is None else priority
        self.deadline_s = deadline_s
        self.max_burst = max_burst
        self.stats = ManagerStats()
        self._sessions: Dict[str, StreamSession] = {}
        self._next_id = 0
        # latest manager wins the "streams" prefix on the process-wide
        # metrics plane; held weakly, so a dropped manager unmounts itself
        get_registry().register_source("streams", self.telemetry_tree)

    def telemetry_tree(self) -> Dict[str, object]:
        """The aggregate session counters as a plain metrics subtree."""
        stats = self.snapshot()
        return {
            "sessions": stats.sessions,
            "sessions_done": stats.sessions_done,
            "windows_featurized": stats.windows_featurized,
            "windows_submitted": stats.windows_submitted,
            "windows_served": stats.windows_served,
            "windows_failed": stats.windows_failed,
            "deadline_misses": stats.deadline_misses,
            "gap_windows": stats.gaps,
            "bursts": stats.bursts,
            "bursts_shed": stats.bursts_shed,
        }

    # -- session lifecycle ------------------------------------------------- #

    @property
    def sessions(self) -> List[StreamSession]:
        """Every session opened on this manager, in open order."""
        return list(self._sessions.values())

    def session(self, session_id: str) -> StreamSession:
        """Look up one session by id."""
        return self._sessions[session_id]

    def open(
        self, waveform: Optional[np.ndarray] = None, *, session_id: Optional[str] = None
    ) -> StreamSession:
        """Start a session; with ``waveform`` the whole stream is fed + closed.

        Passing the full waveform up front lets the smoother clamp its span
        to the stream length exactly like the batch path does for streams
        shorter than ``smoothing_windows`` windows; open-ended sessions
        (no waveform) smooth over the configured span from the start.
        """
        if session_id is None:
            session_id = f"s{self._next_id}"
            self._next_id += 1
        if session_id in self._sessions:
            raise ConfigError(f"session id {session_id!r} already open")
        total = None
        if waveform is not None:
            total = num_windows(self.config, len(np.asarray(waveform)))
        session = StreamSession(
            session_id,
            self.config,
            self.feature_mean,
            self.feature_std,
            total_windows=total,
        )
        self._sessions[session_id] = session
        self.stats.sessions += 1
        if waveform is not None:
            session.feed(waveform)
            session.close()
        return session

    # -- dispatch ----------------------------------------------------------- #

    def _gather(self) -> List[Tuple[StreamSession, int, np.ndarray, float]]:
        """Round-robin up to ``max_burst`` ready windows across sessions."""
        batch: List[Tuple[StreamSession, int, np.ndarray, float]] = []
        queue: Deque[StreamSession] = deque(s for s in self._sessions.values() if s.ready)
        while queue and len(batch) < self.max_burst:
            session = queue.popleft()
            index, features, ready_t = session.ready.popleft()
            batch.append((session, index, features, ready_t))
            if session.ready:
                queue.append(session)
        return batch

    def _submit(self, batch: List[Tuple[StreamSession, int, np.ndarray, float]]) -> bool:
        """Ship one gathered burst; False when admission shed it."""
        xs = [features for _, _, features, _ in batch]
        if self.cluster is not None:
            try:
                futures = self.cluster.submit_many(
                    xs,
                    model=self.model,
                    version=self.version,
                    priority=self.priority,
                    deadline_s=self.deadline_s,
                )
            except AdmissionError:
                # a shed window keeps its original ready timestamp, so the
                # retry's queue_s still covers the whole wait
                for session, index, features, ready_t in reversed(batch):
                    session.ready.appendleft((index, features, ready_t))
                self.stats.bursts_shed += 1
                return False
        else:
            futures = self.engine.submit_many(xs, deadline_s=self.deadline_s)
            if not self.engine.running:
                self.engine.flush()
        submitted = time.monotonic()
        for (session, index, _, ready_t), future in zip(batch, futures):
            session.inflight.append((index, future, submitted))
            session.stats.windows_submitted += 1
            session.stats.queue_s.append(submitted - ready_t)
            future.add_done_callback(
                lambda _f, t0=submitted, stats=session.stats: stats.latencies_s.append(
                    time.monotonic() - t0
                )
            )
        self.stats.windows_submitted += len(batch)
        self.stats.bursts += 1
        return True

    def pump(self) -> int:
        """Coalesce every ready window into backend bursts; returns count."""
        shipped = 0
        while True:
            batch = self._gather()
            if not batch:
                return shipped
            if not self._submit(batch):
                return shipped
            shipped += len(batch)

    def collect(self, wait: bool = False, timeout_s: float = 300.0) -> int:
        """Fold finished windows back into their sessions, in window order.

        ``wait=False`` takes only results that are already done;
        ``wait=True`` blocks until every in-flight window resolves.  Failed
        windows become session gaps (counted, never raised).  Returns how
        many windows were folded in (served + failed).
        """
        folded = 0
        for session in self._sessions.values():
            while session.inflight:
                index, future, _ = session.inflight[0]
                if not wait and not future.done():
                    break
                session.inflight.popleft()
                try:
                    logits = future.result(timeout=timeout_s)
                except DeadlineExceeded:
                    session.stats.deadline_misses += 1
                    session.stats.gap_windows.append(index)
                except Exception:
                    session.stats.windows_failed += 1
                    session.stats.gap_windows.append(index)
                else:
                    session._resolve(index, logits)
                folded += 1
        return folded

    def drain(self, timeout_s: float = 300.0) -> ManagerStats:
        """Pump + collect until every closed session is fully resolved."""
        deadline = time.monotonic() + timeout_s
        while True:
            self.pump()
            self.collect(wait=True, timeout_s=timeout_s)
            if all(s.done for s in self._sessions.values() if s.closed):
                pending = any(s.ready or s.inflight for s in self._sessions.values())
                if not pending:
                    return self.snapshot()
            if time.monotonic() > deadline:
                raise DeadlineExceeded(f"drain did not settle within {timeout_s}s")
            time.sleep(0.001)  # admission shed everything: let workers catch up

    # -- accounting --------------------------------------------------------- #

    def latencies_s(self) -> List[float]:
        """Window submit→resolve latencies pooled across sessions."""
        pooled: List[float] = []
        for session in self._sessions.values():
            pooled.extend(session.stats.latencies_s)
        return pooled

    def queue_s(self) -> List[float]:
        """Window featurize→submit waits pooled across sessions."""
        pooled: List[float] = []
        for session in self._sessions.values():
            pooled.extend(session.stats.queue_s)
        return pooled

    def snapshot(self) -> ManagerStats:
        """Aggregate the per-session counters into one ManagerStats."""
        stats = ManagerStats(
            sessions=self.stats.sessions,
            windows_submitted=self.stats.windows_submitted,
            bursts=self.stats.bursts,
            bursts_shed=self.stats.bursts_shed,
        )
        for session in self._sessions.values():
            stats.sessions_done += session.done
            stats.windows_featurized += session.stats.windows_featurized
            stats.windows_served += session.stats.windows_served
            stats.windows_failed += session.stats.windows_failed
            stats.deadline_misses += session.stats.deadline_misses
            stats.gaps += session.stats.gaps
        return stats
