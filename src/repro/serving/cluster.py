"""Multi-process serving cluster: worker pool, routing, priority admission.

PR 1/2 built a single engine behind one asyncio front door, so aggregate
throughput is capped by one worker thread and one decoded model per engine.
This module replicates that engine across **processes** — TNN-style
bit-plane execution makes each worker cheap enough to replicate — and puts
a router in front:

* :class:`WorkerPool` spawns N workers (``multiprocessing`` spawn context,
  so workers are import-clean and fork-safety is a non-issue).  Each worker
  process owns its own :class:`~repro.serving.batching.BatchingEngine` and
  :class:`~repro.serving.packed.PackedModel` plans, decoded locally from
  serialized image bytes — decoded planes are never pickled across the
  process boundary, only the 2-bit images are.  Requests drained from the
  worker's pipe in one burst are coalesced through the engine, so
  micro-batching survives the IPC hop; within a burst, requests dispatch in
  priority order.
* :class:`ClusterRouter` routes each request to a worker by ``(model,
  version)``: placement is delegated to the
  :mod:`repro.serving.placement` subsystem — a
  :class:`~repro.serving.placement.PlacementPolicy` (sticky by default;
  replicated / least-loaded spread one hot model across N workers with
  power-of-two-choices dispatch) maps each key to a
  :class:`~repro.serving.placement.ReplicaSet`, under a registry-style
  **cluster-wide decoded-byte budget** (LRU replica sets are unloaded to
  admit new ones) and **priority-class admission**
  (:mod:`repro.serving.priority`, scaled by the replica count serving the
  request): low-priority traffic sheds first under load and can never
  starve high-priority deadlines.  ``version=None`` resolves to the
  model's *current* version at admission, which is what lets a
  :class:`~repro.serving.placement.DeployManager` flip routing atomically
  during a rolling deploy.
* Worker **health monitoring**: a worker that dies is detected through pipe
  EOF, its in-flight requests fail with
  :class:`~repro.errors.WorkerCrashed`, and the pool transparently restarts
  the process and re-decodes every model that was placed on it — subsequent
  traffic is served normally.  A crash-looping worker is held back by
  capped exponential restart backoff
  (:class:`~repro.serving.resilience.RestartBackoffPolicy`) instead of
  hot-looping re-decodes.
* A **resilience layer** (:mod:`repro.serving.resilience`), all opt-in via
  router kwargs: ``retry=RetryPolicy(...)`` transparently re-dispatches
  retryable failures to a *different* replica (safe — replicas are bitwise
  identical) under a global retry budget; ``breakers=BreakerPolicy(...)``
  quarantines flapping workers out of replica choice until a half-open
  probe succeeds; ``hedge=HedgePolicy(...)`` duplicates slow HIGH-priority
  single requests after a p99-derived delay, first result wins; and
  :meth:`ClusterRouter.set_brownout` sheds LOW traffic while a
  :class:`~repro.serving.resilience.BrownoutController` observes sustained
  overload in the telemetry snapshot.
* A **zero-copy shared-memory data plane** (:mod:`repro.serving.shm`): by
  default request payloads are written once into a slab of a
  ``multiprocessing.shared_memory`` ring and workers read them as zero-copy
  ndarray views, while the pipes carry only small control frames (request
  id, model name, slab id, shape, dtype, deadline, priority).  Results
  travel back through the same slab.  The pickle-over-pipe path survives as
  an automatic fallback — payloads larger than one slab, an exhausted ring,
  or ``transport=False`` all take it — and both planes produce bitwise
  identical predictions.  Slab leases are tracked parent-side only: a reply
  (or the worker's death) releases the request's slab, and ``stop()``
  unlinks the segment, so crashes cannot leak shared memory.
* :meth:`WorkerPool.submit_many` / :meth:`ClusterRouter.submit_many` submit
  a burst of requests as **one control frame** — one syscall, one pipe
  message, one coalesced engine flush — which is what makes large batch
  shapes cheap on top of the slab plane.

Deadlines are carried across the process boundary as absolute
``time.monotonic()`` timestamps (system-wide on every major OS), so time a
request spends queued in the pipe counts against its budget exactly like
time spent in the engine queue.

:class:`~repro.serving.frontend.AsyncServingFrontend` accepts a
``ClusterRouter`` in place of an engine, which makes the whole cluster
reachable as ``await predict(x, model=..., priority=..., deadline_s=...)``.
"""

from __future__ import annotations

import functools
import itertools
import math
import multiprocessing
import os
import threading
import time
import warnings
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.deploy.image import ModelImage
from repro.errors import (
    AdmissionError,
    ConfigError,
    DeadlineExceeded,
    RoutingError,
    TransportError,
    WorkerCrashed,
)
from repro.serving.batching import BatchingEngine, MicroBatchConfig
from repro.serving.catalog import (
    VersionedCatalog,
    catalog_errors,
    make_key,
    split_key,
)
from repro.serving.kernels import get_kernel_profile, set_kernel_profile
from repro.serving.kernels_fast import KernelBackend, registered_backend_name
from repro.serving.packed import PackedModel
from repro.serving.placement import (
    PlacementPolicy,
    PlacementTable,
    ReplicaSet,
    ReplicaStats,
)
from repro.serving.priority import Priority, PriorityPolicy
from repro.serving.resilience import (
    BreakerBoard,
    BreakerPolicy,
    HedgePolicy,
    ResilienceStats,
    RestartBackoffPolicy,
    RetryPolicy,
)
from repro.serving.shm import SlabClient, SlabConfig, SlabPool
from repro.serving.telemetry import (
    KernelProfile,
    MetricsRegistry,
    Trace,
    Tracer,
    get_registry,
)

#: how long lifecycle operations wait on a worker process before escalating
_JOIN_TIMEOUT_S = 5.0

#: default completion-latency window (per class and per version) for the
#: percentile rollup; override per router with ``ClusterRouter(latency_window=)``
DEFAULT_LATENCY_WINDOW = 2048


# --------------------------------------------------------------------------- #
# worker process
# --------------------------------------------------------------------------- #


def _serve_burst(
    conn,
    engines: Dict[str, BatchingEngine],
    client: Optional[SlabClient],
    burst: List[tuple],
    lags: Optional[Dict[str, float]] = None,
) -> None:
    """Coalesce one drained burst of predict requests through the engines.

    Each burst entry is ``(req_id, name, payload, deadline, priority,
    trace)`` where ``payload`` is either ``("pipe", ndarray)`` or ``("shm",
    slab_id, shape, dtype)`` — a shm payload is read as a zero-copy view
    into the slab the parent leased to this request, and its result is
    written back into the *same* slab (one slab per request for its whole
    round trip).

    Requests are submitted in priority order (stable within a class), so a
    HIGH request admitted in the same burst as LOW ones is batched — and
    deadline-checked — first.  Each model's engine then runs one
    deterministic ``flush()``, and every request gets exactly one reply.

    ``trace`` is ``None`` on the hot path; for a sampled request it is
    ``(send_s, recv_s)`` from the control frame and this worker's drain
    loop, and the request's lifecycle spans (``transport`` / ``queue`` /
    ``kernel`` / ``decode``, all ``time.monotonic`` so they compare across
    the process boundary) are shipped back in a ``("spans", ...)`` reply
    *before* the result, for the parent to merge.  Timing never touches
    the numerics — traced and untraced requests are bitwise identical.

    ``lags`` is the chaos-hook lag map (model key → injected seconds): a
    burst touching a lagged model stalls before its flush, inflating every
    latency the burst carries — the worker-side fault canary tests and
    benchmarks use to provoke an SLO breach without perturbing results.
    """
    submitted: List[tuple] = []  # (req_id, slab_id, future, trace)
    touched = set()
    for req_id, name, payload, deadline, priority, trace in sorted(
        burst, key=lambda m: m[4]
    ):
        engine = engines.get(name)
        if engine is None:
            conn.send(("error", req_id, "routing", f"model {name!r} is not loaded on this worker"))
            continue
        if payload[0] == "shm":
            _, slab_id, shape, dtype = payload
            x = client.view(slab_id, shape, dtype)  # zero-copy read
        else:
            slab_id, x = None, payload[1]
        deadline_s = None if deadline is None else deadline - time.monotonic()
        if trace is not None:
            trace = (*trace, time.monotonic())  # + engine submit timestamp
        submitted.append((req_id, slab_id, engine.submit(x, deadline_s=deadline_s), trace))
        touched.add(name)
    if lags:
        delay = max((lags.get(name, 0.0) for name in touched), default=0.0)
        if delay > 0:
            time.sleep(delay)
    flush_start = time.monotonic()
    for name in touched:
        engines[name].flush()
    flush_end = time.monotonic()
    for req_id, slab_id, future, trace in submitted:
        try:
            result = np.ascontiguousarray(future.result())
            decode_start = time.monotonic()
            # the engine stacked (copied) the input at dispatch, so the slab
            # is dead weight by now — reuse it for the response payload
            if slab_id is not None and client.fits(result.nbytes):
                reply = ("sresult", req_id, *client.write(slab_id, result))
            else:
                reply = ("result", req_id, result)
            if trace is not None:
                send_s, recv_s, submit_s = trace
                conn.send(
                    (
                        "spans",
                        req_id,
                        (
                            ("transport", send_s, recv_s),
                            ("queue", submit_s, flush_start),
                            ("kernel", flush_start, flush_end),
                            ("decode", decode_start, time.monotonic()),
                        ),
                    )
                )
            conn.send(reply)
        except DeadlineExceeded:
            conn.send(("deadline", req_id))
        except Exception as exc:  # delivered to exactly this request's caller
            conn.send(("error", req_id, "runtime", f"{type(exc).__name__}: {exc}"))


def _attach(burst: List[tuple], shm_client) -> Optional[SlabClient]:
    """The burst's slab client — attached only when shm payloads are present."""
    if any(entry[2][0] == "shm" for entry in burst):
        return shm_client()
    return None


def _worker_main(
    conn,
    config: MicroBatchConfig,
    shm_spec: Optional[Tuple[str, SlabConfig]] = None,
    worker_id: int = 0,
    kernel: Optional[str] = None,
) -> None:
    """Entry point of one worker process.

    Serves commands from the parent pipe until told to stop.  Messages are
    drained in bursts (everything already queued in the pipe) so concurrent
    requests coalesce into micro-batches, but pipe order is preserved
    around control messages — a predict sent before an ``unload`` of its
    model is served before the model is dropped.

    ``shm_spec`` names the parent's slab segment; the worker attaches
    lazily on the first shm-framed request (a pure pipe workload never maps
    the segment) and only ever reads/writes slabs the parent leased to its
    own requests.

    ``worker_id`` is this worker's replica identity: every burst frame
    carries the replica id the router resolved, and a frame addressed to a
    different replica is rejected per request instead of silently served by
    the wrong plan copy.

    ``kernel`` is the execution-backend name every model loaded into this
    worker runs on (:mod:`repro.serving.kernels_fast`).  The parent pool
    resolves it once and ships the *name* in the spawn args, so all
    replicas of a cluster execute the same kernels regardless of the
    workers' own environment.
    """
    models: Dict[str, PackedModel] = {}
    engines: Dict[str, BatchingEngine] = {}
    lags: Dict[str, float] = {}  # chaos hook: model key -> injected seconds
    poisoned: set = set()  # chaos hook: model keys that kill the next load
    client: Optional[SlabClient] = None

    def shm_client() -> SlabClient:
        """Attach to the parent's slab segment on first use."""
        nonlocal client
        if client is None:
            client = SlabClient(shm_spec[0], shm_spec[1])
        return client

    def handle_control(msg) -> bool:
        """Apply one non-predict command; returns True on a stop request."""
        op = msg[0]
        if op == "load":
            _, name, blob = msg
            if name in poisoned:
                # chaos hook: a poisoned image kills the worker mid-decode,
                # exactly like a real bad build would — used to manufacture
                # deterministic crash loops for the restart-backoff tests
                os._exit(13)
            try:
                model = PackedModel(ModelImage.from_bytes(blob), cache=True, kernel=kernel)
            except Exception as exc:
                conn.send(("load_error", name, f"{type(exc).__name__}: {exc}"))
                return False
            models[name] = model
            engines[name] = BatchingEngine(model, config)
            conn.send(("loaded", name, model.decoded_bytes()))
        elif op == "unload":
            models.pop(msg[1], None)
            engines.pop(msg[1], None)
            conn.send(("unloaded", msg[1]))
        elif op == "ping":
            resident = sum(m.decoded_bytes() for m in models.values())
            conn.send(("pong", msg[1], resident, sorted(models)))
        elif op == "sleep":  # chaos hook: stall the command loop
            time.sleep(msg[1])
        elif op == "lag":  # chaos hook: stall bursts touching one model
            if msg[2] > 0:
                lags[msg[1]] = msg[2]
            else:
                lags.pop(msg[1], None)
        elif op == "kprofile":  # enable/disable per-kind kernel timing
            set_kernel_profile(KernelProfile() if msg[1] else None)
        elif op == "kprofile_snap":  # ship the per-kind breakdown back
            profile = get_kernel_profile()
            data = profile.snapshot() if isinstance(profile, KernelProfile) else {}
            conn.send(("kprofile", msg[1], data))
        elif op == "poison":  # chaos hook: arm a crash on the next load of a model
            poisoned.add(msg[1])
        elif op == "exit":  # chaos hook: die without cleanup, like a real crash
            os._exit(msg[1])
        elif op == "stop":
            return True
        return False

    while True:
        try:
            messages = [conn.recv()]
            while conn.poll(0):
                messages.append(conn.recv())
        except (EOFError, OSError):
            return  # parent went away
        burst: List[tuple] = []
        stop = False
        try:
            for msg in messages:
                if msg[0] == "predict_many":
                    # the one request frame: single submits are 1-bursts,
                    # larger bursts amortise pipe syscalls across a batch;
                    # `traced` is None except for a sampled burst, where it
                    # is (req_id, send_s) naming the burst's traced request
                    _, name, deadline, priority, replica, entries, traced = msg
                    recv_s = time.monotonic() if traced is not None else 0.0
                    if replica != worker_id:
                        # misaddressed frame: the resolved replica id in the
                        # control frame names another worker's plan copy
                        for req_id, _ in entries:
                            conn.send((
                                "error",
                                req_id,
                                "routing",
                                f"frame for replica {replica} reached worker {worker_id}",
                            ))
                        continue
                    for req_id, payload in entries:
                        trace = (
                            (traced[1], recv_s)
                            if traced is not None and req_id == traced[0]
                            else None
                        )
                        burst.append((req_id, name, payload, deadline, priority, trace))
                    continue
                if burst:  # keep pipe order around control commands
                    _serve_burst(conn, engines, _attach(burst, shm_client), burst, lags)
                    burst = []
                if handle_control(msg):
                    stop = True
                    break
            if burst:
                _serve_burst(conn, engines, _attach(burst, shm_client), burst, lags)
        except (BrokenPipeError, OSError):
            return
        if stop:
            if client is not None:
                client.close()
            conn.close()
            return


# --------------------------------------------------------------------------- #
# parent-side pool
# --------------------------------------------------------------------------- #


class _WorkerHandle:
    """Parent-side state for one live worker process (guarded by pool lock)."""

    def __init__(self, worker_id: int, proc, conn, restarts: int) -> None:
        self.worker_id = worker_id
        self.proc = proc
        self.conn = conn
        self.restarts = restarts
        self.send_lock = threading.Lock()
        #: req_id -> (future, leased slab id or None for pipe payloads)
        self.inflight: Dict[int, Tuple[Future, Optional[int]]] = {}
        self.pings: Dict[int, list] = {}
        #: req_id -> parent-side Trace awaiting its worker spans
        self.traces: Dict[int, Trace] = {}
        self.reader: Optional[threading.Thread] = None
        self.stopping = False
        self.served = 0
        self.deadline_misses = 0


@dataclass(frozen=True)
class WorkerStats:
    """One worker's slice of :class:`ClusterStats`.

    ``backing_off`` is True while the worker is dead and its respawn is
    deliberately delayed by the pool's
    :class:`~repro.serving.resilience.RestartBackoffPolicy`;
    ``crash_streak`` counts consecutive short-lived crashes (reset once a
    spawn survives past the policy's stability horizon).
    """

    worker_id: int
    alive: bool
    restarts: int
    in_flight: int
    served: int
    deadline_misses: int
    resident_bytes: int
    models: Tuple[str, ...]
    backing_off: bool = False
    crash_streak: int = 0


@dataclass(frozen=True)
class LatencyStats:
    """Completion-latency percentiles for one priority class or model version.

    ``count`` is the lifetime number of successful completions recorded;
    the percentiles are computed over a sliding window of the most recent
    completions (``ClusterRouter(latency_window=...)``, default
    :data:`DEFAULT_LATENCY_WINDOW`; ``nan`` before the first completion)
    and measure submit→resolve time, so pipe/slab transport and engine
    queueing are all included.
    """

    count: int
    p50_ms: float
    p99_ms: float

    @classmethod
    def from_completions(cls, count: int, window_s: Sequence[float]) -> "LatencyStats":
        """Roll one latency window (seconds) into percentile stats.

        Percentiles use :func:`numpy.percentile`'s default linear
        interpolation over exactly the values in ``window_s`` — the same
        computation the router applies to its live windows, exposed so
        tests can pin the arithmetic on known synthetic sequences.
        """
        if len(window_s):
            p50, p99 = np.percentile(np.fromiter(window_s, dtype=np.float64), [50, 99])
        else:
            p50 = p99 = float("nan")
        return cls(count=count, p50_ms=float(p50) * 1e3, p99_ms=float(p99) * 1e3)


#: how many recent ScaleEvent rows ClusterStats.scale_events retains
SCALE_EVENT_WINDOW = 256


class _CanarySplit:
    """Mutable router-side record of one model's canary traffic split.

    The split is deterministic, not random: request burst ``i`` (counting
    every ``version=None`` burst since the split opened) routes to the
    canary iff ``floor(i*f) > floor((i-1)*f)``, which interleaves canary
    bursts evenly and converges on exactly ``fraction`` of traffic with no
    RNG to seed.  ``state`` starts ``"running"``; :meth:`ClusterRouter.clear_split`
    freezes it at a terminal outcome so stats keep the settled record.
    """

    __slots__ = ("version", "fraction", "counter", "routed", "state")

    def __init__(self, version: str, fraction: float) -> None:
        self.version = version
        self.fraction = fraction
        self.counter = 0  # version=None bursts seen since the split opened
        self.routed = 0  # of those, bursts routed to the canary version
        self.state = "running"

    def take(self) -> bool:
        """Advance the counter; True when this burst goes to the canary."""
        self.counter += 1
        before = math.floor((self.counter - 1) * self.fraction)
        if math.floor(self.counter * self.fraction) > before:
            self.routed += 1
            return True
        return False

    def snapshot(self) -> CanarySplitStats:
        """Immutable stats row for :attr:`ClusterStats.canary_state`."""
        return CanarySplitStats(
            version=self.version,
            fraction=self.fraction,
            routed=self.routed,
            total=self.counter,
            state=self.state,
        )


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaling decision applied to a replica set.

    ``action`` is ``"grow"`` or ``"shrink"``; ``reason`` is free text from
    whoever called :meth:`ClusterRouter.resize` (the
    :class:`~repro.serving.control.Autoscaler` records the watermark that
    fired).  ``at_s`` is the router's ``time.monotonic()`` at the decision,
    so event spacing can be audited against cooldowns.
    """

    key: str
    action: str
    from_replicas: int
    to_replicas: int
    reason: str
    at_s: float


@dataclass(frozen=True)
class CanarySplitStats:
    """One model's canary traffic split, live or settled.

    ``state`` is ``"running"`` while the split routes traffic, then the
    terminal outcome recorded by :meth:`ClusterRouter.clear_split`
    (``"promoted"`` / ``"rolled_back"`` / ``"cleared"``).  ``routed`` of
    ``total`` ``version=None`` requests went to the canary version — the
    deterministic counter split converges on ``fraction`` exactly.
    """

    version: str
    fraction: float
    routed: int
    total: int
    state: str


@dataclass(frozen=True)
class ClusterStats:
    """Cluster-wide rollup: per-worker stats plus router-level counters.

    ``served``/``deadline_misses`` aggregate every worker across restarts;
    ``shed_by_priority`` counts admission rejections per
    :class:`~repro.serving.priority.Priority` class (``shed`` is their sum);
    ``resident_bytes`` is the decoded-plan footprint across all placements
    and never exceeds the router's ``capacity_bytes``.
    ``queue_depth_by_priority`` is the admitted-but-unresolved count per
    class (summing to ``pending``), ``latency_by_priority`` the per-class
    completion percentiles, and ``transport`` the data-plane counters from
    :meth:`WorkerPool.transport_snapshot`.

    Placement-aware rollups: ``replicas`` maps each placed model key
    (``"name@version"``) to its per-replica dispatch/completion counters,
    ``latency_by_version`` gives served count + completion percentiles per
    version key, and ``current_versions`` names the version ``version=None``
    resolves to for every registered model.

    Control-plane rollups: ``errors_by_version`` / ``shed_by_version``
    count failed completions and admission sheds per version key,
    ``scale_events`` is the trailing window of :class:`ScaleEvent` rows
    (most recent last), and ``canary_state`` maps each model name with a
    live or settled traffic split to its :class:`CanarySplitStats`.

    Resilience rollups: ``errors_by_type`` counts every failed *attempt*
    by exception class name (``WorkerCrashed``, ``TransportError``,
    ``DeadlineExceeded``, ``AdmissionError``, ...) — attempts, not
    requests, so retry efficacy is observable as the gap between
    ``errors_by_type`` growth and caller-visible failures — and
    ``resilience`` is the :class:`~repro.serving.resilience.ResilienceStats`
    rollup of retry / hedge / breaker / brownout state.
    """

    workers: Tuple[WorkerStats, ...]
    served: int
    deadline_misses: int
    shed_by_priority: Mapping[Priority, int]
    resident_bytes: int
    evictions: int
    crashes: int
    pending: int
    queue_depth_by_priority: Mapping[Priority, int] = field(default_factory=dict)
    latency_by_priority: Mapping[Priority, LatencyStats] = field(default_factory=dict)
    transport: Mapping[str, int] = field(default_factory=dict)
    replicas: Mapping[str, Tuple[ReplicaStats, ...]] = field(default_factory=dict)
    latency_by_version: Mapping[str, LatencyStats] = field(default_factory=dict)
    current_versions: Mapping[str, str] = field(default_factory=dict)
    errors_by_version: Mapping[str, int] = field(default_factory=dict)
    shed_by_version: Mapping[str, int] = field(default_factory=dict)
    scale_events: Tuple[ScaleEvent, ...] = ()
    canary_state: Mapping[str, CanarySplitStats] = field(default_factory=dict)
    kernel_profile: Mapping[str, Mapping[str, float]] = field(default_factory=dict)
    errors_by_type: Mapping[str, int] = field(default_factory=dict)
    resilience: ResilienceStats = field(default_factory=ResilienceStats)

    @property
    def shed(self) -> int:
        """Total requests rejected at admission, all priority classes."""
        return sum(self.shed_by_priority.values())

    def as_tree(self) -> Dict[str, object]:
        """Plain-dict mirror of this snapshot for the telemetry plane.

        Every mapping is string-keyed (Priority enums by name) and every
        nested dataclass flattened, so the tree JSON-exports cleanly and
        the control plane can read it through
        :meth:`~repro.serving.telemetry.MetricsRegistry.snapshot`.
        """
        from dataclasses import asdict

        def lat(row: LatencyStats) -> Dict[str, float]:
            return {"count": row.count, "p50_ms": row.p50_ms, "p99_ms": row.p99_ms}

        return {
            "served": self.served,
            "deadline_misses": self.deadline_misses,
            "shed": self.shed,
            "shed_by_priority": {p.name: n for p, n in self.shed_by_priority.items()},
            "resident_bytes": self.resident_bytes,
            "evictions": self.evictions,
            "crashes": self.crashes,
            "pending": self.pending,
            "queue_depth_by_priority": {
                p.name: n for p, n in self.queue_depth_by_priority.items()
            },
            "latency_by_priority": {
                p.name: lat(row) for p, row in self.latency_by_priority.items()
            },
            "workers": [asdict(row) for row in self.workers],
            "replicas": {
                key: [asdict(row) for row in rows]
                for key, rows in self.replicas.items()
            },
            "latency_by_version": {
                key: lat(row) for key, row in self.latency_by_version.items()
            },
            "current_versions": dict(self.current_versions),
            "errors_by_version": dict(self.errors_by_version),
            "shed_by_version": dict(self.shed_by_version),
            "scale_events": [asdict(event) for event in self.scale_events],
            "canary_state": {
                name: asdict(row) for name, row in self.canary_state.items()
            },
            "kernel_profile": {
                kind: dict(row) for kind, row in self.kernel_profile.items()
            },
            "errors_by_type": dict(self.errors_by_type),
            "resilience": self.resilience.as_tree(),
        }


class WorkerPool:
    """N spawn-safe worker processes behind per-worker pipes.

    The pool owns process lifecycle (start / stop / crash restart), request
    transport, and in-flight futures.  It knows nothing about placement
    *policy* (that lives in :class:`ClusterRouter`), but it does remember
    which model images each worker was told to ``load`` so that a crashed
    worker's replacement re-decodes them — with the replayed loads entering
    the new pipe *before* any new request can, so a caller that resubmits
    right after :class:`~repro.errors.WorkerCrashed` is served, never
    bounced with a routing error.

    ``transport`` selects the data plane: ``True`` (default) runs the
    shared-memory slab plane with default :class:`~repro.serving.shm.SlabConfig`
    geometry, a ``SlabConfig`` customises it, and ``False``/``None`` keeps
    every payload on the pickle-over-pipe path.  Payloads that do not fit a
    slab — or arrive while the ring is exhausted — fall back to the pipe
    per request, transparently and bitwise-identically.

    ``restart_backoff`` delays the respawn of a *crash-looping* worker by
    a capped exponential
    (:class:`~repro.serving.resilience.RestartBackoffPolicy`): a worker
    that keeps dying shortly after spawn would otherwise hot-loop model
    re-decodes and burn a core.  While a slot is backing off its dead
    handle stays published, so submits to it fail fast with
    :class:`~repro.errors.WorkerCrashed` (which the router's retry layer
    steers to another replica) rather than queueing against a corpse.
    The first crash (``free_restarts``) always respawns immediately —
    one-off crashes keep today's instant-restart behaviour.

    ``kernel`` pins the execution backend every worker decodes and runs
    models on (:mod:`repro.serving.kernels_fast`).  It is resolved to a
    registered backend *name* eagerly — in the parent, at construction —
    and that name rides the worker-init spawn args, so all replicas (and
    every crash-restart replacement) execute identical kernels even if
    the worker processes inherit a different ``$REPRO_KERNEL_BACKEND``.
    ``None`` resolves the parent's process default.  Because only the
    name crosses the process boundary, a :class:`KernelBackend` instance
    is accepted only when it is the registered backend for its name —
    anything else raises :class:`~repro.errors.ConfigError` up front
    rather than silently running a different configuration per worker.
    """

    def __init__(
        self,
        workers: int,
        *,
        config: Optional[MicroBatchConfig] = None,
        start_method: str = "spawn",
        transport: Union[SlabConfig, bool, None] = True,
        restart_backoff: Optional[RestartBackoffPolicy] = None,
        kernel: Union[str, "KernelBackend", None] = None,
    ) -> None:
        if workers < 1:
            raise ConfigError("a worker pool needs at least 1 worker")
        self.num_workers = workers
        self.config = config or MicroBatchConfig()
        # resolved to a plain name now: validates the choice in the parent
        # and keeps the spawn args picklable for the spawn start method;
        # instances that aren't the registered backend for their name are
        # rejected — workers could only re-resolve the name, not the config
        self.kernel = registered_backend_name(kernel)
        if transport is True:
            self._transport_config: Optional[SlabConfig] = SlabConfig()
        elif transport is False or transport is None:
            self._transport_config = None
        else:
            self._transport_config = transport
        self._slab_pool: Optional[SlabPool] = None
        self._ctx = multiprocessing.get_context(start_method)
        self._lock = threading.RLock()
        self._lifecycle = threading.Lock()
        self._handles: Dict[int, _WorkerHandle] = {}
        self._worker_loads: Dict[int, Dict[str, bytes]] = {}  # wid -> name -> image
        self._req_ids = itertools.count()
        self._started = False
        self._crashes = 0
        self.restart_backoff = restart_backoff
        self._restart_timers: Dict[int, threading.Timer] = {}
        self._spawn_times: Dict[int, float] = {}  # wid -> last spawn monotonic
        self._crash_streaks: Dict[int, int] = {}  # wid -> consecutive fast crashes
        self._backoff_until: Dict[int, float] = {}  # wid -> respawn monotonic
        self._poison: Dict[int, Dict[str, int]] = {}  # wid -> key -> loads to poison
        self._delayed_restarts = 0
        self._retired_served = 0
        self._retired_misses = 0
        self._shm_requests = 0
        self._pipe_requests = 0
        self._fallbacks_exhausted = 0
        self._fallbacks_oversize = 0

    # -- lifecycle -------------------------------------------------------- #

    @property
    def running(self) -> bool:
        """True between :meth:`start` and :meth:`stop`."""
        return self._started

    def start(self) -> "WorkerPool":
        """Spawn all workers (idempotent); returns self.

        Workers start concurrently and become ready as their interpreter
        finishes importing; commands sent meanwhile queue in the pipes.
        """
        with self._lifecycle:
            if self._started:
                return self
            self._started = True
            with self._lock:
                if self._transport_config is not None:
                    self._slab_pool = SlabPool(self._transport_config)
                for worker_id in range(self.num_workers):
                    self._handles[worker_id] = self._spawn(worker_id, restarts=0)
            return self

    def stop(self) -> None:
        """Stop every worker, idempotently.

        In-flight requests are served first: the ``stop`` command queues
        behind them in each worker's pipe, so the worker drains and replies
        before exiting.
        """
        with self._lifecycle:
            if not self._started:
                return
            with self._lock:
                self._started = False
                handles = list(self._handles.values())
                for handle in handles:
                    handle.stopping = True
                # pending restart backoffs must never delay shutdown: cancel
                # the timers; a timer that already fired sees _started False
                # (or handle.stopping) under the lock and bails
                for timer in self._restart_timers.values():
                    timer.cancel()
                self._restart_timers.clear()
                self._backoff_until.clear()
            for handle in handles:
                try:
                    self._send(handle, ("stop",))
                except OSError:
                    pass  # already dead; reader saw (or will see) the EOF
            for handle in handles:
                handle.proc.join(_JOIN_TIMEOUT_S)
                if handle.proc.is_alive():
                    handle.proc.terminate()
                    handle.proc.join(_JOIN_TIMEOUT_S)
                if handle.reader is not None:
                    handle.reader.join(_JOIN_TIMEOUT_S)
            orphaned: List[Future] = []
            with self._lock:
                self._retire_counters(handles)
                for handle in handles:  # reclaim leases a hard-killed worker held
                    orphaned.extend(self._reclaim_slabs(handle))
                self._handles.clear()
                self._worker_loads.clear()  # a restarted pool re-places lazily
                if self._slab_pool is not None:
                    # every lease is back by now (replies released them, and
                    # the loop above reclaimed the rest), so the no-leak
                    # invariant `leased == 0` holds before the unlink
                    self._slab_pool.destroy()
            # a worker wedged past the joins never answered these requests,
            # and its reader's _on_exit will see a cleared slot and bail —
            # fail them here so no caller blocks on a forever-pending future
            for future in orphaned:
                if future.set_running_or_notify_cancel():
                    future.set_exception(
                        WorkerCrashed("pool stopped with the request still in flight")
                    )

    def __enter__(self) -> "WorkerPool":
        """Start the pool for the duration of a ``with`` block."""
        return self.start()

    def __exit__(self, *exc_info) -> None:
        """Stop the pool, draining in-flight work first."""
        self.stop()

    def _spawn(self, worker_id: int, restarts: int) -> _WorkerHandle:
        """Start one worker process plus its parent-side reader thread."""
        parent_conn, child_conn = self._ctx.Pipe()
        shm_spec = (
            None
            if self._slab_pool is None
            else (self._slab_pool.name, self._slab_pool.config)
        )
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.config, shm_spec, worker_id, self.kernel),
            name=f"cluster-worker-{worker_id}",
            daemon=True,
        )
        proc.start()
        child_conn.close()  # parent keeps one end only, so EOF means death
        self._spawn_times[worker_id] = time.monotonic()
        handle = _WorkerHandle(worker_id, proc, parent_conn, restarts)
        handle.reader = threading.Thread(
            target=self._read_loop,
            args=(handle,),
            name=f"cluster-reader-{worker_id}",
            daemon=True,
        )
        handle.reader.start()
        return handle

    def _retire_counters(self, handles: List[_WorkerHandle]) -> None:
        """Fold stopped handles' counters into the pool lifetime totals."""
        for handle in handles:
            self._retired_served += handle.served
            self._retired_misses += handle.deadline_misses

    # -- transport -------------------------------------------------------- #

    def _send(self, handle: _WorkerHandle, msg: tuple) -> None:
        """Send one command on a worker pipe (serialised per worker)."""
        with handle.send_lock:
            handle.conn.send(msg)

    def _handle(self, worker_id: int) -> _WorkerHandle:
        """Look up a live worker handle or raise."""
        handle = self._handles.get(worker_id)
        if handle is None or not self._started:
            raise RoutingError(f"worker {worker_id} is not running (pool stopped?)")
        return handle

    def worker_ids(self) -> List[int]:
        """Ids of the configured worker slots."""
        return list(range(self.num_workers))

    def in_flight(self, worker_id: int) -> int:
        """Requests currently unresolved on one worker (its load metric)."""
        with self._lock:
            handle = self._handles.get(worker_id)
            return len(handle.inflight) if handle is not None else 0

    def _encode_payload(self, x: np.ndarray) -> Tuple[tuple, Optional[int], Optional[str]]:
        """Choose the data plane for one payload.

        Returns ``(frame_payload, slab_id, fallback_reason)``: a shm frame
        when a slab was leased and written, else the pipe frame carrying
        the ndarray itself (``transport=False``, oversized payload, or
        exhausted ring).  Runs *outside* the pool lock — the lease from
        ``try_acquire`` is exclusive, so the slab memcpy cannot race
        anything; the caller batches the counter updates under the lock.
        """
        x = np.asarray(x)
        pool = self._slab_pool
        reason = None
        if pool is not None:
            if pool.fits(x.nbytes):
                slab_id = pool.try_acquire()
                if slab_id is not None:
                    shape, dtype = pool.write(slab_id, x)
                    return ("shm", slab_id, shape, dtype), slab_id, None
                reason = "exhausted"
            else:
                reason = "oversize"
        return ("pipe", x), None, reason

    def _release_slab(self, slab_id: Optional[int]) -> None:
        """Return one lease to the ring (no-op for pipe payloads)."""
        if slab_id is not None and self._slab_pool is not None:
            self._slab_pool.release(slab_id)

    def _reclaim_slabs(self, handle: _WorkerHandle) -> List[Future]:
        """Drop a dead handle's in-flight map, reclaiming every leased slab
        (under the pool lock); returns the orphaned futures."""
        dead: List[Future] = []
        for future, slab_id in handle.inflight.values():
            self._release_slab(slab_id)
            dead.append(future)
        handle.inflight.clear()
        handle.traces.clear()  # a dead worker's spans are never coming
        return dead

    def submit(
        self,
        worker_id: int,
        name: str,
        x: np.ndarray,
        *,
        deadline: Optional[float] = None,
        priority: Priority = Priority.NORMAL,
    ) -> "Future[np.ndarray]":
        """Send one request to a specific worker; the future resolves to its
        result row (or to ``DeadlineExceeded`` / ``RoutingError`` /
        ``WorkerCrashed``).

        ``deadline`` is an absolute ``time.monotonic()`` timestamp so pipe
        queueing time counts against the budget.  The payload rides the
        shared-memory plane when a slab is available and falls back to the
        pipe otherwise.
        """
        return self.submit_many(worker_id, name, [x], deadline=deadline, priority=priority)[0]

    def encode_burst(
        self, xs: Sequence[np.ndarray]
    ) -> List[Tuple[tuple, Optional[int], Optional[str]]]:
        """Encode a burst of payloads onto the data plane.

        Runs without the pool lock (slab leases are exclusive), so callers
        — including :class:`ClusterRouter` — can keep the memcpys outside
        *their* locks too.  The leases travel with the returned list: pass
        it to :meth:`submit_encoded`, or :meth:`release_encoded` on a path
        that abandons the burst.  If encoding any item raises (e.g. a
        payload ``np.asarray`` cannot convert), the leases already taken
        for earlier items are released before the error propagates.
        """
        encoded: List[Tuple[tuple, Optional[int], Optional[str]]] = []
        try:
            for x in xs:
                encoded.append(self._encode_payload(x))
        except BaseException:
            self.release_encoded(encoded)
            raise
        return encoded

    def release_encoded(
        self, encoded: Sequence[Tuple[tuple, Optional[int], Optional[str]]]
    ) -> None:
        """Return the slab leases of an abandoned encoded burst."""
        with self._lock:
            for _, slab_id, _ in encoded:
                self._release_slab(slab_id)

    def submit_many(
        self,
        worker_id: int,
        name: str,
        xs: Sequence[np.ndarray],
        *,
        deadline: Optional[float] = None,
        priority: Priority = Priority.NORMAL,
    ) -> List["Future[np.ndarray]"]:
        """Send a burst of requests to one worker as a single control frame.

        All payloads are encoded (slab writes or pipe fallbacks) and the
        whole burst crosses the pipe in **one** message — one syscall and
        one worker wake-up for the batch, which the worker coalesces into
        one engine flush.  Futures are returned in submission order; on a
        closed pipe every future fails :class:`~repro.errors.WorkerCrashed`
        and every leased slab is reclaimed immediately.
        """
        encoded = self.encode_burst(xs)
        try:
            return self.submit_encoded(
                worker_id, name, encoded, deadline=deadline, priority=priority
            )
        except BaseException:
            self.release_encoded(encoded)
            raise

    def submit_encoded(
        self,
        worker_id: int,
        name: str,
        encoded: Sequence[Tuple[tuple, Optional[int], Optional[str]]],
        *,
        deadline: Optional[float] = None,
        priority: Priority = Priority.NORMAL,
        trace: Optional[Trace] = None,
    ) -> List["Future[np.ndarray]"]:
        """Register and send an already-encoded burst (:meth:`encode_burst`).

        ``trace`` attaches a sampled :class:`~repro.serving.telemetry.Trace`
        to the burst's first request: the control frame carries its request
        id plus the send timestamp, and the worker's lifecycle spans merge
        into the trace when its ``("spans", ...)`` reply arrives — before
        the result resolves, since both ride the same pipe in order.

        Raises :class:`~repro.errors.RoutingError` when the pool is not
        running — the caller still owns the encoded leases then and must
        :meth:`release_encoded` them.  Once registered, transport failures
        resolve through the futures (``WorkerCrashed``), never by raising.
        """
        if not encoded:
            return []
        futures: List["Future[np.ndarray]"] = []
        entries: List[Tuple[int, tuple]] = []
        slabs: List[Optional[int]] = []
        dispatch_start = time.monotonic() if trace is not None else 0.0
        with self._lock:
            handle = self._handle(worker_id)
            for payload, slab_id, reason in encoded:
                if payload[0] == "shm":
                    self._shm_requests += 1
                else:
                    self._pipe_requests += 1
                    if reason == "exhausted":
                        self._fallbacks_exhausted += 1
                    elif reason == "oversize":
                        self._fallbacks_oversize += 1
                req_id = next(self._req_ids)
                future: "Future[np.ndarray]" = Future()
                handle.inflight[req_id] = (future, slab_id)
                futures.append(future)
                entries.append((req_id, payload))
                slabs.append(slab_id)
            traced = None
            if trace is not None:
                send_s = time.monotonic()
                trace.add("dispatch", dispatch_start, send_s)
                traced = (entries[0][0], send_s)  # the burst's traced request
                handle.traces[traced[0]] = trace
        try:
            # the control frame carries the resolved replica id so a frame
            # that lands on the wrong worker is rejected, never mis-served
            self._send(
                handle,
                ("predict_many", name, deadline, int(priority), worker_id, entries, traced),
            )
        except OSError:
            # Fail exactly the futures this call still owns: the reader's
            # _on_exit races us here and may have popped (and failed) some
            # of them already — failing those twice would blow up on a
            # FINISHED future.
            orphaned: List[Future] = []
            with self._lock:
                if traced is not None:
                    handle.traces.pop(traced[0], None)
                for (req_id, _), slab_id, future in zip(entries, slabs, futures):
                    if handle.inflight.pop(req_id, None) is not None:
                        self._release_slab(slab_id)
                        orphaned.append(future)
            for future in orphaned:
                if future.set_running_or_notify_cancel():
                    future.set_exception(
                        WorkerCrashed(f"worker {worker_id} pipe closed during submit")
                    )
        return futures

    def load(self, worker_id: int, name: str, image_bytes: bytes) -> None:
        """Tell one worker to decode and serve a model image (fire-and-forget;
        a failed decode surfaces as per-request routing errors).

        The image is also recorded so a crashed worker's replacement replays
        it; recording and handle lookup share the pool lock, so the load is
        delivered whichever side of a concurrent restart this call lands on.
        """
        with self._lock:
            handle = self._handle(worker_id)
            self._worker_loads.setdefault(worker_id, {})[name] = image_bytes
        try:
            self._send(handle, ("load", name, image_bytes))
        except OSError:
            pass  # the worker died: the crash path replays from the record

    def unload(self, worker_id: int, name: str) -> None:
        """Tell one worker to drop a model and its decoded plan."""
        with self._lock:
            handle = self._handles.get(worker_id)
            self._worker_loads.get(worker_id, {}).pop(name, None)
        if handle is None:
            return
        try:
            self._send(handle, ("unload", name))
        except OSError:
            pass

    def ping(self, worker_id: int, timeout: float = _JOIN_TIMEOUT_S):
        """Round-trip health probe; returns ``(resident_bytes, model_names)``
        as the worker itself reports them, or ``None`` on timeout/death."""
        event = threading.Event()
        entry = [event, None]
        with self._lock:
            handle = self._handles.get(worker_id)
            if handle is None or not self._started:
                return None
            token = next(self._req_ids)
            handle.pings[token] = entry
        try:
            self._send(handle, ("ping", token))
        except OSError:
            return None
        if not event.wait(timeout):
            with self._lock:
                handle.pings.pop(token, None)
            return None
        return entry[1]

    def health(self, timeout: float = _JOIN_TIMEOUT_S) -> Dict[int, dict]:
        """Probe every worker; returns per-worker ``{alive, restarts,
        in_flight, resident_bytes, models}`` (resident/models are ``None``
        for a worker that failed the probe)."""
        report: Dict[int, dict] = {}
        for worker_id in self.worker_ids():
            with self._lock:
                handle = self._handles.get(worker_id)
                alive = handle is not None and handle.proc.is_alive()
                restarts = handle.restarts if handle is not None else 0
                in_flight = len(handle.inflight) if handle is not None else 0
            pong = self.ping(worker_id, timeout) if alive else None
            report[worker_id] = {
                "alive": alive and pong is not None,
                "restarts": restarts,
                "in_flight": in_flight,
                "resident_bytes": pong[0] if pong else None,
                "models": pong[1] if pong else None,
            }
        return report

    # -- kernel profiling -------------------------------------------------- #

    def set_kernel_profiling(self, enabled: bool) -> None:
        """Broadcast opt-in per-kind kernel timing to every worker.

        Enabling installs a fresh
        :class:`~repro.serving.telemetry.KernelProfile` in each worker
        (re-enabling resets the counters); disabling removes the hook so
        the gather passes are back to a single global load.  Not replayed
        across a crash restart — a fresh worker starts unprofiled.
        """
        with self._lock:
            handles = list(self._handles.values())
        for handle in handles:
            try:
                self._send(handle, ("kprofile", bool(enabled)))
            except OSError:
                pass  # dying worker; its replacement starts unprofiled anyway

    def kernel_profile_snapshot(
        self, timeout: float = _JOIN_TIMEOUT_S
    ) -> Dict[str, Dict[str, float]]:
        """Collect and merge every worker's per-kind kernel breakdown.

        Round-trips a ``kprofile_snap`` probe to each worker (same
        mechanics as :meth:`ping`); workers that time out, died, or have
        profiling disabled contribute nothing.  The merged tree is
        ``{kind: {layers, layer_s, gather_calls, gather_s}}``.
        """
        merged = KernelProfile()
        for worker_id in self.worker_ids():
            event = threading.Event()
            entry = [event, None]
            with self._lock:
                handle = self._handles.get(worker_id)
                if handle is None or not self._started:
                    continue
                token = next(self._req_ids)
                handle.pings[token] = entry
            try:
                self._send(handle, ("kprofile_snap", token))
            except OSError:
                continue
            if not event.wait(timeout):
                with self._lock:
                    handle.pings.pop(token, None)
                continue
            if entry[1]:
                merged.merge(entry[1])
        return merged.snapshot()

    # -- chaos hooks (used by tests and benchmarks) ------------------------ #

    def inject_crash(self, worker_id: int, code: int = 13) -> None:
        """Chaos hook: make one worker die abruptly (``os._exit``), exactly
        like a segfault or OOM kill would look from the parent."""
        with self._lock:
            handle = self._handle(worker_id)
        self._send(handle, ("exit", code))

    def inject_sleep(self, worker_id: int, seconds: float) -> None:
        """Chaos hook: stall one worker's command loop for ``seconds``."""
        with self._lock:
            handle = self._handle(worker_id)
        self._send(handle, ("sleep", float(seconds)))

    def inject_crash_on_load(self, worker_id: int, name: str, times: int = 1) -> None:
        """Chaos hook: arm ``times`` restart-replay loads of ``name`` on one
        worker slot to kill the (re)spawned process mid-decode.

        The live worker is untouched — the poison is spent by
        :meth:`_replay_loads` when a *replacement* re-decodes the model, so
        pairing this with :meth:`inject_crash` manufactures a deterministic
        crash loop: each respawn dies decoding the poisoned image until the
        arming count runs out, which is exactly the shape a corrupt model
        build produces in production.  ``times <= 0`` disarms.
        """
        with self._lock:
            if worker_id not in range(self.num_workers):
                raise RoutingError(f"worker {worker_id} does not exist")
            slot = self._poison.setdefault(worker_id, {})
            if times <= 0:
                slot.pop(name, None)
            else:
                slot[name] = int(times)

    def inject_lag(self, worker_id: int, name: str, seconds: float) -> None:
        """Chaos hook: stall every burst touching model ``name`` on one worker.

        Unlike :meth:`inject_sleep` (one stall), the lag persists until
        cleared with ``seconds=0`` — the worker-side latency fault canary
        rollback scenarios are built on.  Results are never perturbed, only
        delayed, and the injection is *not* replayed across a crash restart
        (a fresh worker starts healthy).
        """
        with self._lock:
            handle = self._handle(worker_id)
        self._send(handle, ("lag", name, float(seconds)))

    # -- reader / crash handling ------------------------------------------ #

    def _read_loop(self, handle: _WorkerHandle) -> None:
        """Per-worker reader thread: resolve futures until the pipe closes."""
        while True:
            try:
                msg = handle.conn.recv()
            except (EOFError, OSError):
                break
            self._on_message(handle, msg)
        self._on_exit(handle)

    def _pop_inflight(self, handle: _WorkerHandle, req_id: int) -> Tuple[Optional[Future], Optional[int]]:
        """Claim the (future, slab) for one request id (None if unknown)."""
        with self._lock:
            # an errored/expired traced request never gets worker spans, so
            # its pending trace is dropped here with the in-flight entry (a
            # served request's trace was already claimed by its "spans"
            # reply, which the worker sends first)
            handle.traces.pop(req_id, None)
            return handle.inflight.pop(req_id, (None, None))

    def _on_message(self, handle: _WorkerHandle, msg: tuple) -> None:
        """Dispatch one worker reply on the reader thread.

        Any terminal reply releases the request's slab lease; ``sresult``
        reads the response payload out of the slab first.
        """
        op = msg[0]
        if op == "sresult":
            _, req_id, shape, dtype = msg
            future, slab_id = self._pop_inflight(handle, req_id)
            result = None
            if future is not None and slab_id is not None:
                # copy out before the release recycles the slab
                result = self._slab_pool.read(slab_id, shape, dtype)
            with self._lock:
                self._release_slab(slab_id)
                handle.served += 1
            if future is not None and future.set_running_or_notify_cancel():
                future.set_result(result)
        elif op == "result":
            future, slab_id = self._pop_inflight(handle, msg[1])
            with self._lock:
                self._release_slab(slab_id)  # shm request, oversized result
                handle.served += 1
            if future is not None and future.set_running_or_notify_cancel():
                future.set_result(msg[2])
        elif op == "deadline":
            future, slab_id = self._pop_inflight(handle, msg[1])
            with self._lock:
                self._release_slab(slab_id)
                handle.deadline_misses += 1
            if future is not None and future.set_running_or_notify_cancel():
                future.set_exception(
                    DeadlineExceeded("request expired before its micro-batch was scheduled")
                )
        elif op == "error":
            future, slab_id = self._pop_inflight(handle, msg[1])
            kind, text = msg[2], msg[3]
            with self._lock:
                self._release_slab(slab_id)
            if future is not None and future.set_running_or_notify_cancel():
                exc: Exception = (
                    RoutingError(text) if kind == "routing"
                    else RuntimeError(f"worker {handle.worker_id}: {text}")
                )
                future.set_exception(exc)
        elif op == "spans":
            # worker-side lifecycle spans for a sampled request; the worker
            # sends them before the result, so the merge happens-before the
            # future resolves (same pipe, same reader thread)
            with self._lock:
                trace = handle.traces.pop(msg[1], None)
            if trace is not None:
                for span_name, start_s, end_s in msg[2]:
                    trace.add(span_name, start_s, end_s)
        elif op == "pong":
            with self._lock:
                entry = handle.pings.pop(msg[1], None)
            if entry is not None:
                entry[1] = (msg[2], tuple(msg[3]))
                entry[0].set()
        elif op == "kprofile":
            with self._lock:
                entry = handle.pings.pop(msg[1], None)
            if entry is not None:
                entry[1] = msg[2]
                entry[0].set()
        # "loaded" / "unloaded" / "load_error" acknowledgements need no action:
        # the router keeps the authoritative placement + size accounting.

    def _on_exit(self, handle: _WorkerHandle) -> None:
        """Reader saw EOF: fail in-flight work, reclaim the dead worker's
        slab leases, and restart the process unless the pool is stopping.

        With a ``restart_backoff`` policy, a worker that keeps dying soon
        after spawn respawns after a capped exponential delay instead of
        immediately; its dead handle stays published meanwhile so submits
        fail fast with :class:`~repro.errors.WorkerCrashed`.
        """
        with self._lock:
            current = self._handles.get(handle.worker_id)
            if current is not handle:
                return  # a newer generation already replaced this slot
            dead = self._reclaim_slabs(handle)
            stopping = handle.stopping or not self._started
        handle.proc.join(_JOIN_TIMEOUT_S)
        for future in dead:
            if future.set_running_or_notify_cancel():
                future.set_exception(
                    WorkerCrashed(
                        f"worker {handle.worker_id} died with {len(dead)} request(s) in flight"
                    )
                )
        if stopping:
            return
        with self._lock:
            if not self._started or handle.stopping:
                return  # stop() won the race after the unlocked join
            self._crashes += 1
            self._retire_counters([handle])
            wid = handle.worker_id
            delay = 0.0
            policy = self.restart_backoff
            if policy is not None:
                lifetime = time.monotonic() - self._spawn_times.get(wid, 0.0)
                if lifetime < policy.stable_after_s:
                    streak = self._crash_streaks.get(wid, 0) + 1
                else:
                    streak = 1  # the previous spawn was stable; start over
                self._crash_streaks[wid] = streak
                delay = policy.delay_s(streak)
            if delay <= 0.0:
                replacement = self._spawn(wid, restarts=handle.restarts + 1)
                self._replay_loads(replacement, wid)
                self._handles[wid] = replacement
                return
            # crash loop: hold the slot in backoff.  The dead handle stays
            # published so submits fail fast (broken pipe -> WorkerCrashed)
            # and the retry layer steers around it via its breaker.
            self._delayed_restarts += 1
            self._backoff_until[wid] = time.monotonic() + delay
            timer = threading.Timer(delay, self._respawn_after_backoff, args=(handle,))
            timer.daemon = True
            self._restart_timers[wid] = timer
            timer.start()

    def _respawn_after_backoff(self, handle: _WorkerHandle) -> None:
        """Backoff timer fired: respawn the slot unless the pool stopped."""
        with self._lock:
            wid = handle.worker_id
            self._restart_timers.pop(wid, None)
            self._backoff_until.pop(wid, None)
            if not self._started or handle.stopping:
                return
            if self._handles.get(wid) is not handle:
                return  # slot already moved on (stop/start cycle)
            replacement = self._spawn(wid, restarts=handle.restarts + 1)
            self._replay_loads(replacement, wid)
            self._handles[wid] = replacement

    def _replay_loads(self, replacement: _WorkerHandle, worker_id: int) -> None:
        """Replay a crashed worker's model loads into its replacement's pipe.

        Runs *before* the handle is published: a caller resubmitting right
        after its WorkerCrashed cannot race ahead of the re-decode.  Image
        blobs are ~KBs, so these sends cannot fill the pipe buffer.  Armed
        load poisons (:meth:`inject_crash_on_load`) are spent here, one
        per replay, so a poisoned model keeps killing replacements until
        the arming count runs out — the deterministic crash loop the
        restart-backoff tests are built on.
        """
        poisons = self._poison.get(worker_id, {})
        for name, blob in self._worker_loads.get(worker_id, {}).items():
            try:
                if poisons.get(name, 0) > 0:
                    poisons[name] -= 1
                    replacement.conn.send(("poison", name))
                replacement.conn.send(("load", name, blob))
            except OSError:
                break  # the replacement died instantly; its reader recurses

    # -- introspection ----------------------------------------------------- #

    @property
    def crashes(self) -> int:
        """Worker deaths detected (and recovered from) so far."""
        with self._lock:
            return self._crashes

    def transport_snapshot(self) -> Dict[str, int]:
        """Data-plane counters: per-plane request counts, fallback reasons,
        and the slab ring's accounting (empty geometry when shm is off).

        ``leased == 0`` and ``acquired == released`` after :meth:`stop` is
        the no-leak invariant — every slab a request (or a crashed worker)
        ever held made it back to the ring before the segment was unlinked.
        """
        with self._lock:
            snap: Dict[str, int] = {
                "shm_enabled": self._transport_config is not None,
                "shm_requests": self._shm_requests,
                "pipe_requests": self._pipe_requests,
                "fallbacks_exhausted": self._fallbacks_exhausted,
                "fallbacks_oversize": self._fallbacks_oversize,
            }
            if self._slab_pool is not None:
                snap.update(self._slab_pool.snapshot())
            return snap

    def totals(self) -> Tuple[int, int]:
        """Lifetime ``(served, deadline_misses)`` across workers and restarts."""
        with self._lock:
            served = self._retired_served + sum(h.served for h in self._handles.values())
            misses = self._retired_misses + sum(
                h.deadline_misses for h in self._handles.values()
            )
            return served, misses

    def worker_snapshot(self) -> List[dict]:
        """Per-slot counters for :meth:`ClusterRouter.stats` (atomic copy)."""
        with self._lock:
            return [
                {
                    "worker_id": wid,
                    "alive": handle.proc.is_alive(),
                    "restarts": handle.restarts,
                    "in_flight": len(handle.inflight),
                    "served": handle.served,
                    "deadline_misses": handle.deadline_misses,
                    "backing_off": wid in self._restart_timers,
                    "crash_streak": self._crash_streaks.get(wid, 0),
                }
                for wid, handle in sorted(self._handles.items())
            ]

    def restart_snapshot(self) -> Dict[str, object]:
        """Restart-backoff state for the telemetry plane.

        ``workers`` maps each slot with a crash streak or a pending delayed
        respawn to ``{streak, backing_off, resume_in_s}``; ``delayed_restarts``
        is the lifetime count of respawns the backoff policy held back.
        """
        with self._lock:
            now = time.monotonic()
            rows: Dict[str, Dict[str, float]] = {}
            for wid in range(self.num_workers):
                streak = self._crash_streaks.get(wid, 0)
                backing_off = wid in self._restart_timers
                if streak == 0 and not backing_off:
                    continue
                rows[str(wid)] = {
                    "streak": streak,
                    "backing_off": int(backing_off),
                    "resume_in_s": max(0.0, self._backoff_until.get(wid, now) - now),
                }
            return {
                "enabled": int(self.restart_backoff is not None),
                "delayed_restarts": self._delayed_restarts,
                "workers": rows,
            }


# --------------------------------------------------------------------------- #
# router
# --------------------------------------------------------------------------- #


class ClusterRouter:
    """Registry-driven front of a :class:`WorkerPool`.

    Parameters
    ----------
    workers:
        Number of worker processes (or a prebuilt :class:`WorkerPool`).
    capacity_bytes:
        Cluster-wide decoded-plan budget, summed over every replica of
        every placement (a key placed on N workers costs N × its decoded
        size; ``None`` = unbounded).  LRU replica sets are unloaded to
        admit new ones; a model whose full replica set alone exceeds the
        budget is rejected at :meth:`register`.
    policy:
        :class:`~repro.serving.priority.PriorityPolicy` for admission
        (default: 256 pending, LOW sheds at 50 %, NORMAL at 80 %); limits
        scale with the replica count serving the request's model.
    placement:
        :class:`~repro.serving.placement.PlacementPolicy` deciding where
        ``(model, version)`` plans live and which replica serves each
        request — an instance, or one of ``"sticky"`` (default; one replica
        per key), ``"replicated"`` (N replicas, power-of-two-choices
        dispatch), ``"least-loaded"`` (N replicas, full load scan).
    config:
        Micro-batch policy for every worker's engine.
    start_method:
        ``multiprocessing`` start method for a pool built here
        (default ``"spawn"``).
    transport:
        Data plane for a pool built here: ``True`` (default) enables the
        shared-memory slab plane, a :class:`~repro.serving.shm.SlabConfig`
        customises its geometry, ``False``/``None`` keeps everything on the
        pickle-over-pipe path.
    latency_window:
        How many recent completions the per-class and per-version latency
        percentiles are computed over (default
        :data:`DEFAULT_LATENCY_WINDOW`).  Larger windows smooth the
        percentiles over more history; smaller ones track load shifts
        faster at the cost of noisier tails.
    trace_sample_rate:
        Fraction of request bursts to trace end-to-end (``0.0`` default =
        tracing off, zero hot-path cost; ``1.0`` = every burst).  A
        sampled burst's first request carries a trace id through the
        control frame and comes back with its full lifecycle spans
        (admission → encode → dispatch → transport → queue → kernel →
        decode → completion); finished traces are kept on
        :attr:`tracer` and exported via :meth:`dump_trace`.
    telemetry:
        :class:`~repro.serving.telemetry.MetricsRegistry` to report
        through (default: a private registry per router).  The router
        mounts ``cluster`` / ``shm`` / ``placement`` sources on it — and
        mirrors the same sources onto the process-default registry, so
        module-level :func:`repro.serving.telemetry.snapshot` sees the
        latest router without holding it alive.
    retry:
        :class:`~repro.serving.resilience.RetryPolicy` (default ``None`` =
        off): retryable failures (:data:`~repro.serving.resilience.RETRYABLE`)
        are transparently re-dispatched to a *different* replica with
        seeded exponential backoff, under the policy's global
        :class:`~repro.serving.resilience.RetryBudget`.  Safe because
        inference is pure and replicas are bitwise identical.
    breakers:
        Per-worker circuit breakers
        (:class:`~repro.serving.resilience.BreakerPolicy` instance, or
        ``True`` for defaults; default ``None`` = off): a worker with N
        consecutive failures is quarantined out of replica choice until a
        half-open probe succeeds.
    hedge:
        :class:`~repro.serving.resilience.HedgePolicy` (default ``None`` =
        off): a HIGH-priority single request still unresolved after a
        p99-derived delay is duplicated to another replica; first result
        wins, the loser is cancelled and never double-counted in stats.
    restart_backoff:
        :class:`~repro.serving.resilience.RestartBackoffPolicy` forwarded
        to a pool built here — crash-looping workers respawn under capped
        exponential delay instead of hot-looping re-decodes.
    kernel:
        Execution backend every worker decodes and serves models on — a
        :mod:`repro.serving.kernels_fast` registry name, a *registered*
        :class:`~repro.serving.kernels_fast.KernelBackend` instance, or
        ``None`` for the process default.  Resolved eagerly to a backend
        *name* and forwarded to the pool built here, so the whole cluster
        is homogeneous: every replica (including crash-restart
        replacements) runs bitwise-identical kernels.  Instances that are
        not the registered backend for their name (e.g. a configured
        ``FusedBackend(layout="feature")``) are rejected with
        :class:`~repro.errors.ConfigError` — workers re-resolve the name
        in their own process and would silently drop the configuration.
    """

    def __init__(
        self,
        workers: Union[int, WorkerPool] = 2,
        *,
        capacity_bytes: Optional[int] = None,
        policy: Optional[PriorityPolicy] = None,
        placement: Union[str, PlacementPolicy, None] = None,
        config: Optional[MicroBatchConfig] = None,
        start_method: str = "spawn",
        transport: Union[SlabConfig, bool, None] = True,
        latency_window: int = DEFAULT_LATENCY_WINDOW,
        trace_sample_rate: float = 0.0,
        telemetry: Optional[MetricsRegistry] = None,
        retry: Optional[RetryPolicy] = None,
        breakers: Union[BreakerPolicy, bool, None] = None,
        hedge: Optional[HedgePolicy] = None,
        restart_backoff: Optional[RestartBackoffPolicy] = None,
        kernel: Union[str, KernelBackend, None] = None,
    ) -> None:
        if isinstance(workers, WorkerPool):
            if config is not None:
                raise ConfigError("pass config only when the router builds its own pool")
            if restart_backoff is not None:
                raise ConfigError(
                    "pass restart_backoff only when the router builds its own pool "
                    "(a prebuilt WorkerPool takes it directly)"
                )
            if kernel is not None:
                raise ConfigError(
                    "pass kernel only when the router builds its own pool "
                    "(a prebuilt WorkerPool takes it directly)"
                )
            self.pool = workers
        else:
            self.pool = WorkerPool(
                workers,
                config=config,
                start_method=start_method,
                transport=transport,
                restart_backoff=restart_backoff,
                kernel=kernel,
            )
        #: resolved backend name every worker in the cluster executes on
        self.kernel = self.pool.kernel
        if capacity_bytes is not None and capacity_bytes < 1:
            raise ConfigError("capacity_bytes must be >= 1 (or None for unbounded)")
        if latency_window < 1:
            raise ConfigError("latency_window must be >= 1")
        self.capacity_bytes = capacity_bytes
        self.policy = policy or PriorityPolicy()
        self.placement_policy = PlacementPolicy.create(placement)
        self.latency_window = latency_window
        self._lock = threading.RLock()
        #: versioned bookkeeping lives in the shared catalog; entries are
        #: ``(image_bytes, decoded_size)`` pairs (see repro.serving.catalog
        #: for the CatalogError -> ConfigError/RoutingError mapping policy)
        self._catalog = VersionedCatalog()
        self._model_policies: Dict[str, PlacementPolicy] = {}  # per-model overrides
        self._placements = PlacementTable()  # key -> ReplicaSet, LRU first
        self._protected: set = set()  # keys an in-progress deploy pins against eviction
        self._pending = 0
        #: replica-normalized occupancy: a request to an R-replica model
        #: charges 1/R of an admission slot (see PriorityPolicy docs)
        self._pending_weight = 0.0
        self._pending_by_class: Dict[Priority, int] = {p: 0 for p in Priority}
        self._key_pending: Dict[str, int] = {}  # key -> admitted-but-unresolved
        self._shed: Dict[Priority, int] = {p: 0 for p in Priority}
        self._latency_by_class: Dict[Priority, Deque[float]] = {
            p: deque(maxlen=latency_window) for p in Priority
        }
        self._completions: Dict[Priority, int] = {p: 0 for p in Priority}
        self._latency_by_key: Dict[str, Deque[float]] = {}
        self._completions_by_key: Dict[str, int] = {}
        self._errors_by_key: Dict[str, int] = {}  # failed completions per key
        self._shed_by_key: Dict[str, int] = {}  # admission sheds per key
        self._splits: Dict[str, _CanarySplit] = {}  # name -> traffic split
        self._scale_events: Deque[ScaleEvent] = deque(maxlen=SCALE_EVENT_WINDOW)
        self._lags: Dict[str, float] = {}  # key -> injected worker-side lag (chaos)
        self._evictions = 0
        #: last merged per-kind kernel breakdown (kernel_profile() refreshes)
        self._kernel_profile: Dict[str, Dict[str, float]] = {}
        # -- resilience state (all opt-in; None/zeroed when off) ----------- #
        self.retry_policy = retry
        self._retry_budget = retry.make_budget() if retry is not None else None
        self._retry_tokens = itertools.count()
        if breakers is True:
            breakers = BreakerPolicy()
        self.breakers = BreakerBoard(breakers) if isinstance(breakers, BreakerPolicy) else None
        self.hedge_policy = hedge
        self._brownout = False
        self._brownout_sheds = 0
        self._errors_by_type: Dict[str, int] = {}
        self._retries_attempted = 0
        self._retries_succeeded = 0
        self._retries_exhausted = 0
        self._retries_budget_denied = 0
        self._hedges = 0
        self._hedges_won = 0
        self.telemetry = telemetry if telemetry is not None else MetricsRegistry()
        self.tracer = Tracer(trace_sample_rate, registry=self.telemetry)
        for registry in (self.telemetry, get_registry()):
            registry.register_source("cluster", self._telemetry_tree)
            registry.register_source("shm", self.pool.transport_snapshot)
            registry.register_source("placement", self._placement_tree)

    # -- catalog ----------------------------------------------------------- #

    def register(
        self,
        name: str,
        image: Union[ModelImage, bytes],
        *,
        version: Optional[str] = None,
        activate: bool = True,
        placement: Union[str, PlacementPolicy, None] = None,
    ) -> None:
        """Add or replace a model image under ``(name, version)``.

        ``version=None`` replaces the model's current version (or registers
        :data:`~repro.serving.placement.DEFAULT_VERSION` for a new name) —
        the pre-versioning ``register(name, image)`` behaviour.  With
        ``activate=True`` (default) the registered version becomes the one
        ``version=None`` requests resolve to; ``activate=False`` registers
        it inactive — which requires an explicit ``version=`` (staging can
        never target the current version) and is how a rolling deploy
        stages a new version before its atomic flip.  A brand-new name's
        first version becomes current regardless of ``activate`` — a
        registered model always has a current version.  ``placement``
        overrides the router's placement policy for this model (all its
        versions); changing the policy drops the model's existing replica
        sets so the next use re-places under the new one.

        The image is serialized once here; workers decode their own plans
        from these bytes.  The decoded size (the byte-budget accounting unit)
        is measured by decoding once in the parent and discarding the plans —
        decode is deterministic, so the worker-side footprint is identical.
        """
        with catalog_errors(ConfigError, RoutingError):
            # validate the full spec before decoding: every malformed
            # request fails before any side effect (or expensive work) runs
            self._catalog.check_spec(name, version=version, activate=activate)
        blob = image.to_bytes() if isinstance(image, ModelImage) else bytes(image)
        size = PackedModel(ModelImage.from_bytes(blob), cache=True).decoded_bytes()
        with self._lock:
            policy = (
                PlacementPolicy.create(placement)
                if placement is not None
                else self._policy_for(name)
            )
            replicas = max(1, min(policy.replicas, self.pool.num_workers))
            if self.capacity_bytes is not None:
                # the policy governs every version of the name, so every
                # registered version must still fit a full replica set —
                # this is what keeps _admit_bytes' "a lone placement always
                # fits" invariant true after a placement override
                largest = max(
                    [size, *(entry[1] for _, entry in self._catalog.items(name))]
                )
                if largest * replicas > self.capacity_bytes:
                    raise ConfigError(
                        f"model {name!r} needs {largest} decoded bytes x "
                        f"{replicas} replica(s) but the cluster budget is "
                        f"{self.capacity_bytes}"
                    )
            if placement is not None and not policy.equivalent(self._policy_for(name)):
                # committed only once the budget admits; existing replica
                # sets were planned under the old policy, so drop them —
                # the next use re-places under the new one (unloads under
                # the router lock, like everywhere else).  An equivalent
                # policy (same class, same replica count) is a no-op here:
                # re-registering with the same spec must not cold-restart
                # the model's placements.
                self._model_policies[name] = policy
                for existing_version in self._catalog.versions(name):
                    stale = self._placements.pop(make_key(name, existing_version))
                    if stale is not None:
                        for worker_id in stale.workers:
                            self.pool.unload(worker_id, stale.key)
            with catalog_errors(ConfigError, RoutingError):
                version = self._catalog.register(
                    name, (blob, size), version=version, activate=activate
                )
            # replacing: drop the stale plans; next use reloads.  The
            # unloads go out under the router lock so they cannot land
            # behind a concurrent submit's re-placement load
            replica_set = self._placements.pop(make_key(name, version))
            if replica_set is not None:
                for worker_id in replica_set.workers:
                    self.pool.unload(worker_id, replica_set.key)

    def remove(self, name: str, *, version: Optional[str] = None) -> None:
        """Forget a model (or one version of it), unloading its placements.

        ``version=None`` removes every version of ``name``; naming a version
        removes just that one — removing the *current* version is rejected
        while other versions exist (flip first via :meth:`set_current` or a
        deploy).  Unknown names/versions raise.
        """
        with self._lock:
            with catalog_errors(ConfigError, RoutingError):
                doomed = self._catalog.remove(name, version=version)
            for doomed_version in doomed:
                key = make_key(name, doomed_version)
                self._latency_by_key.pop(key, None)
                self._completions_by_key.pop(key, None)
                self._errors_by_key.pop(key, None)
                self._shed_by_key.pop(key, None)
                self._lags.pop(key, None)
                self._protected.discard(key)  # a removed key must not stay pinned
                replica_set = self._placements.pop(key)
                if replica_set is not None:
                    # unload under the router lock: cannot land behind a
                    # concurrent submit's re-placement load
                    for worker_id in replica_set.workers:
                        self.pool.unload(worker_id, key)
            if not self._catalog.has(name):
                self._model_policies.pop(name, None)
                self._splits.pop(name, None)
            else:
                split = self._splits.get(name)
                if split is not None and split.version in doomed:
                    # the canary version itself was removed: no burst may
                    # route to it again, keep the record as settled
                    split.state = "cleared"

    def names(self) -> List[str]:
        """All registered model names, sorted."""
        with self._lock:
            return self._catalog.names()

    def versions(self, name: str) -> List[str]:
        """Registered versions of ``name``, sorted (empty for unknown names)."""
        with self._lock:
            return self._catalog.versions(name)

    def current_version(self, name: str) -> str:
        """The version ``version=None`` requests resolve to for ``name``."""
        with self._lock, catalog_errors(ConfigError, RoutingError):
            return self._catalog.current_version(name)

    def set_current(self, name: str, version: str) -> None:
        """Atomically flip ``name``'s routing to ``version``.

        One dictionary write under the router lock: every request admitted
        after this call resolves ``version=None`` to the new version, every
        request admitted before it keeps the version it resolved — nothing
        in flight is disturbed, nothing is shed.
        """
        with self._lock, catalog_errors(ConfigError, RoutingError):
            self._catalog.set_current(name, version)

    def __contains__(self, name: str) -> bool:
        """True when ``name`` is a registered model."""
        with self._lock:
            return name in self._catalog

    def __len__(self) -> int:
        """Number of registered models (names, not versions)."""
        with self._lock:
            return self._catalog.name_count()

    # -- routing ----------------------------------------------------------- #

    def _resolve(self, model: Optional[str]) -> str:
        """Default-model resolution: a lone registered model needs no name."""
        with catalog_errors(ConfigError, RoutingError):
            return self._catalog.resolve_name(model)

    def _resolve_version(self, name: str, version: Optional[str]) -> str:
        """Version resolution for ``name``: ``None`` means current (under lock)."""
        with catalog_errors(ConfigError, RoutingError):
            return self._catalog.resolve_version(name, version)

    def _policy_for(self, name: str) -> PlacementPolicy:
        """The placement policy governing ``name`` (under lock)."""
        return self._model_policies.get(name, self.placement_policy)

    def _effective_replicas(self, name: str, key: Optional[str] = None) -> int:
        """Replica count serving ``name`` right now (under lock).

        When ``key``'s replica set is placed its *live* size wins — the
        autoscaler may have grown or shrunk it past the policy's static
        target — otherwise the policy target capped by the pool size (the
        count a fresh placement would get).
        """
        if key is not None:
            replica_set = self._placements.get(key)
            if replica_set is not None:
                return len(replica_set.workers)
        return max(1, min(self._policy_for(name).replicas, self.pool.num_workers))

    def _size_of(self, key: str) -> int:
        """Decoded byte size of one placed key (under lock)."""
        name, version = split_key(key)
        return self._catalog.get(name, version)[1]

    def _admit_bytes(self, needed: int, protect: set) -> None:
        """Evict LRU replica sets until ``needed`` more bytes fit the budget.

        Keys in ``protect`` (the placement being admitted plus both sides of
        any in-progress deploy) are never evicted.  Raises
        :class:`~repro.errors.RoutingError` when the protected placements
        alone exhaust the budget — :meth:`register` guarantees a lone
        placement always fits, so this only triggers when a deploy
        transiently pins old + new plans and the budget cannot hold both
        alongside this placement.
        """
        if self.capacity_bytes is None:
            return
        while self._resident_bytes() + needed > self.capacity_bytes:
            evicted = self._placements.pop_lru(exclude=protect)
            if evicted is None:
                raise RoutingError(
                    f"cluster byte budget ({self.capacity_bytes}) cannot admit "
                    f"{needed} more decoded bytes: every resident placement is "
                    f"pinned (in-progress deploy?)"
                )
            self._evictions += 1
            for worker_id in evicted.workers:
                self.pool.unload(worker_id, evicted.key)

    def _plan_workers(self, name: str) -> List[int]:
        """Plan a fresh replica set for one of ``name``'s keys (under lock).

        Delegates to the model's policy: the workers with the fewest
        in-flight requests host the plans (ties broken by fewest resident
        replica sets, then id).  One code path for normal placements and
        deploy warm-ups, so both place new plans by the same rule.
        """
        resident_count: Dict[int, int] = {wid: 0 for wid in self.pool.worker_ids()}
        for _, placed in self._placements.items():
            for wid in placed.workers:
                resident_count[wid] = resident_count.get(wid, 0) + 1
        return self._policy_for(name).plan(
            self.pool.worker_ids(), self.pool.in_flight, resident_count
        )

    def _reapply_lag(self, worker_id: int, key: str) -> None:
        """Re-inject ``key``'s chaos lag on a worker that just loaded it
        (under lock); no-op without an active :meth:`inject_version_lag`."""
        lag = self._lags.get(key)
        if lag:
            self.pool.inject_lag(worker_id, key, lag)

    def _place(self, key: str) -> ReplicaSet:
        """Replica-set lookup, or a fresh placement by policy (under lock).

        A new key is planned by its model's
        :class:`~repro.serving.placement.PlacementPolicy`
        (:meth:`_plan_workers`) after unloading LRU replica sets as needed
        to respect the cluster byte budget.
        """
        replica_set = self._placements.get(key)
        if replica_set is not None:
            return replica_set
        name, version = split_key(key)
        workers = self._plan_workers(name)
        self._admit_bytes(
            self._size_of(key) * len(workers), protect=self._protected | {key}
        )
        replica_set = ReplicaSet(key, workers, self._policy_for(name))
        self._placements.insert(replica_set)
        blob = self._catalog.get(name, version)[0]
        for worker_id in workers:
            self.pool.load(worker_id, key, blob)
            self._reapply_lag(worker_id, key)
        return replica_set

    def _resident_bytes(self) -> int:
        """Decoded-plan bytes across every replica of every placement
        (under lock)."""
        return self._placements.resident_bytes(self._size_of)

    def _drop_weight(self, weight: float) -> None:
        """Return normalized admission weight (under lock), drift-proofed.

        Fractional weights (1/replicas) do not always cancel exactly in
        floating point, so the counter is clamped at zero and resynced to
        exactly 0.0 whenever the raw pending count empties.
        """
        self._pending_weight = max(0.0, self._pending_weight - weight)
        if self._pending == 0:
            self._pending_weight = 0.0

    def _complete(
        self,
        priority: Priority,
        key: str,
        replica_set: ReplicaSet,
        worker_id: int,
        weight: float,
        started: float,
        trace: Optional[Trace],
        record: bool,
        future: "Future[np.ndarray]",
    ) -> None:
        """Done-callback: free one admission slot and record the latency.

        Latency (submit→resolve, transport and queueing included) is only
        recorded for successfully served requests — sheds never get here and
        failures would skew the percentiles with error-path timing.  The
        per-version rollup and the serving replica's completion counter are
        updated alongside the per-class one.

        ``trace`` is non-None only on the traced request of a sampled
        burst: its worker spans merged when the ``("spans", ...)`` reply
        arrived (same reader thread, strictly before the future resolved),
        so closing with the ``completion`` span here and handing the trace
        to the tracer observes a fully assembled timeline.

        ``record=False`` marks a hedge leg: its admission slots and replica
        dispatch are still released/credited (they were really held), but
        latency, completion and error counters are skipped so a hedged
        request is never double-counted.  The per-worker circuit breaker
        observes *every* resolved attempt either way — a hedge leg hitting
        a dying worker is evidence the breaker must not miss.
        """
        with self._lock:
            self._pending -= 1
            self._drop_weight(weight)
            self._pending_by_class[priority] -= 1
            pending = self._key_pending.get(key, 0) - 1
            if pending > 0:
                self._key_pending[key] = pending
            else:
                self._key_pending.pop(key, None)
            if future.cancelled():
                return
            exc = future.exception()
            if self.breakers is not None:
                if exc is None:
                    self.breakers.record(worker_id, True)
                elif isinstance(exc, (WorkerCrashed, TransportError)):
                    self.breakers.record(worker_id, False)
            if exc is not None:
                if record:
                    # per-version error feed for the canary controller:
                    # crashes, deadline misses and routing failures all count
                    # against the version the burst resolved to; the by-type
                    # rollup counts every failed *attempt* for the
                    # resilience plane
                    self._errors_by_key[key] = self._errors_by_key.get(key, 0) + 1
                    kind = type(exc).__name__
                    self._errors_by_type[kind] = self._errors_by_type.get(kind, 0) + 1
                return
            if not record:  # hedge leg: slots freed above, stats untouched
                replica_set.record_completion(worker_id)
                return
            now = time.monotonic()
            if trace is not None:
                # completion: from the last worker-side span back to this
                # resolve — the return pipe hop plus reader dispatch
                last_end = max((s.end_s for s in trace.spans), default=started)
                trace.add("completion", last_end, now)
                self.tracer.finish(trace)
            elapsed = now - started
            self._completions[priority] += 1
            self._latency_by_class[priority].append(elapsed)
            self._completions_by_key[key] = self._completions_by_key.get(key, 0) + 1
            self._latency_by_key.setdefault(
                key, deque(maxlen=self.latency_window)
            ).append(elapsed)
            # credit exactly the replica-set generation that dispatched
            # this request (captured in the callback): after an evict +
            # re-place the key may map to a NEW set that never saw this
            # request, and crediting it would desync its counters
            replica_set.record_completion(worker_id)

    # -- deploy primitives (driven by placement.DeployManager) -------------- #

    def warm(self, name: str, version: str) -> List[int]:
        """Stage ``version``'s plans alongside the current version's.

        Places the new key on the *same* workers as the current version's
        replica set (a fresh placement plan when the model was never
        placed), sending the image to each — routing still points at the
        old version, so traffic is untouched.  Both keys are pinned against
        LRU eviction until :meth:`release_version` unpins them, and the new
        plans are budget-accounted immediately: the cluster budget must
        hold old + new during the transition.  Returns the target worker
        ids; the caller polls :meth:`WorkerPool.ping` for warm-up
        completion.
        """
        with self._lock:
            if not self._catalog.has_version(name, version):
                raise RoutingError(f"unknown version {version!r} of model {name!r}")
            current = self._catalog.current_version(name)
            new_key = make_key(name, version)
            old_key = make_key(name, current)
            staged = self._placements.get(new_key)
            if staged is not None:  # already warm (idempotent)
                self._protected.update({old_key, new_key})
                return list(staged.workers)
            current_set = self._placements.get(old_key)
            if current_set is not None:
                workers = list(current_set.workers)
            else:
                workers = self._plan_workers(name)
            self._protected.update({old_key, new_key})
            try:
                self._admit_bytes(
                    self._size_of(new_key) * len(workers), protect=self._protected
                )
            except BaseException:
                self._protected.discard(new_key)
                if old_key != new_key:
                    self._protected.discard(old_key)
                raise
            self._placements.insert(ReplicaSet(new_key, workers, self._policy_for(name)))
            # load under the router lock, like _place(): a concurrent
            # version-pinned submit that sees the fresh replica set cannot
            # slip its burst frame into the pipe ahead of these loads
            blob = self._catalog.get(name, version)[0]
            for worker_id in workers:
                self.pool.load(worker_id, new_key, blob)
                self._reapply_lag(worker_id, new_key)
            return list(workers)

    def release_version(self, name: str, version: str) -> None:
        """Unload one version's replica set (and drop its eviction pin).

        Called by the deploy manager after the old version drained (or to
        abort a failed warm-up).  The version's decoded bytes leave the
        cluster budget and its latency *window* is dropped (the served
        counter survives in ``latency_by_version``), so rolling deploys do
        not accumulate per-version window memory; the version's *image*
        stays registered for rollbacks.
        """
        with self._lock:
            key = make_key(name, version)
            self._protected.discard(key)
            self._latency_by_key.pop(key, None)
            replica_set = self._placements.pop(key)
            if replica_set is not None:
                # unload under the router lock: cannot land behind a
                # concurrent submit's re-placement load
                for worker_id in replica_set.workers:
                    self.pool.unload(worker_id, key)

    def unpin(self, name: str) -> None:
        """Drop the deploy eviction pins for every key of ``name``.

        The deploy manager calls this when a deploy leaves its critical
        section — success, warm-up abort, or drain timeout — so no key
        stays pinned against LRU eviction once no deploy is in flight.
        Matches pinned keys by name prefix rather than the registered
        version list, so pins cannot survive a concurrent ``remove``.
        """
        with self._lock:
            self._protected = {
                key for key in self._protected if split_key(key)[0] != name
            }

    def version_pending(self, name: str, version: str) -> int:
        """Admitted-but-unresolved requests pinned to one ``(name, version)``."""
        with self._lock:
            return self._key_pending.get(make_key(name, version), 0)

    # -- control plane (driven by serving.control) -------------------------- #

    def resize(
        self,
        name: Optional[str],
        replicas: int,
        *,
        version: Optional[str] = None,
        reason: str = "manual resize",
    ) -> Optional[ScaleEvent]:
        """Grow or shrink one placed key's live replica set.

        The target is clamped to ``[1, pool size]``; a no-op target returns
        ``None``.  Growing ranks non-member workers by (in-flight load,
        resident replica sets, id), budget-admits the extra copies
        (evicting unpinned LRU placements if needed), then loads the plans
        and joins each replica under the router lock — so the new replica
        is warm (its ``load`` is ahead of any burst in its pipe) before it
        can be picked.  Shrinking removes the least-loaded replicas and
        unloads them; in-flight bursts on a removed replica finish first
        because the ``unload`` queues behind them in the worker's pipe.
        Raises :class:`~repro.errors.RoutingError` for a cluster that is
        not running, an unplaced key, or a key pinned by an in-progress
        deploy (resizing mid-deploy would fight the warm/drain sequence).
        Returns the recorded :class:`ScaleEvent` when the set changed.
        """
        if not self.pool.running:
            raise RoutingError("cluster not started; call start() or use a with block")
        with self._lock:
            name = self._resolve(name)
            resolved = self._resolve_version(name, version)
            key = make_key(name, resolved)
            replica_set = self._placements.get(key)
            if replica_set is None:
                raise RoutingError(
                    f"model {key!r} has no live placement to resize "
                    f"(serve at least one request first)"
                )
            if key in self._protected:
                raise RoutingError(
                    f"model {key!r} is pinned by an in-progress deploy; "
                    f"resize after it settles"
                )
            target = max(1, min(int(replicas), self.pool.num_workers))
            before = len(replica_set.workers)
            if target == before:
                return None
            if target > before:
                members = set(replica_set.workers)
                resident_count: Dict[int, int] = {}
                for _, placed in self._placements.items():
                    for wid in placed.workers:
                        resident_count[wid] = resident_count.get(wid, 0) + 1
                candidates = sorted(
                    (wid for wid in self.pool.worker_ids() if wid not in members),
                    key=lambda wid: (
                        self.pool.in_flight(wid),
                        resident_count.get(wid, 0),
                        wid,
                    ),
                )
                added = candidates[: target - before]
                self._admit_bytes(
                    self._size_of(key) * len(added), protect=self._protected | {key}
                )
                blob = self._catalog.get(name, resolved)[0]
                for wid in added:
                    # load + join under the router lock: the replica cannot
                    # be picked before its plans are ahead of any burst in
                    # its pipe (same ordering argument as _place)
                    self.pool.load(wid, key, blob)
                    self._reapply_lag(wid, key)
                    replica_set.add_replica(wid)
            else:
                victims = sorted(
                    replica_set.workers,
                    key=lambda wid: (self.pool.in_flight(wid), -wid),
                )[: before - target]
                for wid in victims:
                    replica_set.remove_replica(wid)
                    self.pool.unload(wid, key)
            event = ScaleEvent(
                key=key,
                action="grow" if target > before else "shrink",
                from_replicas=before,
                to_replicas=len(replica_set.workers),
                reason=reason,
                at_s=time.monotonic(),
            )
            self._scale_events.append(event)
            return event

    def set_split(self, name: Optional[str], version: str, fraction: float) -> None:
        """Open a canary traffic split on ``name``.

        While the split is running, ``fraction`` of ``version=None`` bursts
        (deterministic counter interleave, no RNG) route to ``version``
        instead of the current version; explicit ``version=`` pins are
        never rerouted.  The canary version must already be registered
        (staged with ``activate=False``) and must not be current.  Replaces
        any previous split record for the name.
        """
        with self._lock:
            if not 0.0 < fraction < 1.0:
                raise ConfigError(
                    f"canary fraction must be in (0, 1), got {fraction!r}"
                )
            name = self._resolve(name)
            resolved = self._resolve_version(name, version)
            if resolved == self._catalog.current_version(name):
                raise RoutingError(
                    f"version {resolved!r} is already current for model "
                    f"{name!r}; a canary split needs a staged, non-current "
                    f"version"
                )
            self._splits[name] = _CanarySplit(resolved, float(fraction))

    def clear_split(self, name: str, outcome: str = "cleared") -> None:
        """Stop routing canary traffic for ``name`` (idempotent).

        The split record stays visible in ``canary_state`` frozen at
        ``outcome`` (``"promoted"`` / ``"rolled_back"`` / ``"cleared"``) so
        stats readers see how the canary settled; the next
        :meth:`set_split` replaces it.
        """
        with self._lock:
            split = self._splits.get(name)
            if split is not None:
                split.state = outcome

    def canary_split(self, name: str) -> Optional[CanarySplitStats]:
        """The live-or-settled split record for ``name`` (None = never split)."""
        with self._lock:
            split = self._splits.get(name)
            return None if split is None else split.snapshot()

    def inject_version_lag(
        self, name: Optional[str], version: Optional[str], seconds: float
    ) -> None:
        """Chaos hook: stall every burst of one ``(name, version)``.

        Applies :meth:`WorkerPool.inject_lag` to each live replica and
        remembers the lag so replicas placed, warmed, or grown later get it
        too (``seconds=0`` clears it).  Deliberately **not** replayed across
        a crash restart, mirroring the worker-side chaos hooks.
        """
        with self._lock:
            name = self._resolve(name)
            resolved = self._resolve_version(name, version)
            key = make_key(name, resolved)
            if seconds > 0:
                self._lags[key] = float(seconds)
            else:
                self._lags.pop(key, None)
            replica_set = self._placements.get(key)
            if replica_set is not None:
                for wid in replica_set.workers:
                    self.pool.inject_lag(wid, key, float(seconds))

    # -- request side ------------------------------------------------------ #

    def submit(
        self,
        x: np.ndarray,
        *,
        model: Optional[str] = None,
        version: Optional[str] = None,
        priority: Priority = Priority.NORMAL,
        deadline_s: Optional[float] = None,
    ) -> "Future[np.ndarray]":
        """Admit, route and send one request; returns its result future.

        Admission applies the priority watermarks
        (:class:`~repro.serving.priority.PriorityPolicy`, scaled by the
        model's replica count): a request whose class is over its occupancy
        limit is shed immediately with
        :class:`~repro.errors.AdmissionError`.  ``version=None`` resolves
        to the model's current version at admission (naming one pins it);
        ``deadline_s`` is the latency budget measured from this call,
        enforced at worker dispatch.
        """
        return self.submit_many(
            [x], model=model, version=version, priority=priority, deadline_s=deadline_s
        )[0]

    def submit_many(
        self,
        xs: Sequence[np.ndarray],
        *,
        model: Optional[str] = None,
        version: Optional[str] = None,
        priority: Priority = Priority.NORMAL,
        deadline_s: Optional[float] = None,
    ) -> List["Future[np.ndarray]"]:
        """Admit, route and send a burst of requests in one control frame.

        Admission is **all-or-nothing**: the burst is admitted only when
        every request fits under the class watermark (scaled by the
        resolved model's replica count), otherwise the whole burst is shed
        with :class:`~repro.errors.AdmissionError` (and counted per request
        in ``shed_by_priority``) — no request of a partially admissible
        burst is enqueued.  The whole burst resolves one ``(model,
        version)`` and dispatches to one replica chosen by the placement
        policy, shares one deadline budget measured from this call, and
        crosses the worker pipe as a single message
        (:meth:`WorkerPool.submit_many`), so large batch shapes cost one
        syscall, not one per request.

        With a router-level :class:`~repro.serving.resilience.RetryPolicy`
        the returned futures are *retry-wrapped*: a retryable failure
        (:data:`~repro.serving.resilience.RETRYABLE`) is transparently
        re-submitted — per request, version-pinned to this burst's resolved
        version, steered away from every replica that already failed it,
        after seeded exponential backoff, within the deadline and the
        global retry budget — and the caller's future only fails once the
        policy gives up.  With a :class:`~repro.serving.resilience.HedgePolicy`
        a ``HIGH``-priority *single* request is additionally hedge-wrapped
        (duplicate dispatch after a p99-derived delay, first result wins).
        """
        if not self.pool.running:
            raise RoutingError("cluster not started; call start() or use a with block")
        xs = list(xs)
        if not xs:
            return []
        priority = Priority(priority)
        deadline = None if deadline_s is None else time.monotonic() + deadline_s
        futures, key, worker_id = self._submit_once(
            xs, model=model, version=version, priority=priority, deadline=deadline
        )
        # version is pinned for re-dispatch: a retry/hedge leg must be
        # bitwise identical to the first attempt even across a concurrent
        # activate/canary flip, so it targets the resolved key, not `model`
        name_, version_ = split_key(key)
        if self.retry_policy is not None:
            self._retry_budget.note(len(xs))
            futures = [
                self._wrap_retry(
                    future, x, name=name_, version=version_, priority=priority,
                    deadline=deadline, worker_id=worker_id,
                )
                for future, x in zip(futures, xs)
            ]
        if (
            self.hedge_policy is not None
            and priority == Priority.HIGH
            and len(futures) == 1
        ):
            futures = [
                self._wrap_hedge(
                    futures[0], xs[0], name=name_, version=version_,
                    deadline=deadline, primary_worker=worker_id,
                )
            ]
        return futures

    def _submit_once(
        self,
        xs: List[np.ndarray],
        *,
        model: Optional[str],
        version: Optional[str],
        priority: Priority,
        deadline: Optional[float],
        avoid: frozenset = frozenset(),
        record: bool = True,
    ) -> Tuple[List["Future[np.ndarray]"], str, int]:
        """One admission + placement + dispatch attempt (no retry/hedge).

        The single dispatch primitive every caller-visible path reduces to:
        first attempts, retry re-dispatches (``avoid`` steers placement off
        the replicas that already failed the request) and hedge legs
        (``record=False`` keeps them out of latency/error stats) all pay
        full admission here — a retry storm is subject to exactly the same
        watermarks as first-time traffic.  Returns ``(futures, resolved
        key, dispatched worker id)``; ``deadline`` is absolute monotonic.
        """
        # sampled tracing: with trace_sample_rate=0 this returns None before
        # touching any state, so the control-frame hot path stays allocation-free
        trace = self.tracer.maybe_trace() if record else None
        admit_start = time.monotonic() if trace is not None else 0.0
        with self._lock:
            name = self._resolve(model)
            resolved_version = self._resolve_version(name, version)
            split = self._splits.get(name)
            if version is None and split is not None and split.state == "running":
                # canary traffic split: only version=None requests are
                # eligible (an explicit version= is a caller's pin and is
                # never rerouted); the deterministic counter interleaves
                # exactly `fraction` of bursts onto the canary version
                if split.take():
                    resolved_version = split.version
            key = make_key(name, resolved_version)
            replicas = self._effective_replicas(name, key)
            # replica-normalized admission: each request charges 1/replicas
            # of a slot against the *shared* per-worker-calibrated budget, so
            # a replicated model admits proportionally more work while other
            # models' watermarks (and HIGH's reserved headroom) still hold
            weight = len(xs) / replicas
            if not self.policy.admits(
                priority, self._pending_weight, weight, brownout=self._brownout
            ):
                self._shed[priority] += len(xs)
                self._shed_by_key[key] = self._shed_by_key.get(key, 0) + len(xs)
                self._errors_by_type["AdmissionError"] = (
                    self._errors_by_type.get("AdmissionError", 0) + len(xs)
                )
                if self._brownout and priority == Priority.LOW:
                    self._brownout_sheds += len(xs)
                    raise AdmissionError(
                        f"brownout active: LOW burst of {len(xs)} shed "
                        f"(graceful degradation, see resilience.BrownoutController)"
                    )
                raise AdmissionError(
                    f"{priority.name} admission limit "
                    f"({self.policy.admit_limit(priority)} of "
                    f"{self.policy.max_pending}) cannot fit a burst of "
                    f"{len(xs)} (weight {weight:g} at {replicas} replica(s)) "
                    f"at normalized occupancy {self._pending_weight:g}; "
                    f"burst shed"
                )
            self._pending += len(xs)  # claim the slots before dropping the lock
            self._pending_weight += weight
            self._pending_by_class[priority] += len(xs)
            self._key_pending[key] = self._key_pending.get(key, 0) + len(xs)
        encoded = None
        started = time.monotonic()
        if trace is not None:
            trace.add("admission", admit_start, started)
        try:
            # encode outside the router lock: the burst's slab memcpys (or
            # its pipe-fallback pickling) never stall completion callbacks,
            # stats readers, or concurrent submitters
            encoded = self.pool.encode_burst(xs)
            if trace is not None:
                trace.add("encode", started, time.monotonic())
            with self._lock:
                name_, version_ = split_key(key)
                if not self._catalog.has_version(name_, version_):  # removed meanwhile
                    raise RoutingError(f"model {key!r} was removed during submit")
                replica_set = self._place(key)
                self._placements.touch(key)
                worker_id = self._pick_replica(replica_set, avoid)
                replica_set.record_dispatch(worker_id, len(xs))
                # the send happens under the router lock: a concurrent
                # placement evicting this model cannot slip its `unload`
                # into the worker's pipe between our placement decision and
                # our burst frame
                futures = self.pool.submit_encoded(
                    worker_id, key, encoded, deadline=deadline, priority=priority,
                    trace=trace,
                )
        except BaseException:
            # nothing was registered: hand back the leases and the slots
            # (a failed encode_burst released its own partial leases)
            if encoded is not None:
                self.pool.release_encoded(encoded)
            with self._lock:
                self._pending -= len(xs)
                self._drop_weight(weight)
                self._pending_by_class[priority] -= len(xs)
                pending = self._key_pending.get(key, 0) - len(xs)
                if pending > 0:
                    self._key_pending[key] = pending
                else:
                    self._key_pending.pop(key, None)
            raise
        release = functools.partial(
            self._complete, priority, key, replica_set, worker_id, 1.0 / replicas,
            started, None, record,
        )
        if trace is not None:
            # the burst's first request carries the trace; only its
            # completion closes and retains it (one trace per burst)
            futures[0].add_done_callback(
                functools.partial(
                    self._complete, priority, key, replica_set, worker_id,
                    1.0 / replicas, started, trace, record,
                )
            )
            for future in futures[1:]:
                future.add_done_callback(release)
        else:
            for future in futures:
                future.add_done_callback(release)
        return futures, key, worker_id

    def _pick_replica(self, replica_set: ReplicaSet, avoid: frozenset) -> int:
        """Choose the serving replica, steering around quarantined workers.

        Merges the caller's ``avoid`` set (replicas that already failed
        this request) with every replica whose circuit breaker is open;
        :meth:`~repro.serving.placement.ReplicaSet.pick` falls back to the
        plain placement policy when that excludes the whole set, so a
        fully-broken replica set still receives (probe) traffic rather
        than deadlocking.  The chosen worker's breaker is told about the
        dispatch — that consumes its half-open probe slot, so exactly one
        trial request goes through per reset timeout.
        """
        full_avoid = set(avoid)
        if self.breakers is not None:
            for wid in replica_set.workers:
                if wid not in full_avoid and not self.breakers.admits(wid):
                    full_avoid.add(wid)
        worker_id = replica_set.pick(self.pool.in_flight, frozenset(full_avoid))
        if self.breakers is not None:
            self.breakers.note_dispatch(worker_id)
        return worker_id

    # -- resilience: retries ------------------------------------------------ #

    def _wrap_retry(
        self,
        future: "Future[np.ndarray]",
        x: np.ndarray,
        *,
        name: str,
        version: str,
        priority: Priority,
        deadline: Optional[float],
        worker_id: int,
    ) -> "Future[np.ndarray]":
        """Wrap one dispatched future in the transparent-retry state machine.

        The caller holds the wrapper; each underlying attempt reports into
        :meth:`_retry_done`, which either settles the wrapper or schedules
        the next attempt.  ``state["avoid"]`` accumulates every replica
        that failed this request, so each re-dispatch is steered to a
        fresh one; ``state["token"]`` seeds this request's deterministic
        backoff schedule (:meth:`RetryPolicy.backoff_s`).
        """
        wrapper: "Future[np.ndarray]" = Future()
        state = {
            "attempt": 0,
            "avoid": {worker_id},
            "token": next(self._retry_tokens),
        }
        future.add_done_callback(
            functools.partial(
                self._retry_done, wrapper, state, x, name, version, priority, deadline
            )
        )
        return wrapper

    def _retry_done(
        self,
        wrapper: "Future[np.ndarray]",
        state: dict,
        x: np.ndarray,
        name: str,
        version: str,
        priority: Priority,
        deadline: Optional[float],
        future: "Future[np.ndarray]",
    ) -> None:
        """One attempt resolved: settle the wrapper or schedule a retry.

        Gives up (failing the wrapper with the attempt's error) when the
        error is not retryable, attempts are exhausted, the pool stopped,
        the backoff would overrun the deadline, or the global retry budget
        denies the spend — each terminal path leaves the *original*
        exception on the wrapper, so callers see the same error types with
        or without a retry policy.
        """
        if future.cancelled():
            wrapper.cancel()
            return
        exc = future.exception()
        if exc is None:
            if state["attempt"] > 0:
                with self._lock:
                    self._retries_succeeded += 1
            if wrapper.set_running_or_notify_cancel():
                wrapper.set_result(future.result())
            return
        policy = self.retry_policy
        attempt = state["attempt"] + 1  # 1-based index of the retry to schedule
        delay = 0.0
        give_up = not policy.retryable(exc) or not self.pool.running
        if not give_up and attempt >= policy.max_attempts:
            give_up = True
            with self._lock:
                self._retries_exhausted += 1
        if not give_up:
            delay = policy.backoff_s(state["token"], attempt)
            if deadline is not None and time.monotonic() + delay >= deadline:
                give_up = True  # the retry could never beat the deadline
        if not give_up and not self._retry_budget.try_spend(1):
            give_up = True
            with self._lock:
                self._retries_budget_denied += 1
        if give_up:
            if wrapper.set_running_or_notify_cancel():
                wrapper.set_exception(exc)
            return
        state["attempt"] = attempt
        with self._lock:
            self._retries_attempted += 1
        timer = threading.Timer(
            delay,
            self._retry_fire,
            args=(wrapper, state, x, name, version, priority, deadline, exc),
        )
        timer.daemon = True
        timer.start()

    def _retry_fire(
        self,
        wrapper: "Future[np.ndarray]",
        state: dict,
        x: np.ndarray,
        name: str,
        version: str,
        priority: Priority,
        deadline: Optional[float],
        prior_exc: BaseException,
    ) -> None:
        """Backoff elapsed: re-dispatch the request to a fresh replica.

        The re-submit pays full admission again (a retry storm is shed
        exactly like first-time traffic); if admission, routing or the
        pool reject it, the wrapper fails with that error chained onto the
        attempt's original failure.
        """
        if wrapper.cancelled():
            return
        try:
            futures, _, worker_id = self._submit_once(
                [x], model=name, version=version, priority=priority,
                deadline=deadline, avoid=frozenset(state["avoid"]),
            )
        except BaseException as exc:  # admission/routing/pool rejection
            exc.__cause__ = prior_exc
            if wrapper.set_running_or_notify_cancel():
                wrapper.set_exception(exc)
            return
        state["avoid"].add(worker_id)
        futures[0].add_done_callback(
            functools.partial(
                self._retry_done, wrapper, state, x, name, version, priority, deadline
            )
        )

    # -- resilience: hedging ------------------------------------------------ #

    def _high_p99_s(self) -> float:
        """Observed p99 completion latency of the HIGH class, in seconds
        (``nan`` before the first completion — the hedge policy falls back
        to its fixed ``delay_s``)."""
        with self._lock:
            window = tuple(self._latency_by_class[Priority.HIGH])
        if not window:
            return float("nan")
        return float(np.percentile(np.asarray(window, dtype=np.float64), 99))

    def _wrap_hedge(
        self,
        primary: "Future[np.ndarray]",
        x: np.ndarray,
        *,
        name: str,
        version: str,
        deadline: Optional[float],
        primary_worker: int,
    ) -> "Future[np.ndarray]":
        """Wrap a HIGH single dispatch in a first-result-wins hedge.

        A timer armed at the policy's p99-derived delay launches a
        duplicate dispatch (``record=False``, steered off the primary's
        replica) if the primary has not resolved by then; whichever leg
        succeeds first settles the outer future and cancels the loser.
        Hedging is strictly best-effort: a hedge leg that cannot even be
        dispatched (admission, routing) is dropped silently and the
        request rides on its remaining leg(s).
        """
        outer: "Future[np.ndarray]" = Future()
        state = {
            "lock": threading.Lock(),
            "done": False,
            "pending": 1,  # legs that could still deliver a result
            "primary": primary,
            "primary_worker": primary_worker,
            "hedge": None,
            "timer": None,
            "last_exc": None,
        }
        delay = self.hedge_policy.effective_delay_s(self._high_p99_s())
        timer = threading.Timer(
            delay, self._hedge_fire, args=(outer, state, x, name, version, deadline)
        )
        timer.daemon = True
        state["timer"] = timer
        primary.add_done_callback(
            functools.partial(self._hedge_settle, outer, state, False)
        )
        timer.start()
        return outer

    def _hedge_fire(
        self,
        outer: "Future[np.ndarray]",
        state: dict,
        x: np.ndarray,
        name: str,
        version: str,
        deadline: Optional[float],
    ) -> None:
        """Hedge delay elapsed with the primary unresolved: launch the leg."""
        with state["lock"]:
            if state["done"] or outer.cancelled() or state["primary"].done():
                return
            # claim the slot before dispatching: a primary failure arriving
            # mid-dispatch must wait for this leg instead of failing outer
            state["pending"] += 1
        try:
            futures, _, _ = self._submit_once(
                [x], model=name, version=version, priority=Priority.HIGH,
                deadline=deadline, avoid=frozenset({state["primary_worker"]}),
                record=False,
            )
        except BaseException:
            settle = False
            with state["lock"]:
                state["pending"] -= 1
                if state["pending"] == 0 and not state["done"]:
                    state["done"] = True  # primary already failed; nothing left
                    settle = True
            if settle and outer.set_running_or_notify_cancel():
                outer.set_exception(state["last_exc"])
            return
        hedge = futures[0]
        with self._lock:
            self._hedges += 1
        cancel_now = False
        with state["lock"]:
            if state["done"]:
                cancel_now = True  # the primary won while we dispatched
            else:
                state["hedge"] = hedge
        if cancel_now:
            hedge.cancel()
            return
        hedge.add_done_callback(
            functools.partial(self._hedge_settle, outer, state, True)
        )

    def _hedge_settle(
        self,
        outer: "Future[np.ndarray]",
        state: dict,
        is_hedge: bool,
        future: "Future[np.ndarray]",
    ) -> None:
        """One hedge leg resolved: first success wins, last failure loses."""
        if future.cancelled():
            return  # the loser leg, cancelled by the winner below
        exc = future.exception()
        loser = None
        with state["lock"]:
            if state["done"]:
                return
            if exc is not None:
                state["last_exc"] = exc
                state["pending"] -= 1
                if state["pending"] > 0:
                    return  # the other leg may still win
                # no dispatched leg left, and no hedge can still launch:
                # _hedge_fire claims its pending slot under this same lock
                # before dispatching, and bails once `done` is set below
            state["done"] = True
            timer = state["timer"]
            loser = state["hedge"] if not is_hedge else state["primary"]
        if timer is not None:
            timer.cancel()
        if exc is not None:
            if outer.set_running_or_notify_cancel():
                outer.set_exception(exc)
            return
        if loser is not None and loser is not future:
            loser.cancel()  # best-effort; a resolved loser is simply dropped
        if is_hedge:
            with self._lock:
                self._hedges_won += 1
        if outer.set_running_or_notify_cancel():
            outer.set_result(future.result())

    # -- resilience: brownout ----------------------------------------------- #

    def set_brownout(self, active: bool) -> None:
        """Engage or lift brownout mode: while active, every LOW request is
        shed at admission (counted in ``resilience.brownout_sheds``) and
        NORMAL/HIGH admission is unchanged.  Driven by a
        :class:`~repro.serving.resilience.BrownoutController`, but callable
        directly for manual degradation."""
        with self._lock:
            self._brownout = bool(active)

    @property
    def brownout_active(self) -> bool:
        """True while LOW traffic is being shed for graceful degradation."""
        with self._lock:
            return self._brownout

    def _resilience_stats(self) -> ResilienceStats:
        """Roll the retry/hedge/breaker/brownout state into one snapshot."""
        with self._lock:
            stats = ResilienceStats(
                retries_attempted=self._retries_attempted,
                retries_succeeded=self._retries_succeeded,
                retries_exhausted=self._retries_exhausted,
                retries_budget_denied=self._retries_budget_denied,
                hedges=self._hedges,
                hedges_won=self._hedges_won,
                brownout_active=self._brownout,
                brownout_sheds=self._brownout_sheds,
                retry_budget=(
                    self._retry_budget.snapshot() if self._retry_budget is not None else {}
                ),
                breakers=self.breakers.snapshot() if self.breakers is not None else {},
                restart_backoffs=self.pool.restart_snapshot(),
            )
        return stats

    def predict(
        self,
        x: np.ndarray,
        *,
        model: Optional[str] = None,
        version: Optional[str] = None,
        priority: Priority = Priority.NORMAL,
        deadline_s: Optional[float] = None,
    ) -> np.ndarray:
        """Blocking convenience: :meth:`submit` + wait for the result row."""
        return self.submit(
            x, model=model, version=version, priority=priority, deadline_s=deadline_s
        ).result()

    # -- lifecycle --------------------------------------------------------- #

    def start(self) -> "ClusterRouter":
        """Start the worker pool (idempotent); returns self."""
        self.pool.start()
        return self

    def stop(self) -> None:
        """Stop the pool; placements reset (a restart re-places lazily)."""
        self.pool.stop()
        with self._lock:
            self._placements.clear()
            self._protected.clear()

    def __enter__(self) -> "ClusterRouter":
        """Start the cluster for the duration of a ``with`` block."""
        return self.start()

    def __exit__(self, *exc_info) -> None:
        """Stop the cluster, draining in-flight work first."""
        self.stop()

    # -- telemetry / profiling --------------------------------------------- #

    def _telemetry_tree(self) -> Dict[str, object]:
        """The ``cluster`` namespace: :meth:`snapshot` as a plain tree."""
        return self.snapshot().as_tree()

    def _placement_tree(self) -> Dict[str, object]:
        """The ``placement`` namespace: live replica sets per model key."""
        with self._lock:
            return {
                key: {
                    "workers": list(replica_set.workers),
                    "replicas": len(replica_set.workers),
                }
                for key, replica_set in self._placements.items()
            }

    def profile_kernels(self, enabled: bool = True) -> None:
        """Toggle opt-in per-kind kernel timing on every worker.

        While enabled, each worker attributes its ``_plane_sums`` gather
        passes to the active layer kind (``conv`` / ``dw`` / ``pw`` /
        ``fc``); :meth:`kernel_profile` collects the merged breakdown.
        Disabled (the default) the kernels pay a single global load.
        """
        self.pool.set_kernel_profiling(enabled)
        if not enabled:
            return
        with self._lock:
            self._kernel_profile = {}

    def kernel_profile(self) -> Dict[str, Dict[str, float]]:
        """Fetch + merge the per-kind kernel breakdown across workers.

        The merged tree (``{kind: {layers, layer_s, gather_calls,
        gather_s}}``) is also cached so :meth:`snapshot` surfaces the last
        collected breakdown without a worker round-trip.
        """
        merged = self.pool.kernel_profile_snapshot()
        with self._lock:
            self._kernel_profile = merged
        return merged

    def traces(self) -> Tuple[Trace, ...]:
        """Finished sampled traces, oldest first (see ``trace_sample_rate``)."""
        return self.tracer.traces()

    def dump_trace(self, path: Optional[str] = None) -> Dict[str, object]:
        """Chrome-trace-event export of the finished traces (see ``tracer``)."""
        return self.tracer.dump_trace(path)

    # -- introspection ----------------------------------------------------- #

    @property
    def pending(self) -> int:
        """Admitted-but-unresolved requests, cluster-wide."""
        with self._lock:
            return self._pending

    def placements(self) -> Dict[str, Tuple[int, ...]]:
        """Current model key → replica worker ids (a copy).

        Keys are ``"name@version"``; the tuple lists every worker hosting
        that key's decoded plans (one entry under sticky placement).
        """
        with self._lock:
            return {
                key: tuple(replica_set.workers)
                for key, replica_set in self._placements.items()
            }

    def _latency_stats(self) -> Dict[Priority, LatencyStats]:
        """Per-class percentile rollup over the latency windows (under lock)."""
        return {
            priority: LatencyStats.from_completions(
                self._completions[priority], self._latency_by_class[priority]
            )
            for priority in Priority
        }

    def _version_stats(self) -> Dict[str, LatencyStats]:
        """Per-version served/latency rollup over the key windows (under lock)."""
        return {
            key: LatencyStats.from_completions(
                count, self._latency_by_key.get(key, ())
            )
            for key, count in self._completions_by_key.items()
        }

    def snapshot(self) -> ClusterStats:
        """Cluster-wide counters as one consistent immutable snapshot."""
        with self._lock:
            per_worker_models: Dict[int, List[str]] = {}
            per_worker_bytes: Dict[int, int] = {}
            for key, replica_set in self._placements.items():
                for wid in replica_set.workers:
                    per_worker_models.setdefault(wid, []).append(key)
                    per_worker_bytes[wid] = per_worker_bytes.get(wid, 0) + self._size_of(key)
            replicas = {
                key: replica_set.snapshot()
                for key, replica_set in self._placements.items()
            }
            current_versions = {
                model: self._catalog.current_version(model)
                for model in self._catalog.names()
            }
            shed = dict(self._shed)
            evictions = self._evictions
            pending = self._pending
            queue_depth = dict(self._pending_by_class)
            latency = self._latency_stats()
            latency_by_version = self._version_stats()
            resident = self._resident_bytes()
            errors_by_version = dict(self._errors_by_key)
            shed_by_version = dict(self._shed_by_key)
            scale_events = tuple(self._scale_events)
            canary_state = {
                model: split.snapshot() for model, split in self._splits.items()
            }
            kernel_profile = {
                kind: dict(row) for kind, row in self._kernel_profile.items()
            }
            errors_by_type = dict(self._errors_by_type)
        workers = tuple(
            WorkerStats(
                worker_id=row["worker_id"],
                alive=row["alive"],
                restarts=row["restarts"],
                in_flight=row["in_flight"],
                served=row["served"],
                deadline_misses=row["deadline_misses"],
                resident_bytes=per_worker_bytes.get(row["worker_id"], 0),
                models=tuple(sorted(per_worker_models.get(row["worker_id"], []))),
                backing_off=row["backing_off"],
                crash_streak=row["crash_streak"],
            )
            for row in self.pool.worker_snapshot()
        )
        served, misses = self.pool.totals()
        return ClusterStats(
            workers=workers,
            served=served,
            deadline_misses=misses,
            shed_by_priority=shed,
            resident_bytes=resident,
            evictions=evictions,
            crashes=self.pool.crashes,
            pending=pending,
            queue_depth_by_priority=queue_depth,
            latency_by_priority=latency,
            transport=self.pool.transport_snapshot(),
            replicas=replicas,
            latency_by_version=latency_by_version,
            current_versions=current_versions,
            errors_by_version=errors_by_version,
            shed_by_version=shed_by_version,
            scale_events=scale_events,
            canary_state=canary_state,
            kernel_profile=kernel_profile,
            errors_by_type=errors_by_type,
            resilience=self._resilience_stats(),
        )

    def stats(self) -> ClusterStats:
        """Deprecated alias for :meth:`snapshot` (the unified stats name)."""
        warnings.warn(
            "ClusterRouter.stats() is deprecated; use snapshot() — the "
            "unified stats accessor across the serving layer",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.snapshot()
