"""Cached packed-ternary runtime for ST-HybridNet model images.

:class:`PackedModel` is the serving-side counterpart of
:class:`repro.deploy.interpreter.ImageInterpreter`: it consumes the same
:class:`~repro.deploy.image.ModelImage` bytes, but decodes each layer's
2-bit blobs **once** into bit-plane form (:mod:`repro.serving.kernels`) and
then executes every forward as gather-accumulate passes — no per-call
unpacking, no dense float weight matrices.

``cache=False`` keeps the microcontroller-faithful on-the-fly semantics
(decode on every call, nothing resident beyond the image) through the very
same kernels, so both modes are bitwise identical; the only difference is
when decoding happens.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.deploy.image import LayerRecord, ModelImage
from repro.deploy.packing import unpack_ternary
from repro.errors import ConfigError
from repro.serving.kernels import (
    as_block_diagonal,
    decode_planes,
    get_kernel_profile,
)
from repro.serving.kernels_fast import KernelBackend, get_backend, resolve_backend


def _profiled(method):
    """Attribute a layer method's gather passes to its plan kind.

    With no profile installed this is one global load per layer call;
    with one, the wrapped call runs under ``profile.layer(plan.kind)``
    so nested ``_plane_sums`` timings land on the right kind.  Timing
    never touches the numerics — profiled and unprofiled calls are
    bitwise identical.
    """

    @functools.wraps(method)
    def wrapper(self, plan, x):
        profile = get_kernel_profile()
        if profile is None:
            return method(self, plan, x)
        with profile.layer(plan.kind):
            return method(self, plan, x)

    return wrapper


@dataclass(frozen=True)
class LayerPlan:
    """One decoded layer: bit-plane transforms + float tables, forward-ready.

    ``wb`` / ``wc`` hold the *backend-prepared* plane layout — the plain
    CSR :class:`~repro.serving.kernels.TernaryPlanes` for the reference
    backend, a fused or popcount layout for the fast backends — so a plan
    only ever executes on the backend that decoded it.
    """

    kind: str  # "conv" | "dw" | "pw" | "linear"
    meta: Dict[str, object]
    wb: object  # backend-prepared planes
    kernel: Tuple[int, int]  # (KH, KW); (1, 1) for linear
    wc: Optional[object]  # None for depthwise (per-channel scalar w_c)
    wc_vector: Optional[np.ndarray]  # the depthwise per-channel ternary w_c
    a_hat: np.ndarray
    out_scale: np.ndarray
    out_shift: np.ndarray

    @property
    def nbytes(self) -> int:
        """Resident bytes of the decoded plan (planes + float tables)."""
        total = self.wb.nbytes + (self.wc.nbytes if self.wc is not None else 0)
        if self.wc_vector is not None:
            total += self.wc_vector.nbytes
        return total + self.a_hat.nbytes + self.out_scale.nbytes + self.out_shift.nbytes


def decode_layer(record: LayerRecord, backend: Optional[KernelBackend] = None) -> LayerPlan:
    """Decode one :class:`LayerRecord` into an executable :class:`LayerPlan`.

    ``backend`` prepares the decoded planes into its execution layout; the
    default is the reference backend, whose prepared layout *is* the CSR
    planes — existing callers keep seeing ``TernaryPlanes`` on the plan.
    """
    if backend is None:
        backend = get_backend("reference")
    if record.kind == "dw":
        # (C, KH, KW): block-diagonal planes over the (M, C*K) patch matrix.
        c, kh, kw = record.wb_shape
        wb = as_block_diagonal(decode_planes(record.wb_blob, record.wb_shape), kh * kw)
        wc_planes = None
        wc_vector = unpack_ternary(record.wc_blob, record.wc_shape).astype(np.float32)
    else:
        shape = record.wb_shape
        kh, kw = (shape[2], shape[3]) if len(shape) == 4 else (1, 1)
        wb = decode_planes(record.wb_blob, shape)
        wc_planes = decode_planes(record.wc_blob, record.wc_shape)
        wc_vector = None
    return LayerPlan(
        kind=record.kind,
        meta=record.meta,
        wb=backend.prepare(wb),
        kernel=(kh, kw),
        wc=None if wc_planes is None else backend.prepare(wc_planes),
        wc_vector=wc_vector,
        a_hat=record.a_hat,
        out_scale=record.out_scale,
        out_shift=record.out_shift,
    )


def _conv_patches(x: np.ndarray, kh: int, kw: int, stride, padding) -> np.ndarray:
    """Extract (N, OH, OW, C*KH*KW) patch matrix with zero padding."""
    sh, sw = stride
    ph, pw = padding
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    windows = sliding_window_view(x, (kh, kw), axis=(2, 3))[:, :, ::sh, ::sw]
    # (N, C, OH, OW, KH, KW) -> (N, OH, OW, C*KH*KW)
    return np.ascontiguousarray(windows.transpose(0, 2, 3, 1, 4, 5)).reshape(
        x.shape[0], windows.shape[2], windows.shape[3], -1
    )


class PackedModel:
    """Executes an ST-HybridNet model image from packed bit-planes.

    ``cache=True`` decodes every layer once at construction; ``cache=False``
    re-decodes per call (the deploy-image reference semantics).  ``kernel``
    selects the execution backend from the
    :mod:`repro.serving.kernels_fast` registry — a registered name, a
    :class:`~repro.serving.kernels_fast.KernelBackend` instance, or
    ``None`` for the process default (``$REPRO_KERNEL_BACKEND``, falling
    back to the fused single-pass backend).  Every registered backend is
    bitwise identical to the reference, so the choice only moves latency.
    Instances are read-only after construction and safe to share across
    threads.
    """

    def __init__(
        self,
        image: ModelImage,
        cache: bool = True,
        kernel: Union[str, KernelBackend, None] = None,
    ) -> None:
        if image.header.get("arch") != "st-hybrid":
            raise ConfigError(f"unsupported arch {image.header.get('arch')!r}")
        self.image = image
        self.header = image.header
        self.cache = cache
        self.kernel_backend = resolve_backend(kernel)
        self._records: Dict[str, LayerRecord] = {r.name: r for r in image.layers}
        self._plans: Optional[Dict[str, LayerPlan]] = (
            {name: decode_layer(r, self.kernel_backend) for name, r in self._records.items()}
            if cache
            else None
        )
        # plans are fixed for the instance's lifetime, so the size is too
        self._decoded_bytes = (
            0 if self._plans is None else sum(plan.nbytes for plan in self._plans.values())
        )

    def _plan(self, name: str) -> LayerPlan:
        if self._plans is not None:
            return self._plans[name]
        return decode_layer(self._records[name], self.kernel_backend)

    def decoded_bytes(self) -> int:
        """Resident size of all cached plans (0 in on-the-fly mode)."""
        return self._decoded_bytes

    # -- layer kernels --------------------------------------------------- #

    @_profiled
    def _conv(self, plan: LayerPlan, x: np.ndarray) -> np.ndarray:
        """Strassen conv/pointwise: patches → ternary W_b → ⊙â → ternary W_c."""
        kh, kw = plan.kernel
        meta = plan.meta
        matmul = self.kernel_backend.matmul
        patches = _conv_patches(x, kh, kw, meta["stride"], meta["padding"])
        n, oh, ow, d = patches.shape
        hidden = matmul(patches.reshape(-1, d), plan.wb)  # additions only
        hidden *= plan.a_hat  # the r multiplications
        out = matmul(hidden, plan.wc)  # additions only
        out = out * plan.out_scale + plan.out_shift
        out = out.reshape(n, oh, ow, -1).transpose(0, 3, 1, 2)
        return np.maximum(out, 0.0) if meta.get("relu") else out

    @_profiled
    def _depthwise(self, plan: LayerPlan, x: np.ndarray) -> np.ndarray:
        """Grouped-SPN depthwise: ternary per-channel filter → ⊙(â·w_c)."""
        kh, kw = plan.kernel
        meta = plan.meta
        c = x.shape[1]
        # same (M, C*K) patch layout as _conv; the block-diagonal planes
        # restrict each channel's gather to its own K columns
        patches = _conv_patches(x, kh, kw, meta["stride"], meta["padding"])
        n, oh, ow, _ = patches.shape
        hidden = self.kernel_backend.matmul(patches.reshape(n * oh * ow, -1), plan.wb)
        hidden = hidden.reshape(n, oh, ow, c).transpose(0, 3, 1, 2)
        scale = (plan.a_hat * plan.wc_vector * plan.out_scale).reshape(1, c, 1, 1)
        out = hidden * scale + plan.out_shift.reshape(1, c, 1, 1)
        return np.maximum(out, 0.0) if meta.get("relu") else out

    @_profiled
    def _linear(self, plan: LayerPlan, z: np.ndarray) -> np.ndarray:
        """Strassen matmul on feature vectors (tree nodes)."""
        matmul = self.kernel_backend.matmul
        hidden = matmul(z, plan.wb) * plan.a_hat
        out = matmul(hidden, plan.wc)
        return out * plan.out_scale + plan.out_shift

    # -- full network ----------------------------------------------------- #

    def features(self, x: np.ndarray) -> np.ndarray:
        """Conv feature extractor: (N, T, F) → (N, width)."""
        x = np.asarray(x, dtype=np.float32)
        if x.ndim == 2:
            x = x[None]
        x = x[:, None, :, :]  # NCHW
        x = self._conv(self._plan("conv1"), x)
        for i in range(self.header["num_conv_layers"] - 1):
            x = self._depthwise(self._plan(f"ds{i}.dw"), x)
            x = self._conv(self._plan(f"ds{i}.pw"), x)
        return x.mean(axis=(2, 3))

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Full inference: MFCC batch → (N, num_labels) class scores."""
        z = self.features(x)
        depth = self.header["tree_depth"]
        num_nodes = 2 ** (depth + 1) - 1
        num_internal = 2**depth - 1
        sigma = self.header["prediction_sigma"]
        n = z.shape[0]

        weights: List[np.ndarray] = [np.zeros((n, 1))] * num_nodes
        weights[0] = np.ones((n, 1), dtype=np.float32)
        for k in range(num_internal):
            theta = self._linear(self._plan(f"tree.theta{k}"), z)
            go_left = (theta > 0).astype(np.float32)
            weights[2 * k + 1] = weights[k] * go_left
            weights[2 * k + 2] = weights[k] * (1.0 - go_left)

        scores = np.zeros((n, self.header["num_labels"]), dtype=np.float32)
        for k in range(num_nodes):
            w_score = self._linear(self._plan(f"tree.w{k}"), z)
            v_score = self._linear(self._plan(f"tree.v{k}"), z)
            scores += weights[k] * w_score * np.tanh(sigma * v_score)
        return scores

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Argmax labels for a batch."""
        return np.argmax(self(x), axis=-1)
