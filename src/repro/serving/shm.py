"""Shared-memory slab transport: the zero-copy data plane for the cluster.

The original cluster transport pickles every request ndarray through a
``multiprocessing.Pipe`` and pickles the result back — four buffer copies
plus a syscall per direction, all of it serialised through the parent's
GIL.  At realistic batch shapes the cluster spends more time copying floats
than running the packed kernels.

This module replaces the *data* path while the pipes keep carrying only
small control frames (request id, model key, resolved replica id, slab id,
shape, dtype, deadline, priority).  The replica id names which plan copy
the router dispatched to; each worker cross-checks it against its own id —
a transport-integrity guard pinning the per-worker-pipe invariant rather
than a reachable routing path today — and rejects a mismatched frame per
request instead of serving it from the wrong copy:

* :class:`SlabPool` (parent side) creates one ``multiprocessing.shared_memory``
  segment and slices it into ``slabs`` reusable fixed-size slabs of
  ``slab_bytes`` each — a ring of segments handed out per request and
  recycled the moment the request resolves.  The pool owns the segment's
  lifecycle: :meth:`SlabPool.destroy` closes and unlinks it.
* :class:`SlabClient` (worker side) attaches to the same segment by name and
  reads request payloads as **zero-copy ndarray views** — the worker's
  engine stacks micro-batches straight out of shared memory, no unpickling,
  and writes each result back into the request's slab.

Leases are tracked parent-side only: a slab is acquired when a request is
encoded, and released when its reply (result, deadline miss, error) arrives
or its worker dies — so a crashed worker can never leak segments.  Capacity
pressure is handled by falling back to the pipe transport, never by
blocking: :meth:`SlabPool.try_acquire` returns ``None`` when the ring is
empty, and payloads larger than one slab skip the pool entirely.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigError, TransportError

#: payload metadata carried in a control frame: (shape, numpy dtype string)
ArrayMeta = Tuple[Tuple[int, ...], str]


@dataclass(frozen=True)
class SlabConfig:
    """Geometry of the shared-memory ring: ``slabs`` slabs of ``slab_bytes``.

    ``slab_bytes`` bounds the largest payload the shared-memory plane
    carries (bigger payloads fall back to the pipe); ``slabs`` bounds how
    many requests may be in flight on the shm plane at once (an exhausted
    ring also falls back to the pipe).  The segment costs
    ``slab_bytes * slabs`` of shared memory for the pool's lifetime.
    """

    slab_bytes: int = 1 << 16
    slabs: int = 128

    def __post_init__(self) -> None:
        """Validate the ring geometry."""
        if self.slab_bytes < 16:
            raise ConfigError("slab_bytes must be >= 16")
        if self.slabs < 1:
            raise ConfigError("slabs must be >= 1")

    @property
    def total_bytes(self) -> int:
        """Size of the backing shared-memory segment."""
        return self.slab_bytes * self.slabs

    @classmethod
    def from_observed(
        cls,
        payload_bytes_histogram: Union[Mapping[int, int], Iterable[int]],
        *,
        coverage: float = 0.99,
        slabs: int = 128,
    ) -> "SlabConfig":
        """Size the ring from observed payload sizes (adaptive slab sizing).

        ``payload_bytes_histogram`` is either a ``{payload_bytes: count}``
        mapping (e.g. collected from production traffic) or a plain
        iterable of observed payload sizes.  The slab size is the smallest
        power of two covering the ``coverage`` fraction of observed
        payloads (weighted by count), clamped to the 16-byte minimum —
        power-of-two sizing keeps slabs page-aligned within the segment
        while bounding internal fragmentation below 2x.

        Payloads above the chosen size still *work*: they ride the
        pickle-over-pipe fallback, exactly like any oversized payload.
        Choosing ``coverage < 1.0`` deliberately leaves a rare-jumbo tail
        on the pipe instead of inflating every slab (the segment costs
        ``slab_bytes × slabs`` resident shared memory).
        """
        if not 0.0 < coverage <= 1.0:
            raise ConfigError("coverage must be in (0, 1]")
        if isinstance(payload_bytes_histogram, Mapping):
            pairs = sorted(payload_bytes_histogram.items())
        else:
            counts: Dict[int, int] = {}
            for nbytes in payload_bytes_histogram:
                counts[int(nbytes)] = counts.get(int(nbytes), 0) + 1
            pairs = sorted(counts.items())
        if not pairs:
            raise ConfigError("from_observed needs at least one observed payload size")
        if pairs[0][0] < 0 or any(count < 0 for _, count in pairs):
            raise ConfigError("payload sizes and counts must be non-negative")
        total = sum(count for _, count in pairs)
        if total < 1:
            raise ConfigError("from_observed needs at least one observed payload")
        threshold = coverage * total
        seen = 0
        covered = pairs[-1][0]
        for nbytes, count in pairs:
            seen += count
            if seen >= threshold:
                covered = nbytes
                break
        return cls(slab_bytes=max(16, 1 << max(0, int(covered - 1).bit_length())), slabs=slabs)


class _SlabWindow:
    """Shared offset math over one mapped segment (parent and worker sides)."""

    def __init__(self, shm: shared_memory.SharedMemory, config: SlabConfig) -> None:
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self.config = config

    @property
    def name(self) -> str:
        """OS-level name of the backing segment (workers attach by it)."""
        if self._shm is None:
            raise TransportError("slab segment already closed")
        return self._shm.name

    def fits(self, nbytes: int) -> bool:
        """True when a payload of ``nbytes`` fits in one slab."""
        return nbytes <= self.config.slab_bytes

    def _check_slab(self, slab_id: int) -> shared_memory.SharedMemory:
        if self._shm is None:
            raise TransportError("slab segment already closed")
        if not 0 <= slab_id < self.config.slabs:
            raise TransportError(
                f"slab id {slab_id} out of range [0, {self.config.slabs})"
            )
        return self._shm

    def write(self, slab_id: int, x: np.ndarray) -> ArrayMeta:
        """Copy one ndarray into a slab; returns its (shape, dtype) frame meta.

        This is the only copy on the sender's side of the shm plane (the
        receiver reads a view): the payload lands straight in the mapped
        segment via ``np.copyto``, no intermediate bytes object.  Raises
        :class:`~repro.errors.TransportError` if the payload does not fit —
        callers pre-check with :meth:`fits`.
        """
        shm = self._check_slab(slab_id)
        x = np.asarray(x)
        if not self.fits(x.nbytes):
            raise TransportError(
                f"payload of {x.nbytes} bytes exceeds slab_bytes={self.config.slab_bytes}"
            )
        dest = np.ndarray(
            x.shape,
            dtype=x.dtype,
            buffer=shm.buf,
            offset=slab_id * self.config.slab_bytes,
        )
        np.copyto(dest, x, casting="no")
        return tuple(x.shape), x.dtype.str

    def view(self, slab_id: int, shape: Sequence[int], dtype: str) -> np.ndarray:
        """Zero-copy ndarray view of one slab's payload.

        The view aliases shared memory: it is only valid while the slab stays
        leased to this request, and callers that outlive the lease must copy
        (:meth:`read`).  Views are returned read-only so a model cannot
        scribble over a recycled slab by accident.
        """
        shm = self._check_slab(slab_id)
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
        if not self.fits(nbytes):
            # symmetric with write(): corrupt frame metadata must never
            # alias the neighbouring request's slab
            raise TransportError(
                f"view of {nbytes} bytes exceeds slab_bytes={self.config.slab_bytes}"
            )
        arr = np.ndarray(
            tuple(shape),
            dtype=dt,
            buffer=shm.buf,
            offset=slab_id * self.config.slab_bytes,
        )
        arr.flags.writeable = False
        return arr

    def read(self, slab_id: int, shape: Sequence[int], dtype: str) -> np.ndarray:
        """Owned copy of one slab's payload (safe to hold after release)."""
        return self.view(slab_id, shape, dtype).copy()

    def _close(self) -> None:
        """Unmap the segment (idempotent; tolerates lingering views)."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:  # pragma: no cover - a stray view still exports
            pass


class SlabPool(_SlabWindow):
    """Owner side of the ring: creates the segment and leases slabs.

    Thread-safe: the router submits under its own lock while per-worker
    reader threads release concurrently.  ``try_acquire``/``release`` are
    O(1) on a free-ring deque.
    """

    def __init__(self, config: Optional[SlabConfig] = None) -> None:
        config = config or SlabConfig()
        super().__init__(
            shared_memory.SharedMemory(create=True, size=config.total_bytes), config
        )
        self._lock = threading.Lock()
        self._free: deque = deque(range(config.slabs))
        self._leased: set = set()
        self._acquired = 0
        self._released = 0
        self._exhausted = 0
        self._destroyed = False

    # -- leasing ----------------------------------------------------------- #

    def try_acquire(self) -> Optional[int]:
        """Lease one slab, or ``None`` when the ring is exhausted (the
        caller then falls back to the pipe transport — never blocks)."""
        with self._lock:
            if self._destroyed or not self._free:
                self._exhausted += 1
                return None
            slab_id = self._free.popleft()
            self._leased.add(slab_id)
            self._acquired += 1
            return slab_id

    def release(self, slab_id: int) -> None:
        """Return one leased slab to the ring.

        Strict: releasing a slab that is not currently leased raises
        :class:`~repro.errors.TransportError` (a double release would let
        two requests alias one slab).
        """
        with self._lock:
            if slab_id not in self._leased:
                raise TransportError(f"slab {slab_id} is not leased")
            self._leased.remove(slab_id)
            self._free.append(slab_id)
            self._released += 1

    # -- accounting -------------------------------------------------------- #

    @property
    def leased(self) -> int:
        """Slabs currently leased to in-flight requests."""
        with self._lock:
            return len(self._leased)

    @property
    def available(self) -> int:
        """Slabs free to lease right now."""
        with self._lock:
            return len(self._free)

    def snapshot(self) -> Dict[str, int]:
        """Atomic accounting copy: geometry, occupancy and lifetime counters.

        ``acquired == released`` (and ``leased == 0``) after a clean
        :meth:`destroy` is the no-leak invariant the cluster tests assert.
        """
        with self._lock:
            return {
                "slab_bytes": self.config.slab_bytes,
                "slabs": self.config.slabs,
                "leased": len(self._leased),
                "available": len(self._free),
                "acquired": self._acquired,
                "released": self._released,
                "exhausted": self._exhausted,
            }

    # -- lifecycle --------------------------------------------------------- #

    def destroy(self) -> None:
        """Close and unlink the segment (idempotent).

        Counters stay readable afterwards so post-mortem accounting (the
        leak check after ``WorkerPool.stop()``) still works; leasing and
        I/O raise :class:`~repro.errors.TransportError` once destroyed.
        """
        with self._lock:
            if self._destroyed:
                return
            self._destroyed = True
            shm = self._shm
        self._close()
        if shm is not None:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


class SlabClient(_SlabWindow):
    """Worker side of the ring: attaches to the owner's segment by name.

    Never leases or unlinks — the worker only reads the slabs the parent
    leased to its requests and writes results back into them, so slab
    ownership has exactly one authority (the parent) and a dying worker
    cannot leak or destroy anything.

    Attaching is tracker-safe in the cluster topology: spawn workers share
    the parent's ``resource_tracker`` process (the fd is forwarded at
    spawn), so the attach-side registration is an idempotent set-add and a
    worker's death never triggers a spurious unlink of the parent's live
    segment.
    """

    def __init__(self, name: str, config: SlabConfig) -> None:
        super().__init__(shared_memory.SharedMemory(name=name), config)

    def close(self) -> None:
        """Unmap the segment (the owner unlinks it; idempotent)."""
        self._close()
