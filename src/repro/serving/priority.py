"""Priority classes and watermark-based admission policy for the cluster.

Admission control (``max_pending`` in the front-end, the cluster-wide
pending bound in :class:`~repro.serving.cluster.ClusterRouter`) treats every
request equally: when the queue is full, whoever arrives next is shed.
Under mixed traffic that is wrong — a flood of best-effort background
requests can occupy the whole admission budget and starve interactive ones.

:class:`Priority` names three request classes and :class:`PriorityPolicy`
gives each class its own *admission watermark*, a fraction of the shared
pending budget beyond which that class is shed:

* ``LOW`` is admitted only while occupancy is below ``low_watermark``
  (default 50 %) — background traffic sheds first under load;
* ``NORMAL`` is admitted below ``normal_watermark`` (default 80 %);
* ``HIGH`` may use the full budget, so the top
  ``(1 - normal_watermark)`` slice of the queue is effectively reserved
  for it and low-priority floods can never starve high-priority deadlines.

Shedding happens at admission — a rejected request costs nothing and the
caller gets :class:`~repro.errors.AdmissionError` immediately.  Within a
worker's coalescing window, queued requests are additionally dispatched in
priority order, so a ``HIGH`` request never waits behind ``LOW`` batch-mates
that arrived in the same burst.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.errors import ConfigError


class Priority(IntEnum):
    """Request priority class; lower value = more important (sorts first)."""

    HIGH = 0
    NORMAL = 1
    LOW = 2


@dataclass(frozen=True)
class PriorityPolicy:
    """Per-class admission watermarks over a shared pending budget.

    ``max_pending`` is the total admission budget (unresolved requests across
    every class).  A request of class *p* is admitted only while the current
    pending count is strictly below :meth:`admit_limit` for *p*:
    ``max_pending`` itself for ``HIGH``, ``normal_watermark * max_pending``
    for ``NORMAL`` and ``low_watermark * max_pending`` for ``LOW``.
    """

    max_pending: int = 256
    normal_watermark: float = 0.8
    low_watermark: float = 0.5

    def __post_init__(self) -> None:
        """Validate the budget and watermark ordering."""
        if self.max_pending < 1:
            raise ConfigError("max_pending must be >= 1")
        if not 0.0 < self.low_watermark <= self.normal_watermark <= 1.0:
            raise ConfigError(
                "watermarks must satisfy 0 < low_watermark <= normal_watermark <= 1"
            )

    def admit_limit(self, priority: Priority, replicas: int = 1) -> int:
        """Pending-count ceiling for one class (always >= 1, so an idle
        cluster admits every class).

        ``replicas`` scales the budget by the capacity actually serving a
        model: ``max_pending`` is calibrated for one worker's queue, so a
        model replicated across N workers can carry up to N times as many
        pending requests before its watermarks bite — admission consults
        replica-set capacity, not single-worker capacity.  The router
        realises this *per model* by charging each request ``1/replicas``
        of a slot against the shared base budget (:meth:`admits` with
        fractional occupancy): equivalent to the scaled ceiling for one
        model's traffic, while other models' watermarks — and HIGH's
        reserved headroom — still hold on the shared queue.

        Under autoscaling (:mod:`repro.serving.control`) ``replicas`` is
        the **live** replica-set size, not the placement policy's static
        target: when the :class:`~repro.serving.control.Autoscaler` grows
        a hot model the admission budget expands with it in the same
        locked router step, and contracts again on scale-down — capacity
        and admission can never disagree about how many workers serve a
        model.
        """
        budget = self.max_pending * max(1, replicas)
        if priority == Priority.HIGH:
            return budget
        fraction = (
            self.normal_watermark if priority == Priority.NORMAL else self.low_watermark
        )
        return max(1, int(budget * fraction))

    def admits(
        self,
        priority: Priority,
        pending: float,
        n: float = 1,
        *,
        brownout: bool = False,
    ) -> bool:
        """True when ``n`` requests of ``priority`` may be admitted at
        ``pending`` unresolved requests.

        ``pending`` and ``n`` may be fractional: the cluster router passes
        replica-normalized occupancy (each request to an R-replica model
        counts as ``1/R``), keeping the watermarks meaningful across models
        with different replica counts — replica scaling happens in that
        normalization, never here, so the budget cannot be scaled twice.
        Burst admission is all-or-nothing: the whole burst fits under the
        class watermark or none of it is admitted (``n=1`` reproduces the
        single-request rule exactly).

        ``brownout=True`` sheds every ``LOW`` request regardless of
        occupancy — the graceful-degradation mode a
        :class:`~repro.serving.resilience.BrownoutController` engages when
        it reads a sustained p99 / error-rate breach from telemetry.
        ``NORMAL`` and ``HIGH`` admission is unchanged: brownout trades
        background work for interactive headroom, it never tightens the
        classes it is protecting.
        """
        if brownout and priority == Priority.LOW:
            return False
        return pending + n <= self.admit_limit(priority)
