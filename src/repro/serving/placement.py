"""Placement subsystem: replica sets, placement policies, rolling deploys.

PR 3's :class:`~repro.serving.cluster.ClusterRouter` hard-coded *sticky*
placement — one model's decoded plan lives on exactly one worker — so a
single hot model caps at one process no matter how many workers exist: the
same single-resident-model ceiling PR 3 removed at the cluster level,
re-appearing per model.  This module extracts placement into its own layer:

* :class:`PlacementPolicy` decides **where** a ``(model, version)`` pair's
  decoded plans live and **which** replica serves each request.  Three
  built-ins (also reachable by name through :meth:`PlacementPolicy.create`):

  - :class:`StickyPolicy` — one replica, the PR 3 behaviour, still the
    default (plans are not duplicated needlessly);
  - :class:`ReplicatedPolicy` — N replicas with **power-of-two-choices**
    dispatch: sample two replicas, send to the less loaded one.  O(1) per
    request and within a constant factor of optimal load balance, which is
    why it is the classic serving-cluster dispatch rule;
  - :class:`LeastLoadedPolicy` — N replicas with a full load scan per
    dispatch: optimal balance at O(replicas) cost, useful at small N and as
    the oracle the power-of-two benchmark is judged against.

  All replicas decode the *same* image bytes, so predictions are bitwise
  identical under every policy — placement changes throughput, never math.

* :class:`ReplicaSet` is one placed ``(model, version)``: the worker ids
  hosting its plans plus per-replica dispatch/completion counters.  Load
  per replica is read live from the pool (in-flight requests, which counts
  both pipe queue depth and engine queue depth on that worker).

* :class:`PlacementTable` is the LRU-ordered ``key → ReplicaSet`` map the
  router used to embed: placements are touched on use and evicted
  least-recently-used when the cluster byte budget needs room, with an
  ``exclude`` set protecting in-progress deploys from eviction.

* :class:`DeployManager` performs **versioned rolling deploys**: register
  the new ``(name, version)`` image, warm its plans on every replica of the
  current version (retrying across worker crashes — a restarted worker
  replays its loads), atomically flip routing to the new version, drain the
  old version's in-flight requests, then unload the old plans.  No request
  is shed and nothing crashes on behalf of a deploy: traffic keeps flowing
  on the old version until the flip, and on the new one after it.

Model keys pair a registered name with a version as ``"name@version"`` —
the router resolves ``version=None`` to the current version at admission,
so a deploy's atomic flip is one dictionary write.
"""

from __future__ import annotations

import random
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import AbstractSet, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.errors import ConfigError, DeployError

# the "name@version" key grammar now lives in the shared versioned catalog
# (repro.serving.catalog); re-exported here for the pre-catalog import paths
from repro.serving.catalog import (  # noqa: F401  (re-exports)
    DEFAULT_VERSION,
    KEY_SEPARATOR,
    make_key,
    split_key,
    validate_identifier,
)


#: load probe: worker id -> in-flight request count (pipe + engine queues)
LoadFn = Callable[[int], int]


@dataclass(frozen=True)
class ReplicaStats:
    """One replica's slice of a :class:`ReplicaSet` (snapshot, not live)."""

    worker_id: int
    dispatched: int
    completed: int


class ReplicaSet:
    """One placed ``(model, version)``: its replica workers and their load.

    ``workers`` is the ordered list of worker ids hosting this key's decoded
    plans.  Dispatch bookkeeping is per replica: ``dispatched`` counts
    requests routed to each replica, ``completed`` those that resolved
    successfully.  The *live* load used for dispatch decisions comes from
    the pool's in-flight counter (which includes the worker's pipe and
    engine queue depth), not from these counters — the pool sees the
    worker's whole load across models, the counters only this key's share.

    Mutated only under the router lock (placement decisions are serialized
    there), so the counters need no lock of their own.
    """

    def __init__(self, key: str, workers: Sequence[int], policy: "PlacementPolicy") -> None:
        if not workers:
            raise ConfigError(f"replica set for {key!r} needs at least one worker")
        self.key = key
        self.workers: List[int] = list(dict.fromkeys(workers))
        self.policy = policy
        self._dispatched: Dict[int, int] = {wid: 0 for wid in self.workers}
        self._completed: Dict[int, int] = {wid: 0 for wid in self.workers}

    def __len__(self) -> int:
        """Number of replicas in the set."""
        return len(self.workers)

    def pick(self, load: LoadFn, avoid: AbstractSet[int] = frozenset()) -> int:
        """Choose the replica for one request burst (delegates to the policy).

        ``avoid`` excludes workers from the choice — the resilience layer
        passes the replica a retried request just failed on plus any
        breaker-open workers, steering the re-dispatch to a *different*
        (bitwise-identical) replica.  Exclusion filters rather than
        delegates: the eligible workers are ranked least-loaded (ties by
        fewest dispatches from this set, then id), the same rule every
        built-in policy uses for restricted choices.  When exclusion would
        empty the set — every replica failed or is quarantined — the plain
        policy pick runs instead: a fully-broken set still receives probe
        traffic rather than failing fast forever.
        """
        if avoid:
            eligible = [wid for wid in self.workers if wid not in avoid]
            if len(eligible) == 1:
                return eligible[0]
            if eligible:
                return min(
                    eligible,
                    key=lambda wid: (load(wid), self.dispatched(wid), wid),
                )
        return self.policy.pick(self, load)

    def add_replica(self, worker_id: int) -> None:
        """Grow the set by one worker (idempotent), counters starting at zero.

        Called under the router lock by
        :meth:`~repro.serving.cluster.ClusterRouter.resize` — the caller is
        responsible for loading the key's plans on the new worker *before*
        dispatch can pick it (the pipe-order guarantee makes load-then-add
        under the router lock sufficient).
        """
        if worker_id not in self._dispatched:
            self.workers.append(worker_id)
            self._dispatched[worker_id] = 0
            self._completed[worker_id] = 0

    def remove_replica(self, worker_id: int) -> None:
        """Shrink the set by one worker; the last replica cannot be removed.

        The removed replica's counters are dropped with it; completions of
        its still-in-flight requests are recorded harmlessly (they no longer
        appear in :meth:`snapshot`, which iterates the live workers).
        """
        if worker_id not in self._dispatched:
            raise ConfigError(
                f"worker {worker_id} is not a replica of {self.key!r}"
            )
        if len(self.workers) == 1:
            raise ConfigError(f"replica set for {self.key!r} needs at least one worker")
        self.workers.remove(worker_id)
        self._dispatched.pop(worker_id, None)
        self._completed.pop(worker_id, None)

    def record_dispatch(self, worker_id: int, n: int = 1) -> None:
        """Count ``n`` requests routed to one replica."""
        self._dispatched[worker_id] = self._dispatched.get(worker_id, 0) + n

    def record_completion(self, worker_id: int, n: int = 1) -> None:
        """Count ``n`` requests successfully served by one replica."""
        self._completed[worker_id] = self._completed.get(worker_id, 0) + n

    def dispatched(self, worker_id: int) -> int:
        """Requests routed to one replica so far."""
        return self._dispatched.get(worker_id, 0)

    def snapshot(self) -> Tuple[ReplicaStats, ...]:
        """Per-replica counters as immutable stats rows."""
        return tuple(
            ReplicaStats(
                worker_id=wid,
                dispatched=self._dispatched.get(wid, 0),
                completed=self._completed.get(wid, 0),
            )
            for wid in self.workers
        )


class PlacementPolicy:
    """Base policy: maps a ``(model, version)`` key to a replica set and
    picks the serving replica per request.

    ``replicas`` is how many workers the policy spreads one key across
    (capped at the pool size when a set is planned).  :meth:`plan` chooses
    *which* workers host the plans; :meth:`pick` chooses the replica for
    one request.  The base implementation is the sticky/least-loaded
    *placement* rule shared by every built-in: fill the workers with the
    fewest in-flight requests first (ties broken by fewest resident plans,
    then id) — subclasses specialise the per-request dispatch.
    """

    #: how many workers one key's plans are spread across
    replicas: int = 1

    #: registry of named policies for :meth:`create`
    _NAMED: Dict[str, Callable[[], "PlacementPolicy"]] = {}

    def __init_subclass__(cls, *, spec: Optional[str] = None, **kwargs) -> None:
        """Register subclasses declared with a ``spec=`` name for lookup."""
        super().__init_subclass__(**kwargs)
        if spec is not None:
            PlacementPolicy._NAMED[spec] = cls

    @staticmethod
    def create(spec: Union[str, "PlacementPolicy", None]) -> "PlacementPolicy":
        """Resolve a policy argument: an instance passes through, a name
        (``"sticky"``, ``"replicated"``, ``"least-loaded"``) constructs the
        matching built-in with defaults, ``None`` means sticky."""
        if spec is None:
            return StickyPolicy()
        if isinstance(spec, PlacementPolicy):
            return spec
        factory = PlacementPolicy._NAMED.get(spec)
        if factory is None:
            known = ", ".join(sorted(PlacementPolicy._NAMED))
            raise ConfigError(f"unknown placement policy {spec!r}; known: {known}")
        return factory()

    def equivalent(self, other: Optional["PlacementPolicy"]) -> bool:
        """True when ``other`` places and dispatches identically.

        Policies are stateless apart from their replica target (the
        dispatch RNG seed never affects results — replicas hold identical
        plans), so same class + same replica count means interchangeable.
        The router uses this to tell a *changed* placement override (which
        must re-place existing replica sets) from a re-registration with
        the same policy spec (which must not disturb placements).
        """
        return (
            other is not None
            and type(other) is type(self)
            and other.replicas == self.replicas
        )

    def plan(
        self,
        worker_ids: Sequence[int],
        load: LoadFn,
        resident_count: Mapping[int, int],
    ) -> List[int]:
        """Choose which workers host a new replica set (least-loaded first).

        Returns ``min(self.replicas, len(worker_ids))`` distinct worker ids
        ranked by ``(in-flight load, resident plan count, id)`` — the same
        rule PR 3 used for single placements, generalised to N.
        """
        ranked = sorted(
            worker_ids, key=lambda wid: (load(wid), resident_count.get(wid, 0), wid)
        )
        return ranked[: max(1, min(self.replicas, len(ranked)))]

    def pick(self, replica_set: ReplicaSet, load: LoadFn) -> int:
        """Choose the replica serving one request (subclass responsibility)."""
        raise NotImplementedError


class StickyPolicy(PlacementPolicy, spec="sticky"):
    """One replica per key — the PR 3 behaviour and the default.

    A model's decoded plan lives on exactly one worker, so plans are never
    duplicated; the cost is that one hot model caps at one process.
    """

    replicas = 1

    def pick(self, replica_set: ReplicaSet, load: LoadFn) -> int:
        """The single replica — or, when an autoscaler grew the set past its
        one-replica target, the least-loaded replica: sticky describes the
        *placement* target, and a grown set must still spread dispatch or
        the extra replicas would never serve a request."""
        workers = replica_set.workers
        if len(workers) == 1:
            return workers[0]
        return min(
            workers, key=lambda wid: (load(wid), replica_set.dispatched(wid), wid)
        )


class ReplicatedPolicy(PlacementPolicy, spec="replicated"):
    """N replicas with power-of-two-choices dispatch.

    Each request samples two distinct replicas and goes to the one with the
    lower live load (ties broken by fewer dispatches from this set, then
    id).  The RNG is seeded so a fixed submission order reproduces the same
    dispatch trace — results are bitwise identical under any trace anyway
    (all replicas hold the same plans), determinism just keeps benchmarks
    repeatable.
    """

    def __init__(self, replicas: int = 2, *, seed: int = 0x2C) -> None:
        if replicas < 1:
            raise ConfigError("replicas must be >= 1")
        self.replicas = replicas
        self._rng = random.Random(seed)

    def pick(self, replica_set: ReplicaSet, load: LoadFn) -> int:
        """Power of two choices: sample two replicas, take the less loaded."""
        workers = replica_set.workers
        if len(workers) == 1:
            return workers[0]
        a, b = self._rng.sample(workers, 2)
        return min(a, b, key=lambda wid: (load(wid), replica_set.dispatched(wid), wid))


class LeastLoadedPolicy(PlacementPolicy, spec="least-loaded"):
    """N replicas with a full least-loaded scan per dispatch.

    Optimal instantaneous balance at O(replicas) per request — the oracle
    :class:`ReplicatedPolicy` approximates with two samples.  Prefer it at
    small replica counts or when dispatch cost is negligible next to the
    model forward.
    """

    def __init__(self, replicas: int = 2) -> None:
        if replicas < 1:
            raise ConfigError("replicas must be >= 1")
        self.replicas = replicas

    def pick(self, replica_set: ReplicaSet, load: LoadFn) -> int:
        """The replica with the lowest live load (ties: fewest dispatches, id)."""
        return min(
            replica_set.workers,
            key=lambda wid: (load(wid), replica_set.dispatched(wid), wid),
        )


class PlacementTable:
    """LRU-ordered ``key → ReplicaSet`` map — the router's placement state.

    This is the map :class:`~repro.serving.cluster.ClusterRouter` used to
    embed as a plain ``OrderedDict[str, int]``; extracting it makes the LRU
    discipline and the replica-aware byte accounting testable on their own
    and keeps the router to admission + transport.  All methods are called
    under the router lock.
    """

    def __init__(self) -> None:
        self._sets: "OrderedDict[str, ReplicaSet]" = OrderedDict()

    def __contains__(self, key: str) -> bool:
        """True when ``key`` currently has a replica set."""
        return key in self._sets

    def __len__(self) -> int:
        """Number of placed keys."""
        return len(self._sets)

    def __iter__(self) -> Iterable[str]:
        """Iterate placed keys, least-recently-used first."""
        return iter(self._sets)

    def get(self, key: str) -> Optional[ReplicaSet]:
        """The replica set for ``key``, or ``None`` when unplaced."""
        return self._sets.get(key)

    def touch(self, key: str) -> None:
        """Mark ``key`` most-recently-used (called on every dispatch)."""
        self._sets.move_to_end(key)

    def insert(self, replica_set: ReplicaSet) -> None:
        """Add a replica set as the most-recently-used entry."""
        self._sets[replica_set.key] = replica_set

    def pop(self, key: str) -> Optional[ReplicaSet]:
        """Remove and return ``key``'s replica set (``None`` when unplaced)."""
        return self._sets.pop(key, None)

    def pop_lru(self, exclude: Set[str] = frozenset()) -> Optional[ReplicaSet]:
        """Remove and return the least-recently-used evictable replica set.

        Keys in ``exclude`` (e.g. both sides of an in-progress deploy) are
        skipped; returns ``None`` when nothing is evictable.
        """
        for key in self._sets:
            if key not in exclude:
                return self._sets.pop(key)
        return None

    def clear(self) -> None:
        """Drop every placement (cluster stopped; restart re-places lazily)."""
        self._sets.clear()

    def items(self) -> List[Tuple[str, ReplicaSet]]:
        """Placed ``(key, replica set)`` pairs, least-recently-used first."""
        return list(self._sets.items())

    def resident_bytes(self, size_of: Callable[[str], int]) -> int:
        """Decoded bytes across all placements: each replica holds a full
        copy of its key's plans, so a key costs ``size × replicas``."""
        return sum(
            size_of(key) * len(replica_set) for key, replica_set in self._sets.items()
        )


@dataclass(frozen=True)
class DeployReport:
    """Outcome of one completed rolling deploy (or rollback).

    ``drained`` counts the old version's requests that were still in flight
    at the routing flip and were served (never shed) before its plans were
    unloaded; ``warm_s``/``drain_s`` time the two waiting phases.

    Canary deploys (``deploy(..., canary=CanaryPolicy(...))``) additionally
    report the verdict: ``canary_outcome`` is ``"promoted"`` or
    ``"rolled_back"`` (``None`` for plain deploys), ``canary_reason`` names
    the SLO breach on a rollback, and ``canary_observed`` counts the canary
    requests the decision was based on.  A rolled-back canary is a *normal
    return*, not an exception: ``new_version`` names the rejected version
    while routing stays on ``old_version``.
    """

    name: str
    old_version: Optional[str]
    new_version: str
    replicas: Tuple[int, ...]
    drained: int
    warm_s: float
    drain_s: float
    canary_outcome: Optional[str] = None
    canary_reason: Optional[str] = None
    canary_observed: int = 0


class DeployManager:
    """Versioned rolling deploys over a :class:`~repro.serving.cluster.ClusterRouter`.

    A deploy swaps ``name`` from its current version to a new one without
    shedding a single request:

    1. **register** the new ``(name, version)`` image (inactive — routing
       still points at the old version);
    2. **warm** the new version's plans on every replica of the current
       version's set (or a fresh placement plan when the model was never
       placed), waiting until each worker acknowledges the decoded plan.
       A worker that crashes mid-warm-up is restarted by the pool and
       replays its loads, so warming simply retries until the plan appears
       or ``warm_timeout_s`` elapses — the old version keeps serving
       throughout;
    3. **flip** routing atomically: requests admitted after the flip
       resolve ``version=None`` to the new version;
    4. **drain** the old version: wait until its in-flight requests have
       all resolved (they were admitted, so they are served — never shed);
    5. **unload** the old version's plans from every replica, releasing its
       decoded bytes back to the cluster budget.  The old *image* stays
       registered so :meth:`rollback` can redeploy it.

    Deploys for the same manager are serialised (one at a time).  A
    warm-up failure aborts cleanly with routing still on the old version;
    a drain timeout surfaces *after* the atomic flip, so the new version
    is already current (and recorded for :meth:`rollback`) — in every
    case no key stays pinned against eviction once the deploy returns.
    """

    def __init__(
        self,
        router,
        *,
        warm_timeout_s: float = 60.0,
        drain_timeout_s: float = 120.0,
        poll_interval_s: float = 0.02,
    ) -> None:
        if warm_timeout_s <= 0 or drain_timeout_s <= 0:
            raise ConfigError("deploy timeouts must be positive")
        self.router = router
        self.warm_timeout_s = warm_timeout_s
        self.drain_timeout_s = drain_timeout_s
        self.poll_interval_s = poll_interval_s
        self._lock = threading.Lock()
        self._history: Dict[str, List[str]] = {}

    # -- public API --------------------------------------------------------- #

    def deploy(
        self, name: str, image, version: str, *, canary: Optional[object] = None
    ) -> DeployReport:
        """Roll ``name`` from its current version to ``version`` (new image).

        Registers the image under ``(name, version)`` and performs the full
        warm → flip → drain → unload sequence.  Deploying a name the router
        has never seen is a **first-time deploy**: the version is
        registered, its plans are warmed, and it starts serving — there is
        no old version to drain (and ``canary`` is meaningless without an
        incumbent, so it is ignored).

        With ``canary=CanaryPolicy(...)`` the flip is *earned* instead of
        unconditional: after warming, a configurable fraction of
        ``version=None`` traffic is routed to the new version and its
        latency/error/shed stats are compared against the policy's SLOs
        over a decision window (:class:`~repro.serving.control.CanaryController`).
        A healthy canary auto-promotes (atomic flip + old-version unload,
        exactly like a plain deploy); an SLO breach auto-rolls-back —
        routing stays on the old version, the canary's plans are unloaded,
        and the report returns normally with ``canary_outcome ==
        "rolled_back"`` (the rejected image stays registered, staged and
        unplaced, for diagnosis or redeploy).  A canary that cannot reach a
        verdict within ``decision_timeout_s`` is rolled back and raises
        :class:`~repro.errors.DeployError` — an undecided canary must not
        promote by default.

        Raises :class:`~repro.errors.DeployError` if the target version is
        already current, warming times out, or the old version never
        drains.  A warm-up failure leaves the router serving the old
        version untouched; a drain timeout happens *after* the atomic flip
        (the new version is already current and recorded for
        :meth:`rollback`), with the old version's plans still loaded for
        its straggling pinned requests.
        """
        validate_identifier("version", version)
        with self._lock:
            current = self._current(name)
            if current is None:
                return self._first_deploy(name, image, version)
            if current == version:
                raise DeployError(f"model {name!r} is already serving version {version!r}")
            fresh = version not in self.router.versions(name)
            self.router.register(name, image, version=version, activate=False)
            try:
                if canary is not None:
                    return self._canary_roll(name, version, canary)
                return self._roll(name, version)
            except BaseException:
                # a failed deploy leaves no half-registered version — unless
                # routing already flipped (drain timeout), in which case the
                # new version is live and must stay
                if fresh and self.router.current_version(name) != version:
                    self.router.remove(name, version=version)
                raise

    def rollback(self, name: str) -> DeployReport:
        """Re-activate the previously deployed version of ``name``.

        The previous version's image is still registered (deploys never
        drop images), so a rollback is a rolling deploy in reverse: warm
        the old plans, flip, drain, unload.  Raises
        :class:`~repro.errors.DeployError` when no previous version is on
        record for this manager.
        """
        with self._lock:
            history = self._history.get(name, [])
            if len(history) < 2:
                raise DeployError(
                    f"no previous version of {name!r} on record to roll back to"
                )
            return self._roll(name, history[-2])

    def history(self, name: str) -> List[str]:
        """Activation order of ``name``'s versions, oldest first (a copy)."""
        with self._lock:
            return list(self._history.get(name, []))

    # -- internals ---------------------------------------------------------- #

    def _current(self, name: str) -> Optional[str]:
        """Current version of ``name`` (``None`` when unregistered), seeding
        the history so a pre-manager registration can be rolled back *from*."""
        try:
            current = self.router.current_version(name)
        except Exception:
            return None
        history = self._history.setdefault(name, [])
        if not history or history[-1] != current:
            history.append(current)
        return current

    def _first_deploy(self, name: str, image, version: str) -> DeployReport:
        """Register and warm a brand-new model name (no old version to swap)."""
        t0 = time.monotonic()
        self.router.register(name, image, version=version, activate=True)
        try:
            workers = self.router.warm(name, version)
            self._await_warm(name, version, workers)
        except BaseException:
            self.router.remove(name)
            raise
        finally:
            self.router.unpin(name)
        self._history[name] = [version]
        return DeployReport(
            name=name,
            old_version=None,
            new_version=version,
            replicas=tuple(workers),
            drained=0,
            warm_s=time.monotonic() - t0,
            drain_s=0.0,
        )

    def _roll(self, name: str, version: str) -> DeployReport:
        """Warm → flip → drain → unload (caller holds the manager lock)."""
        old = self._current(name)
        if old == version:
            raise DeployError(f"model {name!r} is already serving version {version!r}")
        t0 = time.monotonic()
        workers = self.router.warm(name, version)
        try:
            self._await_warm(name, version, workers)
        except BaseException:
            self.router.release_version(name, version)
            self.router.unpin(name)
            raise
        warm_s = time.monotonic() - t0
        self.router.set_current(name, version)
        # the flip happened: record the activation immediately so a drain
        # timeout below still leaves the new version rollback-able
        history = self._history.setdefault(name, [])
        if not history or history[-1] != version:
            history.append(version)
        t1 = time.monotonic()
        try:
            drained = self._await_drain(name, old)
        except BaseException:
            # routing stays flipped (documented); the old version's plans
            # stay loaded for its straggling pinned requests, but nothing
            # stays pinned against eviction
            self.router.unpin(name)
            raise
        if old is not None:
            self.router.release_version(name, old)
        self.router.unpin(name)
        return DeployReport(
            name=name,
            old_version=old,
            new_version=version,
            replicas=tuple(workers),
            drained=drained,
            warm_s=warm_s,
            drain_s=time.monotonic() - t1,
        )

    def _canary_roll(self, name: str, version: str, policy) -> DeployReport:
        """Warm → split → observe → promote-or-rollback (manager lock held).

        The decision loop polls a
        :class:`~repro.serving.control.CanaryController` (the same
        ``step()`` the background :class:`~repro.serving.control.ControlLoop`
        drives) until it reaches a terminal phase or the policy's
        ``decision_timeout_s`` elapses — in which case the canary is rolled
        back and :class:`~repro.errors.DeployError` raised: silence is not
        consent.
        """
        # late import: control builds *on* the deploy/cluster layers, so the
        # dependency must point this way only when a canary is actually used
        from repro.serving.control import CanaryController

        old = self._current(name)
        t0 = time.monotonic()
        workers = self.router.warm(name, version)
        try:
            self._await_warm(name, version, workers)
        except BaseException:
            self.router.release_version(name, version)
            self.router.unpin(name)
            raise
        warm_s = time.monotonic() - t0
        controller = CanaryController(self.router, name, version, policy)
        controller.begin()  # opens the traffic split
        deadline = time.monotonic() + policy.decision_timeout_s
        t1 = time.monotonic()
        try:
            while True:
                status = controller.step()
                if status.done:
                    break
                if time.monotonic() >= deadline:
                    status = controller.abort(
                        f"no canary verdict after {policy.decision_timeout_s:.1f} s "
                        f"({status.observed} of {policy.min_requests} decision "
                        f"requests observed)"
                    )
                    raise DeployError(str(status.reason))
                time.sleep(self.poll_interval_s)
        except DeployError:
            raise
        except BaseException:
            controller.abort("canary aborted by error")
            raise
        if status.phase == "promoted":
            history = self._history.setdefault(name, [])
            if not history or history[-1] != version:
                history.append(version)
        return DeployReport(
            name=name,
            old_version=old,
            new_version=version,
            replicas=tuple(workers),
            drained=controller.drained,
            warm_s=warm_s,
            drain_s=time.monotonic() - t1,
            canary_outcome=status.phase,
            canary_reason=status.reason,
            canary_observed=status.observed,
        )

    def _await_warm(self, name: str, version: str, workers: Sequence[int]) -> None:
        """Poll each target worker until it reports the new version's plan.

        The poll is the crash-retry loop: a worker that dies mid-warm-up
        answers no pings while the pool restarts it, then replays its
        recorded loads — including the warming version — so the plan shows
        up on the replacement without any action here.
        """
        key = make_key(name, version)
        deadline = time.monotonic() + self.warm_timeout_s
        for worker_id in workers:
            while True:
                pong = self.router.pool.ping(worker_id, timeout=self.poll_interval_s * 10)
                if pong is not None and key in pong[1]:
                    break
                if time.monotonic() >= deadline:
                    raise DeployError(
                        f"warming {key!r} on worker {worker_id} timed out after "
                        f"{self.warm_timeout_s:.1f} s"
                    )
                time.sleep(self.poll_interval_s)

    def _await_drain(self, name: str, old: Optional[str]) -> int:
        """Wait until the old version's admitted requests have all resolved.

        Returns how many were still in flight at the flip.  Admitted
        requests are *served*, never shed — drain is pure waiting.  A
        caller that keeps pinning ``version=old`` explicitly can stall the
        drain; ``drain_timeout_s`` turns that into a
        :class:`~repro.errors.DeployError` (with routing already flipped,
        matching what a half-finished drain means operationally).
        """
        if old is None:
            return 0
        at_flip = self.router.version_pending(name, old)
        deadline = time.monotonic() + self.drain_timeout_s
        while self.router.version_pending(name, old) > 0:
            if time.monotonic() >= deadline:
                raise DeployError(
                    f"draining {make_key(name, old)!r} timed out after "
                    f"{self.drain_timeout_s:.1f} s "
                    f"({self.router.version_pending(name, old)} still in flight)"
                )
            time.sleep(self.poll_interval_s)
        return at_flip
