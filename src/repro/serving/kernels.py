"""Packed-ternary execution kernels: bit-plane decode + gather-accumulate.

TNN-style packed execution (Alemdar et al., *Ternary Neural Networks for
Resource-Efficient AI Applications*): a ternary matrix is stored as two
*index planes* — the +1 positions and the −1 positions — and a matmul
against it reduces to two gather-accumulate passes per output row::

    out[:, j] = sum(x[:, plus[j]], axis=1) - sum(x[:, minus[j]], axis=1)

No dense float weight matrix is materialised on the hot path: the planes
are decoded **once** from the 2-bit blob (CSR layout: one flat index array
plus row pointers per sign) and reused for every forward call.  The
accumulation itself is vectorised with ``np.add.reduceat`` over a single
gather, so the summation order is fixed — two calls on the same input are
bitwise identical, which is what lets the cached and on-the-fly serving
modes agree exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.deploy.packing import CODE_MINUS, CODE_PLUS, unpack_codes
from repro.errors import ConfigError

#: opt-in profiling hook (a ``telemetry.KernelProfile`` or anything with a
#: ``record_gather(elapsed_s, backend)`` method, ``backend`` naming the
#: kernel backend that ran the pass); ``None`` keeps the hot path at a
#: single global load per gather pass.  Install via
#: :func:`repro.serving.telemetry.profile_kernels`.
_PROFILE = None


def set_kernel_profile(profile: Optional[object]) -> None:
    """Install (or with ``None`` remove) the global gather-timing hook."""
    global _PROFILE
    _PROFILE = profile


def get_kernel_profile() -> Optional[object]:
    """The currently installed gather-timing hook, if any."""
    return _PROFILE


@dataclass(frozen=True)
class TernaryPlanes:
    """A ternary (rows × cols) matrix as +1/−1 index planes in CSR form.

    ``plus_indices[plus_ptr[j]:plus_ptr[j+1]]`` are the column positions of
    the +1 entries of row ``j`` (ascending), and symmetrically for minus.
    """

    rows: int
    cols: int
    plus_indices: np.ndarray
    plus_ptr: np.ndarray
    minus_indices: np.ndarray
    minus_ptr: np.ndarray

    @property
    def nnz(self) -> int:
        """Number of non-zero weights across both planes."""
        return len(self.plus_indices) + len(self.minus_indices)

    @property
    def nbytes(self) -> int:
        """Decoded in-memory footprint of the index planes."""
        return (
            self.plus_indices.nbytes
            + self.plus_ptr.nbytes
            + self.minus_indices.nbytes
            + self.minus_ptr.nbytes
        )


def _csr_planes(mask: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """CSR (indices, ptr) of the True cells of a 2-D boolean mask."""
    row_idx, col_idx = np.nonzero(mask)  # row-major => ascending cols per row
    counts = np.bincount(row_idx, minlength=mask.shape[0])
    ptr = np.zeros(mask.shape[0] + 1, dtype=np.intp)
    np.cumsum(counts, out=ptr[1:])
    return col_idx.astype(np.intp), ptr


def decode_planes(blob: bytes, shape: Tuple[int, ...]) -> TernaryPlanes:
    """Decode a 2-bit blob into index planes, one decode for the plan's life.

    ``shape`` is the logical tensor shape; it is flattened to
    ``(shape[0], prod(shape[1:]))`` — matching how the ternary transforms
    are applied (each output row gathers over the flattened remainder).
    """
    if not shape:
        raise ConfigError(
            "decode_planes needs a non-empty shape: shape=() has no rows to "
            "decode (a scalar cannot be a ternary transform)"
        )
    if any(dim < 0 for dim in shape):
        raise ConfigError(f"decode_planes shape {shape!r} has a negative dimension")
    rows = int(shape[0])
    cols = int(np.prod(shape[1:])) if len(shape) > 1 else 1
    codes = unpack_codes(blob, rows * cols).reshape(rows, cols)
    plus_idx, plus_ptr = _csr_planes(codes == CODE_PLUS)
    minus_idx, minus_ptr = _csr_planes(codes == CODE_MINUS)
    return TernaryPlanes(
        rows=rows,
        cols=cols,
        plus_indices=plus_idx,
        plus_ptr=plus_ptr,
        minus_indices=minus_idx,
        minus_ptr=minus_ptr,
    )


def as_block_diagonal(planes: TernaryPlanes, block_cols: int) -> TernaryPlanes:
    """Re-index per-row planes into a block-diagonal column space.

    For a depthwise filter stored as (C, K) — one K-tap ternary filter per
    channel — the gather runs over a (M, C*K) patch matrix where channel
    ``c`` owns columns ``[c*K, (c+1)*K)``.  This shifts row ``c``'s indices
    by ``c * block_cols`` so one gather-accumulate serves all channels.
    """
    if planes.cols != block_cols:
        raise ValueError(f"planes have {planes.cols} cols, expected {block_cols}")

    def shift(indices: np.ndarray, ptr: np.ndarray) -> np.ndarray:
        """Offset each row's indices into its own column block."""
        counts = np.diff(ptr)
        offsets = np.repeat(np.arange(planes.rows, dtype=np.intp) * block_cols, counts)
        return indices + offsets

    return TernaryPlanes(
        rows=planes.rows,
        cols=planes.rows * block_cols,
        plus_indices=shift(planes.plus_indices, planes.plus_ptr),
        plus_ptr=planes.plus_ptr,
        minus_indices=shift(planes.minus_indices, planes.minus_ptr),
        minus_ptr=planes.minus_ptr,
    )


#: peak bytes of gather scratch `_plane_sums` may materialise per call; the
#: batch axis is chunked to stay under it (module-level so tests can shrink
#: it to force chunking on small inputs)
GATHER_SCRATCH_BYTES = 8 * 1024 * 1024


def gather_chunk_rows(scratch_cols: int, itemsize: int) -> int:
    """Batch rows per gather chunk so scratch stays under the byte budget.

    ``scratch_cols`` counts *every* scratch element a single batch row
    materialises during one chunk — the gathered ``(chunk, nnz)`` slab
    **plus** the ``reduceat`` output that coexists with it before being
    written into the result.  The previous bound counted only the gather
    slab, so peak scratch could overshoot :data:`GATHER_SCRATCH_BYTES` by
    the reduce output's size; this helper is the single corrected formula
    shared by the reference kernel and every
    :mod:`repro.serving.kernels_fast` backend.
    """
    return max(1, GATHER_SCRATCH_BYTES // max(1, scratch_cols * itemsize))


def _plane_sums(x: np.ndarray, indices: np.ndarray, ptr: np.ndarray) -> np.ndarray:
    """Per-row gather-accumulate: ``out[:, j] = x[:, idx in row j].sum()``.

    One fancy-index gather then a single ``reduceat`` per batch chunk; empty
    rows are skipped from the reduce boundaries (``reduceat`` would
    otherwise emit a stray single element for them) and stay exactly zero.

    The gather materialises an ``(M, nnz)`` scratch array, which for a
    large-batch × large-nnz layer can dwarf the model itself, so the batch
    axis is processed in chunks bounded by :data:`GATHER_SCRATCH_BYTES` —
    the bound counts both the gathered slab and the ``reduceat`` output
    that coexists with it (:func:`gather_chunk_rows`).  Chunking splits
    only the batch dimension — each row's summation order is untouched —
    so the output is bitwise identical to the unchunked gather.
    """
    profile = _PROFILE
    start = time.perf_counter() if profile is not None else 0.0
    rows = len(ptr) - 1
    out = np.zeros((x.shape[0], rows), dtype=x.dtype)
    starts, ends = ptr[:-1], ptr[1:]
    nonempty = np.flatnonzero(ends > starts)
    if nonempty.size:
        chunk = gather_chunk_rows(indices.size + nonempty.size, x.dtype.itemsize)
        bounds = starts[nonempty]
        for lo in range(0, x.shape[0], chunk):
            gathered = x[lo : lo + chunk, indices]
            out[lo : lo + chunk, nonempty] = np.add.reduceat(gathered, bounds, axis=1)
    if profile is not None:
        profile.record_gather(time.perf_counter() - start, "reference")
    return out


def ternary_matmul(x: np.ndarray, planes: TernaryPlanes) -> np.ndarray:
    """``x @ W.T`` for a packed ternary ``W`` — two gather-accumulate passes.

    ``x`` is (M, cols); the result is (M, rows) with dtype of ``x``.
    """
    if x.shape[1] != planes.cols:
        raise ValueError(f"input has {x.shape[1]} features, planes expect {planes.cols}")
    return _plane_sums(x, planes.plus_indices, planes.plus_ptr) - _plane_sums(
        x, planes.minus_indices, planes.minus_ptr
    )
