"""Micro-batching engine: coalesce single requests into vectorised forwards.

Serving traffic arrives one utterance at a time, but the packed kernels (and
NumPy generally) amortise per-call overhead across a batch.  The
:class:`BatchingEngine` accepts individual requests and coalesces them into
micro-batches bounded by a maximum size *and* a maximum latency budget: a
batch is dispatched as soon as it is full or its oldest request has waited
``max_delay_ms``.

Two dispatch modes share the same coalescing core:

* **worker mode** — ``start()`` (or the context manager) runs a background
  thread that drains the queue continuously, honouring the latency budget;
* **synchronous mode** — without a worker, :meth:`flush` drains the queue in
  the caller's thread, which is deterministic and what batch evaluation
  (e.g. streaming windows) uses.

Results are delivered through :class:`concurrent.futures.Future`, one per
request, in submission order within each batch.

Requests may carry a **deadline**: ``submit(x, deadline_s=...)`` gives the
request a latency budget, and any request still queued when its budget has
elapsed at dispatch time is rejected with
:class:`~repro.errors.DeadlineExceeded` instead of being executed — expired
work never occupies a batch slot.  The asyncio-facing wrapper lives in
:mod:`repro.serving.frontend`.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError, DeadlineExceeded
from repro.serving.telemetry import get_registry

#: one queued request: (input, result future, absolute monotonic deadline or None)
Request = Tuple[np.ndarray, Future, Optional[float]]

#: safety margin subtracted from a queued request's deadline when it caps the
#: coalescing wait, so the dispatch-time deadline check runs strictly before
#: the budget expires (not in a dead heat with it).
DISPATCH_SLACK_S = 0.005


@dataclass(frozen=True)
class MicroBatchConfig:
    """Coalescing policy: dispatch at ``max_batch_size`` or ``max_delay_ms``."""

    max_batch_size: int = 32
    max_delay_ms: float = 2.0

    def __post_init__(self) -> None:
        """Validate the policy bounds."""
        if self.max_batch_size < 1:
            raise ConfigError("max_batch_size must be >= 1")
        if self.max_delay_ms < 0:
            raise ConfigError("max_delay_ms must be >= 0")


#: how many recent batch sizes EngineStats retains (bounded for long-lived engines)
RECENT_BATCHES = 4096


@dataclass
class EngineStats:
    """Counters the engine maintains across its lifetime.

    ``batch_sizes`` keeps only the most recent :data:`RECENT_BATCHES`
    dispatches so a worker serving traffic for days cannot grow it without
    bound; the ``requests``/``batches`` counters cover the full lifetime.

    ``requests`` counts every submission; ``served`` only those that made it
    into a dispatched batch.  ``deadline_misses`` counts requests rejected at
    dispatch because their latency budget had expired; ``shed`` counts
    requests a front-end refused admission to (backpressure) — those never
    reached the queue, so they are *not* included in ``requests``.
    """

    requests: int = 0
    served: int = 0
    batches: int = 0
    deadline_misses: int = 0
    shed: int = 0
    batch_sizes: Deque[int] = field(default_factory=lambda: deque(maxlen=RECENT_BATCHES))

    @property
    def mean_batch_size(self) -> float:
        """Lifetime average coalesced batch size (0.0 before any dispatch)."""
        return self.served / self.batches if self.batches else 0.0


class BatchingEngine:
    """Coalesces single-example requests into micro-batched model calls.

    ``model`` maps an (N, …) stacked request batch to an (N, …) result
    batch — a :class:`~repro.serving.packed.PackedModel`, an
    :class:`~repro.deploy.interpreter.ImageInterpreter`, or any compatible
    callable.
    """

    def __init__(
        self,
        model: Callable[[np.ndarray], np.ndarray],
        config: Optional[MicroBatchConfig] = None,
    ) -> None:
        self.model = model
        self.config = config or MicroBatchConfig()
        self.stats = EngineStats()
        self._queue: "queue.Queue[Request]" = queue.Queue()
        self._lock = threading.Lock()
        self._lifecycle = threading.Lock()  # serialises start()/stop() pairs
        self._stop = threading.Event()
        self._worker: Optional[threading.Thread] = None
        # mount on the process-wide metrics plane (latest engine wins the
        # "engine" prefix; the registry holds the method weakly, so a
        # dropped engine unmounts itself)
        get_registry().register_source("engine", self.telemetry_tree)

    def telemetry_tree(self) -> dict:
        """The engine's counters as a plain metrics subtree."""
        stats = self.snapshot()
        return {
            "requests": stats.requests,
            "served": stats.served,
            "batches": stats.batches,
            "deadline_misses": stats.deadline_misses,
            "shed": stats.shed,
            "mean_batch_size": stats.mean_batch_size,
            "pending": self.pending(),
        }

    # -- request side ---------------------------------------------------- #

    def submit(self, x: np.ndarray, *, deadline_s: Optional[float] = None) -> "Future[np.ndarray]":
        """Enqueue one example; the future resolves to its result row.

        ``deadline_s`` is the request's latency budget in seconds, measured
        from submission.  If the budget has elapsed by the time the request's
        micro-batch is dispatched, the future fails with
        :class:`~repro.errors.DeadlineExceeded` instead of running.  ``None``
        means no deadline; a non-positive budget is already expired.
        """
        future: "Future[np.ndarray]" = Future()
        deadline = None if deadline_s is None else time.monotonic() + deadline_s
        with self._lock:
            self.stats.requests += 1
        self._queue.put((np.asarray(x), future, deadline))
        return future

    def submit_many(
        self, xs: Sequence[np.ndarray], *, deadline_s: Optional[float] = None
    ) -> List["Future[np.ndarray]"]:
        """Enqueue several examples, preserving order, sharing one budget.

        The whole batch is stamped with one clock read (so every request
        really shares the same absolute deadline) and counted under one
        lock acquisition, instead of paying per-request overhead
        ``len(xs)`` times.  Used by burst callers on the engine path (batch
        evaluation, examples); the cluster worker submits per request
        because each burst entry carries its own absolute deadline.
        """
        xs = [np.asarray(x) for x in xs]
        deadline = None if deadline_s is None else time.monotonic() + deadline_s
        with self._lock:
            self.stats.requests += len(xs)
        futures: List["Future[np.ndarray]"] = []
        for x in xs:
            future: "Future[np.ndarray]" = Future()
            self._queue.put((x, future, deadline))
            futures.append(future)
        return futures

    def predict(self, x: np.ndarray, *, deadline_s: Optional[float] = None) -> np.ndarray:
        """Blocking single-request convenience: submit, (flush,) wait."""
        future = self.submit(x, deadline_s=deadline_s)
        if not self.running:
            self.flush()
        return future.result()

    def pending(self) -> int:
        """Approximate number of requests queued but not yet dispatched."""
        return self._queue.qsize()

    def record_shed(self) -> None:
        """Count one request refused admission upstream (front-end backpressure)."""
        with self._lock:
            self.stats.shed += 1

    def snapshot(self) -> EngineStats:
        """Atomic copy of the counters, taken under the engine lock.

        ``engine.stats`` is mutated from the worker thread; reading several
        of its fields directly from another thread can observe a torn state
        (e.g. ``served`` from one batch, ``batches`` from the previous one).
        Readers that care — benchmarks, monitoring, the front-end — should
        use this snapshot instead of the live object.
        """
        with self._lock:
            s = self.stats
            return EngineStats(
                requests=s.requests,
                served=s.served,
                batches=s.batches,
                deadline_misses=s.deadline_misses,
                shed=s.shed,
                batch_sizes=deque(s.batch_sizes, maxlen=RECENT_BATCHES),
            )

    # -- dispatch side --------------------------------------------------- #

    def flush(self) -> int:
        """Drain the queue synchronously; returns the number of batches run."""
        ran = 0
        while True:
            batch = self._collect(block=False)
            if not batch:
                return ran
            self._run(batch)
            ran += 1

    def _collect(self, block: bool) -> List[Request]:
        """Pull up to ``max_batch_size`` requests, waiting out the latency
        budget only in blocking (worker) mode.

        The coalescing wait is capped by the earliest request deadline in the
        batch, so a request whose remaining budget is shorter than
        ``max_delay_ms`` dispatches before its budget expires instead of being
        missed by the engine's own wait.
        """
        cfg = self.config
        batch: List[Request] = []
        try:
            timeout = 0.05 if block else None
            batch.append(self._queue.get(block=block, timeout=timeout))
        except queue.Empty:
            return batch
        dispatch_at = time.monotonic() + cfg.max_delay_ms / 1000.0
        while len(batch) < cfg.max_batch_size:
            if block:
                cutoffs = [d - DISPATCH_SLACK_S for _, _, d in batch if d is not None]
                remaining = min([dispatch_at, *cutoffs]) - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    batch.append(self._queue.get(timeout=remaining))
                except queue.Empty:
                    break
            else:
                try:
                    batch.append(self._queue.get_nowait())
                except queue.Empty:
                    break
        return batch

    def _run(self, batch: List[Request]) -> None:
        """One vectorised forward over a coalesced batch.

        Requests whose deadline has already passed are rejected here — at the
        moment their micro-batch is scheduled — with
        :class:`~repro.errors.DeadlineExceeded`; the surviving requests in the
        same batch are served normally.  Requests whose future was cancelled
        while queued (e.g. an async client timing out) are skipped; claiming a
        future via ``set_running_or_notify_cancel`` also makes later
        ``set_result``/``set_exception`` calls race-free against cancellation.
        """
        now = time.monotonic()
        live: List[Tuple[np.ndarray, Future]] = []
        expired: List[Future] = []
        for x, future, deadline in batch:
            if not future.set_running_or_notify_cancel():
                continue  # cancelled while queued; nobody is waiting
            if deadline is not None and now >= deadline:
                expired.append(future)
            else:
                live.append((x, future))
        if expired:
            with self._lock:
                self.stats.deadline_misses += len(expired)
            for future in expired:
                future.set_exception(
                    DeadlineExceeded("request expired before its micro-batch was scheduled")
                )
        if not live:
            return
        try:
            stacked = np.stack([x for x, _ in live])
            results = np.asarray(self.model(stacked))
            if results.ndim == 0 or results.shape[0] != len(live):
                raise ValueError(
                    f"model returned shape {results.shape} for a batch of {len(live)}"
                )
        except Exception as exc:  # deliver the failure to every waiter
            for _, future in live:
                future.set_exception(exc)
            return
        for i, (_, future) in enumerate(live):
            future.set_result(results[i])
        with self._lock:
            self.stats.batches += 1
            self.stats.served += len(live)
            self.stats.batch_sizes.append(len(live))

    # -- worker lifecycle ------------------------------------------------- #

    @property
    def running(self) -> bool:
        """True while a background worker thread is draining the queue."""
        return self._worker is not None and self._worker.is_alive()

    def start(self) -> "BatchingEngine":
        """Start the background worker; returns self.

        Idempotent and thread-safe: a second ``start()`` while the worker
        runs is a no-op (two racing callers can never spawn two workers),
        and ``start()`` after ``stop()`` — or after a crashed worker
        thread — brings up a fresh worker.
        """
        with self._lifecycle:
            if self.running:
                return self
            self._stop.clear()
            self._worker = threading.Thread(
                target=self._loop, name="batching-engine", daemon=True
            )
            self._worker.start()
            return self

    def stop(self) -> None:
        """Stop the worker and drain any requests still queued.

        Idempotent and thread-safe: stopping an engine that never started,
        stopping twice (e.g. a double ``__exit__``), or stopping after the
        worker thread died all just drain the queue; concurrent callers
        serialise on the lifecycle lock rather than racing the join.
        """
        with self._lifecycle:
            self._stop.set()
            if self._worker is not None:
                self._worker.join()
                self._worker = None
            self.flush()

    def _loop(self) -> None:
        while not self._stop.is_set():
            batch = self._collect(block=True)
            if batch:
                self._run(batch)

    def __enter__(self) -> "BatchingEngine":
        """Start the worker for the duration of a ``with`` block."""
        return self.start()

    def __exit__(self, *exc_info) -> None:
        """Stop the worker and drain the queue."""
        self.stop()
