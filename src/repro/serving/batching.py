"""Micro-batching engine: coalesce single requests into vectorised forwards.

Serving traffic arrives one utterance at a time, but the packed kernels (and
NumPy generally) amortise per-call overhead across a batch.  The
:class:`BatchingEngine` accepts individual requests and coalesces them into
micro-batches bounded by a maximum size *and* a maximum latency budget: a
batch is dispatched as soon as it is full or its oldest request has waited
``max_delay_ms``.

Two dispatch modes share the same coalescing core:

* **worker mode** — ``start()`` (or the context manager) runs a background
  thread that drains the queue continuously, honouring the latency budget;
* **synchronous mode** — without a worker, :meth:`flush` drains the queue in
  the caller's thread, which is deterministic and what batch evaluation
  (e.g. streaming windows) uses.

Results are delivered through :class:`concurrent.futures.Future`, one per
request, in submission order within each batch.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class MicroBatchConfig:
    """Coalescing policy: dispatch at ``max_batch_size`` or ``max_delay_ms``."""

    max_batch_size: int = 32
    max_delay_ms: float = 2.0

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ConfigError("max_batch_size must be >= 1")
        if self.max_delay_ms < 0:
            raise ConfigError("max_delay_ms must be >= 0")


#: how many recent batch sizes EngineStats retains (bounded for long-lived engines)
RECENT_BATCHES = 4096


@dataclass
class EngineStats:
    """Counters the engine maintains across its lifetime.

    ``batch_sizes`` keeps only the most recent :data:`RECENT_BATCHES`
    dispatches so a worker serving traffic for days cannot grow it without
    bound; the ``requests``/``batches`` counters cover the full lifetime.
    """

    requests: int = 0
    batches: int = 0
    batch_sizes: Deque[int] = field(default_factory=lambda: deque(maxlen=RECENT_BATCHES))

    @property
    def mean_batch_size(self) -> float:
        """Lifetime average coalesced batch size (0.0 before any dispatch)."""
        return self.requests / self.batches if self.batches else 0.0


class BatchingEngine:
    """Coalesces single-example requests into micro-batched model calls.

    ``model`` maps an (N, …) stacked request batch to an (N, …) result
    batch — a :class:`~repro.serving.packed.PackedModel`, an
    :class:`~repro.deploy.interpreter.ImageInterpreter`, or any compatible
    callable.
    """

    def __init__(
        self,
        model: Callable[[np.ndarray], np.ndarray],
        config: Optional[MicroBatchConfig] = None,
    ) -> None:
        self.model = model
        self.config = config or MicroBatchConfig()
        self.stats = EngineStats()
        self._queue: "queue.Queue[Tuple[np.ndarray, Future]]" = queue.Queue()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._worker: Optional[threading.Thread] = None

    # -- request side ---------------------------------------------------- #

    def submit(self, x: np.ndarray) -> "Future[np.ndarray]":
        """Enqueue one example; the future resolves to its result row."""
        future: "Future[np.ndarray]" = Future()
        with self._lock:
            self.stats.requests += 1
        self._queue.put((np.asarray(x), future))
        return future

    def submit_many(self, xs: Sequence[np.ndarray]) -> List["Future[np.ndarray]"]:
        """Enqueue several examples, preserving order."""
        return [self.submit(x) for x in xs]

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Blocking single-request convenience: submit, (flush,) wait."""
        future = self.submit(x)
        if not self.running:
            self.flush()
        return future.result()

    # -- dispatch side --------------------------------------------------- #

    def flush(self) -> int:
        """Drain the queue synchronously; returns the number of batches run."""
        ran = 0
        while True:
            batch = self._collect(block=False)
            if not batch:
                return ran
            self._run(batch)
            ran += 1

    def _collect(self, block: bool) -> List[Tuple[np.ndarray, Future]]:
        """Pull up to ``max_batch_size`` requests, waiting out the latency
        budget only in blocking (worker) mode."""
        cfg = self.config
        batch: List[Tuple[np.ndarray, Future]] = []
        try:
            timeout = 0.05 if block else None
            batch.append(self._queue.get(block=block, timeout=timeout))
        except queue.Empty:
            return batch
        deadline = time.monotonic() + cfg.max_delay_ms / 1000.0
        while len(batch) < cfg.max_batch_size:
            if block:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    batch.append(self._queue.get(timeout=remaining))
                except queue.Empty:
                    break
            else:
                try:
                    batch.append(self._queue.get_nowait())
                except queue.Empty:
                    break
        return batch

    def _run(self, batch: List[Tuple[np.ndarray, Future]]) -> None:
        """One vectorised forward over a coalesced batch."""
        try:
            stacked = np.stack([x for x, _ in batch])
            results = np.asarray(self.model(stacked))
            if results.ndim == 0 or results.shape[0] != len(batch):
                raise ValueError(
                    f"model returned shape {results.shape} for a batch of {len(batch)}"
                )
        except Exception as exc:  # deliver the failure to every waiter
            for _, future in batch:
                future.set_exception(exc)
            return
        for i, (_, future) in enumerate(batch):
            future.set_result(results[i])
        with self._lock:
            self.stats.batches += 1
            self.stats.batch_sizes.append(len(batch))

    # -- worker lifecycle ------------------------------------------------- #

    @property
    def running(self) -> bool:
        """True while a background worker thread is draining the queue."""
        return self._worker is not None and self._worker.is_alive()

    def start(self) -> "BatchingEngine":
        """Start the background worker (idempotent); returns self."""
        if self.running:
            return self
        self._stop.clear()
        self._worker = threading.Thread(target=self._loop, name="batching-engine", daemon=True)
        self._worker.start()
        return self

    def stop(self) -> None:
        """Stop the worker and drain any requests still queued."""
        self._stop.set()
        if self._worker is not None:
            self._worker.join()
            self._worker = None
        self.flush()

    def _loop(self) -> None:
        while not self._stop.is_set():
            batch = self._collect(block=True)
            if batch:
                self._run(batch)

    def __enter__(self) -> "BatchingEngine":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
