"""Shared versioned catalog: one implementation of name → version → entry.

Before this module, :class:`~repro.serving.cluster.ClusterRouter` and
:class:`~repro.serving.registry.ModelRegistry` each reimplemented the same
versioned bookkeeping — ``register`` / ``remove`` / ``versions`` /
``current_version`` / ``set_current`` plus the ``"name@version"`` key
grammar — with independently drifting error contracts (the router raised
:class:`~repro.errors.RoutingError` for unknown names, the registry
:class:`~repro.errors.ConfigError` for the same condition).
:class:`VersionedCatalog` is the single implementation both now delegate
to; the payload type is opaque to the catalog (the registry stores
:class:`~repro.deploy.image.ModelImage` objects, the router stores
``(image_bytes, decoded_size)`` pairs).

**Error-mapping policy.**  The catalog raises exactly one exception type,
:class:`~repro.errors.CatalogError`, whose ``invalid_spec`` flag splits
failures into two families, and each owner translates them at its public
surface with :func:`catalog_errors`:

========================  =======================  ========================
failure family            ``ClusterRouter``        ``ModelRegistry``
========================  =======================  ========================
``invalid_spec=True``     ``ConfigError``          ``ConfigError``
(malformed request:
bad identifier,
``activate=False``
without ``version=``)
``invalid_spec=False``    ``RoutingError``         ``ConfigError``
(state-dependent:
unknown name/version,
removing the current
version)
========================  =======================  ========================

The split preserves both pre-existing public contracts: the router treats
catalog *state* misses as routing failures (they are — the request named a
model the cluster cannot route), while the in-process registry keeps its
historical everything-is-``ConfigError`` surface.

The catalog itself is **not** thread-safe: both owners already serialise
every catalog access under their own lock, and a second lock here would
only invite ordering bugs.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple, Type

from repro.errors import CatalogError, ConfigError

#: separator joining model name and version into a worker-side model key
KEY_SEPARATOR = "@"

#: version assigned when a model is registered without an explicit one
DEFAULT_VERSION = "v1"


def make_key(name: str, version: str) -> str:
    """Compose the worker-side model key for one ``(name, version)`` pair."""
    return f"{name}{KEY_SEPARATOR}{version}"


def split_key(key: str) -> Tuple[str, str]:
    """Inverse of :func:`make_key`: ``"name@version" → (name, version)``."""
    name, _, version = key.rpartition(KEY_SEPARATOR)
    return name, version


def validate_identifier(kind: str, value: str) -> str:
    """Reject names/versions that would make ``name@version`` keys ambiguous.

    Public helper (raises :class:`~repro.errors.ConfigError` directly);
    catalog-internal validation wraps the same rule in
    :class:`~repro.errors.CatalogError` so owners can apply their mapping.
    """
    if not value:
        raise ConfigError(f"{kind} must be a non-empty string")
    if KEY_SEPARATOR in value:
        raise ConfigError(
            f"{kind} {value!r} may not contain {KEY_SEPARATOR!r} "
            f"(reserved for model keys)"
        )
    return value


@contextmanager
def catalog_errors(
    spec_exc: Type[Exception], state_exc: Type[Exception]
) -> Iterator[None]:
    """Translate :class:`~repro.errors.CatalogError` at a public API surface.

    ``invalid_spec`` failures re-raise as ``spec_exc``, state-dependent ones
    as ``state_exc`` (see the module docstring's mapping table).  The
    original catalog error stays chained as ``__cause__``.
    """
    try:
        yield
    except CatalogError as exc:
        raised = spec_exc if exc.invalid_spec else state_exc
        raise raised(str(exc)) from exc


class VersionedCatalog:
    """Name → version → entry store with one *current* version per name.

    Entries are opaque payloads; the catalog owns only the versioned
    bookkeeping.  Mutators return what changed (the resolved version from
    :meth:`register`, the removed versions from :meth:`remove`) so owners
    can drive their side effects — dropping decoded plans, unloading
    placements — off the catalog's single source of truth instead of
    re-deriving it.
    """

    def __init__(self) -> None:
        #: name -> version -> entry, both levels in insertion order
        self._entries: Dict[str, Dict[str, Any]] = {}
        #: name -> the version ``version=None`` resolves to
        self._current: Dict[str, str] = {}

    # -- validation --------------------------------------------------------- #

    @staticmethod
    def _check(kind: str, value: str) -> None:
        """One identifier rule, surfaced as a spec-family catalog error."""
        try:
            validate_identifier(kind, value)
        except ConfigError as exc:
            raise CatalogError(str(exc), invalid_spec=True) from exc

    def check_spec(
        self, name: str, *, version: Optional[str] = None, activate: bool = True
    ) -> None:
        """Validate a :meth:`register` request without mutating anything.

        Owners with preconditions of their own (the router's byte-budget
        check) call this first so *every* validation failure surfaces before
        any side effect runs.  Raises ``invalid_spec`` catalog errors only.
        """
        self._check("model name", name)
        if version is not None:
            self._check("version", version)
        elif not activate:
            # version=None resolves to the CURRENT version — replacing the
            # live entry can never be "inactive"
            raise CatalogError(
                "activate=False stages a new version and needs an explicit "
                "version= (version=None replaces the current version)",
                invalid_spec=True,
            )

    # -- mutation ----------------------------------------------------------- #

    def register(
        self,
        name: str,
        entry: Any,
        *,
        version: Optional[str] = None,
        activate: bool = True,
    ) -> str:
        """Add or replace the entry under ``(name, version)``.

        ``version=None`` replaces the current version (or registers
        :data:`DEFAULT_VERSION` for a new name).  With ``activate=True``
        (default) the registered version becomes current;
        ``activate=False`` stages it without touching resolution and
        requires an explicit ``version=``.  A brand-new name's first
        version becomes current regardless of ``activate`` — a registered
        name always has a current version.  Returns the resolved version so
        the owner can invalidate whatever it cached under it.
        """
        self.check_spec(name, version=version, activate=activate)
        version = version or self._current.get(name, DEFAULT_VERSION)
        self._entries.setdefault(name, {})[version] = entry
        if activate or name not in self._current:
            self._current[name] = version
        return version

    def remove(self, name: str, *, version: Optional[str] = None) -> List[str]:
        """Forget a name (or one version of it); returns the removed versions.

        ``version=None`` removes every version; naming one removes just
        that version — removing the *current* version while other versions
        exist is rejected (:meth:`set_current` first).  Unknown
        names/versions raise state-family catalog errors.
        """
        versions = self._entries.get(name)
        if not versions:
            raise CatalogError(f"unknown model {name!r}")
        if version is None:
            doomed = list(versions)
        elif version not in versions:
            raise CatalogError(f"unknown version {version!r} of model {name!r}")
        elif version == self._current[name] and len(versions) > 1:
            raise CatalogError(
                f"version {version!r} is current for model {name!r}; "
                f"make another version current (set_current) before removing it"
            )
        else:
            doomed = [version]
        for doomed_version in doomed:
            del versions[doomed_version]
        if not versions:
            del self._entries[name]
            self._current.pop(name, None)
        return doomed

    def set_current(self, name: str, version: str) -> None:
        """Atomically flip which version ``version=None`` resolves to."""
        if version not in self._entries.get(name, {}):
            raise CatalogError(f"unknown version {version!r} of model {name!r}")
        self._current[name] = version

    # -- resolution --------------------------------------------------------- #

    def resolve_name(self, name: Optional[str]) -> str:
        """Resolve a possibly-omitted model name.

        ``None`` resolves when exactly one name is registered (a lone model
        needs no name); otherwise unknown/ambiguous names raise
        state-family catalog errors.
        """
        if name is None:
            if len(self._entries) == 1:
                return next(iter(self._entries))
            if not self._entries:
                raise CatalogError("no models registered")
            raise CatalogError(
                f"model name required: catalog serves {sorted(self._entries)}"
            )
        if name not in self._entries:
            known = ", ".join(sorted(self._entries)) or "<empty>"
            raise CatalogError(f"unknown model {name!r}; known: {known}")
        return name

    def resolve_version(self, name: str, version: Optional[str] = None) -> str:
        """Resolve ``version`` for a registered ``name`` (``None`` = current)."""
        if name not in self._entries:
            known = ", ".join(sorted(self._entries)) or "<empty>"
            raise CatalogError(f"unknown model {name!r}; known: {known}")
        if version is None:
            return self._current[name]
        if version not in self._entries[name]:
            known = ", ".join(sorted(self._entries[name]))
            raise CatalogError(
                f"unknown version {version!r} of model {name!r}; known: {known}"
            )
        return version

    # -- lookup ------------------------------------------------------------- #

    def get(self, name: str, version: Optional[str] = None) -> Any:
        """The entry under ``(name, version)`` (``None`` = current); raises
        state-family catalog errors for unknown names/versions."""
        return self._entries[name][self.resolve_version(name, version)]

    def find(self, name: str, version: str) -> Optional[Any]:
        """The entry under ``(name, version)``, or ``None`` when absent
        (never raises — the identity-check lookup owners use mid-decode)."""
        return self._entries.get(name, {}).get(version)

    def names(self) -> List[str]:
        """All registered names, sorted."""
        return sorted(self._entries)

    def versions(self, name: str) -> List[str]:
        """Registered versions of ``name``, sorted (empty for unknown names)."""
        return sorted(self._entries.get(name, {}))

    def items(self, name: str) -> List[Tuple[str, Any]]:
        """``(version, entry)`` pairs of one name, registration order."""
        return list(self._entries.get(name, {}).items())

    def current_version(self, name: str) -> str:
        """The version ``version=None`` resolves to for ``name``."""
        version = self._current.get(name)
        if version is None:
            raise CatalogError(f"unknown model {name!r}")
        return version

    def has(self, name: str) -> bool:
        """True when ``name`` is registered (any version)."""
        return name in self._entries

    def has_version(self, name: str, version: str) -> bool:
        """True when ``(name, version)`` is registered."""
        return version in self._entries.get(name, {})

    def name_count(self) -> int:
        """Number of registered names."""
        return len(self._entries)

    def entry_count(self) -> int:
        """Number of registered entries across all names and versions."""
        return sum(len(v) for v in self._entries.values())

    def __contains__(self, name: str) -> bool:
        """True when ``name`` is registered (any version)."""
        return name in self._entries
