"""Async deadline-aware serving front-end over the batching engine.

:class:`AsyncServingFrontend` is the traffic-shaping layer between many
concurrent clients and one :class:`~repro.serving.batching.BatchingEngine`:

* **asyncio bridge** — ``await frontend.predict(x)`` submits onto the
  engine's queue and awaits the engine-side
  :class:`concurrent.futures.Future` from the event loop, so thousands of
  in-flight requests cost one coroutine each, not one thread each;
* **per-request deadlines** — ``predict(x, deadline_s=0.05)`` gives the
  request a latency budget; if it is still queued when its micro-batch is
  scheduled after the budget elapsed, the await raises
  :class:`~repro.errors.DeadlineExceeded` and the model never runs it;
* **bounded admission (backpressure)** — at most ``max_pending`` admitted
  requests may be unresolved at once; beyond that, ``predict`` sheds the
  request immediately with :class:`~repro.errors.AdmissionError` instead of
  letting the queue (and every queued request's latency) grow without bound.

The front-end drives the engine in worker mode (``async with frontend:``
starts and stops the background thread).  Without a worker it falls back to
the engine's deterministic synchronous ``flush()`` — which is what unit
tests and single-shot scripts want.  All counters land in the shared
:class:`~repro.serving.batching.EngineStats` (``shed``,
``deadline_misses``, …).
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import Future
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.errors import AdmissionError, ConfigError
from repro.serving.batching import BatchingEngine, EngineStats, MicroBatchConfig

#: sentinel distinguishing "deadline_s not passed" (use the frontend default)
#: from an explicit ``deadline_s=None`` ("this request has no deadline").
_UNSET = object()


class AsyncServingFrontend:
    """Asyncio front door to a :class:`BatchingEngine`.

    Parameters
    ----------
    engine:
        The engine to wrap, or any batch-callable model — a bare model is
        wrapped in a fresh ``BatchingEngine(model, config)``.
    config:
        Micro-batch policy for a freshly wrapped model; rejected when an
        already-built engine is passed (configure that engine directly).
    max_pending:
        Admission bound: the maximum number of admitted-but-unresolved
        requests.  Submissions beyond it raise
        :class:`~repro.errors.AdmissionError` and count as ``stats.shed``.
    default_deadline_s:
        Latency budget applied when ``predict`` is called without an
        explicit ``deadline_s`` (``None`` = no deadline by default).
    """

    def __init__(
        self,
        engine: Union[BatchingEngine, Callable[[np.ndarray], np.ndarray]],
        *,
        config: Optional[MicroBatchConfig] = None,
        max_pending: int = 256,
        default_deadline_s: Optional[float] = None,
    ) -> None:
        if isinstance(engine, BatchingEngine):
            if config is not None:
                raise ConfigError("pass config only when wrapping a bare model")
            self.engine = engine
        else:
            self.engine = BatchingEngine(engine, config)
        if max_pending < 1:
            raise ConfigError("max_pending must be >= 1")
        if default_deadline_s is not None and default_deadline_s <= 0:
            raise ConfigError("default_deadline_s must be positive (or None)")
        self.max_pending = max_pending
        self.default_deadline_s = default_deadline_s
        self._pending = 0
        self._lock = threading.Lock()  # done-callbacks fire on the worker thread

    # -- introspection ---------------------------------------------------- #

    @property
    def stats(self) -> EngineStats:
        """The wrapped engine's lifetime counters (shared object)."""
        return self.engine.stats

    @property
    def pending(self) -> int:
        """Requests admitted but not yet resolved (served, failed, or expired)."""
        with self._lock:
            return self._pending

    # -- admission -------------------------------------------------------- #

    def _admit(self, x: np.ndarray, deadline_s: Optional[float]) -> "Future[np.ndarray]":
        """Admission-check one request and enqueue it on the engine."""
        with self._lock:
            if self._pending >= self.max_pending:
                self.engine.record_shed()
                raise AdmissionError(
                    f"admission queue full ({self.max_pending} pending); request shed"
                )
            self._pending += 1
        future = self.engine.submit(x, deadline_s=deadline_s)
        future.add_done_callback(self._release)
        return future

    def _release(self, _future: "Future[np.ndarray]") -> None:
        """Done-callback: free the admission slot of a resolved request."""
        with self._lock:
            self._pending -= 1

    # -- request side ----------------------------------------------------- #

    async def predict(self, x: np.ndarray, *, deadline_s=_UNSET) -> np.ndarray:
        """Serve one example; awaits its result row.

        ``deadline_s`` overrides ``default_deadline_s`` for this request; an
        explicit ``deadline_s=None`` opts this request out of the default
        (no deadline at all).  Raises
        :class:`~repro.errors.AdmissionError` immediately when the admission
        queue is full, and :class:`~repro.errors.DeadlineExceeded` when the
        budget expires before the micro-batch is scheduled.
        """
        if deadline_s is _UNSET:
            deadline_s = self.default_deadline_s
        future = self._admit(np.asarray(x), deadline_s)
        if not self.engine.running:
            self.engine.flush()
        return await asyncio.wrap_future(future)

    async def predict_many(
        self, xs: Sequence[np.ndarray], *, deadline_s=_UNSET
    ) -> List[np.ndarray]:
        """Serve several examples concurrently, preserving order.

        All requests are admitted before any result is awaited, so without a
        running worker a single deterministic ``flush()`` coalesces them into
        micro-batches (the evaluation path).  Admission is all-or-nothing: if
        any request is shed, the already-admitted ones are cancelled and the
        :class:`~repro.errors.AdmissionError` propagates.  Cancellation is
        best-effort — a request the worker already claimed still executes
        (its result is discarded, and its slot releases when it resolves).
        ``deadline_s`` semantics (including the explicit-``None`` opt-out) and
        deadline failures are as in :meth:`predict`.
        """
        if deadline_s is _UNSET:
            deadline_s = self.default_deadline_s
        futures: List["Future[np.ndarray]"] = []
        try:
            for x in xs:
                futures.append(self._admit(np.asarray(x), deadline_s))
        except BaseException:
            # Don't strand admitted-but-unawaited requests in the engine
            # queue: cancel them so their slots release now (cancellation
            # fires the done-callback) instead of wedging the frontend, and
            # flush so the cancelled entries drain rather than lingering
            # until unrelated later traffic.
            for future in futures:
                future.cancel()
            if not self.engine.running:
                self.engine.flush()
            raise
        if not self.engine.running:
            self.engine.flush()
        return list(await asyncio.gather(*[asyncio.wrap_future(f) for f in futures]))

    def serve(self, xs: Sequence[np.ndarray], *, deadline_s=_UNSET) -> List[np.ndarray]:
        """Synchronous bridge: serve all of ``xs`` on a private event loop.

        Batches longer than ``max_pending`` are served in admission-bound
        chunks, so a synchronous caller (e.g.
        :class:`~repro.evaluation.streaming.StreamingDetector`) can hand over
        arbitrarily long work without being shed.  Must not be called from
        inside a running event loop.
        """
        xs = list(xs)

        async def run() -> List[np.ndarray]:
            rows: List[np.ndarray] = []
            for start in range(0, len(xs), self.max_pending):
                chunk = xs[start : start + self.max_pending]
                rows.extend(await self.predict_many(chunk, deadline_s=deadline_s))
            return rows

        return asyncio.run(run())

    # -- lifecycle -------------------------------------------------------- #

    def start(self) -> "AsyncServingFrontend":
        """Start the engine's background worker (idempotent); returns self."""
        self.engine.start()
        return self

    def stop(self) -> None:
        """Stop the worker and drain anything still queued."""
        self.engine.stop()

    async def __aenter__(self) -> "AsyncServingFrontend":
        """Enter worker mode for the duration of an ``async with`` block."""
        return self.start()

    async def __aexit__(self, *exc_info) -> None:
        """Stop the worker; pending requests are drained synchronously."""
        self.stop()
