"""Async deadline-aware serving front-end over the batching engine or cluster.

:class:`AsyncServingFrontend` is the traffic-shaping layer between many
concurrent clients and the serving backend — either one
:class:`~repro.serving.batching.BatchingEngine` or a whole
:class:`~repro.serving.cluster.ClusterRouter`:

* **asyncio bridge** — ``await frontend.predict(x)`` submits onto the
  backend and awaits the backend-side
  :class:`concurrent.futures.Future` from the event loop, so thousands of
  in-flight requests cost one coroutine each, not one thread each;
* **per-request deadlines** — ``predict(x, deadline_s=0.05)`` gives the
  request a latency budget; if it is still queued when its micro-batch is
  scheduled after the budget elapsed, the await raises
  :class:`~repro.errors.DeadlineExceeded` and the model never runs it;
* **bounded admission (backpressure)** — at most ``max_pending`` admitted
  requests may be unresolved at once; beyond that, ``predict`` sheds the
  request immediately with :class:`~repro.errors.AdmissionError` instead of
  letting the queue (and every queued request's latency) grow without bound.

Engine-backed, the front-end drives the engine in worker mode (``async with
frontend:`` starts and stops the background thread); without a worker it
falls back to the engine's deterministic synchronous ``flush()`` — which is
what unit tests and single-shot scripts want.  All counters land in the
shared :class:`~repro.serving.batching.EngineStats` (``shed``,
``deadline_misses``, …); read them race-free via :meth:`snapshot`.

Cluster-backed, ``predict(x, model="kws-en", version=None,
priority=Priority.HIGH, deadline_s=...)`` routes through the cluster:
admission is delegated to the router's priority-watermark policy
(low-priority traffic sheds first, limits scaled by the model's replica
count), the resolved ``(model, version)`` picks the replica via the
placement policy, and the worker's engine coalesces and deadline-checks as
usual.  ``await deploy(name, image, version)`` / ``await rollback(name)``
run versioned rolling deploys (:mod:`repro.serving.placement`) off the
event loop, and ``async with frontend:`` starts and stops the worker
processes.
"""

from __future__ import annotations

import asyncio
import functools
import threading
from concurrent.futures import Future
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.errors import AdmissionError, ConfigError
from repro.serving.batching import BatchingEngine, EngineStats, MicroBatchConfig
from repro.serving.cluster import ClusterRouter, ClusterStats
from repro.serving.placement import DeployManager, DeployReport
from repro.serving.priority import Priority
from repro.serving.resilience import ResilienceStats
from repro.serving.telemetry import MetricsRegistry, TelemetryServer

#: sentinel distinguishing "deadline_s not passed" (use the frontend default)
#: from an explicit ``deadline_s=None`` ("this request has no deadline").
_UNSET = object()


class AsyncServingFrontend:
    """Asyncio front door to a :class:`BatchingEngine` or :class:`ClusterRouter`.

    Parameters
    ----------
    engine:
        The backend: an engine, a :class:`ClusterRouter`, or any
        batch-callable model — a bare model is wrapped in a fresh
        ``BatchingEngine(model, config)``.
    config:
        Micro-batch policy for a freshly wrapped model; rejected when an
        already-built engine or a cluster is passed (configure those
        directly).
    max_pending:
        Admission bound for the engine path: the maximum number of
        admitted-but-unresolved requests.  Submissions beyond it raise
        :class:`~repro.errors.AdmissionError` and count as ``stats.shed``.
        Cluster-backed, admission is delegated to the router's
        :class:`~repro.serving.priority.PriorityPolicy` and this bound is
        rejected (set ``policy.max_pending`` on the router instead).
    default_deadline_s:
        Latency budget applied when ``predict`` is called without an
        explicit ``deadline_s`` (``None`` = no deadline by default).
    default_priority:
        Priority class applied when ``predict`` is called without an
        explicit ``priority`` (cluster path only).
    """

    def __init__(
        self,
        engine: Union[BatchingEngine, ClusterRouter, Callable[[np.ndarray], np.ndarray]],
        *,
        config: Optional[MicroBatchConfig] = None,
        max_pending: Optional[int] = None,
        default_deadline_s: Optional[float] = None,
        default_priority: Priority = Priority.NORMAL,
    ) -> None:
        self.cluster: Optional[ClusterRouter] = None
        if isinstance(engine, ClusterRouter):
            if config is not None:
                raise ConfigError("pass config only when wrapping a bare model")
            if max_pending is not None:
                raise ConfigError(
                    "cluster admission is governed by the router's PriorityPolicy; "
                    "set policy.max_pending there instead of max_pending here"
                )
            self.cluster = engine
            self.engine: Optional[BatchingEngine] = None
        elif isinstance(engine, BatchingEngine):
            if config is not None:
                raise ConfigError("pass config only when wrapping a bare model")
            self.engine = engine
        else:
            self.engine = BatchingEngine(engine, config)
        if max_pending is None:
            max_pending = 256
        if max_pending < 1:
            raise ConfigError("max_pending must be >= 1")
        if default_deadline_s is not None and default_deadline_s <= 0:
            raise ConfigError("default_deadline_s must be positive (or None)")
        self.max_pending = max_pending
        self.default_deadline_s = default_deadline_s
        self.default_priority = Priority(default_priority)
        self._pending = 0
        self._lock = threading.Lock()  # done-callbacks fire on the worker thread
        # built eagerly so every caller shares ONE manager (whose lock
        # serialises deploys) — lazy creation could race two threads into
        # two managers with independent locks
        self._deploy_manager: Optional[DeployManager] = (
            DeployManager(self.cluster) if self.cluster is not None else None
        )
        self._metrics_server: Optional[TelemetryServer] = None

    # -- introspection ---------------------------------------------------- #

    @property
    def stats(self) -> Union[EngineStats, ClusterStats]:
        """The backend's counters: the engine's live ``EngineStats`` (shared
        object), or a fresh :class:`~repro.serving.cluster.ClusterStats`
        snapshot when cluster-backed — including per-priority-class queue
        depth (``queue_depth_by_priority``), completion-latency percentiles
        (``latency_by_priority``) and data-plane counters (``transport``)."""
        if self.cluster is not None:
            return self.cluster.snapshot()
        return self.engine.stats

    def snapshot(self) -> Union[EngineStats, ClusterStats]:
        """Race-free counters copy: the engine's locked
        :meth:`~repro.serving.batching.BatchingEngine.snapshot`, or the
        cluster's :meth:`~repro.serving.cluster.ClusterRouter.snapshot` —
        the unified stats accessor across the serving layer."""
        if self.cluster is not None:
            return self.cluster.snapshot()
        return self.engine.snapshot()

    @property
    def pending(self) -> int:
        """Requests admitted but not yet resolved (served, failed, or expired)."""
        if self.cluster is not None:
            return self.cluster.pending
        with self._lock:
            return self._pending

    def resilience(self) -> "ResilienceStats":
        """The cluster's retry/hedge/breaker/brownout rollup
        (:class:`~repro.serving.resilience.ResilienceStats`) — the
        frontend-level view of how much fault masking the resilience layer
        is doing underneath ``await predict(...)``.  Cluster-backed only:
        a single-engine frontend has no replicas to retry against.
        """
        if self.cluster is None:
            raise ConfigError(
                "resilience stats require a cluster-backed frontend "
                "(AsyncServingFrontend(ClusterRouter(...)))"
            )
        return self.cluster.snapshot().resilience

    # -- admission -------------------------------------------------------- #

    def _admit(
        self,
        x: np.ndarray,
        deadline_s: Optional[float],
        model: Optional[str],
        version: Optional[str],
        priority: Optional[Priority],
    ) -> "Future[np.ndarray]":
        """Admission-check one request and enqueue it on the backend."""
        if self.cluster is not None:
            return self.cluster.submit(
                x,
                model=model,
                version=version,
                priority=self.default_priority if priority is None else Priority(priority),
                deadline_s=deadline_s,
            )
        if model is not None or version is not None or priority is not None:
            raise ConfigError(
                "model=, version= and priority= require a cluster-backed frontend "
                "(AsyncServingFrontend(ClusterRouter(...)))"
            )
        with self._lock:
            if self._pending >= self.max_pending:
                self.engine.record_shed()
                raise AdmissionError(
                    f"admission queue full ({self.max_pending} pending); request shed"
                )
            self._pending += 1
        future = self.engine.submit(x, deadline_s=deadline_s)
        future.add_done_callback(self._release)
        return future

    def _release(self, _future: "Future[np.ndarray]") -> None:
        """Done-callback: free the admission slot of a resolved request."""
        with self._lock:
            self._pending -= 1

    def _chunk_size(self, priority: Optional[Priority]) -> int:
        """How many requests :meth:`serve` may keep in flight at once
        without risking an admission shed."""
        if self.cluster is not None:
            effective = self.default_priority if priority is None else Priority(priority)
            return self.cluster.policy.admit_limit(effective)
        return self.max_pending

    def _maybe_flush(self) -> None:
        """Engine path only: without a worker, dispatch synchronously."""
        if self.engine is not None and not self.engine.running:
            self.engine.flush()

    # -- request side ----------------------------------------------------- #

    async def predict(
        self,
        x: np.ndarray,
        *,
        deadline_s=_UNSET,
        model: Optional[str] = None,
        version: Optional[str] = None,
        priority: Optional[Priority] = None,
    ) -> np.ndarray:
        """Serve one example; awaits its result row.

        ``deadline_s`` overrides ``default_deadline_s`` for this request; an
        explicit ``deadline_s=None`` opts this request out of the default
        (no deadline at all).  ``model`` selects the named model,
        ``version`` pins one of its versions (``None`` = the current one,
        which is what a rolling deploy flips), and ``priority`` the
        admission class — all three cluster-backed only.  Raises
        :class:`~repro.errors.AdmissionError` immediately when admission is
        refused, and :class:`~repro.errors.DeadlineExceeded` when the budget
        expires before the micro-batch is scheduled.
        """
        if deadline_s is _UNSET:
            deadline_s = self.default_deadline_s
        future = self._admit(np.asarray(x), deadline_s, model, version, priority)
        self._maybe_flush()
        return await asyncio.wrap_future(future)

    async def predict_many(
        self,
        xs: Sequence[np.ndarray],
        *,
        deadline_s=_UNSET,
        model: Optional[str] = None,
        version: Optional[str] = None,
        priority: Optional[Priority] = None,
    ) -> List[np.ndarray]:
        """Serve several examples concurrently, preserving order.

        All requests are admitted before any result is awaited, so without a
        running worker a single deterministic ``flush()`` coalesces them into
        micro-batches (the evaluation path).  Admission is all-or-nothing: if
        any request is shed, the already-admitted ones are cancelled and the
        :class:`~repro.errors.AdmissionError` propagates.  Cancellation is
        best-effort — a request the worker already claimed still executes
        (its result is discarded, and its slot releases when it resolves).
        ``deadline_s`` semantics (including the explicit-``None`` opt-out) and
        deadline failures are as in :meth:`predict`.

        Cluster-backed, the whole batch goes through
        :meth:`~repro.serving.cluster.ClusterRouter.submit_many`: admission
        is atomic at the router (nothing to cancel on a shed) and the burst
        crosses the worker pipe as **one** control frame with payloads on
        the shared-memory plane — the cheap path for large batch shapes.
        """
        if deadline_s is _UNSET:
            deadline_s = self.default_deadline_s
        if self.cluster is not None:
            futures = self.cluster.submit_many(
                [np.asarray(x) for x in xs],
                model=model,
                version=version,
                priority=self.default_priority if priority is None else Priority(priority),
                deadline_s=deadline_s,
            )
            return list(await asyncio.gather(*[asyncio.wrap_future(f) for f in futures]))
        futures: List["Future[np.ndarray]"] = []
        try:
            for x in xs:
                futures.append(self._admit(np.asarray(x), deadline_s, model, version, priority))
        except BaseException:
            # Don't strand admitted-but-unawaited requests in the backend
            # queue: cancel them so their slots release now (cancellation
            # fires the done-callback) instead of wedging the frontend, and
            # flush so the cancelled entries drain rather than lingering
            # until unrelated later traffic.
            for future in futures:
                future.cancel()
            self._maybe_flush()
            raise
        self._maybe_flush()
        return list(await asyncio.gather(*[asyncio.wrap_future(f) for f in futures]))

    def serve(
        self,
        xs: Sequence[np.ndarray],
        *,
        deadline_s=_UNSET,
        model: Optional[str] = None,
        version: Optional[str] = None,
        priority: Optional[Priority] = None,
    ) -> List[np.ndarray]:
        """Synchronous bridge: serve all of ``xs`` on a private event loop.

        Batches longer than the admission bound (``max_pending``, or the
        cluster's per-class limit) are served in bounded chunks, so a
        synchronous caller (e.g.
        :class:`~repro.evaluation.streaming.StreamingDetector`) never sheds
        *itself* by submitting more than the backend admits.  On a cluster
        the pending budget is shared with live traffic, so a chunk can still
        be shed by concurrent load — ``predict_many``'s all-or-nothing
        :class:`~repro.errors.AdmissionError` then propagates; callers
        sharing a busy cluster should retry or run the evaluation at
        ``Priority.LOW`` off-peak.  Must not be called from inside a running
        event loop.
        """
        xs = list(xs)
        chunk_size = self._chunk_size(priority)

        async def run() -> List[np.ndarray]:
            rows: List[np.ndarray] = []
            for start in range(0, len(xs), chunk_size):
                chunk = xs[start : start + chunk_size]
                rows.extend(
                    await self.predict_many(
                        chunk,
                        deadline_s=deadline_s,
                        model=model,
                        version=version,
                        priority=priority,
                    )
                )
            return rows

        return asyncio.run(run())

    # -- rolling deploys --------------------------------------------------- #

    def _deploys(self) -> DeployManager:
        """The frontend's deploy manager (cluster-backed frontends only)."""
        if self._deploy_manager is None:
            raise ConfigError(
                "deploy()/rollback() require a cluster-backed frontend "
                "(AsyncServingFrontend(ClusterRouter(...)))"
            )
        return self._deploy_manager

    async def deploy(
        self, name: str, image, version: str, *, canary: Optional[object] = None
    ) -> DeployReport:
        """Rolling-deploy ``name`` to a new ``version`` without shedding.

        Runs the blocking warm → flip → drain → unload sequence
        (:class:`~repro.serving.placement.DeployManager`) on a worker
        thread so the event loop keeps serving traffic throughout — which
        is the point of a *rolling* deploy.  With
        ``canary=CanaryPolicy(...)`` the flip is earned instead of
        unconditional: the new version serves a traffic fraction first and
        auto-promotes or auto-rolls-back on its observed SLOs (see
        :class:`~repro.serving.control.CanaryController`; concurrent
        ``await predict(...)`` calls keep flowing throughout — they *are*
        the canary's decision traffic).  Returns the
        :class:`~repro.serving.placement.DeployReport`.
        """
        return await asyncio.to_thread(
            functools.partial(self._deploys().deploy, canary=canary),
            name,
            image,
            version,
        )

    async def rollback(self, name: str) -> DeployReport:
        """Roll ``name`` back to the previously deployed version."""
        return await asyncio.to_thread(self._deploys().rollback, name)

    # -- observability ----------------------------------------------------- #

    def serve_metrics(
        self, *, host: str = "127.0.0.1", port: int = 0
    ) -> "tuple[str, int]":
        """Expose ``/metrics`` + ``/healthz`` over HTTP; returns (host, port).

        Serves the cluster router's telemetry registry when cluster-backed
        (the ``cluster``/``shm``/``placement`` namespaces plus trace
        counters), else the process-wide registry.  ``port=0`` binds an
        ephemeral port.  Idempotent — a second call returns the already
        bound address; :meth:`stop` shuts the endpoint down with the
        backend.
        """
        if self._metrics_server is None:
            registry: Optional[MetricsRegistry] = (
                self.cluster.telemetry if self.cluster is not None else None
            )
            self._metrics_server = TelemetryServer(registry, host=host, port=port).start()
        return self._metrics_server.address

    # -- lifecycle -------------------------------------------------------- #

    def start(self) -> "AsyncServingFrontend":
        """Start the backend (engine worker thread, or the worker pool's
        processes); idempotent; returns self."""
        if self.cluster is not None:
            self.cluster.start()
        else:
            self.engine.start()
        return self

    def stop(self) -> None:
        """Stop the backend (draining anything queued) and the metrics endpoint."""
        server, self._metrics_server = self._metrics_server, None
        if server is not None:
            server.stop()
        if self.cluster is not None:
            self.cluster.stop()
        else:
            self.engine.stop()

    async def __aenter__(self) -> "AsyncServingFrontend":
        """Enter worker mode for the duration of an ``async with`` block."""
        return self.start()

    async def __aexit__(self, *exc_info) -> None:
        """Stop the backend; pending requests are drained first."""
        self.stop()
