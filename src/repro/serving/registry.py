"""Multi-model serving registry with LRU eviction of decoded plans.

A serving process holds many named model images (per keyword set, per
device tier, per A/B arm).  The packed images themselves are tiny — 2 bits
per weight — so the registry keeps **all** registered images resident, but
the decoded bit-plane plans are several times larger and are built lazily
and capped: at most ``capacity`` :class:`~repro.serving.packed.PackedModel`
instances stay decoded, evicting the least-recently-used plan when a cold
model is requested.  Evicted models re-decode transparently on next use.

All operations are thread-safe; the returned :class:`PackedModel` objects
are immutable and may be used concurrently with registry mutation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Union

import numpy as np

from repro.deploy.image import ModelImage
from repro.errors import ConfigError
from repro.serving.packed import PackedModel


@dataclass
class RegistryStats:
    """Decode-cache behaviour counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0


class ModelRegistry:
    """Name → model image store with a bounded decoded-plan cache."""

    def __init__(self, capacity: int = 4) -> None:
        if capacity < 1:
            raise ConfigError("registry capacity must be >= 1")
        self.capacity = capacity
        self.stats = RegistryStats()
        self._images: "OrderedDict[str, ModelImage]" = OrderedDict()
        self._decoded: "OrderedDict[str, PackedModel]" = OrderedDict()
        self._lock = threading.RLock()

    def register(self, name: str, image: Union[ModelImage, bytes]) -> None:
        """Add or replace a named image; replacing drops any stale plan."""
        if isinstance(image, (bytes, bytearray)):
            image = ModelImage.from_bytes(bytes(image))
        with self._lock:
            self._images[name] = image
            self._decoded.pop(name, None)

    def remove(self, name: str) -> None:
        """Forget a model and its decoded plan; unknown names raise."""
        with self._lock:
            if name not in self._images:
                raise ConfigError(f"unknown model {name!r}")
            del self._images[name]
            self._decoded.pop(name, None)

    def get(self, name: str) -> PackedModel:
        """Fetch the decoded runtime for ``name``, decoding (and possibly
        evicting the LRU plan) on a cache miss.

        The decode itself runs outside the lock so a cold model never
        blocks concurrent hits on hot ones; if two threads race the same
        cold model, the first plan to land in the cache wins.
        """
        with self._lock:
            image = self._images.get(name)
            if image is None:
                known = ", ".join(sorted(self._images)) or "<empty>"
                raise ConfigError(f"unknown model {name!r}; known: {known}")
            model = self._decoded.get(name)
            if model is not None:
                self.stats.hits += 1
                self._decoded.move_to_end(name)
                return model
            self.stats.misses += 1
        model = PackedModel(image, cache=True)
        with self._lock:
            resident = self._decoded.get(name)
            if resident is not None:  # another thread decoded it meanwhile
                self._decoded.move_to_end(name)
                return resident
            if self._images.get(name) is not image:  # re-registered/removed mid-decode
                return model
            self._decoded[name] = model
            while len(self._decoded) > self.capacity:
                self._decoded.popitem(last=False)
                self.stats.evictions += 1
            return model

    def predict(self, name: str, x: np.ndarray) -> np.ndarray:
        """Run a batch through the named model."""
        return self.get(name)(x)

    def names(self) -> List[str]:
        """All registered model names, sorted."""
        with self._lock:
            return sorted(self._images)

    def decoded_names(self) -> List[str]:
        """Models currently resident in decoded form, LRU first."""
        with self._lock:
            return list(self._decoded)

    def decoded_bytes(self) -> int:
        """Total resident size of all decoded plans."""
        with self._lock:
            return sum(m.decoded_bytes() for m in self._decoded.values())

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._images

    def __len__(self) -> int:
        with self._lock:
            return len(self._images)
