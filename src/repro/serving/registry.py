"""Multi-model serving registry with byte-budgeted eviction of decoded plans.

A serving process holds many named model images (per keyword set, per
device tier, per A/B arm).  The packed images themselves are tiny — 2 bits
per weight — so the registry keeps **all** registered images resident, but
the decoded bit-plane plans are several times larger, so they are built
lazily and admitted against a **byte budget**: ``capacity_bytes`` bounds the
total :meth:`~repro.serving.packed.PackedModel.decoded_bytes` of resident
plans, evicting least-recently-used plans when a cold decode would overflow
it.  Evicted models re-decode transparently on next use; a model whose plan
alone exceeds the budget is still served, just never cached.

Registrations are **version-aware**: every image lives under a ``(name,
version)`` key (``register(name, image, version="v2")``), one version per
name is *current* (what ``get(name)`` resolves to), and byte accounting is
available per version via :meth:`ModelRegistry.resident_by_version` — the
in-process mirror of the cluster's versioned placements, sharing the same
byte budget semantics.  ``register(name, image)`` without a version keeps
the pre-versioning behaviour: it replaces the current version (or registers
``v1`` for a new name).

The original count-based bound (``ModelRegistry(capacity=N)`` keeping at
most N decoded plans) survives as a deprecated alias.

All operations are thread-safe; the returned :class:`PackedModel` objects
are immutable and may be used concurrently with registry mutation.
"""

from __future__ import annotations

import threading
import warnings
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.deploy.image import ModelImage
from repro.errors import ConfigError
from repro.serving.catalog import VersionedCatalog, catalog_errors, make_key
from repro.serving.packed import PackedModel
from repro.serving.telemetry import get_registry

#: internal registry key: (model name, version)
ModelKey = Tuple[str, str]

#: default decoded-plan budget when neither bound is given (64 MiB)
DEFAULT_CAPACITY_BYTES = 64 * 2**20


@dataclass
class RegistryStats:
    """Decode-cache behaviour counters.

    ``resident_bytes`` tracks the current total decoded-plan footprint (it
    never exceeds ``capacity_bytes`` in byte-budget mode) and
    ``peak_resident_bytes`` its lifetime high-water mark.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    resident_bytes: int = 0
    peak_resident_bytes: int = 0


class ModelRegistry:
    """Name → model image store with a byte-budgeted decoded-plan cache.

    Parameters
    ----------
    capacity:
        **Deprecated** count bound: keep at most this many decoded plans.
        Retained as an alias for pre-byte-budget callers; emits a
        :class:`DeprecationWarning`.
    capacity_bytes:
        Byte budget: total ``decoded_bytes()`` of resident plans never
        exceeds this.  The default (when neither argument is given) is
        :data:`DEFAULT_CAPACITY_BYTES`.
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        *,
        capacity_bytes: Optional[int] = None,
    ) -> None:
        if capacity is not None and capacity_bytes is not None:
            raise ConfigError("pass either capacity (deprecated) or capacity_bytes, not both")
        if capacity is not None:
            warnings.warn(
                "ModelRegistry(capacity=...) counts models and is deprecated; "
                "use ModelRegistry(capacity_bytes=...) to budget decoded-plan bytes",
                DeprecationWarning,
                stacklevel=2,
            )
            if capacity < 1:
                raise ConfigError("registry capacity must be >= 1")
        elif capacity_bytes is None:
            capacity_bytes = DEFAULT_CAPACITY_BYTES
        if capacity_bytes is not None and capacity_bytes < 1:
            raise ConfigError("registry capacity_bytes must be >= 1")
        self.capacity = capacity
        self.capacity_bytes = capacity_bytes
        self.stats = RegistryStats()
        #: versioned bookkeeping lives in the shared catalog; entries are
        #: the ModelImage objects (see repro.serving.catalog for the
        #: CatalogError -> ConfigError mapping policy — the registry keeps
        #: its historical everything-is-ConfigError surface)
        self._catalog = VersionedCatalog()
        self._decoded: "OrderedDict[ModelKey, PackedModel]" = OrderedDict()
        self._inflight: Dict[ModelKey, threading.Event] = {}  # single-flight decodes
        self._lock = threading.RLock()
        # latest registry wins the "registry" prefix on the process-wide
        # metrics plane; held weakly, so a dropped registry unmounts itself
        get_registry().register_source("registry", self.telemetry_tree)

    def telemetry_tree(self) -> Dict[str, object]:
        """The decode-cache counters as a plain metrics subtree."""
        with self._lock:
            stats = self.stats
            return {
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
                "resident_bytes": stats.resident_bytes,
                "peak_resident_bytes": stats.peak_resident_bytes,
                "models": self._catalog.entry_count(),
                "decoded": len(self._decoded),
            }

    # -- mutation ---------------------------------------------------------- #

    def register(
        self,
        name: str,
        image: Union[ModelImage, bytes],
        *,
        version: Optional[str] = None,
        activate: bool = True,
    ) -> None:
        """Add or replace an image under ``(name, version)``.

        ``version=None`` replaces the current version (or registers
        ``v1`` for a new name) — the pre-versioning behaviour.  With
        ``activate=True`` (default) the registered version becomes current;
        ``activate=False`` stages it without touching resolution (a
        deploy's warm-up) and requires an explicit ``version=``.  A
        brand-new name's first version becomes current regardless of
        ``activate`` — a registered model always has a current version.
        Replacing an existing key drops any stale plan.
        """
        with catalog_errors(ConfigError, ConfigError):
            # validate the full spec before deserializing the image bytes
            self._catalog.check_spec(name, version=version, activate=activate)
        if isinstance(image, (bytes, bytearray)):
            image = ModelImage.from_bytes(bytes(image))
        with self._lock, catalog_errors(ConfigError, ConfigError):
            version = self._catalog.register(
                name, image, version=version, activate=activate
            )
            self._drop_plan((name, version))

    def remove(self, name: str, *, version: Optional[str] = None) -> None:
        """Forget a model (or one version) and its decoded plans.

        ``version=None`` removes every version of ``name``; naming one
        removes just that key — removing the *current* version while other
        versions exist is rejected (:meth:`set_current` first).  Unknown
        names/versions raise.
        """
        with self._lock:
            with catalog_errors(ConfigError, ConfigError):
                doomed = self._catalog.remove(name, version=version)
            for doomed_version in doomed:
                self._drop_plan((name, doomed_version))

    def set_current(self, name: str, version: str) -> None:
        """Atomically flip which version ``get(name)`` resolves to."""
        with self._lock, catalog_errors(ConfigError, ConfigError):
            self._catalog.set_current(name, version)

    def _resolve(self, name: str, version: Optional[str]) -> ModelKey:
        """Resolve ``(name, version)`` with ``None`` meaning current (under lock)."""
        with catalog_errors(ConfigError, ConfigError):
            return (name, self._catalog.resolve_version(name, version))

    def _drop_plan(self, key: ModelKey) -> None:
        """Discard ``key``'s decoded plan (if resident), keeping byte accounts."""
        if self._decoded.pop(key, None) is not None:
            self._sync_resident()

    def _sync_resident(self) -> None:
        """Re-derive ``stats.resident_bytes`` from the resident plans.

        Deriving (rather than incrementally maintaining) the counter means no
        mutation path can drift it away from the cache contents — the budget
        invariant in :meth:`_cache` keys off this value.
        """
        self.stats.resident_bytes = sum(m.decoded_bytes() for m in self._decoded.values())

    # -- lookup ------------------------------------------------------------ #

    def get(self, name: str, version: Optional[str] = None) -> PackedModel:
        """Fetch the decoded runtime for ``(name, version)`` — ``None``
        meaning the current version — decoding (and possibly evicting LRU
        plans) on a cache miss.

        The decode itself runs outside the lock so a cold model never blocks
        concurrent hits on hot ones.  Cold decodes are **single-flight**:
        when many threads miss the same model at once, exactly one performs
        the decode while the rest wait on it and then take the hit path — a
        thundering herd costs one decode, not one per thread (so
        ``stats.misses`` counts decodes exactly).
        """
        while True:
            with self._lock:
                key = self._resolve(name, version)
                image = self._catalog.get(key[0], key[1])
                model = self._decoded.get(key)
                if model is not None:
                    self.stats.hits += 1
                    self._decoded.move_to_end(key)
                    return model
                waiter = self._inflight.get(key)
                if waiter is None:
                    self._inflight[key] = waiter = threading.Event()
                    self.stats.misses += 1
                    break  # this thread is the decode leader
            waiter.wait()  # a leader is decoding; retry once it lands
        try:
            model = PackedModel(image, cache=True)
        except BaseException:
            with self._lock:  # wake followers; one of them retries as leader
                self._inflight.pop(key, None)
                waiter.set()
            raise
        with self._lock:
            # cache *before* releasing the latch (atomically with it), so a
            # woken follower always finds the plan and can never become a
            # second leader decoding the same image
            if self._catalog.find(*key) is image:  # not re-registered/removed mid-decode
                self._cache(key, model)
            self._inflight.pop(key, None)
            waiter.set()
            return model

    def _cache(self, key: ModelKey, model: PackedModel) -> None:
        """Admit a freshly decoded plan, evicting LRU plans to stay in budget.

        Eviction happens *before* insertion so ``stats.resident_bytes`` never
        exceeds the byte budget, not even transiently.  An oversized plan
        (larger than the whole budget) is served uncached.
        """
        cost = model.decoded_bytes()
        if self.capacity_bytes is not None:
            if cost > self.capacity_bytes:
                return  # cannot fit even an empty cache; serve uncached
            while self.stats.resident_bytes + cost > self.capacity_bytes:
                self._evict_lru()
        else:  # deprecated count-based mode
            while len(self._decoded) >= self.capacity:
                self._evict_lru()
        self._decoded[key] = model
        self._sync_resident()
        self.stats.peak_resident_bytes = max(
            self.stats.peak_resident_bytes, self.stats.resident_bytes
        )

    def _evict_lru(self) -> None:
        """Drop the least-recently-used decoded plan."""
        self._decoded.popitem(last=False)
        self._sync_resident()
        self.stats.evictions += 1

    def predict(self, name: str, x: np.ndarray, *, version: Optional[str] = None) -> np.ndarray:
        """Run a batch through the named model (current version by default)."""
        return self.get(name, version)(x)

    # -- introspection ----------------------------------------------------- #

    def names(self) -> List[str]:
        """All registered model names, sorted."""
        with self._lock:
            return self._catalog.names()

    def versions(self, name: str) -> List[str]:
        """Registered versions of ``name``, sorted (empty for unknown names)."""
        with self._lock:
            return self._catalog.versions(name)

    def current_version(self, name: str) -> str:
        """The version ``get(name)`` resolves to; unknown names raise."""
        with self._lock, catalog_errors(ConfigError, ConfigError):
            return self._catalog.current_version(name)

    def decoded_names(self) -> List[str]:
        """Model keys (``"name@version"``) resident in decoded form, LRU first."""
        with self._lock:
            return [make_key(name, version) for name, version in self._decoded]

    def resident_by_version(self) -> Dict[str, int]:
        """Per-version byte accounting of the resident decoded plans.

        Maps ``"name@version"`` keys to their plans' ``decoded_bytes()``;
        the values sum to ``stats.resident_bytes``, so the budget invariant
        can be audited version by version.
        """
        with self._lock:
            return {
                make_key(name, version): model.decoded_bytes()
                for (name, version), model in self._decoded.items()
            }

    def decoded_bytes(self) -> int:
        """Total resident size of all decoded plans.

        Reads the same accounting :meth:`_sync_resident` derives from the
        resident plans on every mutation — one source of truth.
        """
        with self._lock:
            return self.stats.resident_bytes

    def snapshot(self) -> RegistryStats:
        """Atomic copy of the counters, taken under the registry lock.

        Mirrors :meth:`BatchingEngine.snapshot
        <repro.serving.batching.BatchingEngine.snapshot>` — the unified
        stats accessor name across the serving layer: concurrent readers
        (monitoring, tests asserting budget invariants mid-traffic) get one
        consistent state instead of fields from different moments.
        """
        with self._lock:
            return replace(self.stats)

    def stats_snapshot(self) -> RegistryStats:
        """Deprecated alias for :meth:`snapshot` (the unified stats name)."""
        warnings.warn(
            "ModelRegistry.stats_snapshot() is deprecated; use snapshot() — "
            "the unified stats accessor across the serving layer",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.snapshot()

    def __contains__(self, name: str) -> bool:
        """True when ``name`` is a registered model (any version)."""
        with self._lock:
            return name in self._catalog

    def __len__(self) -> int:
        """Number of registered images across all versions (decoded or not)."""
        with self._lock:
            return self._catalog.entry_count()
