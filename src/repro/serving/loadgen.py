"""Deterministic load generation for the sessionful streaming layer.

Synthesises keyword-spotting streams (:func:`~repro.evaluation.streaming.
make_stream` clips from :mod:`repro.datasets.synthesizer`), degrades them
through :mod:`repro.audio.augment` noise scenarios, and replays them as
timed session arrivals against a :class:`~repro.serving.streams.
StreamSessionManager`.  Everything is seeded: the same ``build_arrivals``
call produces bit-identical waveforms, truth placements and arrival times,
so a load run is a *replayable* experiment, not a one-off.

``benchmarks/bench_streams.py`` drives this harness for its sessions/sec
and latency gates; tests reuse it for deterministic multi-session setups.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.audio.augment import add_background_noise
from repro.datasets.noise import pink_noise
from repro.errors import ConfigError
from repro.evaluation.streaming import make_stream
from repro.serving.streams import ManagerStats, StreamSessionManager
from repro.utils.rng import new_rng


@dataclass(frozen=True)
class NoiseScenario:
    """One degradation applied to a synthesised stream.

    ``gap_noise`` is the noise floor inside the inter-keyword gaps (the
    synthesiser's own parameter); ``background_volume`` mixes a pink-noise
    bed over the *whole* stream relative to its RMS (0 disables), which is
    the SNR knob deployments care about.
    """

    name: str
    gap_noise: float = 0.005
    background_volume: float = 0.0


#: quiet room → noticeable background → keyword barely above the bed
DEFAULT_SCENARIOS: Tuple[NoiseScenario, ...] = (
    NoiseScenario("clean"),
    NoiseScenario("office", gap_noise=0.01, background_volume=0.1),
    NoiseScenario("street", gap_noise=0.02, background_volume=0.3),
)


@dataclass(frozen=True)
class SessionArrival:
    """One scheduled session: when it starts and what audio it streams."""

    index: int
    at_s: float
    scenario: str
    waveform: np.ndarray
    truth: Tuple[Tuple[str, float], ...]


def build_arrivals(
    num_sessions: int,
    *,
    keywords: Sequence[str] = ("yes", "no"),
    scenarios: Sequence[NoiseScenario] = DEFAULT_SCENARIOS,
    arrivals_per_s: float = 64.0,
    pool_size: int = 8,
    gap_seconds: Tuple[float, float] = (1.0, 2.5),
    sample_rate: int = 16_000,
    seed: int = 0,
) -> List[SessionArrival]:
    """Deterministic arrival schedule of ``num_sessions`` sessions.

    Streams are synthesised into a pool of ``pool_size`` distinct waveforms
    (keyword clips + noise gaps, then the scenario's background bed) and
    cycled across arrivals — synthesis cost stays bounded while every
    scenario keeps appearing.  Arrival ``i`` starts at ``i /
    arrivals_per_s`` seconds; the whole schedule is a pure function of the
    arguments.
    """
    if num_sessions < 1:
        raise ConfigError("need at least one session")
    if arrivals_per_s <= 0:
        raise ConfigError("arrivals_per_s must be > 0")
    if pool_size < 1:
        raise ConfigError("pool_size must be >= 1")
    pool: List[Tuple[str, np.ndarray, Tuple[Tuple[str, float], ...]]] = []
    for i in range(min(pool_size, num_sessions)):
        scenario = scenarios[i % len(scenarios)]
        rng = new_rng([seed, i])
        waveform, truth = make_stream(
            keywords,
            gap_seconds=gap_seconds,
            noise_level=scenario.gap_noise,
            rng=rng,
            sample_rate=sample_rate,
        )
        if scenario.background_volume > 0.0:
            bed = pink_noise(len(waveform), rng)
            waveform = add_background_noise(
                waveform, bed, scenario.background_volume, rng
            )
        pool.append((scenario.name, waveform, tuple(truth)))
    return [
        SessionArrival(
            index=i,
            at_s=i / arrivals_per_s,
            scenario=pool[i % len(pool)][0],
            waveform=pool[i % len(pool)][1],
            truth=pool[i % len(pool)][2],
        )
        for i in range(num_sessions)
    ]


@dataclass(frozen=True)
class ReplayReport:
    """What one replay run measured."""

    sessions: int
    windows_served: int
    windows_failed: int
    deadline_misses: int
    gaps: int
    wall_s: float
    sessions_per_s: float
    windows_per_s: float
    p50_ms: float
    p99_ms: float
    stats: ManagerStats


def replay(
    manager: StreamSessionManager,
    arrivals: Sequence[SessionArrival],
    *,
    realtime: bool = False,
    pump_every: int = 8,
    timeout_s: float = 300.0,
) -> ReplayReport:
    """Replay an arrival schedule through the session manager.

    ``realtime=False`` (the default) replays as fast as the backend can
    absorb — the throughput-measurement mode; ``realtime=True`` honours
    each arrival's ``at_s`` with wall-clock sleeps.  ``pump_every`` bounds
    how many sessions open between pump/collect cycles so ready windows
    keep flowing into cross-session bursts instead of accumulating.
    """
    if pump_every < 1:
        raise ConfigError("pump_every must be >= 1")
    start = time.monotonic()
    for opened, arrival in enumerate(arrivals, start=1):
        if realtime:
            delay = arrival.at_s - (time.monotonic() - start)
            if delay > 0:
                time.sleep(delay)
        manager.open(arrival.waveform, session_id=f"load-{arrival.index}")
        if opened % pump_every == 0:
            manager.pump()
            manager.collect(wait=False)
    stats = manager.drain(timeout_s=timeout_s)
    wall = time.monotonic() - start
    latencies = manager.latencies_s()
    p50, p99 = (
        np.percentile(latencies, [50, 99]) if latencies else (float("nan"), float("nan"))
    )
    return ReplayReport(
        sessions=len(arrivals),
        windows_served=stats.windows_served,
        windows_failed=stats.windows_failed,
        deadline_misses=stats.deadline_misses,
        gaps=stats.gaps,
        wall_s=wall,
        sessions_per_s=len(arrivals) / wall if wall else float("inf"),
        windows_per_s=stats.windows_served / wall if wall else float("inf"),
        p50_ms=float(p50) * 1e3,
        p99_ms=float(p99) * 1e3,
        stats=stats,
    )


def score_replay(
    manager: StreamSessionManager, arrivals: Sequence[SessionArrival]
) -> Tuple[int, int]:
    """(sessions with ≥1 detection, total detections) after a replay.

    A coarse health signal for load runs — detailed operating points come
    from :func:`repro.evaluation.streaming.score_detections` per session.
    """
    fired_sessions = 0
    total = 0
    for arrival in arrivals:
        events = manager.session(f"load-{arrival.index}").detect()
        fired_sessions += bool(events)
        total += len(events)
    return fired_sessions, total


__all__ = [
    "NoiseScenario",
    "DEFAULT_SCENARIOS",
    "SessionArrival",
    "ReplayReport",
    "build_arrivals",
    "replay",
    "score_replay",
]
