"""Deterministic load generation for the sessionful streaming layer.

Synthesises keyword-spotting streams (:func:`~repro.evaluation.streaming.
make_stream` clips from :mod:`repro.datasets.synthesizer`), degrades them
through :mod:`repro.audio.augment` noise scenarios, and replays them as
timed session arrivals against a :class:`~repro.serving.streams.
StreamSessionManager`.  Everything is seeded: the same ``build_arrivals``
call produces bit-identical waveforms, truth placements and arrival times,
so a load run is a *replayable* experiment, not a one-off.

``benchmarks/bench_streams.py`` drives this harness for its sessions/sec
and latency gates; tests reuse it for deterministic multi-session setups.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.audio.augment import add_background_noise
from repro.datasets.noise import pink_noise
from repro.errors import ConfigError
from repro.evaluation.streaming import make_stream
from repro.serving.streams import ManagerStats, StreamSessionManager
from repro.utils.rng import new_rng


@dataclass(frozen=True)
class NoiseScenario:
    """One degradation applied to a synthesised stream.

    ``gap_noise`` is the noise floor inside the inter-keyword gaps (the
    synthesiser's own parameter); ``background_volume`` mixes a pink-noise
    bed over the *whole* stream relative to its RMS (0 disables), which is
    the SNR knob deployments care about.
    """

    name: str
    gap_noise: float = 0.005
    background_volume: float = 0.0


#: quiet room → noticeable background → keyword barely above the bed
DEFAULT_SCENARIOS: Tuple[NoiseScenario, ...] = (
    NoiseScenario("clean"),
    NoiseScenario("office", gap_noise=0.01, background_volume=0.1),
    NoiseScenario("street", gap_noise=0.02, background_volume=0.3),
)


@dataclass(frozen=True)
class SessionArrival:
    """One scheduled session: when it starts and what audio it streams."""

    index: int
    at_s: float
    scenario: str
    waveform: np.ndarray
    truth: Tuple[Tuple[str, float], ...]


def build_arrivals(
    num_sessions: int,
    *,
    keywords: Sequence[str] = ("yes", "no"),
    scenarios: Sequence[NoiseScenario] = DEFAULT_SCENARIOS,
    arrivals_per_s: float = 64.0,
    pool_size: int = 8,
    gap_seconds: Tuple[float, float] = (1.0, 2.5),
    sample_rate: int = 16_000,
    seed: int = 0,
) -> List[SessionArrival]:
    """Deterministic arrival schedule of ``num_sessions`` sessions.

    Streams are synthesised into a pool of ``pool_size`` distinct waveforms
    (keyword clips + noise gaps, then the scenario's background bed) and
    cycled across arrivals — synthesis cost stays bounded while every
    scenario keeps appearing.  Arrival ``i`` starts at ``i /
    arrivals_per_s`` seconds; the whole schedule is a pure function of the
    arguments.
    """
    if num_sessions < 1:
        raise ConfigError("need at least one session")
    if arrivals_per_s <= 0:
        raise ConfigError("arrivals_per_s must be > 0")
    if pool_size < 1:
        raise ConfigError("pool_size must be >= 1")
    pool: List[Tuple[str, np.ndarray, Tuple[Tuple[str, float], ...]]] = []
    for i in range(min(pool_size, num_sessions)):
        scenario = scenarios[i % len(scenarios)]
        rng = new_rng([seed, i])
        waveform, truth = make_stream(
            keywords,
            gap_seconds=gap_seconds,
            noise_level=scenario.gap_noise,
            rng=rng,
            sample_rate=sample_rate,
        )
        if scenario.background_volume > 0.0:
            bed = pink_noise(len(waveform), rng)
            waveform = add_background_noise(
                waveform, bed, scenario.background_volume, rng
            )
        pool.append((scenario.name, waveform, tuple(truth)))
    return [
        SessionArrival(
            index=i,
            at_s=i / arrivals_per_s,
            scenario=pool[i % len(pool)][0],
            waveform=pool[i % len(pool)][1],
            truth=pool[i % len(pool)][2],
        )
        for i in range(num_sessions)
    ]


def _percentiles_ms(values: Sequence[float]) -> Tuple[float, float]:
    """(p50, p99) of a list of seconds, in milliseconds; nan when empty."""
    if not values:
        return float("nan"), float("nan")
    p50, p99 = np.percentile(values, [50, 99])
    return float(p50) * 1e3, float(p99) * 1e3


@dataclass(frozen=True)
class SessionBreakdown:
    """One session's window-to-decision latency, split by where it went.

    ``queue_*`` is the featurize→submit wait (manager-side: burst
    coalescing, admission sheds); ``compute_*`` is submit→resolve (the
    backend's share: cluster queueing + kernel time).  The two lists are
    per-window, so their means add up to the mean window-to-decision time
    — the attribution the pooled p50/p99 in :class:`ReplayReport` cannot
    give.
    """

    session_id: str
    windows_served: int
    windows_failed: int
    deadline_misses: int
    gaps: int
    queue_p50_ms: float
    queue_p99_ms: float
    compute_p50_ms: float
    compute_p99_ms: float
    mean_queue_ms: float
    mean_compute_ms: float


@dataclass(frozen=True)
class ReplayReport:
    """What one replay run measured.

    The pooled ``p50_ms``/``p99_ms`` are submit→resolve across every
    window of every session (the historical fields); ``queue_p50_ms``/
    ``queue_p99_ms`` pool the featurize→submit waits, and ``per_session``
    carries one :class:`SessionBreakdown` per replayed session so a run
    can attribute its window-to-decision time to queueing vs. compute.
    """

    sessions: int
    windows_served: int
    windows_failed: int
    deadline_misses: int
    gaps: int
    wall_s: float
    sessions_per_s: float
    windows_per_s: float
    p50_ms: float
    p99_ms: float
    stats: ManagerStats
    queue_p50_ms: float = float("nan")
    queue_p99_ms: float = float("nan")
    per_session: Tuple[SessionBreakdown, ...] = ()


def replay(
    manager: StreamSessionManager,
    arrivals: Sequence[SessionArrival],
    *,
    realtime: bool = False,
    pump_every: int = 8,
    timeout_s: float = 300.0,
    chaos=None,
) -> ReplayReport:
    """Replay an arrival schedule through the session manager.

    ``realtime=False`` (the default) replays as fast as the backend can
    absorb — the throughput-measurement mode; ``realtime=True`` honours
    each arrival's ``at_s`` with wall-clock sleeps.  ``pump_every`` bounds
    how many sessions open between pump/collect cycles so ready windows
    keep flowing into cross-session bursts instead of accumulating.

    ``chaos`` accepts a :class:`~repro.serving.chaos.ChaosHarness`: its
    plan is ticked once per opened session — fault injections land at
    deterministic points in the arrival schedule, making a chaos run as
    replayable as a clean one — and quiesced (lags cleared, held slab
    leases released) before the drain, so the no-leak transport invariant
    still holds at the end of a faulted replay.
    """
    if pump_every < 1:
        raise ConfigError("pump_every must be >= 1")
    start = time.monotonic()
    for opened, arrival in enumerate(arrivals, start=1):
        if realtime:
            delay = arrival.at_s - (time.monotonic() - start)
            if delay > 0:
                time.sleep(delay)
        manager.open(arrival.waveform, session_id=f"load-{arrival.index}")
        if chaos is not None:
            chaos.tick()
        if opened % pump_every == 0:
            manager.pump()
            manager.collect(wait=False)
    if chaos is not None:
        chaos.quiesce()
    stats = manager.drain(timeout_s=timeout_s)
    wall = time.monotonic() - start
    p50, p99 = _percentiles_ms(manager.latencies_s())
    queue_p50, queue_p99 = _percentiles_ms(manager.queue_s())
    per_session = []
    for session in manager.sessions:
        s = session.stats
        q50, q99 = _percentiles_ms(s.queue_s)
        c50, c99 = _percentiles_ms(s.latencies_s)
        per_session.append(
            SessionBreakdown(
                session_id=session.session_id,
                windows_served=s.windows_served,
                windows_failed=s.windows_failed,
                deadline_misses=s.deadline_misses,
                gaps=s.gaps,
                queue_p50_ms=q50,
                queue_p99_ms=q99,
                compute_p50_ms=c50,
                compute_p99_ms=c99,
                mean_queue_ms=float(np.mean(s.queue_s)) * 1e3 if s.queue_s else float("nan"),
                mean_compute_ms=(
                    float(np.mean(s.latencies_s)) * 1e3 if s.latencies_s else float("nan")
                ),
            )
        )
    return ReplayReport(
        sessions=len(arrivals),
        windows_served=stats.windows_served,
        windows_failed=stats.windows_failed,
        deadline_misses=stats.deadline_misses,
        gaps=stats.gaps,
        wall_s=wall,
        sessions_per_s=len(arrivals) / wall if wall else float("inf"),
        windows_per_s=stats.windows_served / wall if wall else float("inf"),
        p50_ms=p50,
        p99_ms=p99,
        stats=stats,
        queue_p50_ms=queue_p50,
        queue_p99_ms=queue_p99,
        per_session=tuple(per_session),
    )


def score_replay(
    manager: StreamSessionManager, arrivals: Sequence[SessionArrival]
) -> Tuple[int, int]:
    """(sessions with ≥1 detection, total detections) after a replay.

    A coarse health signal for load runs — detailed operating points come
    from :func:`repro.evaluation.streaming.score_detections` per session.
    """
    fired_sessions = 0
    total = 0
    for arrival in arrivals:
        events = manager.session(f"load-{arrival.index}").detect()
        fired_sessions += bool(events)
        total += len(events)
    return fired_sessions, total


__all__ = [
    "NoiseScenario",
    "DEFAULT_SCENARIOS",
    "SessionArrival",
    "SessionBreakdown",
    "ReplayReport",
    "build_arrivals",
    "replay",
    "score_replay",
]
