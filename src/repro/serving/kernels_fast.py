"""Pluggable fast ternary kernel backends: fused gather, narrow, popcount.

The reference kernel (:mod:`repro.serving.kernels`) executes a ternary
matmul as **two** gather-accumulate passes — one per sign plane — each
materialising its own scratch slab and walking the activations
independently.  This module makes the execution strategy pluggable: a
:class:`KernelBackend` registry (``"reference"`` / ``"fused"`` /
``"narrow"`` / ``"popcount"``) selectable per
:class:`~repro.serving.packed.PackedModel` (``kernel=``), per cluster
(``ClusterRouter(kernel=...)`` rides the worker-init config so every
replica runs the same backend) or process-wide via the
``REPRO_KERNEL_BACKEND`` environment variable.

Every backend is **bitwise identical** to the reference on the dtypes it
accelerates — each keeps the reference's per-segment left-to-right
summation order, so serving-stack identity guarantees survive backend
swaps (property-tested in ``tests/test_kernels_fast.py``):

* :class:`FusedBackend` — the +/− planes are concatenated into **one**
  index array at prepare time, so each matmul runs one gather, one
  ``reduceat`` over ``2 × rows`` segments, and one signed combine
  (``plus_half - minus_half``) instead of two full passes and two scratch
  slabs.  Orientation is adaptive: gather-heavy shapes transpose the
  activation chunk so ``reduceat`` runs along axis 0, where every
  accumulation step is a contiguous SIMD-friendly row addition — same
  summation order, measurably faster on the gather-dominated ``linear`` /
  ``pw`` layer kinds.
* :class:`NarrowBackend` — fused execution plus narrow accumulation:
  ``int64`` activations accumulate in ``int32`` when the decode-time
  overflow bound proves it safe (exact, hence still bitwise), and an
  explicit ``narrow_floats=True`` opt-in accumulates ``float64`` inputs in
  ``float32`` (*not* bitwise — never registered as a default).
* :class:`PopcountBackend` — TNN-style bit-plane execution (Alemdar et
  al.): when the activations are exactly binary (every value 0 or 1), they
  are packed to ``uint64`` bit planes and each plane sum becomes
  ``popcount(x_bits & w_bits)`` — no gather scratch at all.  Non-binary
  activations are gated off to the fused path, so the backend is safe (and
  bitwise) everywhere.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Tuple, Union

import numpy as np

from repro.errors import ConfigError
from repro.serving.kernels import (
    TernaryPlanes,
    gather_chunk_rows,
    get_kernel_profile,
    ternary_matmul,
)

#: environment variable naming the process-wide default backend
ENV_KERNEL_BACKEND = "REPRO_KERNEL_BACKEND"

#: registry default when the environment does not override it
DEFAULT_BACKEND_NAME = "fused"

def _float_exact_max(dtype: np.dtype) -> int:
    """Largest count a float dtype represents exactly (2**(mantissa+1)).

    A binary-activation plane sum is an integer; above this bound the
    reference's sequential float summation starts rounding (order-
    dependently), so popcount execution could no longer match it bitwise.
    """
    return 2 ** (np.finfo(dtype).nmant + 1)


# --------------------------------------------------------------------------- #
# prepared plane layouts
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class FusedPlanes:
    """Both sign planes of one ternary matrix as a single segment array.

    ``indices`` is the reference's ``plus_indices`` and ``minus_indices``
    back to back; segment ``j < rows`` is row ``j``'s +1 columns and
    segment ``rows + j`` its −1 columns, delimited by ``bounds`` (the 2 ×
    rows segment starts).  ``empty`` lists the segments with no entries —
    ``reduceat`` emits a stray element for those, which the matmul zeroes —
    with ``nonempty`` / ``nonempty_bounds`` the prepare-time complement the
    hot path reduces over (fixed per layout, so never recomputed per call),
    and ``max_segment`` (the longest single segment) is the decode-time
    bound the narrow/popcount overflow checks are derived from.
    """

    rows: int
    cols: int
    indices: np.ndarray
    bounds: np.ndarray
    empty: np.ndarray
    nonempty: np.ndarray
    nonempty_bounds: np.ndarray
    max_segment: int

    @property
    def nnz(self) -> int:
        """Non-zero weights across both sign planes."""
        return int(self.indices.size)

    @property
    def nbytes(self) -> int:
        """Decoded in-memory footprint of the fused layout."""
        return (
            self.indices.nbytes
            + self.bounds.nbytes
            + self.empty.nbytes
            + self.nonempty.nbytes
            + self.nonempty_bounds.nbytes
        )


@dataclass(frozen=True)
class PopcountPlanes:
    """Fused layout plus packed ``uint64`` weight bit planes.

    ``masks`` is ``(2 * rows, words)``: row ``j`` is row ``j``'s +1 column
    bitmask, row ``rows + j`` its −1 bitmask, little-endian bit order so
    activation planes packed the same way line up word for word.
    """

    fused: FusedPlanes
    masks: np.ndarray
    words: int

    @property
    def rows(self) -> int:
        """Output rows of the ternary transform."""
        return self.fused.rows

    @property
    def cols(self) -> int:
        """Input columns the transform gathers over."""
        return self.fused.cols

    @property
    def nnz(self) -> int:
        """Non-zero weights across both sign planes."""
        return self.fused.nnz

    @property
    def nbytes(self) -> int:
        """Decoded footprint: fused layout + packed bit planes."""
        return self.fused.nbytes + self.masks.nbytes


def _fuse(planes: TernaryPlanes) -> FusedPlanes:
    """Concatenate a plane pair into the single-gather segment layout."""
    indices = np.concatenate([planes.plus_indices, planes.minus_indices])
    starts = np.concatenate(
        [planes.plus_ptr[:-1], planes.plus_indices.size + planes.minus_ptr[:-1]]
    ).astype(np.intp)
    ends = np.concatenate(
        [planes.plus_ptr[1:], planes.plus_indices.size + planes.minus_ptr[1:]]
    ).astype(np.intp)
    lengths = ends - starts
    nonempty = np.flatnonzero(lengths)
    return FusedPlanes(
        rows=planes.rows,
        cols=planes.cols,
        indices=np.ascontiguousarray(indices, dtype=np.intp),
        bounds=np.ascontiguousarray(starts),
        empty=np.flatnonzero(lengths == 0),
        nonempty=nonempty,
        nonempty_bounds=np.ascontiguousarray(starts[nonempty]),
        max_segment=int(lengths.max()) if lengths.size else 0,
    )


def _check_cols(x: np.ndarray, prepared) -> None:
    """Reject shape mismatches with the reference kernel's message."""
    if x.shape[1] != prepared.cols:
        raise ValueError(
            f"input has {x.shape[1]} features, planes expect {prepared.cols}"
        )


# --------------------------------------------------------------------------- #
# backends
# --------------------------------------------------------------------------- #


class KernelBackend:
    """One ternary-matmul execution strategy.

    ``prepare`` runs once per decoded plane pair (at
    :class:`~repro.serving.packed.PackedModel` decode time) and returns the
    backend's plan-resident layout; ``matmul`` is the hot path.  Backends
    must be bitwise identical to
    :func:`repro.serving.kernels.ternary_matmul` on every dtype they
    accelerate, and must expose ``rows`` / ``cols`` / ``nbytes`` on the
    prepared object so plan byte accounting stays honest.
    """

    #: registry key; subclasses override
    name = "abstract"

    def prepare(self, planes: TernaryPlanes):
        """Build the backend's plan-resident layout for one plane pair."""
        raise NotImplementedError

    def matmul(self, x: np.ndarray, prepared) -> np.ndarray:
        """``x @ W.T`` against the prepared ternary layout."""
        raise NotImplementedError

    def _record(self, start_s: float, profile) -> None:
        """Attribute one fused pass to this backend in the active profile."""
        if profile is not None:
            profile.record_gather(time.perf_counter() - start_s, self.name)


class ReferenceBackend(KernelBackend):
    """The two-pass reference kernel, unchanged — the identity baseline."""

    name = "reference"

    def prepare(self, planes: TernaryPlanes) -> TernaryPlanes:
        """The reference executes straight off the CSR planes."""
        return planes

    def matmul(self, x: np.ndarray, prepared: TernaryPlanes) -> np.ndarray:
        """Two gather-accumulate passes (profiling is recorded inside)."""
        return ternary_matmul(x, prepared)


class FusedBackend(KernelBackend):
    """Single-pass gather: one scratch slab, one ``reduceat``, one combine.

    ``layout`` picks the gather orientation: ``"batch"`` gathers
    ``x[chunk, indices]`` and reduces along axis 1 (the reference's
    orientation), ``"feature"`` transposes the activation chunk and reduces
    along axis 0 — every accumulation step is then a contiguous row-wise
    vector add, which wins whenever the gather volume amortises the
    transpose.  ``"auto"`` (default) chooses per call from the measured
    heuristic: feature-major when the plane has at least as many non-zeros
    as input columns *and* segments are long enough to vectorise.

    Both orientations perform the per-segment additions in the exact same
    left-to-right order, so the choice never changes a single output bit.
    """

    name = "fused"

    #: ``"auto"`` needs segments at least this long before the axis-0
    #: vector adds beat the reference's axis-1 scalar loop
    MIN_VECTOR_SEGMENT = 8

    def __init__(self, layout: str = "auto") -> None:
        if layout not in ("auto", "batch", "feature"):
            raise ConfigError(
                f"unknown fused layout {layout!r}: pick auto, batch or feature"
            )
        self.layout = layout

    def prepare(self, planes: TernaryPlanes) -> FusedPlanes:
        """Concatenate the sign planes into the single-gather layout."""
        return _fuse(planes)

    def matmul(self, x: np.ndarray, prepared: FusedPlanes) -> np.ndarray:
        """One gather + one ``reduceat`` + one signed combine."""
        _check_cols(x, prepared)
        profile = get_kernel_profile()
        start = time.perf_counter() if profile is not None else 0.0
        out = self._segment_sums(x, prepared)
        result = out[:, : prepared.rows] - out[:, prepared.rows :]
        self._record(start, profile)
        return result

    def _feature_major(self, x: np.ndarray, prepared: FusedPlanes) -> bool:
        """The orientation heuristic (overridable via ``layout=``)."""
        if self.layout != "auto":
            return self.layout == "feature"
        segments = 2 * prepared.rows
        if not segments:
            return False
        return (
            prepared.nnz >= prepared.cols
            and prepared.nnz // segments >= self.MIN_VECTOR_SEGMENT
        )

    def _segment_sums(self, x: np.ndarray, prepared: FusedPlanes) -> np.ndarray:
        """The ``(M, 2 * rows)`` per-segment sums, empty segments zeroed."""
        segments = 2 * prepared.rows
        if prepared.nnz == 0 or x.shape[0] == 0:
            return np.zeros((x.shape[0], segments), dtype=x.dtype)
        if self._feature_major(x, prepared):
            return self._sums_feature_major(x, prepared)
        return self._sums_batch_major(x, prepared)

    def _sums_batch_major(self, x: np.ndarray, prepared: FusedPlanes) -> np.ndarray:
        """Gather ``x[chunk, indices]`` and reduce along axis 1."""
        segments = 2 * prepared.rows
        out = np.empty((x.shape[0], segments), dtype=x.dtype)
        # scratch per batch row: the gathered slab + the reduceat output
        chunk = gather_chunk_rows(prepared.nnz + segments, x.dtype.itemsize)
        if prepared.empty.size == 0:
            # every bound starts a real segment, so reduceat can write
            # straight into the output — no scatter pass
            for lo in range(0, x.shape[0], chunk):
                gathered = x[lo : lo + chunk, prepared.indices]
                np.add.reduceat(gathered, prepared.bounds, axis=1, out=out[lo : lo + chunk])
            return out
        # empty segments would make reduceat read past the index array (a
        # trailing empty bound equals nnz) or emit strays — reduce only the
        # populated segments and scatter, exactly like the reference
        nonempty = prepared.nonempty
        bounds = prepared.nonempty_bounds
        out[:] = 0
        for lo in range(0, x.shape[0], chunk):
            gathered = x[lo : lo + chunk, prepared.indices]
            out[lo : lo + chunk, nonempty] = np.add.reduceat(gathered, bounds, axis=1)
        return out

    def _sums_feature_major(self, x: np.ndarray, prepared: FusedPlanes) -> np.ndarray:
        """Transpose the chunk, gather whole rows, reduce along axis 0.

        ``reduceat`` along the leading axis accumulates full contiguous
        batch rows per step — SIMD-width adds instead of per-element scalar
        loops — while visiting each segment's entries in the identical
        order, so the sums are bit-for-bit the batch-major ones.
        """
        segments = 2 * prepared.rows
        out = np.empty((x.shape[0], segments), dtype=x.dtype)
        # scratch per batch row: transposed copy + gathered slab + reduce out
        chunk = gather_chunk_rows(
            prepared.nnz + segments + prepared.cols, x.dtype.itemsize
        )
        if prepared.empty.size == 0:
            nonempty = None
            bounds = prepared.bounds
        else:
            nonempty = prepared.nonempty
            bounds = prepared.nonempty_bounds
            out[:] = 0
        for lo in range(0, x.shape[0], chunk):
            xt = np.ascontiguousarray(x[lo : lo + chunk].T)
            gathered = xt[prepared.indices]
            sums = np.add.reduceat(gathered, bounds, axis=0)
            if nonempty is None:
                out[lo : lo + chunk] = sums.T
            else:
                out[lo : lo + chunk, nonempty] = sums.T
        return out


class NarrowBackend(FusedBackend):
    """Fused execution with narrow accumulators where exactness allows.

    ``int64`` activations gather and accumulate in ``int32`` — halving
    scratch bandwidth — whenever ``2 * max(|x|) * max_segment`` provably
    fits, then cast back (exact, so bitwise).  The factor of 2 covers the
    signed combine: each plane half is bounded by ``max(|x|) *
    max_segment``, but ``plus - minus`` spans twice that.  The decode-time
    half of the check is ``int32_amax_bound``: the largest activation
    magnitude the longest segment (and the combine) can absorb without
    overflow; the call-time half is one ``min()``/``max()`` pass over the
    activations, compared in Python ints so ``INT64_MIN`` (whose ``np.abs``
    wraps to itself) is measured exactly and stays wide.

    ``narrow_floats=True`` additionally accumulates ``float64`` inputs in
    ``float32``.  That path is **not** bitwise identical to the reference —
    it trades mantissa bits for bandwidth — so it is a constructor opt-in,
    never part of the registered default, and excluded from the identity
    property tests.
    """

    name = "narrow"

    def __init__(self, layout: str = "auto", narrow_floats: bool = False) -> None:
        super().__init__(layout=layout)
        self.narrow_floats = narrow_floats

    def int32_amax_bound(self, prepared: FusedPlanes) -> int:
        """Largest ``|x|`` the segment sums *and* the combine can absorb.

        Each plane half is bounded by ``amax * max_segment``; the final
        ``plus - minus`` doubles that, so the bound halves again — without
        the factor of 2 the combine itself can wrap int32.
        """
        return int(np.iinfo(np.int32).max) // (2 * max(1, prepared.max_segment))

    def matmul(self, x: np.ndarray, prepared: FusedPlanes) -> np.ndarray:
        """Narrow when provably exact (or opted in); else fused-wide."""
        _check_cols(x, prepared)
        if x.dtype == np.int64 and prepared.nnz and x.size:
            # Python-int magnitude: np.abs(INT64_MIN) wraps to INT64_MIN,
            # which would read as negative and falsely pass the gate
            amax = max(int(x.max()), -int(x.min()))
            if amax <= self.int32_amax_bound(prepared):
                narrow = super().matmul(x.astype(np.int32), prepared)
                return narrow.astype(np.int64)
        if self.narrow_floats and x.dtype == np.float64:
            return super().matmul(x.astype(np.float32), prepared).astype(np.float64)
        return super().matmul(x, prepared)


def _popcount(words: np.ndarray) -> np.ndarray:
    """Per-word population count, ``np.bitwise_count`` or a byte LUT."""
    counter = getattr(np, "bitwise_count", None)
    if counter is not None:
        return counter(words)
    bytes_view = words.view(np.uint8)
    return _POPCOUNT_LUT[bytes_view].reshape(*words.shape, words.dtype.itemsize).sum(
        axis=-1, dtype=np.int64
    )


#: bits-set-per-byte lookup, the ``bitwise_count`` fallback for numpy < 2
_POPCOUNT_LUT = np.unpackbits(np.arange(256, dtype=np.uint8)[:, None], axis=1).sum(
    axis=1, dtype=np.int64
)


class PopcountBackend(KernelBackend):
    """Bit-plane popcount execution for exactly-binary activations.

    The ternary weights become packed ``uint64`` bitmasks at prepare time;
    a binary activation batch packs to bit planes once per call, and every
    plane sum is ``popcount(x_bits & mask)`` — the TNN execution model,
    with no per-element gather at all.  The binary precondition is checked
    exactly (`every` value 0 or 1); anything else delegates to the fused
    path, so the backend stays bitwise identical on arbitrary inputs.
    """

    name = "popcount"

    def __init__(self) -> None:
        self._fused = FusedBackend()
        # gated-off (non-binary) passes are still this backend's work, so
        # the fallback records under "popcount" in the kernel profile
        self._fused.name = self.name

    def prepare(self, planes: TernaryPlanes) -> PopcountPlanes:
        """Fused layout + packed per-row sign bitmasks."""
        fused = _fuse(planes)
        words = max(1, (planes.cols + 63) // 64)
        masks = np.zeros((2 * planes.rows, words * 8), dtype=np.uint8)
        bounds = np.append(fused.bounds, fused.nnz)
        for segment in range(2 * planes.rows):
            cols = fused.indices[bounds[segment] : bounds[segment + 1]]
            if cols.size:
                bits = np.zeros(words * 64, dtype=np.uint8)
                bits[cols] = 1
                masks[segment] = np.packbits(bits, bitorder="little")
        return PopcountPlanes(fused=fused, masks=masks.view(np.uint64), words=words)

    def matmul(self, x: np.ndarray, prepared: PopcountPlanes) -> np.ndarray:
        """Popcount on bit planes when binary; fused gather otherwise."""
        _check_cols(x, prepared)
        if not self._binary(x, prepared):
            return self._fused.matmul(x, prepared.fused)
        profile = get_kernel_profile()
        start = time.perf_counter() if profile is not None else 0.0
        rows = prepared.rows
        counts = np.empty((x.shape[0], 2 * rows), dtype=np.int64)
        # pack the batch's activation bits once: (M, words) uint64
        bits = np.zeros((x.shape[0], prepared.words * 64), dtype=np.uint8)
        bits[:, : x.shape[1]] = x != 0
        planes_bits = np.packbits(bits, axis=1, bitorder="little").view(np.uint64)
        # scratch per batch row: the (2*rows, words) AND slab, in uint64
        chunk = gather_chunk_rows(2 * rows * prepared.words, 8)
        for lo in range(0, x.shape[0], chunk):
            anded = planes_bits[lo : lo + chunk, None, :] & prepared.masks[None, :, :]
            counts[lo : lo + chunk] = _popcount(anded).sum(axis=2, dtype=np.int64)
        plus = counts[:, :rows].astype(x.dtype)
        minus = counts[:, rows:].astype(x.dtype)
        result = plus - minus
        self._record(start, profile)
        return result

    def _binary(self, x: np.ndarray, prepared: PopcountPlanes) -> bool:
        """True when every activation is exactly 0 or 1 and counts are exact.

        Float accumulators represent segment counts exactly only below
        2**24, so a (pathologically dense) plane whose longest segment
        could overflow that is gated off too — the reference would also be
        summing inexactly there, but through a different order.
        """
        if x.size == 0 or prepared.nnz == 0:
            return False
        if x.dtype.kind == "f" and prepared.fused.max_segment >= _float_exact_max(x.dtype):
            return False
        binary = x != 0
        return bool(np.array_equal(x, binary.astype(x.dtype)))


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #

_REGISTRY: Dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend, *, replace: bool = False) -> KernelBackend:
    """Add a backend to the registry under ``backend.name``; returns it.

    Registering over an existing name needs ``replace=True`` — silent
    shadowing of a measured backend is how perf regressions hide.
    """
    if not replace and backend.name in _REGISTRY:
        raise ConfigError(f"kernel backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend
    return backend


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, registration order."""
    return tuple(_REGISTRY)


def get_backend(name: str) -> KernelBackend:
    """Look up a registered backend by name."""
    backend = _REGISTRY.get(name)
    if backend is None:
        raise ConfigError(
            f"unknown kernel backend {name!r}: available {sorted(_REGISTRY)}"
        )
    return backend


def default_backend_name() -> str:
    """The process default: ``$REPRO_KERNEL_BACKEND`` or ``"fused"``."""
    return os.environ.get(ENV_KERNEL_BACKEND) or DEFAULT_BACKEND_NAME


def resolve_backend(kernel: Union[str, KernelBackend, None] = None) -> KernelBackend:
    """Resolve a ``kernel=`` argument: instance, registered name, or default."""
    if kernel is None:
        return get_backend(default_backend_name())
    if isinstance(kernel, KernelBackend):
        return kernel
    if isinstance(kernel, str):
        return get_backend(kernel)
    raise ConfigError(
        f"kernel must be a backend name or KernelBackend, got {type(kernel).__name__}"
    )


def registered_backend_name(kernel: Union[str, KernelBackend, None] = None) -> str:
    """Resolve ``kernel`` to a name that re-resolves identically elsewhere.

    Worker pools ship the backend across the process boundary as a registry
    *name* (instances don't survive spawn pickling), so an instance is only
    acceptable when it **is** the registered backend for its name — a
    configured instance (``FusedBackend(layout="feature")``,
    ``NarrowBackend(narrow_floats=True)``) would otherwise silently run as
    the registered default in every worker, and an unregistered custom
    backend would fail every model load.
    """
    backend = resolve_backend(kernel)
    if isinstance(kernel, KernelBackend) and _REGISTRY.get(backend.name) is not backend:
        raise ConfigError(
            f"worker pools ship kernel backends by registered name, and "
            f"{backend.name!r} does not resolve back to the instance passed: "
            "pass a registered backend name instead (workers re-resolve the "
            "name in their own process, so a configured instance would not "
            "survive the trip)"
        )
    return backend.name


register_backend(ReferenceBackend())
register_backend(FusedBackend())
register_backend(NarrowBackend())
register_backend(PopcountBackend())


__all__ = [
    "ENV_KERNEL_BACKEND",
    "DEFAULT_BACKEND_NAME",
    "FusedPlanes",
    "PopcountPlanes",
    "KernelBackend",
    "ReferenceBackend",
    "FusedBackend",
    "NarrowBackend",
    "PopcountBackend",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "registered_backend_name",
    "resolve_backend",
]
